"""Run the Vorbis back-end as an N-domain co-simulation fabric.

The paper's central claim is that synchronizer placement -- not a fixed
HW/SW split -- defines the partitioning.  This example takes it past two
partitions: the same back-end design is cut into *three* domains
(software front-end/control, an ``HW_IMDCT`` partition holding the IMDCT
and the IFFT pipe, and an ``HW_WIN`` partition holding the windowing
function) and into *four* (the IFFT pipe gets its own partition).  Each
domain elaborates to its own engine; each (producer, consumer) domain
route on the cut gets its own point-to-point link with credit-based
virtual channels; the PCM checksum stays bit-identical to every
two-partition placement -- the latency-insensitivity guarantee.

The example then fans a sweep over all partitionings (two-domain A-F plus
the multi-domain ones) across worker processes with
:mod:`repro.sim.shard`.

Run with:  python examples/multidomain_fabric.py [n_frames]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.partitions import (
    MULTI_PARTITION_ORDER,
    PARTITION_ORDER,
    build_multi_partition,
    build_partition,
    multi_partition_domains,
)
from repro.apps.vorbis.reference import expected_checksum
from repro.core.partition import default_engine_kind
from repro.sim.cosim import CosimFabric
from repro.sim.shard import SweepTask, run_sweep


def main():
    n_frames = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    params = VorbisParams(n_frames=n_frames)
    reference = expected_checksum(params)
    print(f"Ogg Vorbis back-end, {n_frames} frames, multi-domain fabrics")
    print(f"{'partition':<11} {'domains':<38} {'links':>6} {'cycles/frame':>13}  checksum")
    print("-" * 84)

    serial_cycles = {}
    for letter in MULTI_PARTITION_ORDER:
        workload = build_multi_partition(letter, params)
        fabric = CosimFabric(workload.design, backend="compiled")
        result = fabric.run(workload.cosim_done, max_cycles=500_000_000)
        serial_cycles[f"vorbis_{letter}_fabric"] = result.fpga_cycles
        checksum = fabric.read(workload.checksum)
        domains = "+".join(d.name for d in fabric.domains)
        status = "ok" if (result.completed and checksum == reference) else "MISMATCH"
        print(
            f"{letter:<11} {domains:<38} {len(fabric.topology):>6} "
            f"{result.fpga_cycles / n_frames:>13.1f}  {checksum} [{status}]"
        )
        if not result.completed or checksum != reference:
            raise SystemExit(f"multi-domain partition {letter} diverged from the reference")
        for link in fabric.topology.links:
            direction = fabric.topology.direction(link.src, link.dst)
            print(f"{'':<11}   link {link.name:<28} {direction.stats.messages:>6} msgs")

    print("\nSharded sweep over every partitioning (2-domain A-F + multi-domain):")
    tasks = [
        SweepTask(name=f"vorbis_{letter}", builder=build_partition, args=(letter, params))
        for letter in PARTITION_ORDER
    ] + [
        SweepTask(
            name=f"vorbis_{letter}_fabric",
            builder=build_multi_partition,
            args=(letter, params),
            engine_kinds={d.name: default_engine_kind(d)
                          for d in multi_partition_domains(letter)},
        )
        for letter in MULTI_PARTITION_ORDER
    ]
    # Two workers even on small boxes so the multiprocess path is exercised;
    # run_sweep(tasks) alone would use one worker per CPU.
    report = run_sweep(tasks, processes=2)
    print(report.table())
    incomplete = [n for n, r in report.results.items() if not r.completed]
    if incomplete:
        raise SystemExit(f"incomplete sweep tasks: {incomplete}")
    # Cross-check the worker-process fabric runs against the serial runs
    # whose checksums were verified above.
    for name, cycles in serial_cycles.items():
        if report.results[name].fpga_cycles != cycles:
            raise SystemExit(
                f"{name}: sweep worker simulated {report.results[name].fpga_cycles} "
                f"cycles, serial run simulated {cycles}"
            )
    print(
        "all partitionings completed; multi-domain checksums verified bit-identical "
        "above and sweep workers match the serial runs cycle-for-cycle"
    )


if __name__ == "__main__":
    main()
