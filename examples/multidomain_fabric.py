"""Run the Vorbis back-end as an N-domain co-simulation fabric.

The paper's central claim is that synchronizer placement -- not a fixed
HW/SW split -- defines the partitioning.  This example takes it past two
partitions: the same back-end design is cut into *three* domains
(software front-end/control, an ``HW_IMDCT`` partition holding the IMDCT
and the IFFT pipe, and an ``HW_WIN`` partition holding the windowing
function) and into *four* (the IFFT pipe gets its own partition).  Each
domain elaborates to its own engine; each (producer, consumer) domain
route on the cut gets its own point-to-point link with credit-based
virtual channels; the PCM checksum stays bit-identical to every
two-partition placement -- the latency-insensitivity guarantee.

The example then fans a sweep over all partitionings (two-domain A-F plus
the multi-domain ones) across worker processes with
:mod:`repro.sim.shard`, and -- with ``--grouped`` -- runs a *multi-group*
workload (several independent pipelines in one design) three ways: the
fabric's own serially scheduled group sub-fabrics, the legacy lockstep
loop, and :func:`repro.sim.shard.run_grouped` fanning the groups of that
single design across ``--processes`` workers, verifying the grouped
results bitwise identical and every checksum bit-exact.

With ``--distributed`` the multi-group workload additionally runs on the
distributed scheduler (:mod:`repro.sim.distrib`): long-lived worker
processes host the groups (and, with domain placement, the individual
domains), and every cut link that crosses a process boundary carries its
messages as real framed wire words over the ``--carrier`` transport
(shared-memory rings or socket streams) -- verified bitwise identical to
the serial grouped run.

Run with:  python examples/multidomain_fabric.py [n_frames] [--grouped]
           [--distributed] [--carrier shm|socket]
           [--group-letters BC] [--processes N]
"""

import argparse
import sys
from dataclasses import asdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.partitions import (
    MULTI_PARTITION_ORDER,
    PARTITION_ORDER,
    build_group_partition,
    build_multi_partition,
    build_partition,
    multi_partition_domains,
)
from repro.apps.vorbis.reference import expected_checksum
from repro.core.partition import default_engine_kind
from repro.sim.cosim import CosimFabric
from repro.sim.distrib import run_distributed
from repro.sim.shard import SweepTask, run_grouped, run_sweep


def run_grouped_section(letters: str, params: VorbisParams, processes: int) -> None:
    """The multi-group demonstration: per-group clocks and process fan-out."""
    reference = expected_checksum(params)
    print(f"\nMulti-group workload: {len(letters)} independent pipelines "
          f"({'+'.join(letters)}) in one design")

    workload = build_group_partition(letters, params)
    fabric = CosimFabric(workload.design, backend="compiled")
    groups = [
        "+".join(d.name for d in fabric.group_domains(i))
        for i in range(fabric.group_count)
    ]
    print(f"  groups: {groups}")
    serial = fabric.run(workload.cosim_done, max_cycles=500_000_000)
    checksums = workload.checksums(fabric.read)
    print(f"  serially scheduled groups: {serial!r}")
    print(f"  checksums: {checksums} (reference {reference})")
    if not serial.completed or any(c != reference for c in checksums):
        raise SystemExit("multi-group serial run diverged from the reference")

    lock_wl = build_group_partition(letters, params)
    lock_fabric = CosimFabric(lock_wl.design, backend="compiled")
    lockstep = lock_fabric.run(
        lock_wl.cosim_done, max_cycles=500_000_000, scheduler="lockstep"
    )
    print(f"  lockstep baseline:         {lockstep!r}")
    if (
        not lockstep.completed
        or lockstep.fire_counts != serial.fire_counts
        or lockstep.channel_messages != serial.channel_messages
        or lock_wl.checksums(lock_fabric.read) != checksums
    ):
        raise SystemExit("lockstep baseline disagrees with grouped execution")

    report = run_grouped(
        build_group_partition, args=(letters, params), processes=processes
    )
    print(report.table())
    if asdict(report.result) != asdict(serial):
        raise SystemExit(
            "process-grouped merged result diverged from the serial grouped run"
        )
    print(
        f"  process-grouped merged result bitwise identical to the serial "
        f"grouped run ({report.processes} processes, {report.speedup:.2f}x "
        "compute-over-wall speedup)"
    )


def run_distributed_section(
    letters: str, params: VorbisParams, processes: int, carrier: str
) -> None:
    """The distributed demonstration: groups in worker processes, cut links
    as framed wire words over the chosen carrier."""
    reference = expected_checksum(params)
    print(f"\nDistributed co-simulation ({'+'.join(letters)}, carrier={carrier})")

    workload = build_group_partition(letters, params)
    fabric = CosimFabric(workload.design, backend="compiled")
    serial = fabric.run(workload.cosim_done, max_cycles=500_000_000)
    checksums = workload.checksums(fabric.read)
    if not serial.completed or any(c != reference for c in checksums):
        raise SystemExit("serial grouped reference diverged from the checksum")

    for placement in ("group", "domain"):
        report = run_distributed(
            build_group_partition,
            args=(letters, params),
            placement=placement,
            carrier=carrier,
            processes=processes,
        )
        print(f"  placement={placement}:")
        print(report.table())
        if asdict(report.result) != asdict(serial):
            raise SystemExit(
                f"distributed ({placement}/{carrier}) result diverged from the "
                "serial grouped run"
            )
        if placement == "domain" and not report.fallback:
            if report.data_plane["words"] <= 0:
                raise SystemExit(
                    "domain placement moved no framed wire words across "
                    "process boundaries"
                )
            print(
                f"  {report.data_plane['records']} framed records / "
                f"{report.data_plane['words']} wire words crossed process "
                f"boundaries over {carrier}; result bitwise identical to the "
                "serial grouped run"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("n_frames", nargs="?", type=int, default=12)
    parser.add_argument(
        "--grouped", action="store_true",
        help="also run the multi-group workload (grouped vs lockstep vs processes)",
    )
    parser.add_argument(
        "--distributed", action="store_true",
        help="also run the multi-group workload on the distributed scheduler "
             "(worker processes + framed wire words on cut links)",
    )
    parser.add_argument(
        "--carrier", choices=("shm", "socket"), default="shm",
        help="cross-process word transport for --distributed",
    )
    parser.add_argument(
        "--group-letters", default="BC",
        help="partition letter per independent pipeline of the grouped workload",
    )
    parser.add_argument(
        "--processes", type=int, default=2,
        help="worker processes for the sweep and the grouped run",
    )
    args = parser.parse_args()
    n_frames = args.n_frames
    params = VorbisParams(n_frames=n_frames)
    reference = expected_checksum(params)
    print(f"Ogg Vorbis back-end, {n_frames} frames, multi-domain fabrics")
    print(f"{'partition':<11} {'domains':<38} {'links':>6} {'cycles/frame':>13}  checksum")
    print("-" * 84)

    serial_cycles = {}
    for letter in MULTI_PARTITION_ORDER:
        workload = build_multi_partition(letter, params)
        # verify=True: statically lint the design and audit this fabric's
        # snapshot coverage before running (the `python -m repro.analysis`
        # checks, in strict elaboration mode).
        fabric = CosimFabric(workload.design, backend="compiled", verify=True)
        result = fabric.run(workload.cosim_done, max_cycles=500_000_000)
        serial_cycles[f"vorbis_{letter}_fabric"] = result.fpga_cycles
        checksum = fabric.read(workload.checksum)
        domains = "+".join(d.name for d in fabric.domains)
        status = "ok" if (result.completed and checksum == reference) else "MISMATCH"
        print(
            f"{letter:<11} {domains:<38} {len(fabric.topology):>6} "
            f"{result.fpga_cycles / n_frames:>13.1f}  {checksum} [{status}]"
        )
        if not result.completed or checksum != reference:
            raise SystemExit(f"multi-domain partition {letter} diverged from the reference")
        for link in fabric.topology.links:
            direction = fabric.topology.direction(link.src, link.dst)
            print(f"{'':<11}   link {link.name:<28} {direction.stats.messages:>6} msgs")

    print("\nSharded sweep over every partitioning (2-domain A-F + multi-domain):")
    tasks = [
        SweepTask(name=f"vorbis_{letter}", builder=build_partition, args=(letter, params))
        for letter in PARTITION_ORDER
    ] + [
        SweepTask(
            name=f"vorbis_{letter}_fabric",
            builder=build_multi_partition,
            args=(letter, params),
            engine_kinds={d.name: default_engine_kind(d)
                          for d in multi_partition_domains(letter)},
        )
        for letter in MULTI_PARTITION_ORDER
    ]
    # A small fixed worker count even on small boxes so the multiprocess
    # path is exercised; run_sweep(tasks) alone would use one per CPU.
    report = run_sweep(tasks, processes=args.processes)
    print(report.table())
    incomplete = [n for n, r in report.results.items() if not r.completed]
    if incomplete:
        raise SystemExit(f"incomplete sweep tasks: {incomplete}")
    # Cross-check the worker-process fabric runs against the serial runs
    # whose checksums were verified above.
    for name, cycles in serial_cycles.items():
        if report.results[name].fpga_cycles != cycles:
            raise SystemExit(
                f"{name}: sweep worker simulated {report.results[name].fpga_cycles} "
                f"cycles, serial run simulated {cycles}"
            )
    print(
        "all partitionings completed; multi-domain checksums verified bit-identical "
        "above and sweep workers match the serial runs cycle-for-cycle"
    )

    if args.grouped:
        run_grouped_section(args.group_letters, params, args.processes)

    if args.distributed:
        run_distributed_section(
            args.group_letters, params, args.processes, args.carrier
        )


if __name__ == "__main__":
    main()
