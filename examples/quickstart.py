"""Quickstart: write a small BCL design, partition it, and co-simulate it.

This example builds the smallest interesting hardware/software codesign: a
software producer, a hardware compute kernel, and a software consumer, glued
together by two synchronizing FIFOs.  It then

1. runs the *unpartitioned* design under the reference one-rule-at-a-time
   semantics,
2. partitions it by domain and prints the generated HW/SW interface, and
3. co-simulates the partitioned system on the ML507 platform model and
   reports execution time in FPGA cycles.

Run with:  python examples/quickstart.py
"""

from repro.core.action import par
from repro.core.domains import HW, SW
from repro.core.expr import BinOp, Const, KernelCall, RegRead
from repro.core.interpreter import Simulator
from repro.core.module import Design, Module
from repro.core.partition import partition_design
from repro.core.synchronizers import SyncFifo
from repro.core.types import UIntT
from repro.codegen.interface import build_interface_spec
from repro.platform.platform import Platform
from repro.sim.cosim import Cosimulator

N_ITEMS = 16


def build_design():
    """A producer (SW) -> square accelerator (HW) -> consumer (SW) pipeline."""
    top = Module("quickstart")
    sw_side = top.add_submodule(Module("sw_side", domain=SW))
    hw_side = top.add_submodule(Module("hw_side", domain=HW))

    # The partition boundary is expressed *in the source* with synchronizers.
    to_hw = top.add_submodule(SyncFifo("to_hw", UIntT(32), SW, HW, depth=2))
    to_sw = top.add_submodule(SyncFifo("to_sw", UIntT(32), HW, SW, depth=2))

    counter = sw_side.add_register("counter", UIntT(32), 0)
    total = sw_side.add_register("total", UIntT(32), 0)
    received = sw_side.add_register("received", UIntT(32), 0)

    sw_side.add_rule(
        "produce",
        par(
            to_hw.call("enq", RegRead(counter)),
            counter.write(BinOp("+", RegRead(counter), Const(1))),
        ).when(BinOp("<", RegRead(counter), Const(N_ITEMS))),
    )

    square = KernelCall(
        "square", lambda x: x * x, [to_hw.value("first")], sw_cycles=60, hw_cycles=4
    )
    hw_side.add_rule("accelerate", par(to_sw.call("enq", square), to_hw.call("deq")))

    sw_side.add_rule(
        "consume",
        par(
            total.write(BinOp("+", RegRead(total), to_sw.value("first"))),
            to_sw.call("deq"),
            received.write(BinOp("+", RegRead(received), Const(1))),
        ),
    )
    return Design(top, "quickstart"), total, received


def main():
    design, total, received = build_design()

    # 1. Reference semantics: one rule at a time, no timing.
    sim = Simulator(design)
    sim.run(10_000)
    print(f"[reference simulator] total = {sim.read(total)} "
          f"(expected {sum(i * i for i in range(N_ITEMS))})")

    # 2. Partition by domain and show the automatically generated interface.
    partitioning = partition_design(design, default_domain=SW)
    print()
    print(partitioning.summary())
    print()
    print(build_interface_spec(partitioning).report())

    # 3. Co-simulate on the embedded platform of the paper's evaluation.
    design2, total2, received2 = build_design()
    cosim = Cosimulator(design2, platform=Platform.ml507())
    result = cosim.run(lambda c: c.read_sw(received2) >= N_ITEMS)
    print()
    print(f"[co-simulation] {result.fpga_cycles:.0f} FPGA cycles, "
          f"{result.channel_messages} channel messages, "
          f"software busy {result.sw_busy_fpga_cycles:.0f} cycles")
    print(f"[co-simulation] total = {cosim.read_sw(total2)}")


if __name__ == "__main__":
    main()
