"""Stream independent requests through resident co-simulation fabrics.

Every earlier entry point paid full elaboration -- partitioning, closure
compilation, topology wiring -- per run and threw the fabric away.  This
example is the serving counterpart: elaborate the Vorbis back-end and the
ray tracer **once** each, capture their reset snapshots, then stream a
mixed request load (vorbis frame ranges, raytracer tiles) through the two
resident fabrics.  Each request writes its inputs, runs to its completion
threshold, reports its outputs and restores the snapshot in O(state) --
so the N-th request is bitwise identical to the same request served by a
freshly elaborated fabric, which a verification sample checks against the
:func:`repro.sim.serve.serve_fresh` oracle on every run.

With ``--processes N`` the same request stream is also dispatched as
``kind="request"`` tasks over the unified work-stealing pool
(:mod:`repro.sim.pool`): each worker elaborates once, keeps its servers
resident, and serves whatever requests it steals; the pooled outputs must
match the serial resident outputs bitwise.

Run with:  python examples/serve_requests.py [n_requests] [--frames N]
           [--processes N] [--verify N]
"""

import argparse
import sys
import time
from dataclasses import asdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.raytracer.params import RayTracerParams
from repro.apps.raytracer.partitions import build_partition as build_raytracer
from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.partitions import build_partition as build_vorbis
from repro.sim.pool import PoolTask, run_pool
from repro.sim.serve import FabricServer, ServingStats, safe_ratio, serve_fresh


def build_request_mix(vorbis_server, ray_server, n_requests):
    """An interleaved stream of (app, builder spec, request) triples."""
    vorbis_wl, ray_wl = vorbis_server.workload, ray_server.workload
    n_frames = vorbis_wl.params.n_frames
    n_rays = ray_wl.params.n_rays
    mix = []
    for i in range(n_requests):
        if i % 3 == 2:  # every third request renders a raytracer tile
            start = (i * 7) % n_rays
            mix.append(("raytracer", ray_wl.tile_request(start, name=f"tile{i}@{start}")))
        else:
            start = (i * 5) % n_frames
            mix.append(("vorbis", vorbis_wl.frame_request(start, name=f"frames{i}@{start}")))
    return mix


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("n_requests", nargs="?", type=int, default=120)
    parser.add_argument(
        "--frames", type=int, default=6,
        help="vorbis frames per full decode (requests start mid-stream)",
    )
    parser.add_argument(
        "--processes", type=int, default=0,
        help="also dispatch the stream as request tasks over a worker pool",
    )
    parser.add_argument(
        "--verify", type=int, default=3,
        help="requests to verify against a fresh-elaboration oracle",
    )
    args = parser.parse_args()

    vorbis_spec = ("B", VorbisParams(n_frames=args.frames))
    ray_spec = ("B", RayTracerParams(n_triangles=24, image_width=4, image_height=4))

    print(f"Elaborating two resident fabrics for {args.n_requests} mixed requests...")
    servers = {
        "vorbis": FabricServer(build_vorbis, vorbis_spec),
        "raytracer": FabricServer(build_raytracer, ray_spec),
    }
    for app, server in servers.items():
        print(
            f"  {app:<10} {server.workload.design.name}: "
            f"elaborated once in {server.elaborate_seconds:.3f}s"
        )
    mix = build_request_mix(servers["vorbis"], servers["raytracer"], args.n_requests)

    t0 = time.perf_counter()
    results = [servers[app].serve(request) for app, request in mix]
    wall = time.perf_counter() - t0
    elaborate = sum(s.elaborate_seconds for s in servers.values())
    stats = ServingStats.of(results, wall, elaborate)

    print(
        f"\nserved {stats.requests} requests in {wall:.3f}s: "
        f"{stats.requests_per_second:.1f} req/s, "
        f"p50 {stats.p50_seconds * 1e3:.2f}ms, p99 {stats.p99_seconds * 1e3:.2f}ms"
    )

    # -- oracle sample: resident serving must equal fresh elaboration ----------
    builder_specs = {"vorbis": (build_vorbis, vorbis_spec), "raytracer": (build_raytracer, ray_spec)}
    stride = max(1, len(mix) // max(1, args.verify))
    fresh_wall = 0.0
    verified = 0
    for sample in range(args.verify):
        index = (sample * stride) % len(mix)
        app, request = mix[index]
        builder, spec = builder_specs[app]
        t1 = time.perf_counter()
        fresh = serve_fresh(builder, request, spec)
        fresh_wall += time.perf_counter() - t1
        if asdict(results[index].result) != asdict(fresh.result) or results[
            index
        ].outputs != fresh.outputs:
            raise SystemExit(
                f"request {request.name}: resident result diverged from fresh elaboration"
            )
        verified += 1
    fresh_per_request = safe_ratio(fresh_wall, verified)
    resident_per_request = safe_ratio(wall, len(results))
    amortisation = safe_ratio(fresh_per_request, resident_per_request)
    print(
        f"verified {verified} sampled requests bitwise against fresh elaborations; "
        f"elaborate-per-request costs {fresh_per_request * 1e3:.2f}ms/req vs "
        f"{resident_per_request * 1e3:.2f}ms/req resident "
        f"({amortisation:.1f}x amortisation)"
    )

    # -- pool smoke: the same stream over request tasks ------------------------
    if args.processes > 0:
        tasks = [
            PoolTask(
                name=request.name,
                builder=builder_specs[app][0],
                args=builder_specs[app][1],
                kind="request",
                request=request,
            )
            for app, request in mix
        ]
        t2 = time.perf_counter()
        outcomes, processes = run_pool(tasks, processes=args.processes)
        pool_wall = time.perf_counter() - t2
        for outcome, served in zip(outcomes, results):
            if outcome.outputs != served.outputs or asdict(outcome.result) != asdict(
                served.result
            ):
                raise SystemExit(
                    f"pool task {outcome.name}: outcome diverged from resident serving"
                )
        elaborations = sum(1 for o in outcomes if o.elaborated)
        print(
            f"pool: {len(outcomes)} request tasks on {processes} processes in "
            f"{pool_wall:.3f}s ({safe_ratio(len(outcomes), pool_wall):.1f} req/s), "
            f"{elaborations} elaborations across workers, all outcomes bitwise "
            "identical to resident serving"
        )


if __name__ == "__main__":
    main()
