"""Explore the four HW/SW partitions of the ray tracer (Figures 13/14).

Builds the BVH-based ray tracer with each of the paper's four placements,
co-simulates them, verifies the rendered image checksum against the software
reference, and prints per-ray execution time together with the channel
traffic -- showing why co-locating the scene data with the intersection
hardware (partition C) wins while the other accelerated configurations lose
to plain software.

Run with:  python examples/raytracer_partitions.py [n_triangles] [image_size]
"""

import sys

from repro.apps.raytracer.params import RayTracerParams
from repro.apps.raytracer.partitions import PARTITION_ORDER, build_partition, hw_module_names
from repro.apps.raytracer.reference import render
from repro.sim.cosim import Cosimulator


def main():
    n_triangles = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    image_size = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    params = RayTracerParams(
        n_triangles=n_triangles, image_width=image_size, image_height=image_size
    )
    reference = render(params)
    print(
        f"Ray tracer: {params.n_triangles} triangles, {params.n_rays} primary rays, "
        f"{reference.hits} hit pixels"
    )
    print(f"{'partition':<10} {'HW modules':<42} {'cycles/ray':>12} {'channel words':>14}  checksum")
    print("-" * 96)

    for letter in PARTITION_ORDER:
        tracer = build_partition(letter, params)
        cosim = Cosimulator(tracer.design)
        result = cosim.run(tracer.cosim_done, max_cycles=500_000_000)
        ok = "ok" if cosim.read_sw(tracer.checksum) == reference.checksum else "MISMATCH"
        hw = ", ".join(hw_module_names(letter)) or "none"
        print(
            f"{letter:<10} {hw:<42} {result.fpga_cycles / params.n_rays:>12.1f} "
            f"{result.channel_words:>14}  {ok}"
        )


if __name__ == "__main__":
    main()
