"""Generate the three compiler outputs for a partitioned design (Figure 6).

Given a Vorbis partition letter, this example runs the partitioner and emits
the software C++ translation unit, the hardware BSV module, the Verilog
skeleton, and the HW/SW interface (C header + BSV arbiter) into
``generated/<partition>/`` -- the "Fully Automatic" and "Interface Only"
methodologies of Section 1.

Run with:  python examples/generate_interfaces.py [partition-letter]
"""

import pathlib
import sys

from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.partitions import build_partition
from repro.codegen.bsv import generate_hw_partition
from repro.codegen.cxx import generate_sw_partition
from repro.codegen.interface import build_interface_spec, generate_hw_arbiter, generate_sw_header
from repro.codegen.verilog import generate_verilog
from repro.core.domains import HW, SW
from repro.core.partition import partition_design


def main():
    letter = sys.argv[1] if len(sys.argv) > 1 else "B"
    backend = build_partition(letter, VorbisParams(n_frames=4))
    partitioning = partition_design(backend.design, SW)
    spec = build_interface_spec(partitioning)

    out_dir = pathlib.Path("generated") / f"vorbis_{letter}"
    out_dir.mkdir(parents=True, exist_ok=True)

    outputs = {
        "sw_partition.cpp": generate_sw_partition(
            backend.design, partitioning.program(SW), spec=spec
        ),
        "interface.h": generate_sw_header(spec),
        "hw_interface.bsv": generate_hw_arbiter(spec),
    }
    if HW in partitioning.programs:
        outputs["hw_partition.bsv"] = generate_hw_partition(
            backend.design, partitioning.program(HW), spec=spec
        )
        outputs["hw_partition.v"] = generate_verilog(backend.design, partitioning.program(HW))

    for name, text in outputs.items():
        (out_dir / name).write_text(text)
        print(f"wrote {out_dir / name}  ({len(text.splitlines())} lines)")

    print()
    print(spec.report())


if __name__ == "__main__":
    main()
