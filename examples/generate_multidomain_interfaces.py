"""Generate the full link-granular interface of the multi-domain partitions.

The paper's Figure 6 flow produces three compiler outputs; this example runs
the third -- interface generation -- over the N-domain Vorbis partitions
(G = 3 domains, H = 4 domains) and writes the complete per-domain /
per-link artifact set into ``generated/vorbis_<letter>_multidomain/``:

* one C header, one C marshaling implementation (real pack/unpack loops
  rendered from each channel's canonical ``MessageLayout``) and one C++
  translation unit per *software* domain,
* one BSV arbiter (an arbitration group per outbound link) and one BSV
  partition module per *hardware* domain, and
* one transactor pair (producer-side marshaler, consumer-side demarshaler,
  with real marshal/demarshal rules) per point-to-point link of
  ``Partitioning.route_pairs()``.

It then checks the acceptance properties of the route-keyed generator:
exactly one transactor pair per route, link-local virtual channels numbered
from zero on every link, no identifier collisions anywhere in the set
(the generators raise ``CodegenError`` on collision), and -- when a C
compiler is on PATH -- that every generated C artifact passes
``cc -fsyntax-only`` (skipped gracefully otherwise).

Run with:  python examples/generate_multidomain_interfaces.py [letters]
"""

import pathlib
import shutil
import subprocess
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.partitions import MULTI_PARTITION_ORDER, build_multi_partition
from repro.codegen.bsv import generate_hw_partition
from repro.codegen.cxx import generate_sw_partition
from repro.codegen.interface import (
    build_interface_spec,
    generate_hw_arbiter,
    generate_sw_header,
    generate_sw_marshal_source,
    generate_transactors,
)
from repro.core.domains import SW
from repro.core.partition import partition_design


def syntax_check_c(paths) -> None:
    """``cc -fsyntax-only`` every generated C artifact (skip without a compiler)."""
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        print("no C compiler on PATH; skipping cc -fsyntax-only check")
        return
    for path in paths:
        subprocess.run(
            [cc, "-fsyntax-only", "-x", "c", str(path)], check=True
        )
        print(f"cc -fsyntax-only OK: {path}")


def generate_for(letter: str, params: VorbisParams) -> None:
    workload = build_multi_partition(letter, params)
    partitioning = partition_design(workload.design, SW)
    spec = build_interface_spec(partitioning)

    out_dir = pathlib.Path("generated") / f"vorbis_{letter}_multidomain"
    out_dir.mkdir(parents=True, exist_ok=True)

    outputs = {}
    for name in spec.sw_domains:
        outputs[f"interface_{name}.h"] = generate_sw_header(spec, name)
        outputs[f"marshal_{name}.c"] = generate_sw_marshal_source(spec, name)
        outputs[f"sw_partition_{name}.cpp"] = generate_sw_partition(
            workload.design, spec=spec, partitioning=partitioning,
            domain=next(d for d in partitioning.domains if d.name == name),
        )
    for name in spec.hw_domains:
        outputs[f"arbiter_{name}.bsv"] = generate_hw_arbiter(spec, name)
        outputs[f"hw_partition_{name}.bsv"] = generate_hw_partition(
            workload.design, spec=spec, partitioning=partitioning,
            domain=next(d for d in partitioning.domains if d.name == name),
        )
    transactors = generate_transactors(spec)
    for link in spec.links:
        outputs[f"{link.tx_name}.{'bsv' if spec.is_hw(link.producer) else 'h'}"] = (
            transactors[link.name]["tx"]
        )
        outputs[f"{link.rx_name}.{'bsv' if spec.is_hw(link.consumer) else 'h'}"] = (
            transactors[link.name]["rx"]
        )

    for name, text in outputs.items():
        (out_dir / name).write_text(text)
        print(f"wrote {out_dir / name}  ({len(text.splitlines())} lines)")

    syntax_check_c(
        out_dir / name for name in outputs if name.endswith((".c", ".h"))
    )

    # -- acceptance checks: codegen agrees with the fabric's topology -------
    routes = partitioning.route_pairs()
    pairs = spec.transactor_pairs()
    if [l.name for l in spec.links] != [f"{s}->{d}" for s, d in routes]:
        raise SystemExit(f"vorbis_{letter}: links {list(pairs)} do not match routes {routes}")
    names = [n for pair in pairs.values() for n in pair]
    if len(set(names)) != len(names):
        raise SystemExit(f"vorbis_{letter}: transactor names collide: {sorted(names)}")
    for link in spec.links:
        if [ch.link_vc for ch in link.channels] != list(range(link.n_channels)):
            raise SystemExit(f"vorbis_{letter}: link {link.name} vc numbering has holes")

    print()
    print(spec.link_report())
    print(
        f"vorbis_{letter}: {len(routes)} route(s), {len(pairs)} transactor pair(s), "
        "all identifiers collision-free"
    )
    print()


def main():
    letters = sys.argv[1:] or MULTI_PARTITION_ORDER
    params = VorbisParams(n_frames=2)
    for letter in letters:
        generate_for(letter, params)


if __name__ == "__main__":
    main()
