"""Sweep the six HW/SW partitions of the Ogg Vorbis back-end (Figures 12/13).

For each partition A--F this example builds the same BCL back-end with a
different stage placement, co-simulates it on the ML507 platform model, checks
that the PCM checksum is bit-identical to the hand-written reference, and
prints the per-frame execution time -- the experiment at the heart of the
paper's evaluation.  The SystemC and hand-coded C++ baselines of Figure 13
are included for comparison.

Run with:  python examples/vorbis_partition_sweep.py [n_frames]
"""

import sys

from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.partitions import PARTITION_ORDER, build_partition, hw_stage_names
from repro.apps.vorbis.reference import expected_checksum
from repro.baselines.handcoded import run_handcoded_vorbis, run_systemc_vorbis
from repro.sim.cosim import Cosimulator


def main():
    n_frames = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    params = VorbisParams(n_frames=n_frames)
    reference = expected_checksum(params)
    print(f"Ogg Vorbis back-end, {n_frames} frames, 64-point IFFT, 32/24 fixed point")
    print(f"{'partition':<12} {'HW stages':<28} {'cycles/frame':>14}  checksum")
    print("-" * 72)

    for letter in PARTITION_ORDER:
        backend = build_partition(letter, params)
        cosim = Cosimulator(backend.design)
        result = cosim.run(backend.cosim_done, max_cycles=500_000_000)
        ok = "ok" if cosim.read_sw(backend.checksum) == reference else "MISMATCH"
        hw = ", ".join(hw_stage_names(letter)) or "none"
        print(f"{letter:<12} {hw:<28} {result.fpga_cycles / n_frames:>14.1f}  {ok}")

    systemc = run_systemc_vorbis(params)
    handcoded = run_handcoded_vorbis(params)
    print(f"{'F1 SystemC':<12} {'none (event-driven model)':<28} "
          f"{systemc.fpga_cycles_per_frame():>14.1f}  "
          f"{'ok' if systemc.checksum == reference else 'MISMATCH'}")
    print(f"{'F2 hand C++':<12} {'none (manual software)':<28} "
          f"{handcoded.fpga_cycles_per_frame():>14.1f}  "
          f"{'ok' if handcoded.checksum == reference else 'MISMATCH'}")


if __name__ == "__main__":
    main()
