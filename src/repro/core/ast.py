"""Base machinery shared by BCL expressions and actions.

The kernel grammar (Figure 7 of the paper) has two syntactic categories:
*expressions* (pure, possibly guarded computations of values) and *actions*
(guarded state updates).  Both are represented as immutable-ish Python object
trees.  This module provides the common :class:`Node` base class plus generic
traversal helpers used by the analyses (read/write sets, guard lifting,
method inlining, code generation).
"""

from __future__ import annotations

from typing import Callable, Iterator, List


class Node:
    """Base class of every BCL AST node (expressions and actions)."""

    #: attribute names holding child nodes, in evaluation order.  Subclasses
    #: set this; attributes may hold a Node, a list/tuple of Nodes, or
    #: non-Node leaves (which are ignored by traversal).
    _child_fields: tuple = ()

    def children(self) -> List["Node"]:
        """Direct child nodes in evaluation order."""
        out: List[Node] = []
        for field in self._child_fields:
            value = getattr(self, field)
            if isinstance(value, Node):
                out.append(value)
            elif isinstance(value, (list, tuple)):
                out.extend(v for v in value if isinstance(v, Node))
        return out

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of this subtree (including ``self``)."""
        yield self
        for child in self.children():
            yield from child.walk()

    def contains(self, predicate: Callable[["Node"], bool]) -> bool:
        """True if any node in the subtree satisfies ``predicate``."""
        return any(predicate(node) for node in self.walk())

    def __repr__(self) -> str:
        fields = []
        for field in self._child_fields:
            fields.append(f"{field}={getattr(self, field)!r}")
        return f"{self.__class__.__name__}({', '.join(fields)})"
