"""Synchronizers: the only legal inter-domain communication primitives.

Section 4.2 of the paper: *"To enable inter-domain communication, primitive
modules called synchronizers, which have methods in more than one domain, are
provided."*  A :class:`SyncFifo` is a FIFO whose ``enq`` method lives in one
domain and whose ``first``/``deq`` methods live in another.  Inserting these
at the desired cut is how the designer specifies a HW/SW partition; the
compiler (here, :mod:`repro.core.partition`) splits each synchronizer into
two endpoints connected over the physical channel and generates the
marshaling/arbitration glue (:mod:`repro.codegen.interface`).

Domain polymorphism (``Sync#(t, a, b)``) is supported by constructing the
synchronizer with :class:`~repro.core.domains.DomainVar` arguments and later
instantiating them with :func:`~repro.core.domains.substitute_domains`.  A
synchronizer whose two domains coincide after substitution is semantically a
plain FIFO; :func:`specialize_synchronizers` performs that optimisation and
reports which synchronizers remain on the cut.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.domains import Domain
from repro.core.module import Design
from repro.core.primitives import Fifo
from repro.core.types import BCLType


class SyncFifo(Fifo):
    """A synchronizing FIFO with its producer and consumer sides in distinct domains.

    The native semantics are identical to :class:`~repro.core.primitives.Fifo`
    (it *is* a latency-insensitive bounded FIFO -- an LIBDN FIFO in the
    paper's terminology); only the domain annotations on its methods differ,
    and those annotations are what the partitioner keys on.
    """

    def __init__(
        self,
        name: str,
        ty: BCLType,
        domain_enq: Domain,
        domain_deq: Domain,
        depth: int = 2,
    ):
        super().__init__(name, ty, depth)
        self.domain_enq = domain_enq
        self.domain_deq = domain_deq
        self._apply_domain_annotations()

    def _apply_domain_annotations(self) -> None:
        """Stamp the per-method domains (enq side vs. deq side)."""
        producer_side = {"enq", "notFull"}
        consumer_side = {"deq", "first", "notEmpty", "count"}
        for mname, method in self.methods.items():
            if mname in producer_side:
                method.domain = self.domain_enq
            elif mname in consumer_side:
                method.domain = self.domain_deq
            else:  # clear: only meaningful within one side; pin to producer
                method.domain = self.domain_enq

    @property
    def is_cross_domain(self) -> bool:
        """True when the two sides are (still) in different concrete domains."""
        if self.domain_enq.is_variable or self.domain_deq.is_variable:
            return True
        return self.domain_enq != self.domain_deq

    def resolve_domains(self, binding: dict) -> None:
        """Instantiate this synchronizer's own domain variables (polymorphism)."""
        if self.domain_enq.is_variable and self.domain_enq.name in binding:
            self.domain_enq = binding[self.domain_enq.name]
        if self.domain_deq.is_variable and self.domain_deq.name in binding:
            self.domain_deq = binding[self.domain_deq.name]
        self._apply_domain_annotations()

    def __repr__(self) -> str:
        return (
            f"SyncFifo({self.full_name}, {self.domain_enq.name}->{self.domain_deq.name}, "
            f"depth={self.depth})"
        )


def make_sync_h_to_s(name: str, ty: BCLType, depth: int = 2) -> SyncFifo:
    """``mkSyncHtoS``: hardware producer, software consumer."""
    from repro.core.domains import HW, SW

    return SyncFifo(name, ty, domain_enq=HW, domain_deq=SW, depth=depth)


def make_sync_s_to_h(name: str, ty: BCLType, depth: int = 2) -> SyncFifo:
    """``mkSyncStoH``: software producer, hardware consumer."""
    from repro.core.domains import HW, SW

    return SyncFifo(name, ty, domain_enq=SW, domain_deq=HW, depth=depth)


def all_synchronizers(design: Design) -> List[SyncFifo]:
    """Every synchronizer instance in the design, in hierarchy order."""
    return [m for m in design.all_modules() if isinstance(m, SyncFifo)]


def cross_domain_synchronizers(design: Design) -> List[SyncFifo]:
    """The synchronizers that actually sit on a domain boundary (the cut set)."""
    return [s for s in all_synchronizers(design) if s.is_cross_domain]


def specialize_synchronizers(design: Design, binding: Optional[dict] = None) -> List[SyncFifo]:
    """Instantiate domain variables and return the remaining cross-domain cut.

    This is the compiler optimisation described at the end of Section 4.2: a
    fully domain-polymorphic design may insert more synchronizers than a
    specific partition needs; after instantiation, synchronizers whose two
    sides fall in the same domain carry no synchronization obligation and are
    treated as lightweight plain FIFOs (their semantics are already those of
    a FIFO, so nothing else needs rewriting).
    """
    binding = binding or {}
    for sync in all_synchronizers(design):
        sync.resolve_domains(binding)
    return cross_domain_synchronizers(design)
