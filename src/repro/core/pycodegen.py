"""Source-lowered execution tier: flat generated Python per rule and route.

The closure backend (:mod:`repro.core.compile`) already removed the tree
walk, but every rule firing still pays a chain of nested closure calls,
tuple env-frame indexing and per-attempt dispatch.  This module is the next
rung of the performance ladder: the classic template-JIT move of lowering
each *already elaborated* ``Expr``/``Action`` tree once to flat Python
source -- operators inlined as Python infix, environment frames become
local variables, registers / native methods / kernel functions resolved to
direct names in the module namespace, ``GuardFail`` raised from prebuilt
singletons -- then ``exec``-compiling the module at elaboration time.

Three generation modes reproduce the three closure modes bit-for-bit:

* ``fast``    -- hook-free evaluation (``Simulator`` fast path);
* ``hooked``  -- generic :class:`~repro.core.semantics.EvalHooks` callbacks,
  with the closure tier's convention that ``on_node`` fires only for
  cost-bearing nodes (BinOp/UnOp/Mux/FieldSelect);
* ``latency`` -- kernel/method hooks only (the HW engine's
  ``HwLatencyAccumulator``);
* ``count``   -- :class:`~repro.core.compile.CountingCompiler`'s folded
  cost accumulation: straight-line subtrees collapse to one integer add,
  dynamic subtrees charge at exactly the same program points.

On top of the per-rule functions the engine supersteps themselves are
generated (``generate_sw_step`` / ``generate_hw_step``): the dirty-set
scan, guard, body and cost commit of one engine step fuse into a single
generated function with all identity-stable collaborators pre-bound in the
module namespace, so a quiescent engine is one generated-function call.
Rebindable engine state (``busy_until``, ``_pending_updates``, counters)
is always accessed through ``self`` so the snapshot/restore identity
contract keeps holding.

Anything the lowerer cannot confidently translate falls back, per rule, to
the closure backend (still bitwise identical), so coverage can grow
without ever risking parity.

Debugging: set ``REPRO_DUMP_SOURCE=<dir>`` to write every generated module
to disk; all modules are registered with :mod:`linecache` so tracebacks
through generated functions show real source lines.
"""

from __future__ import annotations

import hashlib
import keyword
import linecache
import os
import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.action import (
    Action,
    IfA,
    LetA,
    LocalGuard,
    Loop,
    MethodCallA,
    NoAction,
    Par,
    RegWrite,
    Seq,
    WhenA,
)
from repro.core.compile import (
    CountingCompiler,
    _seq_never_reads_back,
    compiled_rule_exec,
    raise_for_missing_register,
    rule_exec,
)
from repro.core.errors import (
    DoubleWriteError,
    ElaborationError,
    GuardFail,
    SimulationError,
)
from repro.core.expr import (
    BinOp,
    Const,
    Expr,
    FieldSelect,
    KernelCall,
    LetE,
    MethodCallE,
    Mux,
    RegRead,
    UnOp,
    Var,
    WhenE,
)
from repro.core.module import Method, Module, PrimitiveModule, Rule

__all__ = [
    "GeneratedModule",
    "SourceRuleExec",
    "default_rule_backend",
    "VALID_BACKENDS",
    "generate_rule_execs",
    "generate_counting_attempts",
    "generate_sw_step",
    "generate_hw_step",
    "generate_transport_pump",
    "generate_transport_delivery",
]

#: Rule-execution backends the engines accept.
VALID_BACKENDS = ("interp", "compiled", "source")


def default_rule_backend() -> str:
    """The backend engines use when the caller does not pick one.

    ``REPRO_RULE_BACKEND`` overrides the historical default (``interp``) so
    a CI leg can push the whole tier-1 suite through the source tier.
    """
    name = os.environ.get("REPRO_RULE_BACKEND", "").strip().lower()
    return name if name in VALID_BACKENDS else "interp"


# --------------------------------------------------------------------------
# generated modules: compile cache, linecache registration, source dumping
# --------------------------------------------------------------------------

#: source text -> compiled code object; the harness re-elaborates the same
#: design many times and ``compile()`` dominates re-elaboration otherwise.
_CODE_CACHE: Dict[Tuple[str, str], Any] = {}
_CODE_CACHE_LIMIT = 256

_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]+")


class GeneratedModule:
    """One exec-compiled generated module plus its namespace and source."""

    __slots__ = ("name", "filename", "source", "namespace")

    def __init__(self, name: str, source: str, bindings: Dict[str, Any]):
        self.name = name
        # The content digest keeps distinct designs that share a module name
        # (two engines both called "HW") from clobbering each other's
        # linecache entry; identical source still maps to one filename.
        digest = hashlib.sha1(source.encode("utf-8")).hexdigest()[:8]
        self.filename = f"<repro-generated:{name}#{digest}>"
        self.source = source
        namespace: Dict[str, Any] = dict(bindings)
        namespace["__name__"] = f"repro.generated.{name}"
        code = _CODE_CACHE.get((self.filename, source))
        if code is None:
            code = compile(source, self.filename, "exec")
            if len(_CODE_CACHE) >= _CODE_CACHE_LIMIT:
                _CODE_CACHE.pop(next(iter(_CODE_CACHE)))
            _CODE_CACHE[(self.filename, source)] = code
        # Tracebacks through generated functions resolve to real source
        # lines: linecache consults this entry when formatting frames.
        linecache.cache[self.filename] = (
            len(source),
            None,
            source.splitlines(True),
            self.filename,
        )
        exec(code, namespace)
        self.namespace = namespace
        dump_dir = os.environ.get("REPRO_DUMP_SOURCE")
        if dump_dir:
            self.dump(dump_dir)

    def dump(self, directory: str) -> str:
        """Write the generated source to ``directory`` and return the path."""
        os.makedirs(directory, exist_ok=True)
        fname = _SAFE_NAME.sub("_", self.name) + ".py"
        path = os.path.join(directory, fname)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.source)
        return path


class _ModuleBuilder:
    """Accumulates functions and deterministic namespace bindings.

    Symbol names come from a monotonically increasing counter in lowering
    order, so the same design always produces byte-identical source (the
    bound *objects* differ per elaboration; the *text* does not).
    """

    def __init__(self, name: str):
        self.name = name
        self.chunks: List[str] = [
            f"# generated by repro.core.pycodegen -- {name}\n"
        ]
        self.bindings: Dict[str, Any] = {
            "GuardFail": GuardFail,
            "SimulationError": SimulationError,
            "DoubleWriteError": DoubleWriteError,
            "ElaborationError": ElaborationError,
        }
        self._by_id: Dict[int, str] = {}
        self._counter = 0
        self._fn_counter = 0

    def bind(self, obj: Any, prefix: str = "o") -> str:
        """Bind ``obj`` into the namespace under a deterministic name."""
        key = id(obj)
        name = self._by_id.get(key)
        if name is None:
            name = f"_{prefix}{self._counter}"
            self._counter += 1
            self._by_id[key] = name
            self.bindings[name] = obj
        return name

    def fn_name(self, stem: str) -> str:
        self._fn_counter += 1
        return f"_{stem}{self._fn_counter}"

    def add(self, lines: List[str]) -> None:
        self.chunks.append("\n".join(lines) + "\n\n")

    def build(self) -> GeneratedModule:
        return GeneratedModule(self.name, "".join(self.chunks), self.bindings)


class _FnWriter:
    """Emits one generated function, with statement-level charge coalescing."""

    def __init__(self, name: str, params: List[str]):
        self.lines: List[str] = [f"def {name}({', '.join(params)}):"]
        self.indent = 1
        self._tmp = 0

    def tmp(self) -> str:
        self._tmp += 1
        return f"_t{self._tmp}"

    def emit(self, stmt: str) -> None:
        self.lines.append("    " * self.indent + stmt)

    def emit_lines(self, lines: List[str]) -> None:
        self.lines.extend(lines)

    def charge(self, sink: str, amount: int) -> None:
        """Emit ``sink += amount`` and merge adjacent integer charges."""
        if amount == 0:
            return
        prefix = "    " * self.indent + f"{sink} += "
        if self.lines and self.lines[-1].startswith(prefix):
            tail = self.lines[-1][len(prefix):]
            if tail.isdigit():
                self.lines[-1] = prefix + str(int(tail) + amount)
                return
        self.emit(f"{sink} += {amount}")


def _reindent(lines: List[str]) -> List[str]:
    return ["    " + line for line in lines]


class _Unsupported(Exception):
    """Raised when a subtree cannot be lowered; callers fall back to closures."""


# --------------------------------------------------------------------------
# expression / action lowering
# --------------------------------------------------------------------------

#: Binary operators that lower to Python infix with identical semantics.
_INFIX = {
    "+": "+", "-": "-", "*": "*", "//": "//", "/": "/", "%": "%",
    "<<": "<<", ">>": ">>", "&": "&", "|": "|", "^": "^",
    "<": "<", "<=": "<=", ">": ">", ">=": ">=", "==": "==", "!=": "!=",
}
_UNARY = {"-": "-", "~": "~", "!": "not "}


class _Lowerer:
    """Lowers one rule (or method) tree into a flat generated function.

    ``mode`` is one of ``fast``/``hooked``/``latency``/``count``; the
    emitted statements reproduce the corresponding closure compiler's
    evaluation order, hook order and (for ``count``) charge points exactly.
    """

    def __init__(
        self,
        module: _ModuleBuilder,
        mode: str,
        max_loop_iterations: int = 1_000_000,
        sw_params: Any = None,
        methods: Optional[Dict[Tuple[int, bool], Tuple[str, List[str]]]] = None,
    ):
        self.module = module
        self.mode = mode
        self.all_hooks = mode == "hooked"
        self.kernel_hooks = mode in ("hooked", "latency")
        self.counting = mode == "count"
        self.max_loop_iterations = max_loop_iterations
        self.params = sw_params
        self._static = (
            CountingCompiler(sw_params, max_loop_iterations) if self.counting else None
        )
        # (id(method), is_action) -> (guard_fn_name, body_fn_name, param names)
        self.methods = methods if methods is not None else {}
        self.w: Optional[_FnWriter] = None
        #: name -> ("strict"|"thunk", python local name); insertion-ordered.
        self.scope: Dict[str, Tuple[str, str]] = {}
        self.read = "read"
        #: where cost charges go: a local ("_cc") or a cell slot ("_cl[0]").
        self.sink = "_cc"
        #: True while inside a statically costed region (charges pre-folded).
        self.charging = self.counting

    # -- plumbing ----------------------------------------------------------

    def _capture(self, fn: Callable[[], str]) -> Tuple[List[str], str]:
        saved = self.w.lines
        self.w.lines = []
        expr = fn()
        captured = self.w.lines
        self.w.lines = saved
        return captured, expr

    def _materialize(self, parts: List[Tuple[List[str], str]]) -> List[str]:
        """Emit each part's statements and pin its value into a temp, in order.

        Used whenever sibling operands cannot all stay inline: the closure
        tier evaluates operands strictly left to right, and hooks / charges /
        guard failures make that order observable.
        """
        names = []
        for stmts, expr in parts:
            self.w.emit_lines(stmts)
            if expr.isidentifier():
                names.append(expr)
            else:
                t = self.w.tmp()
                self.w.emit(f"{t} = {expr}")
                names.append(t)
        return names

    def _operands(self, nodes: List[Any]) -> List[str]:
        """Lower ``nodes`` in order; returns inline exprs or temps as needed."""
        parts = [self._capture(lambda n=n: self.lower_expr(n)) for n in nodes]
        if any(stmts for stmts, _ in parts):
            return self._materialize(parts)
        return [expr for _, expr in parts]

    def _charge(self, amount: int) -> None:
        if self.charging:
            self.w.charge(self.sink, amount)

    def _static_cost(self, node: Any) -> Optional[int]:
        scope = {name: (0, kind == "thunk") for name, (kind, _) in self.scope.items()}
        return self._static.static_cost(node, scope)

    def _const(self, value: Any) -> str:
        if value is None or value is True or value is False:
            return repr(value)
        if type(value) is int:
            return repr(value) if -(2**31) <= value <= 2**31 else self.module.bind(value, "c")
        return self.module.bind(value, "c")

    def _fail(self, message: str) -> str:
        return self.module.bind(GuardFail(message), "x")

    def _raise_fail(self, fail_name: str) -> None:
        self.w.emit(f"{fail_name}.__traceback__ = None")
        self.w.emit(f"raise {fail_name}")

    # -- expressions -------------------------------------------------------

    def lower_expr(self, expr: Expr) -> str:
        if self.counting and self.charging:
            cost = self._static_cost(expr)
            if cost is not None:
                # Straight-line subtree: one folded add, then hook-free code.
                self._charge(cost)
                self.charging = False
                try:
                    return self.lower_expr(expr)
                finally:
                    self.charging = True
        return self._lower_expr(expr)

    def _lower_expr(self, expr: Expr) -> str:
        w = self.w

        if isinstance(expr, Const):
            return self._const(expr.value)

        if isinstance(expr, Var):
            entry = self.scope.get(expr.name)
            if entry is None:
                name = self.module.bind(expr.name, "c")
                w.emit(f"raise ElaborationError('unbound variable %r' % ({name},))")
                return "None"
            kind, local = entry
            if kind == "thunk":
                return f"_force({local})"
            return local

        if isinstance(expr, RegRead):
            reg = self.module.bind(expr.reg, "r")
            if self.all_hooks:
                w.emit(f"hooks.on_register_read({reg})")
            return f"{self.read}({reg})"

        if isinstance(expr, UnOp):
            if self.all_hooks:
                w.emit(f"hooks.on_node({self.module.bind(expr, 'n')})")
            self._charge_alu()
            (operand,) = self._operands([expr.operand])
            op = _UNARY.get(expr.op)
            if op is None:
                raise _Unsupported(f"unary operator {expr.op!r}")
            return f"({op}{operand})"

        if isinstance(expr, BinOp):
            if expr.op in ("&&", "||"):
                return self._lower_shortcircuit(expr)
            if self.all_hooks:
                w.emit(f"hooks.on_node({self.module.bind(expr, 'n')})")
            self._charge_alu()
            left, right = self._operands([expr.left, expr.right])
            op = _INFIX.get(expr.op)
            if op is None:
                raise _Unsupported(f"binary operator {expr.op!r}")
            return f"({left} {op} {right})"

        if isinstance(expr, Mux):
            if self.all_hooks:
                w.emit(f"hooks.on_node({self.module.bind(expr, 'n')})")
            self._charge_alu()
            cond_stmts, cond = self._capture(lambda: self.lower_expr(expr.cond))
            then_stmts, then = self._capture(lambda: self.lower_expr(expr.then))
            else_stmts, orelse = self._capture(lambda: self.lower_expr(expr.orelse))
            if not cond_stmts and not then_stmts and not else_stmts:
                return f"({then} if {cond} else {orelse})"
            w.emit_lines(cond_stmts)
            t = w.tmp()
            w.emit(f"if {cond}:")
            w.emit_lines(_reindent(then_stmts))
            w.emit(f"    {t} = {then}")
            w.emit("else:")
            w.emit_lines(_reindent(else_stmts))
            w.emit(f"    {t} = {orelse}")
            return t

        if isinstance(expr, WhenE):
            fail = self._fail(f"expression guard failed at {expr!r}")
            guard = self.lower_expr(expr.guard)
            w.emit(f"if not {guard}:")
            w.indent += 1
            if self.all_hooks:
                w.emit(f"hooks.on_guard_fail({self.module.bind(expr, 'n')})")
            self._raise_fail(fail)
            w.indent -= 1
            return self.lower_expr(expr.body)

        if isinstance(expr, LetE):
            local = self._lower_let(expr.name, expr.value)
            saved = self.scope.get(expr.name)
            self.scope[expr.name] = ("thunk", local)
            try:
                return self.lower_expr(expr.body)
            finally:
                if saved is None:
                    del self.scope[expr.name]
                else:
                    self.scope[expr.name] = saved

        if isinstance(expr, FieldSelect):
            if self.all_hooks:
                w.emit(f"hooks.on_node({self.module.bind(expr, 'n')})")
            self._charge_alu()
            (operand,) = self._operands([expr.operand])
            field = expr.field
            if isinstance(field, int):
                return f"{operand}[{field}]"
            if not operand.isidentifier():
                t = w.tmp()
                w.emit(f"{t} = {operand}")
                operand = t
            if field.isidentifier() and not keyword.iskeyword(field):
                attr = f"{operand}.{field}"
            else:
                attr = f"getattr({operand}, {field!r})"
            return f"({operand}[{field!r}] if isinstance({operand}, dict) else {attr})"

        if isinstance(expr, KernelCall):
            return self._lower_kernel(expr)

        if isinstance(expr, MethodCallE):
            return self._lower_method_call(expr, is_action=False)

        raise _Unsupported(f"expression node {type(expr).__name__}")

    def _charge_alu(self) -> None:
        if self.counting and self.charging:
            self._charge(self.params.alu_op)

    def _lower_shortcircuit(self, expr: BinOp) -> str:
        w = self.w
        if self.all_hooks:
            w.emit(f"hooks.on_node({self.module.bind(expr, 'n')})")
        self._charge_alu()
        left_stmts, left = self._capture(lambda: self.lower_expr(expr.left))
        right_stmts, right = self._capture(lambda: self.lower_expr(expr.right))
        if not left_stmts and not right_stmts:
            if expr.op == "&&":
                return f"(bool({right}) if {left} else False)"
            return f"(True if {left} else bool({right}))"
        w.emit_lines(left_stmts)
        t = w.tmp()
        if expr.op == "&&":
            w.emit(f"if not {left}:")
            w.emit(f"    {t} = False")
        else:
            w.emit(f"if {left}:")
            w.emit(f"    {t} = True")
        w.emit("else:")
        w.emit_lines(_reindent(right_stmts))
        w.emit(f"    {t} = bool({right})")
        return t

    def _lower_let(self, name: str, value: Expr) -> str:
        """Emit a lazy binding; returns the local holding the thunk cell.

        The closure tier's ``_Cell`` captures the binding-site ``read`` and
        charge cell; the generated thunk does the same by passing them into
        a module-level value function explicitly, so a thunk forced under a
        ``Seq``/``Loop`` overlay still reads through the binding-site view
        and charges the binding-site cell.
        """
        w = self.w
        value_fn = self._lower_scoped_fn("lv", value, is_action=False)
        free = self._free_locals(value)
        cell = w.tmp()
        captured = ", ".join([self._sink_cell()] + free)
        w.emit(f"{cell} = [False, None, {value_fn}, {self.read}, ({captured},)]")
        return cell

    def _sink_cell(self) -> str:
        """The charge-cell object to capture at a binding site."""
        if self.counting:
            # ``_cc`` is a local int; thunks need a mutable cell.  The rule
            # wrappers always provide ``_cl`` (a one-element list) whose
            # slot 0 is folded into ``_cc`` at the boundaries.
            return "_cl"
        if self.kernel_hooks:
            return "hooks"
        return "None"

    def _free_locals(self, node: Any) -> List[str]:
        used = set()
        for sub in node.walk():
            if isinstance(sub, Var):
                used.add(sub.name)
        return [local for name, (_, local) in self.scope.items() if name in used]

    def _lower_scoped_fn(self, stem: str, node: Any, is_action: bool) -> str:
        """Lower ``node`` as a module-level function over its free scope vars.

        The function's signature is ``(read, _ctx, *free_locals)`` where
        ``_ctx`` is the hooks object (hooked/latency), the charge cell list
        (count) or None (fast); call sites pass the binding-site values
        explicitly, which reproduces the closure tier's creation-time
        capture without relying on late-bound outer locals.
        """
        free_nodes = self._free_scope(node)
        fn = self.module.fn_name(stem)
        params = ["read", "_ctx"] + [local for _, (_, local) in free_nodes]
        sub = _Lowerer(
            self.module,
            self.mode,
            self.max_loop_iterations,
            self.params,
            self.methods,
        )
        sub.scope = {name: entry for name, entry in free_nodes}
        sub.w = _FnWriter(fn, params)
        if self.all_hooks or self.kernel_hooks:
            sub.w.emit("hooks = _ctx")
        if self.counting:
            sub.w.emit("_cl = _ctx")
            sub.sink = "_cl[0]"
        body = sub.lower_action(node) if is_action else sub.lower_expr(node)
        sub.w.emit(f"return {body}")
        self.module.add(sub.w.lines)
        return fn

    def _free_scope(self, node: Any) -> List[Tuple[str, Tuple[str, str]]]:
        used = set()
        for sub in node.walk():
            if isinstance(sub, Var):
                used.add(sub.name)
        return [(name, entry) for name, entry in self.scope.items() if name in used]

    def _lower_kernel(self, expr: KernelCall) -> str:
        w = self.w
        fn = self.module.bind(expr.fn, "k")
        if self.counting and self.charging:
            args = self._operands(list(expr.args))
            values = self._materialize([([], a) for a in args])
            if callable(expr.sw_cycles):
                cost_fn = self.module.bind(expr.sw_cycles, "k")
                self.w.emit(
                    f"{self.sink} += int({cost_fn}({', '.join(values)})) + "
                    f"{self.params.kernel_dispatch}"
                )
            else:
                self._charge(int(expr.sw_cycles) + self.params.kernel_dispatch)
            return f"{fn}({', '.join(values)})"
        if self.kernel_hooks:
            args = self._operands(list(expr.args))
            values = self._materialize([([], a) for a in args])
            node = self.module.bind(expr, "n")
            w.emit(f"hooks.on_kernel({node}, [{', '.join(values)}])")
            return f"{fn}({', '.join(values)})"
        args = self._operands(list(expr.args))
        return f"{fn}({', '.join(args)})"

    # -- actions -----------------------------------------------------------

    def lower_action(self, action: Action) -> str:
        if self.counting and self.charging:
            cost = self._static_cost(action)
            if cost is not None:
                self._charge(cost)
                self.charging = False
                try:
                    return self.lower_action(action)
                finally:
                    self.charging = True
        return self._lower_action(action)

    def _lower_action(self, action: Action) -> str:
        w = self.w

        if isinstance(action, NoAction):
            return "{}"

        if isinstance(action, RegWrite):
            reg = self.module.bind(action.reg, "r")
            if self.counting and self.charging:
                (value,) = self._operands([action.value])
                if not value.isidentifier():
                    t = w.tmp()
                    w.emit(f"{t} = {value}")
                    value = t
                self._charge(self.params.reg_write)
                return f"{{{reg}: {value}}}"
            if self.all_hooks:
                (value,) = self._operands([action.value])
                if not value.isidentifier():
                    t = w.tmp()
                    w.emit(f"{t} = {value}")
                    value = t
                w.emit(f"hooks.on_register_write({reg})")
                return f"{{{reg}: {value}}}"
            (value,) = self._operands([action.value])
            return f"{{{reg}: {value}}}"

        if isinstance(action, IfA):
            cond_stmts, cond = self._capture(lambda: self.lower_expr(action.cond))
            then_stmts, then = self._capture(lambda: self.lower_action(action.then))
            if action.orelse is None:
                else_stmts, orelse = [], "{}"
            else:
                else_stmts, orelse = self._capture(
                    lambda: self.lower_action(action.orelse)
                )
            if not cond_stmts and not then_stmts and not else_stmts:
                return f"({then} if {cond} else {orelse})"
            w.emit_lines(cond_stmts)
            t = w.tmp()
            w.emit(f"if {cond}:")
            w.emit_lines(_reindent(then_stmts))
            w.emit(f"    {t} = {then}")
            w.emit("else:")
            w.emit_lines(_reindent(else_stmts))
            w.emit(f"    {t} = {orelse}")
            return t

        if isinstance(action, WhenA):
            fail = self._fail(f"action guard failed at {action!r}")
            guard = self.lower_expr(action.guard)
            w.emit(f"if not {guard}:")
            w.indent += 1
            if self.all_hooks:
                w.emit(f"hooks.on_guard_fail({self.module.bind(action, 'n')})")
            self._raise_fail(fail)
            w.indent -= 1
            return self.lower_action(action.body)

        if isinstance(action, Par):
            subs = list(action.actions)
            if len(subs) == 1:
                return self.lower_action(subs[0])
            merged = self.w.tmp()
            first = self.lower_action(subs[0])
            w.emit(f"{merged} = {first}")
            for sub in subs[1:]:
                value = self.lower_action(sub)
                k, v = w.tmp(), w.tmp()
                w.emit(f"for {k}, {v} in {value}.items():")
                w.emit(f"    if {k} in {merged}:")
                w.emit(
                    "        raise DoubleWriteError(f\"parallel composition "
                    f"writes register {{{k}.full_name}} twice\")"
                )
                w.emit(f"    {merged}[{k}] = {v}")
            return merged

        if isinstance(action, Seq):
            subs = list(action.actions)
            overlay = w.tmp()
            w.emit(f"{overlay} = {{}}")
            if _seq_never_reads_back(subs):
                for sub in subs:
                    value = self.lower_action(sub)
                    w.emit(f"{overlay}.update({value})")
                return overlay
            ov_read = self._emit_overlay_read(overlay)
            saved_read = self.read
            self.read = ov_read
            try:
                for sub in subs:
                    value = self.lower_action(sub)
                    w.emit(f"{overlay}.update({value})")
            finally:
                self.read = saved_read
            return overlay

        if isinstance(action, LetA):
            local = self._lower_let(action.name, action.value)
            saved = self.scope.get(action.name)
            self.scope[action.name] = ("thunk", local)
            try:
                return self.lower_action(action.body)
            finally:
                if saved is None:
                    del self.scope[action.name]
                else:
                    self.scope[action.name] = saved

        if isinstance(action, Loop):
            limit = min(action.max_iterations, self.max_loop_iterations)
            overlay = w.tmp()
            w.emit(f"{overlay} = {{}}")
            ov_read = self._emit_overlay_read(overlay)
            iters = w.tmp()
            w.emit(f"{iters} = 0")
            saved_read = self.read
            self.read = ov_read
            try:
                w.emit("while True:")
                w.indent += 1
                cond = self.lower_expr(action.cond)
                w.emit(f"if not {cond}:")
                w.emit("    break")
                value = self.lower_action(action.body)
                w.emit(f"{overlay}.update({value})")
                w.emit(f"{iters} += 1")
                w.emit(f"if {iters} >= {limit}:")
                w.emit(
                    f"    raise SimulationError(\"loop exceeded {limit} "
                    "iterations; either the bound is too small or the loop "
                    "does not terminate\")"
                )
                w.indent -= 1
            finally:
                self.read = saved_read
            return overlay

        if isinstance(action, LocalGuard):
            t = w.tmp()
            w.emit("try:")
            body_stmts, body = self._capture(lambda: self.lower_action(action.body))
            w.emit_lines(_reindent(body_stmts))
            w.emit(f"    {t} = {body}")
            w.emit("except GuardFail:")
            w.emit(f"    {t} = {{}}")
            return t

        if isinstance(action, MethodCallA):
            return self._lower_method_call(action, is_action=True)

        raise _Unsupported(f"action node {type(action).__name__}")

    def _emit_overlay_read(self, overlay: str) -> str:
        """Emit a sequential-overlay read view over the current read fn."""
        name = self.w.tmp()
        self.w.emit(
            f"def {name}(reg, _o={overlay}, _r={self.read}):"
        )
        self.w.emit("    if reg in _o:")
        self.w.emit("        return _o[reg]")
        self.w.emit("    return _r(reg)")
        return name

    # -- method calls ------------------------------------------------------

    def _lower_method_call(self, call: Any, is_action: bool) -> str:
        w = self.w
        instance: Module = call.instance
        method: Method = instance.get_method(call.method)
        if len(call.args) != len(method.params):
            raise ElaborationError(
                f"method {instance.name}.{call.method} expects "
                f"{len(method.params)} arguments, got {len(call.args)}"
            )
        method_name = call.method
        fail = self._fail(
            f"{'action' if is_action else 'value'} method "
            f"{instance.name}.{method_name} is not ready"
        )

        if isinstance(instance, PrimitiveModule):
            native = instance.get_native(method_name)
            guard_fn = self.module.bind(native.guard_fn, "g")
            body_fn = self.module.bind(native.body_fn, "b")
            if self.kernel_hooks:
                inst = self.module.bind(instance, "i")
                w.emit(f"hooks.on_method({inst}, {method_name!r})")
            if self.counting and self.charging:
                overhead = self.params.native_method_overhead
                if hasattr(instance, "read_latency"):
                    overhead += self.params.regfile_access
                self._charge(overhead)
            values = self._materialize(
                [self._capture(lambda a=a: self.lower_expr(a)) for a in call.args]
            )
            arglist = ", ".join([self.read] + values)
            w.emit(f"if not {guard_fn}({arglist}):")
            w.indent += 1
            if self.all_hooks:
                w.emit(f"hooks.on_guard_fail({self.module.bind(method, 'm')})")
            self._raise_fail(fail)
            w.indent -= 1
            t = w.tmp()
            if is_action:
                w.emit(f"{t}, _ = {body_fn}({arglist})")
                if self.all_hooks:
                    r = w.tmp()
                    w.emit(f"for {r} in {t}:")
                    w.emit(f"    hooks.on_register_write({r})")
                if self.counting and self.charging:
                    self.w.emit(
                        f"{self.sink} += {self.params.reg_write} * len({t})"
                    )
                return t
            w.emit(f"_, {t} = {body_fn}({arglist})")
            return t

        # User-defined method: one generated module-level function pair per
        # (method, mode), pre-registered so recursive methods terminate.
        guard_name, body_name = self._user_method(method, is_action)
        if self.kernel_hooks:
            inst = self.module.bind(instance, "i")
            w.emit(f"hooks.on_method({inst}, {method_name!r})")
        if self.counting and self.charging:
            self._charge(self.params.method_call_overhead)
        values = self._materialize(
            [self._capture(lambda a=a: self.lower_expr(a)) for a in call.args]
        )
        ctx = self._call_ctx()
        arglist = ", ".join([self.read, ctx] + values)
        w.emit(f"if not {guard_name}({arglist}):")
        w.indent += 1
        if self.all_hooks:
            w.emit(f"hooks.on_guard_fail({self.module.bind(method, 'm')})")
        self._raise_fail(fail)
        w.indent -= 1
        t = w.tmp()
        w.emit(f"{t} = {body_name}({arglist})")
        return t

    def _call_ctx(self) -> str:
        """Second argument threaded into generated method/thunk functions."""
        if self.counting:
            return "_cl"
        if self.kernel_hooks or self.all_hooks:
            return "hooks"
        return "None"

    def _user_method(self, method: Method, is_action: bool) -> Tuple[str, str]:
        key = (id(method), is_action)
        entry = self.methods.get(key)
        if entry is not None:
            return entry
        guard_name = self.module.fn_name("mg")
        body_name = self.module.fn_name("mb")
        self.methods[key] = (guard_name, body_name)
        param_locals = [f"_p{i}" for i in range(len(method.params))]
        for stem, node, action_node in (
            (guard_name, method.guard, False),
            (body_name, method.body, is_action),
        ):
            sub = _Lowerer(
                self.module,
                self.mode,
                self.max_loop_iterations,
                self.params,
                self.methods,
            )
            sub.scope = {
                p: ("strict", param_locals[i]) for i, p in enumerate(method.params)
            }
            sub.w = _FnWriter(stem, ["read", "_ctx"] + param_locals)
            if self.counting:
                sub.sink = "_ctx[0]"
            if self.all_hooks or self.kernel_hooks:
                sub.w.emit("hooks = _ctx")
            if self.counting:
                sub.w.emit("_cl = _ctx")
            if node is None:
                owner = method.module.name if method.module is not None else "?"
                msg = self.module.bind(
                    f"{method.kind} method {owner}.{method.name} has no body", "c"
                )
                sub.w.emit(f"raise ElaborationError({msg})")
            else:
                result = (
                    sub.lower_action(node) if action_node else sub.lower_expr(node)
                )
                sub.w.emit(f"return {result}")
            self.module.add(sub.w.lines)
        return guard_name, body_name


# --------------------------------------------------------------------------
# function-level generation: rule wrappers, counting attempts
# --------------------------------------------------------------------------

_FORCE_HELPER = '''\
def _force(cell):
    """Force a lazy let binding (mirrors compile._Cell's memoised thunks)."""
    if cell[0]:
        return cell[1]
    value = cell[2](cell[3], *cell[4])
    cell[1] = value
    cell[0] = True
    return value
'''


def _add_force_helper(module: _ModuleBuilder) -> None:
    if "_force_added" not in module.bindings:
        module.bindings["_force_added"] = True
        module.chunks.append(_FORCE_HELPER + "\n")


def _lower_rule_fn(
    module: _ModuleBuilder,
    name: str,
    node: Any,
    is_action: bool,
    mode: str,
    max_loop_iterations: int,
    sw_params: Any = None,
    methods: Optional[Dict] = None,
) -> None:
    """Emit ``def name(read, hooks_or_cell)`` evaluating ``node`` flat."""
    low = _Lowerer(module, mode, max_loop_iterations, sw_params, methods)
    if mode == "count":
        low.w = _FnWriter(name, ["read", "_cl"])
        low.w.emit("_cc = 0")
        low.sink = "_cc"
    elif mode in ("hooked", "latency"):
        low.w = _FnWriter(name, ["read", "hooks"])
    else:
        low.w = _FnWriter(name, ["read"])
    result = low.lower_action(node) if is_action else low.lower_expr(node)
    if mode == "count":
        low.w.emit("_cl[0] += _cc")
        low.w.emit(f"return {result}")
    else:
        low.w.emit(f"return {result}")
    module.add(low.w.lines)


class SourceRuleExec:
    """Generated fast/hooked/latency entry points for one rule.

    Drop-in for :class:`repro.core.compile.RuleExec` at the call sites the
    engines use (``fast(read)``, ``hooked(read, hooks)``,
    ``latency(read, hooks)``); the attributes hold plain generated
    functions, with closure fallbacks per mode when lowering declined.
    """

    __slots__ = ("rule", "fast", "hooked", "latency")

    def __init__(self, rule: Rule, fast, hooked, latency):
        self.rule = rule
        self.fast = fast
        self.hooked = hooked
        self.latency = latency


def generate_rule_execs(
    rules: List[Rule],
    design_name: str,
    max_loop_iterations: int = 1_000_000,
    modes: Tuple[str, ...] = ("fast", "hooked", "latency"),
) -> Tuple[List[SourceRuleExec], GeneratedModule]:
    """Generate flat executors for raw rule actions (Simulator / HwEngine)."""
    module = _ModuleBuilder(f"{design_name}.rules")
    _add_force_helper(module)
    specs: List[Dict[str, Any]] = []
    methods: Dict[str, Dict] = {mode: {} for mode in modes}
    for i, rule in enumerate(rules):
        spec: Dict[str, Any] = {"rule": rule}
        for mode in modes:
            fn = f"_rule_{mode}_{i}"
            try:
                _lower_rule_fn(
                    module, fn, rule.action, True, mode,
                    max_loop_iterations, None, methods[mode],
                )
                spec[mode] = fn
            except _Unsupported:
                spec[mode] = None
        specs.append(spec)
    gen = module.build()
    ns = gen.namespace
    execs = []
    for spec in specs:
        rule = spec["rule"]
        fallback = rule_exec(rule, max_loop_iterations)
        execs.append(
            SourceRuleExec(
                rule,
                ns[spec["fast"]] if spec.get("fast") else fallback.fast,
                ns[spec["hooked"]] if spec.get("hooked") else fallback.hooked,
                ns[spec["latency"]] if spec.get("latency") else fallback.latency,
            )
        )
    return execs, gen


# --------------------------------------------------------------------------
# software engine: generated counting attempts and fused superstep
# --------------------------------------------------------------------------


def _float_lit(value: float) -> str:
    return repr(float(value))


def _emit_attempt(
    module: _ModuleBuilder,
    name: str,
    compiled_rule: Any,
    params: Any,
    config: Any,
    max_loop_iterations: int,
    methods: Dict,
) -> bool:
    """Emit ``def name(read)`` -> ``(cpu_cost, updates_or_None)``.

    The whole of ``SwEngine._attempt`` folds into one generated function:
    guard, setup, body and commit costs are pre-folded constants, the
    guard/body trees are lowered inline in counting mode, and the
    ``GuardFail`` control flow stays in-frame.  Returns False when lowering
    declined (caller installs the closure fallback).
    """
    cr = compiled_rule
    w = _FnWriter(name, ["read"])
    w.emit("_cl = [0]")
    w.emit("_cc = 0")
    w.emit("try:")
    low = _Lowerer(module, "count", max_loop_iterations, params, methods)
    low.w = w
    w.indent += 1
    try:
        guard_stmts, guard = low._capture(lambda: low.lower_expr(cr.guard))
        w.emit_lines(guard_stmts)
        w.emit(f"_g = {guard}")
        w.indent -= 1
        w.emit("except GuardFail:")
        w.emit("    _g = False")
        w.emit(f"_cost = {_float_lit(params.rule_attempt_overhead)} + _cc + _cl[0]")
        w.emit("if not _g:")
        w.emit("    return _cost, None")
        if cr.can_fail:
            setup = 0.0
            if config.inline_methods:
                setup += params.branch_guard_handling
            else:
                setup += params.try_catch_setup
            setup += len(cr.shadow_registers) * params.shadow_per_register
            w.emit(f"_cost += {_float_lit(setup)}")
        w.emit("_cl[0] = 0")
        w.emit("_cc = 0")
        w.emit("try:")
        w.indent += 1
        body_stmts, body = low._capture(lambda: low.lower_action(cr.body))
        w.emit_lines(body_stmts)
        w.emit(f"_u = {body}")
        w.indent -= 1
        w.emit("except GuardFail:")
        w.emit("    _cost += _cc + _cl[0]")
        w.emit(f"    _cost += {params.rollback_base}")
        w.emit(
            f"    _cost += {len(cr.shadow_registers) * params.rollback_per_register}"
        )
        w.emit("    return _cost, None")
        w.emit("_cost += _cc + _cl[0]")
        if cr.can_fail:
            w.emit(f"_cost += len(_u) * {params.commit_per_register}")
        w.emit("return _cost, _u")
    except _Unsupported:
        return False
    module.add(w.lines)
    return True


def _fallback_attempt(
    compiled_rule: Any, params: Any, config: Any, max_loop_iterations: int
):
    """Closure-backed attempt with the same ``(cost, updates|None)`` contract."""
    cr = compiled_rule
    guard_fn, body_fn = compiled_rule_exec(cr, max_loop_iterations).counting_fns(
        params
    )
    overhead = float(params.rule_attempt_overhead)
    setup = 0.0
    if cr.can_fail:
        if config.inline_methods:
            setup += params.branch_guard_handling
        else:
            setup += params.try_catch_setup
        setup += len(cr.shadow_registers) * params.shadow_per_register
    rollback_base = params.rollback_base
    rollback = len(cr.shadow_registers) * params.rollback_per_register
    commit_per = params.commit_per_register
    can_fail = cr.can_fail

    def attempt(read):
        cell = [0]
        try:
            ok = guard_fn((), read, cell)
        except GuardFail:
            ok = False
        cost = overhead + cell[0]
        if not ok:
            return cost, None
        if can_fail:
            cost += setup
        cell = [0]
        try:
            updates = body_fn((), read, cell)
        except GuardFail:
            cost += cell[0]
            cost += rollback_base
            cost += rollback
            return cost, None
        cost += cell[0]
        if can_fail:
            cost += len(updates) * commit_per
        return cost, updates

    return attempt


def generate_counting_attempts(
    rules: List[Rule],
    compiled: Dict[Rule, Any],
    params: Any,
    config: Any,
    design_name: str,
    max_loop_iterations: int = 1_000_000,
) -> Tuple[List[Callable], GeneratedModule]:
    """Generated ``attempt(read) -> (cost, updates|None)`` per rule."""
    module = _ModuleBuilder(f"{design_name}.attempts")
    _add_force_helper(module)
    methods: Dict = {}
    emitted: List[Optional[str]] = []
    for i, rule in enumerate(rules):
        name = f"_attempt_{i}"
        ok = _emit_attempt(
            module, name, compiled[rule], params, config,
            max_loop_iterations, methods,
        )
        emitted.append(name if ok else None)
    gen = module.build()
    attempts = []
    for i, rule in enumerate(rules):
        if emitted[i] is not None:
            attempts.append(gen.namespace[emitted[i]])
        else:
            attempts.append(
                _fallback_attempt(compiled[rule], params, config, max_loop_iterations)
            )
    return attempts, gen


def generate_sw_step(engine: Any, attempts: List[Callable]) -> GeneratedModule:
    """Fuse ``SwEngine.step`` into one generated function bound to ``engine``.

    Pre-binds only identity-stable collaborators (the wrapped store, the
    wakeup arrays, the fire-count / fail-cost dicts, the schedule's
    candidate cache); every field ``restore()`` rebinds is reached through
    ``self`` so resident serving keeps working.
    """
    module = _ModuleBuilder(f"{engine.name}.swstep")
    n = len(engine.rules)
    b = module.bindings
    b["_self"] = engine
    if n:
        wakeup = engine._wakeup
        b["_store"] = engine.store
        b["_read"] = engine.store.__getitem__
        b["_sleeping"] = wakeup.sleeping
        b["_index_of"] = wakeup.index_of
        b["_wakeup"] = wakeup
        b["_sleep"] = wakeup.sleep_index
        b["_candidates"] = engine.schedule.candidates
        b["_lfc"] = engine._last_fail_cost
        b["_fire_counts"] = engine.fire_counts
        b["_names"] = tuple(r.full_name for r in engine.rules)
        b["_attempts"] = list(attempts)
        b["_cpu_to_fpga"] = engine.platform.cpu_to_fpga_cycles
    lines = ["def step(now):"]
    if not n:
        lines.append("    return False")
    else:
        lines += [
            "    if now < _self.busy_until:",
            "        return False",
            "    progress = False",
            "    _pu = _self._pending_updates",
            "    if _pu is not None:",
            "        _store.update(_pu)",
            "        _self._pending_updates = None",
            "        progress = True",
            "    _pd = _self._pending_deliveries",
            "    if _pd:",
            "        for _reg, _item in _pd:",
            "            _store[_reg] = tuple(_store[_reg]) + (_item,)",
            "        _self._pending_deliveries = []",
            f"    if _wakeup.n_sleeping == {n}:",
            f"        _self.guard_failures += {n}",
            "        return progress",
            "    _wasted = 0.0",
            "    for _rule in _candidates(_self._last_fired):",
            "        _i = _index_of[_rule]",
            "        if _sleeping[_i]:",
            "            _wasted += _lfc[_rule]",
            "            _self.guard_failures += 1",
            "            continue",
            "        _cost, _u = _attempts[_i](_read)",
            "        if _u is not None:",
            "            _self.cpu_cycles_useful += _cost",
            "            _self.cpu_cycles_wasted += _wasted",
            "            _dur = _cpu_to_fpga(_cost + _wasted)",
            "            _self.busy_until = now + _dur",
            "            _self.busy_fpga_cycles += _dur",
            "            _self._pending_updates = _u",
            "            _self._last_fired = _rule",
            "            _fire_counts[_names[_i]] += 1",
            "            _self.total_firings += 1",
            "            return True",
            "        _sleep(_i)",
            "        _lfc[_rule] = _cost",
            "        _wasted += _cost",
            "        _self.guard_failures += 1",
            "    return progress",
        ]
    module.chunks.append("\n".join(lines) + "\n")
    return module.build()


# --------------------------------------------------------------------------
# hardware engine: generated latency executors and fused step_cycle
# --------------------------------------------------------------------------


def generate_hw_step(
    engine: Any, execs: Dict[Rule, Any], latency_acc_cls: Any
) -> GeneratedModule:
    """Fuse ``HwEngine.step_cycle`` into one generated function.

    Same pre-binding discipline as :func:`generate_sw_step`: the busy
    table, locked-count view, store and wakeup arrays keep their identity
    across ``restore()``; rebindable scalars go through ``self``.
    """
    module = _ModuleBuilder(f"{engine.name}.hwstep")
    rules = engine.rules
    n = len(rules)
    b = module.bindings
    b["_self"] = engine
    if n:
        wakeup = engine._wakeup
        b["_store"] = engine.store
        b["_read"] = engine.store.__getitem__
        b["_sleeping"] = wakeup.sleeping
        b["_sleep"] = wakeup.sleep_index
        b["_wakeup"] = wakeup
        b["_busy"] = engine.busy
        b["_locked"] = engine._locked_count.keys()
        b["_rules"] = tuple(rules)
        b["_wsets"] = [engine._write_sets[r] for r in rules]
        b["_rsets"] = [engine._read_sets[r] for r in rules]
        b["_lat"] = [execs[r].latency for r in rules]
        b["_index_of"] = wakeup.index_of
        b["_select"] = engine.schedule.select
        b["_fire_counts"] = engine.fire_counts
        b["_names"] = tuple(r.full_name for r in rules)
        b["_flush"] = engine._flush_pending_deliveries
        b["_lock"] = engine._lock_rule
        b["_unlock"] = engine._unlock_rule
        b["_Acc"] = latency_acc_cls
        b["_raise_missing"] = raise_for_missing_register
    lines = ["def step_cycle(now):"]
    if not n:
        lines.append("    return False")
    else:
        lines += [
            "    if _self.last_cycle_stepped == now:",
            "        return False",
            "    _self.last_cycle_stepped = now",
            "    progress = False",
            "    _nf = _self._next_finish",
            "    if _nf is not None and _nf <= now:",
            "        _fin = [r for r, (f, _) in _busy.items() if f <= now]",
            "        for _r in _fin:",
            "            _store.update(_unlock(_r))",
            "            progress = True",
            "        _flush()",
            f"    if _wakeup.n_sleeping == {n} and not _busy:",
            "        if progress:",
            "            _self.cycles_active += 1",
            "        return progress",
            f"    _cand = [_i for _i in range({n})",
            "             if _rules[_i] not in _busy and not _sleeping[_i]",
            "             and not (_wsets[_i] & _locked)]",
            "    if not _cand:",
            "        if progress:",
            "            _self.cycles_active += 1",
            "        return progress",
            "    _enabled = []",
            "    _eval = {}",
            "    for _i in _cand:",
            "        _h = _Acc()",
            "        try:",
            "            _u = _lat[_i](_read, _h)",
            "        except GuardFail:",
            "            _sleep(_i)",
            "            continue",
            "        except KeyError as _exc:",
            "            _raise_missing(_exc)",
            "            raise",
            "        _eval[_i] = (_u, _h.latency)",
            "        _enabled.append(_rules[_i])",
            "    _chosen = _select(_enabled)",
            "    _cycle_locked = set(_locked)",
            "    _cycle_dirty = set()",
            "    for _r in _chosen:",
            "        _i = _index_of[_r]",
            "        if _wsets[_i] & _cycle_locked:",
            "            continue",
            "        _u, _latency = _eval[_i]",
            "        if _rsets[_i] & _cycle_dirty:",
            "            _h = _Acc()",
            "            try:",
            "                _u = _lat[_i](_read, _h)",
            "            except GuardFail:",
            "                _sleep(_i)",
            "                continue",
            "            except KeyError as _exc:",
            "                _raise_missing(_exc)",
            "                raise",
            "            _latency = _h.latency",
            "        _fire_counts[_names[_i]] += 1",
            "        _self.total_firings += 1",
            "        progress = True",
            "        if _latency <= 1:",
            "            _store.update(_u)",
            "            _cycle_dirty.update(_u)",
            "        else:",
            "            _lock(_r, now + _latency, _u)",
            "            _cycle_locked |= _wsets[_i]",
            "    if progress:",
            "        _self.cycles_active += 1",
            "    return progress",
        ]
    module.chunks.append("\n".join(lines) + "\n")
    return module.build()


# --------------------------------------------------------------------------
# transport routes: generated pump / delivery functions
# --------------------------------------------------------------------------


def generate_transport_pump(
    data_reg,
    depth: int,
    producer_store,
    consumer_store,
    vc,
    direction,
    locked,
    charge_driver=None,
    occupancy_of=None,
    name: str = "route",
) -> Callable[[float], bool]:
    """Generated analogue of :func:`~repro.core.compile.compile_transport_pump`.

    Per-route constants (credit depth, words per element, occupancy and
    latency cycles, the vc id) are inlined as literals; the mutable
    collaborators (stores, pool rings, stats) are pre-bound names.  The
    emitted control flow mirrors the closure pump statement for statement,
    so every stat commit and stall count lands identically.
    """
    module = _ModuleBuilder(f"{name}.pump")
    b = module.bindings
    words = vc.words_per_element
    occupancy = direction.params.occupancy_cycles(words, direction.burst)
    latency = direction.params.one_way_latency_cycles
    pool = direction.pool
    b["_pstore"] = producer_store
    b["_cstore"] = consumer_store
    b["_dreg"] = data_reg
    b["_vc"] = vc
    b["_vcs"] = vc.stats
    b["_dir"] = direction
    b["_stats"] = direction.stats
    b["_per_vc"] = direction.stats.per_vc_messages
    b["_locked"] = locked
    b["_encode_batch"] = vc.encode_batch
    b["_note_stall"] = vc.note_credit_stall
    b["_pool_words"] = pool.words
    b["_words_extend"] = pool.words.extend
    b["_vc_extend"] = pool.vc_ids.extend
    b["_bounds_extend"] = pool.bounds.extend
    b["_due_append"] = pool.due.append
    b["_compact"] = pool.compact
    if occupancy_of is not None:
        b["_occ"] = occupancy_of
    if charge_driver is not None:
        b["_charge"] = charge_driver
    occ_expr = "_occ()" if occupancy_of is not None else "len(_cstore[_dreg])"
    lines = [
        "def pump(now):",
        "    _q = _pstore[_dreg]",
        "    if not _q:",
        "        return False",
        "    if _dreg in _locked():",
        "        return False",
        f"    _win = {depth} - {occ_expr} - _vc.in_flight",
        "    if _win <= 0:",
        "        _note_stall()",
        "        return False",
        "    _n = len(_q)",
        "    if _win < _n:",
        "        _n = _win",
        "    _compact()",
        "    _words_extend(_encode_batch(_q[:_n]))",
        "    _end = len(_pool_words)",
        f"    _bounds_extend(range(_end - (_n - 1) * {words}, _end + 1, {words}))",
        f"    _vc_extend([{vc.vc_id}] * _n)",
        "    _busy = _dir.busy_until",
        "    _bc = _stats.busy_cycles",
        "    for _ in range(_n):",
        "        _start = _busy if _busy > now else now",
        f"        _busy = _start + {occupancy!r}",
        f"        _due_append(_busy + {latency!r})",
        f"        _bc += {occupancy!r}",
    ]
    if charge_driver is not None:
        lines.append(f"        _charge({words}, now)")
    lines += [
        "    _dir.busy_until = _busy",
        "    _stats.busy_cycles = _bc",
        "    _stats.messages += _n",
        f"    _stats.words += _n * {words}",
        f"    _per_vc[{vc.vc_id}] = _per_vc.get({vc.vc_id}, 0) + _n",
        "    _vc.credits = _win - _n",
        "    _vc.in_flight += _n",
        "    _vcs.messages_sent += _n",
        f"    _vcs.words_sent += _n * {words}",
        "    _pstore[_dreg] = _q[_n:]",
        "    if _n < len(_q):",
        "        _note_stall()",
        "    return True",
    ]
    module.chunks.append("\n".join(lines) + "\n")
    return module.build().namespace["pump"]


def generate_transport_delivery(
    direction,
    vc_by_id,
    deliver,
    deliver_batch=None,
    charge_driver=None,
    name: str = "route",
) -> Callable[[float], bool]:
    """Generated analogue of :func:`~repro.core.compile.compile_transport_delivery`."""
    if deliver_batch is not None and charge_driver is not None:
        raise ValueError("deliver_batch and charge_driver are mutually exclusive")
    module = _ModuleBuilder(f"{name}.deliver")
    b = module.bindings
    pool = direction.pool
    b["_pool"] = pool
    b["_due"] = pool.due
    b["_vc_ids"] = pool.vc_ids
    b["_bounds"] = pool.bounds
    b["_pool_words"] = pool.words
    b["_info"] = {
        vc_id: (vc, vc.decode, vc.decode_run, vc.sync.data, vc.words_per_element)
        for vc_id, vc in vc_by_id.items()
    }
    if deliver_batch is not None:
        b["_deliver_batch"] = deliver_batch
        lines = [
            "def deliver_due(now):",
            "    _head = _pool.head",
            "    _end = len(_due)",
            "    if _head >= _end:",
            "        return False",
            "    _cut = _head",
            "    while _cut < _end and _due[_cut] <= now:",
            "        _cut += 1",
            "    if _cut == _head:",
            "        return False",
            "    _start = _pool.word_head",
            "    _i = _head",
            "    while _i < _cut:",
            "        _vc_id = _vc_ids[_i]",
            "        _j = _i + 1",
            "        while _j < _cut and _vc_ids[_j] == _vc_id:",
            "            _j += 1",
            "        _vc, _decode, _decode_run, _data_reg, _words = _info[_vc_id]",
            "        _k = _j - _i",
            "        if _k == 1:",
            "            _items = (_decode(_pool_words, _start + 1),)",
            "        else:",
            "            _items = tuple(_decode_run(_pool_words, _start, _k))",
            "        _start = _bounds[_j - 1]",
            "        _deliver_batch(_data_reg, _items, now)",
            "        _vc.in_flight -= _k",
            "        _vc.stats.messages_delivered += _k",
            "        _i = _j",
            "    _pool.head = _cut",
            "    _pool.word_head = _start",
            "    return True",
        ]
    else:
        b["_deliver"] = deliver
        if charge_driver is not None:
            b["_charge"] = charge_driver
        lines = [
            "def deliver_due(now):",
            "    _head = _pool.head",
            "    _end = len(_due)",
            "    if _head >= _end:",
            "        return False",
            "    _start = _pool.word_head",
            "    _i = _head",
            "    while _i < _end and _due[_i] <= now:",
            "        _vc_id = _vc_ids[_i]",
            "        _vc, _decode, _decode_run, _data_reg, _words = _info[_vc_id]",
            "        _deliver(_data_reg, _decode(_pool_words, _start + 1), now)",
            "        _vc.on_deliver()",
        ]
        if charge_driver is not None:
            lines.append("        _charge(_words, now)")
        lines += [
            "        _start = _bounds[_i]",
            "        _i += 1",
            "    if _i == _head:",
            "        return False",
            "    _pool.head = _i",
            "    _pool.word_head = _start",
            "    return True",
        ]
    module.chunks.append("\n".join(lines) + "\n")
    return module.build().namespace["deliver_due"]
