"""The BCL kernel language: types, expressions, actions, modules and semantics."""
