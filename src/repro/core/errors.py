"""Exception hierarchy for the BCL kernel.

Guard failure is *control flow* in BCL (Section 5 of the paper): an action
whose guard evaluates to false invalidates the whole enclosing atomic action
unless a ``localGuard`` intercepts it.  The software implementation of the
paper realises this with C++ ``throw``; the Python interpreter uses
:class:`GuardFail` in exactly the same way.
"""

from __future__ import annotations


class BCLError(Exception):
    """Base class for every error raised by the BCL kernel."""


class GuardFail(BCLError):
    """Raised when a ``when`` guard (implicit or explicit) evaluates to false.

    This is not a user-visible error: the interpreter catches it at the rule
    boundary (the rule simply does not fire) or at an enclosing
    ``localGuard``.
    """

    def __init__(self, reason: str = ""):
        super().__init__(reason or "guard failed")
        self.reason = reason


class DoubleWriteError(BCLError):
    """Two branches of a parallel composition updated the same state element.

    The paper calls this a DOUBLE WRITE ERROR; it is a dynamic error because
    the two writes may be conditional on dynamic expressions.
    """


class TypeCheckError(BCLError):
    """A BCL term is ill-typed (including domain annotation violations)."""


class ElaborationError(BCLError):
    """Static elaboration failed (unknown method, bad module wiring, ...)."""


class SchedulingError(BCLError):
    """The scheduler could not produce a legal execution (e.g. livelock bound)."""


class PartitionError(BCLError):
    """The design cannot be split into the requested computational domains."""


class SimulationError(BCLError):
    """The co-simulator reached an inconsistent configuration."""


class WireFormatError(SimulationError):
    """A channel configuration cannot be represented in the wire format.

    Raised at spec/topology *build* time -- when a virtual-channel id would
    not fit ``VC_ID_BITS``, a payload length would not fit ``LENGTH_BITS``,
    or the header word would not fit the configured link word width --
    instead of letting a later ``frame_message`` silently corrupt headers.
    Subclasses :class:`SimulationError` so existing handlers keep working.
    """


class CodegenError(BCLError):
    """Code generation would emit invalid or colliding identifiers."""
