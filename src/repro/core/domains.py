"""Computational domains (Section 4.2).

A *computational domain* is the type-level mechanism by which a BCL design is
partitioned between hardware and software.  Every method is annotated with a
domain name; a rule may refer to methods of only one domain, so each rule
belongs to exactly one domain.  Inter-domain communication is possible only
through *synchronizer* primitives whose methods span two domains
(:mod:`repro.core.synchronizers`), which guarantees that no inadvertent
cross-boundary communication exists -- a common HW/SW codesign pitfall.

This module implements domain names (including *domain variables*, the
paper's domain polymorphism), the per-rule domain inference, and the
consistency check that rejects rules straddling two domains.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.core.action import MethodCallA, RegWrite
from repro.core.errors import TypeCheckError
from repro.core.expr import MethodCallE, RegRead
from repro.core.module import Design, Method, Module, Register, Rule


class DomainError(TypeCheckError):
    """A rule or method violates the one-domain-per-rule invariant."""


class Domain:
    """A computational domain name, e.g. ``HW`` or ``SW``.

    Domains are compared by name, so independently constructed ``Domain("HW")``
    objects are interchangeable with the :data:`HW` singleton.
    """

    def __init__(self, name: str):
        self.name = name

    @property
    def is_variable(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Domain) and not other.is_variable and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Domain", self.name))

    def __repr__(self) -> str:
        return f"Domain({self.name})"


class DomainVar(Domain):
    """A domain *variable* -- the paper's domain polymorphism.

    A design may declare synchronizers such as ``Sync#(t, a, HW)`` where ``a``
    is a free domain variable; :func:`substitute_domains` instantiates the
    variable to a concrete domain, after which same-domain synchronizers can
    be specialised away into plain FIFOs.
    """

    @property
    def is_variable(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DomainVar) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("DomainVar", self.name))

    def __repr__(self) -> str:
        return f"DomainVar({self.name})"


#: The two domains used throughout the paper's evaluation.
HW = Domain("HW")
SW = Domain("SW")


def effective_module_domain(module: Optional[Module]) -> Optional[Domain]:
    """The domain a module's state and ordinary methods belong to.

    A module inherits its domain from the nearest ancestor that declares one;
    ``None`` means unconstrained (the design's default domain applies).
    """
    while module is not None:
        if module.domain is not None:
            return module.domain
        module = module.parent
    return None


def method_domain(method: Method) -> Optional[Domain]:
    """The domain of a method: its own annotation, else its module's domain."""
    if method.domain is not None:
        return method.domain
    return effective_module_domain(method.module)


def register_domain(register: Register) -> Optional[Domain]:
    """The domain owning a register (its enclosing module's domain)."""
    return effective_module_domain(register.parent)


def _domains_of_action(rule: Rule) -> Set[Domain]:
    """Every concrete domain referenced by the rule's action."""
    found: Set[Domain] = set()
    for node in rule.action.walk():
        dom: Optional[Domain] = None
        if isinstance(node, (MethodCallA, MethodCallE)):
            dom = method_domain(node.instance.get_method(node.method))
        elif isinstance(node, RegWrite):
            dom = register_domain(node.reg)
        elif isinstance(node, RegRead):
            dom = register_domain(node.reg)
        if dom is not None:
            found.add(dom)
    return found


def infer_rule_domain(rule: Rule, default: Optional[Domain] = None) -> Domain:
    """Infer the (single) domain a rule belongs to.

    Raises :class:`DomainError` if the rule references methods or state of
    more than one concrete domain, which is exactly the type error that an
    incorrectly partitioned BCL program produces.
    """
    domains = _domains_of_action(rule)
    if rule.domain is not None:
        domains.add(rule.domain)
    variables = {d for d in domains if d.is_variable}
    concrete = {d for d in domains if not d.is_variable}
    if variables:
        raise DomainError(
            f"rule {rule.full_name} references unresolved domain variables "
            f"{sorted(v.name for v in variables)}; substitute them before partitioning"
        )
    if len(concrete) > 1:
        raise DomainError(
            f"rule {rule.full_name} spans domains {sorted(d.name for d in concrete)}; "
            "inter-domain communication must go through a synchronizer"
        )
    if concrete:
        return next(iter(concrete))
    if default is not None:
        return default
    raise DomainError(
        f"rule {rule.full_name} references no domain-annotated state and no default was given"
    )


def infer_design_domains(design: Design, default: Optional[Domain] = None) -> Dict[Rule, Domain]:
    """Infer and record the domain of every rule in the design.

    Returns the mapping and also stores the result on each rule's ``domain``
    attribute (so later passes -- partitioning, scheduling, code generation --
    can read it directly).
    """
    assignment: Dict[Rule, Domain] = {}
    for rule in design.all_rules():
        dom = infer_rule_domain(rule, default)
        rule.domain = dom
        assignment[rule] = dom
    return assignment


def design_domains(design: Design) -> List[Domain]:
    """The sorted list of concrete domains that appear anywhere in the design."""
    found: Set[Domain] = set()
    for module in design.all_modules():
        if module.domain is not None and not module.domain.is_variable:
            found.add(module.domain)
        for method in module.methods.values():
            if method.domain is not None and not method.domain.is_variable:
                found.add(method.domain)
    for rule in design.all_rules():
        if rule.domain is not None and not rule.domain.is_variable:
            found.add(rule.domain)
    return sorted(found, key=lambda d: d.name)


def substitute_domains(design: Design, binding: Dict[str, Domain]) -> None:
    """Instantiate domain variables throughout the design (domain polymorphism).

    ``binding`` maps variable names to concrete domains.  Modules, methods and
    rules annotated with a matching :class:`DomainVar` are rewritten in place.
    """

    def subst(dom: Optional[Domain]) -> Optional[Domain]:
        if dom is not None and dom.is_variable and dom.name in binding:
            return binding[dom.name]
        return dom

    for module in design.all_modules():
        module.domain = subst(module.domain)
        for method in module.methods.values():
            method.domain = subst(method.domain)
    for rule in design.all_rules():
        rule.domain = subst(rule.domain)


def unresolved_domain_variables(design: Design) -> List[str]:
    """Names of domain variables still present anywhere in the design."""
    names: Set[str] = set()
    for module in design.all_modules():
        candidates: Iterable[Optional[Domain]] = [module.domain] + [
            m.domain for m in module.methods.values()
        ]
        for dom in candidates:
            if dom is not None and dom.is_variable:
                names.add(dom.name)
    for rule in design.all_rules():
        if rule.domain is not None and rule.domain.is_variable:
            names.add(rule.domain.name)
    return sorted(names)
