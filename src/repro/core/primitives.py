"""Primitive library modules: FIFOs, register files, wires.

The paper's designs are built almost entirely from registers and FIFOs
(``mkFIFO``) plus memories for the ray tracer's scene and BVH storage.  These
are :class:`~repro.core.module.PrimitiveModule` instances whose methods have
native guard/body implementations executed directly by the interpreter.

Every primitive keeps its state in ordinary :class:`Register` objects so that
shadowing, commit/rollback and the read/write-set analyses work uniformly.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.errors import ElaborationError
from repro.core.module import PrimitiveModule, Register
from repro.core.types import BCLType, BoolT


class Fifo(PrimitiveModule):
    """A bounded FIFO (``mkFIFO`` / ``mkSizedFIFO``).

    Interface methods:

    * ``enq(x)`` -- action, guarded on *not full*
    * ``deq()``  -- action, guarded on *not empty*
    * ``first()`` -- value, guarded on *not empty*
    * ``clear()`` -- action, always ready
    * ``notEmpty()`` / ``notFull()`` -- unguarded value methods

    ``enq`` and ``deq`` by different rules are concurrently schedulable in a
    single hardware clock cycle (the behaviour of a pipeline FIFO), which is
    what allows the pipelined IFFT's stages to all fire every cycle.
    """

    def __init__(self, name: str, ty: BCLType, depth: int = 2, domain=None):
        super().__init__(name, domain)
        if depth < 1:
            raise ElaborationError(f"FIFO {name} must have depth >= 1, got {depth}")
        self.ty = ty
        self.depth = depth
        # The queue contents are stored functionally as a tuple in one register.
        self.data = self.add_register("data", _TupleStateT(), init=())

        self.add_native_method(
            "enq",
            "action",
            guard_fn=lambda read, x: len(read(self.data)) < self.depth,
            body_fn=lambda read, x: ({self.data: read(self.data) + (x,)}, None),
            params=["x"],
            reads=[self.data],
            writes=[self.data],
        )
        self.add_native_method(
            "deq",
            "action",
            guard_fn=lambda read: len(read(self.data)) > 0,
            body_fn=lambda read: ({self.data: read(self.data)[1:]}, None),
            reads=[self.data],
            writes=[self.data],
        )
        self.add_native_method(
            "first",
            "value",
            guard_fn=lambda read: len(read(self.data)) > 0,
            body_fn=lambda read: ({}, read(self.data)[0]),
            reads=[self.data],
        )
        self.add_native_method(
            "clear",
            "action",
            guard_fn=lambda read: True,
            body_fn=lambda read: ({self.data: ()}, None),
            reads=[],
            writes=[self.data],
        )
        self.add_native_method(
            "notEmpty",
            "value",
            guard_fn=lambda read: True,
            body_fn=lambda read: ({}, len(read(self.data)) > 0),
            reads=[self.data],
        )
        self.add_native_method(
            "notFull",
            "value",
            guard_fn=lambda read: True,
            body_fn=lambda read: ({}, len(read(self.data)) < self.depth),
            reads=[self.data],
        )
        self.add_native_method(
            "count",
            "value",
            guard_fn=lambda read: True,
            body_fn=lambda read: ({}, len(read(self.data))),
            reads=[self.data],
        )

    def concurrently_schedulable(self, method_a: str, method_b: str) -> bool:
        # enq/deq (and reads) commute like a pipeline FIFO; identical mutating
        # methods from two rules conflict, and clear conflicts with any other
        # mutation.
        mutating = {"enq", "deq", "clear"}
        if method_a == method_b and method_a in mutating:
            return False
        if "clear" in (method_a, method_b) and method_a in mutating and method_b in mutating:
            return False
        return True

    def symbolic_guard(self, method: str, args):
        from repro.core.expr import MethodCallE, TRUE

        if method == "enq":
            return MethodCallE(self, "notFull", [])
        if method in ("deq", "first"):
            return MethodCallE(self, "notEmpty", [])
        if method in ("clear", "notEmpty", "notFull", "count"):
            return TRUE
        return None

    def occupancy(self, store: Dict[Register, Any]) -> int:
        """Convenience for tests and the co-simulator: current element count."""
        return len(store[self.data])

    def contents(self, store: Dict[Register, Any]) -> Tuple[Any, ...]:
        return tuple(store[self.data])


class RegFile(PrimitiveModule):
    """An indexed memory (``mkRegFile`` / BRAM / scene memory).

    Interface methods:

    * ``sub(i)`` -- value method returning element ``i``
    * ``upd(i, x)`` -- action method writing element ``i``

    The memory is held functionally (a tuple in one register), so partial
    shadowing and rollback work without special cases.  ``read_latency``
    records the access latency in cycles of the *hosting* substrate; the
    cost model charges it on every ``sub``/``upd`` (on-chip BRAM = 1 cycle,
    processor-side DRAM many more -- the distinction at the heart of the ray
    tracer's partition C vs. B).
    """

    def __init__(
        self,
        name: str,
        ty: BCLType,
        size: int,
        init: Optional[Sequence[Any]] = None,
        read_latency: int = 1,
        domain=None,
    ):
        super().__init__(name, domain)
        if size < 1:
            raise ElaborationError(f"RegFile {name} must have size >= 1, got {size}")
        self.ty = ty
        self.size = size
        self.read_latency = read_latency
        if init is None:
            contents: Tuple[Any, ...] = tuple(ty.default() for _ in range(size))
        else:
            contents = tuple(init)
            if len(contents) != size:
                raise ElaborationError(
                    f"RegFile {name}: init has {len(contents)} elements, expected {size}"
                )
        self.mem = self.add_register("mem", _TupleStateT(), init=contents)

        self.add_native_method(
            "sub",
            "value",
            guard_fn=lambda read, i: 0 <= i < self.size,
            body_fn=lambda read, i: ({}, read(self.mem)[i]),
            params=["i"],
            reads=[self.mem],
        )
        self.add_native_method(
            "upd",
            "action",
            guard_fn=lambda read, i, x: 0 <= i < self.size,
            body_fn=lambda read, i, x: (
                {self.mem: read(self.mem)[:i] + (x,) + read(self.mem)[i + 1 :]},
                None,
            ),
            params=["i", "x"],
            reads=[self.mem],
            writes=[self.mem],
        )

    def concurrently_schedulable(self, method_a: str, method_b: str) -> bool:
        return not (method_a == "upd" and method_b == "upd")

    def symbolic_guard(self, method: str, args):
        # Index-in-range guards are not hoisted (the index expression may be
        # arbitrary); stay conservative so out-of-range access still rolls back.
        return None

    def load(self, store: Dict[Register, Any], values: Sequence[Any]) -> None:
        """Overwrite the memory contents directly (test-bench convenience)."""
        if len(values) != self.size:
            raise ElaborationError(
                f"RegFile {self.name}: load of {len(values)} elements into size {self.size}"
            )
        store[self.mem] = tuple(values)


class PulseWire(PrimitiveModule):
    """A single-cycle signalling wire (``mkPulseWire``).

    ``send()`` asserts the wire; ``read()`` returns whether it was asserted.
    The hardware simulator clears every pulse wire at the end of each clock
    cycle; in software a pulse lasts for the current rule execution only (the
    software engine clears it after every rule).
    """

    def __init__(self, name: str, domain=None):
        super().__init__(name, domain)
        self.flag = self.add_register("flag", BoolT(), init=False)
        self.add_native_method(
            "send",
            "action",
            guard_fn=lambda read: True,
            body_fn=lambda read: ({self.flag: True}, None),
            writes=[self.flag],
        )
        self.add_native_method(
            "read",
            "value",
            guard_fn=lambda read: True,
            body_fn=lambda read: ({}, read(self.flag)),
            reads=[self.flag],
        )
        self.add_native_method(
            "clear",
            "action",
            guard_fn=lambda read: True,
            body_fn=lambda read: ({self.flag: False}, None),
            writes=[self.flag],
        )

    def symbolic_guard(self, method: str, args):
        from repro.core.expr import TRUE

        return TRUE


class _TupleStateT(BCLType):
    """Internal pseudo-type for primitive state held as a Python tuple.

    Primitive internals never cross the HW/SW boundary directly (values do,
    and those are packed with their declared element types), so this type
    does not need a bit-level representation.
    """

    def bit_width(self) -> int:  # pragma: no cover - never marshaled
        raise NotImplementedError("primitive internal state has no canonical bit layout")

    def pack(self, value: Any) -> int:  # pragma: no cover - never marshaled
        raise NotImplementedError("primitive internal state cannot be packed")

    def unpack(self, bits: int) -> Any:  # pragma: no cover - never marshaled
        raise NotImplementedError("primitive internal state cannot be unpacked")

    def default(self) -> Tuple[Any, ...]:
        return ()

    def __repr__(self) -> str:
        return "TupleState"
