"""The when-axioms (Figure 8) and guard lifting.

Guard lifting rewrites a rule into the form ``body when guard`` where
``guard`` collects as many of the rule's explicit and implicit guards as the
axioms allow.  The paper uses this in two ways:

* *hardware*: the lifted guard drives the enable of the rule's state
  multiplexers, which is what makes single-cycle atomic execution cheap;
* *software*: if a rule can be put in the form ``A when E`` with ``A`` and
  ``E`` guard-free, then checking ``E`` up front guarantees ``A`` commits,
  so the generated C++ can drop its try/catch block and its shadow state
  (Section 6.3, Figures 9 and 10).

Guards cannot be lifted through sequential composition or loops (the axioms
have no rule for that), so :func:`lift_action` returns a *residual* body that
may still fail; :func:`may_fail` reports whether it can.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.action import (
    Action,
    IfA,
    LetA,
    LocalGuard,
    Loop,
    MethodCallA,
    NoAction,
    Par,
    RegWrite,
    Seq,
    WhenA,
)
from repro.core.expr import (
    BinOp,
    Const,
    Expr,
    FieldSelect,
    KernelCall,
    LetE,
    MethodCallE,
    Mux,
    RegRead,
    TRUE,
    UnOp,
    Var,
    WhenE,
)
from repro.core.module import PrimitiveModule, Rule


def is_true_const(expr: Expr) -> bool:
    return isinstance(expr, Const) and expr.value is True


def conj(*guards: Expr) -> Expr:
    """Conjunction of guards, dropping literal ``True`` terms."""
    useful = [g for g in guards if not is_true_const(g)]
    if not useful:
        return TRUE
    result = useful[0]
    for g in useful[1:]:
        result = BinOp("&&", result, g)
    return result


def disj(a: Expr, b: Expr) -> Expr:
    return BinOp("||", a, b)


def neg(a: Expr) -> Expr:
    return UnOp("!", a)


# --------------------------------------------------------------------------
# expression lifting
# --------------------------------------------------------------------------


def lift_expr(expr: Expr) -> Tuple[Expr, Expr]:
    """Rewrite ``expr`` as ``(body, guard)`` with ``body when guard ≡ expr``.

    The returned body contains no :class:`WhenE` nodes except inside method
    calls (whose implicit guards cannot be lifted without inlining) and
    inside unvisited regions noted below.
    """
    if isinstance(expr, (Const, Var, RegRead)):
        return expr, TRUE
    if isinstance(expr, UnOp):
        body, guard = lift_expr(expr.operand)
        return UnOp(expr.op, body), guard
    if isinstance(expr, BinOp):
        # Short-circuit operators evaluate their right operand conditionally,
        # so its guards cannot be hoisted unconditionally; leave them in place.
        if expr.op in ("&&", "||"):
            left, gl = lift_expr(expr.left)
            return BinOp(expr.op, left, expr.right), gl
        left, gl = lift_expr(expr.left)
        right, gr = lift_expr(expr.right)
        return BinOp(expr.op, left, right), conj(gl, gr)
    if isinstance(expr, Mux):
        cond, gc = lift_expr(expr.cond)
        then, gt = lift_expr(expr.then)
        orelse, ge = lift_expr(expr.orelse)
        # Guards of an arm matter only when that arm is selected (A.5 analogue).
        arm_guard = conj(disj(gt, neg(cond)), disj(ge, cond))
        if is_true_const(gt) and is_true_const(ge):
            arm_guard = TRUE
        return Mux(cond, then, orelse), conj(gc, arm_guard)
    if isinstance(expr, WhenE):
        body, gb = lift_expr(expr.body)
        guard, gg = lift_expr(expr.guard)
        return body, conj(gg, guard, gb)
    if isinstance(expr, LetE):
        value, gv = lift_expr(expr.value)
        body, gb = lift_expr(expr.body)
        # Lets are non-strict: the value's guard only matters if the binding is
        # used, which we conservatively assume (spurious bindings are rare and
        # the conservative direction only makes the lifted rule fail earlier
        # in states where the original body would have failed at the use site).
        guard = conj(LetE(expr.name, value, gb) if not is_true_const(gb) else TRUE, gv)
        return LetE(expr.name, value, body), guard
    if isinstance(expr, FieldSelect):
        body, guard = lift_expr(expr.operand)
        return FieldSelect(body, expr.field), guard
    if isinstance(expr, KernelCall):
        lifted_args: List[Expr] = []
        guards: List[Expr] = []
        for arg in expr.args:
            a, g = lift_expr(arg)
            lifted_args.append(a)
            guards.append(g)
        return (
            KernelCall(expr.name, expr.fn, lifted_args, expr.sw_cycles, expr.hw_cycles),
            conj(*guards),
        )
    if isinstance(expr, MethodCallE):
        # A.8: m.f(e when p) ≡ m.f(e) when p.  For primitive modules that can
        # express their implicit guard symbolically (a FIFO's notEmpty /
        # notFull), that readiness condition is hoisted too; user-module
        # method guards stay attached to the call until inlining exposes them.
        lifted_args = []
        guards = []
        for arg in expr.args:
            a, g = lift_expr(arg)
            lifted_args.append(a)
            guards.append(g)
        guards.append(_primitive_readiness(expr))
        return MethodCallE(expr.instance, expr.method, lifted_args), conj(*guards)
    raise TypeError(f"lift_expr: unhandled expression node {expr!r}")


def _primitive_readiness(call) -> Expr:
    """The hoistable readiness condition of a method call (TRUE when unknown)."""
    instance = call.instance
    if isinstance(instance, PrimitiveModule):
        symbolic = instance.symbolic_guard(call.method, call.args)
        if symbolic is not None:
            return symbolic
    return TRUE


# --------------------------------------------------------------------------
# action lifting
# --------------------------------------------------------------------------


def lift_action(action: Action) -> Tuple[Action, Expr]:
    """Rewrite ``action`` as ``(body, guard)`` with ``body when guard ≡ action``.

    Applies axioms A.1--A.9.  Guards are *not* lifted out of sequential
    composition tails, loops, ``localGuard`` bodies, or method calls (those
    stay as residual guards inside the returned body).
    """
    if isinstance(action, NoAction):
        return action, TRUE
    if isinstance(action, RegWrite):
        value, guard = lift_expr(action.value)  # A.7
        return RegWrite(action.reg, value), guard
    if isinstance(action, WhenA):
        body, gb = lift_action(action.body)  # A.6, A.9
        guard, gg = lift_expr(action.guard)
        return body, conj(gg, guard, gb)
    if isinstance(action, IfA):
        cond, gc = lift_expr(action.cond)  # A.4
        then, gt = lift_action(action.then)  # A.5
        if action.orelse is None:
            guard = conj(gc, disj(gt, neg(cond)) if not is_true_const(gt) else TRUE)
            return IfA(cond, then), guard
        orelse, ge = lift_action(action.orelse)
        arm_guard = conj(
            disj(gt, neg(cond)) if not is_true_const(gt) else TRUE,
            disj(ge, cond) if not is_true_const(ge) else TRUE,
        )
        return IfA(cond, then, orelse), conj(gc, arm_guard)
    if isinstance(action, Par):
        bodies: List[Action] = []
        guards: List[Expr] = []
        for sub in action.actions:  # A.1, A.2
            b, g = lift_action(sub)
            bodies.append(b)
            guards.append(g)
        return Par(bodies), conj(*guards)
    if isinstance(action, Seq):
        # A.3: only the first element's guard can be lifted past the
        # composition; everything downstream stays residual.
        first, g0 = lift_action(action.actions[0])
        rest = list(action.actions[1:])
        if not rest:
            return first, g0
        return Seq([first] + rest), g0
    if isinstance(action, LetA):
        value, gv = lift_expr(action.value)
        body, gb = lift_action(action.body)
        guard = conj(gv, LetE(action.name, value, gb) if not is_true_const(gb) else TRUE)
        return LetA(action.name, value, body), guard
    if isinstance(action, Loop):
        return action, TRUE
    if isinstance(action, LocalGuard):
        # Guard failures do not propagate out of a localGuard.
        return action, TRUE
    if isinstance(action, MethodCallA):
        lifted_args: List[Expr] = []
        guards: List[Expr] = []
        for arg in action.args:  # A.8
            a, g = lift_expr(arg)
            lifted_args.append(a)
            guards.append(g)
        guards.append(_primitive_readiness(action))
        return MethodCallA(action.instance, action.method, lifted_args), conj(*guards)
    raise TypeError(f"lift_action: unhandled action node {action!r}")


def lift_rule(rule: Rule) -> Tuple[Action, Expr]:
    """Lift a rule's guards: returns ``(body, guard)`` (axiom A.9)."""
    return lift_action(rule.action)


# --------------------------------------------------------------------------
# residual-failure analysis
# --------------------------------------------------------------------------


def _method_guard_is_trivial(node, primitive_guards_hoisted: bool = False) -> bool:
    """Whether a method call's implicit guard is statically always true.

    ``primitive_guards_hoisted`` reflects whether guard lifting has already
    hoisted the primitives' readiness conditions (FIFO notEmpty/notFull) to
    the rule's top-level guard: if so, the residual call cannot fail in the
    single-threaded software execution, because nothing changes the FIFO
    between the guard check and the body.
    """
    instance = node.instance
    method = instance.get_method(node.method)
    if isinstance(instance, PrimitiveModule):
        if node.method in ("notEmpty", "notFull", "count", "read", "send", "clear"):
            return True
        if primitive_guards_hoisted and instance.symbolic_guard(node.method, node.args) is not None:
            return True
        return False
    return is_true_const(method.guard) and not may_fail_expr_or_action(
        method.body, primitive_guards_hoisted
    )


def may_fail_expr_or_action(node, primitive_guards_hoisted: bool = False) -> bool:
    """Whether evaluating ``node`` can raise a guard failure."""
    if node is None:
        return False
    for sub in node.walk():
        if isinstance(sub, (WhenE, WhenA)):
            return True
        if isinstance(sub, (MethodCallA, MethodCallE)) and not _method_guard_is_trivial(
            sub, primitive_guards_hoisted
        ):
            return True
    return False


def may_fail(body: Action, primitive_guards_hoisted: bool = False) -> bool:
    """Whether a *lifted* rule body can still fail at run time.

    When this returns ``False`` the generated software can execute the body
    in place -- no try/catch, no rollback, no shadow state (Section 6.3,
    "Avoiding Try/Catch").
    """
    return may_fail_expr_or_action(body, primitive_guards_hoisted)
