"""BCL actions (guarded atomic state updates).

The action fragment of the kernel grammar (Figure 7)::

    a ::= r := e             -- register update
        | if e then a        -- conditional action
        | a | a              -- parallel composition
        | a ; a              -- sequential composition
        | a when e           -- guarded action
        | (t = e in a)       -- let action
        | loop e a           -- loop action
        | localGuard a       -- local guard action
        | m.g(e)             -- action method call

Parallel composition executes both branches against the *same* initial state
(updates are merged and a write to the same register from both sides is a
dynamic DOUBLE-WRITE error); sequential composition lets the second action
observe the first's updates.  Guards (``when``) invalidate the whole
enclosing atomic action when false, except inside ``localGuard`` which turns
a guard failure into a no-op.  See Section 5 of the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.ast import Node
from repro.core.expr import Expr, lift_value


class Action(Node):
    """Base class of all actions."""

    def when(self, guard: Expr) -> "WhenA":
        """``self when guard`` -- attach an explicit guard to this action."""
        return WhenA(self, guard)

    def par(self, other: "Action") -> "Par":
        """Parallel composition ``self | other``."""
        return Par([self, other])

    def seq(self, other: "Action") -> "Seq":
        """Sequential composition ``self ; other``."""
        return Seq([self, other])


class NoAction(Action):
    """The action with no effect (and a true guard)."""

    _child_fields = ()

    def __repr__(self) -> str:
        return "NoAction()"


class RegWrite(Action):
    """Register update ``r := e``."""

    _child_fields = ("value",)

    def __init__(self, reg: "Register", value: Union[Expr, object]):  # noqa: F821
        self.reg = reg
        self.value = lift_value(value)

    def __repr__(self) -> str:
        return f"RegWrite({self.reg.name}, {self.value!r})"


class IfA(Action):
    """Conditional action ``if cond then body``.

    A false condition makes the action a no-op (local effect); contrast with
    :class:`WhenA` whose false guard invalidates the whole atomic action
    (global effect).
    """

    _child_fields = ("cond", "then", "orelse")

    def __init__(self, cond: Expr, then: Action, orelse: Optional[Action] = None):
        self.cond = cond
        self.then = then
        self.orelse = orelse


class Par(Action):
    """Parallel composition of two or more actions (``a | a``)."""

    _child_fields = ("actions",)

    def __init__(self, actions: Sequence[Action]):
        if len(actions) < 1:
            raise ValueError("parallel composition needs at least one action")
        self.actions = list(actions)


class Seq(Action):
    """Sequential composition of two or more actions (``a ; a``)."""

    _child_fields = ("actions",)

    def __init__(self, actions: Sequence[Action]):
        if len(actions) < 1:
            raise ValueError("sequential composition needs at least one action")
        self.actions = list(actions)


class WhenA(Action):
    """Guarded action ``body when guard``."""

    _child_fields = ("body", "guard")

    def __init__(self, body: Action, guard: Expr):
        self.body = body
        self.guard = guard


class LetA(Action):
    """Non-strict let binding inside an action: ``(name = value in body)``."""

    _child_fields = ("value", "body")

    def __init__(self, name: str, value: Expr, body: Action):
        self.name = name
        self.value = value
        self.body = body


class Loop(Action):
    """Loop action ``loop cond body``.

    The body is executed repeatedly (sequential composition of iterations)
    while ``cond`` evaluates to true.  Loops cannot be executed in a single
    hardware clock cycle, so the HW code generator rejects them (Section 6.4);
    they are the software idiom for dynamic-length work (Section 6.3,
    ``xferSW``).
    """

    _child_fields = ("cond", "body")

    def __init__(self, cond: Expr, body: Action, max_iterations: int = 1_000_000):
        self.cond = cond
        self.body = body
        self.max_iterations = max_iterations


class LocalGuard(Action):
    """``localGuard a`` -- convert a guard failure inside ``a`` into a no-op."""

    _child_fields = ("body",)

    def __init__(self, body: Action):
        self.body = body


class MethodCallA(Action):
    """Call of an *action* method ``m.g(e...)`` on a module instance."""

    _child_fields = ("args",)

    def __init__(self, instance: "Module", method: str, args: Sequence[Expr] = ()):  # noqa: F821
        self.instance = instance
        self.method = method
        self.args = [lift_value(a) for a in args]

    def __repr__(self) -> str:
        return f"MethodCallA({self.instance.name}.{self.method}, {self.args!r})"


def par(*actions: Action) -> Action:
    """Parallel composition of any number of actions (flattening singletons)."""
    acts = [a for a in actions if not isinstance(a, NoAction)]
    if not acts:
        return NoAction()
    if len(acts) == 1:
        return acts[0]
    return Par(acts)


def seq(*actions: Action) -> Action:
    """Sequential composition of any number of actions (flattening singletons)."""
    acts = [a for a in actions if not isinstance(a, NoAction)]
    if not acts:
        return NoAction()
    if len(acts) == 1:
        return acts[0]
    return Seq(acts)
