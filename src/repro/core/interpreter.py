"""A reference one-rule-at-a-time simulator for whole (unpartitioned) designs.

This is the executable form of the execution procedure in Section 4.1::

    Repeatedly:
      1. Choose a rule to execute.
      2. Compute the set of state updates and the value of the rule's guard.
      3. If the guard is true, apply the updates.

Rule choice is the only source of non-determinism in BCL; the simulator makes
it explicit and controllable (round-robin, fixed priority, or seeded random)
so that tests can check that *all* schedules produce acceptable behaviours
and that partitioned designs are observationally equivalent to the original.

Two execution backends implement the same semantics:

* ``backend="interp"`` (default) walks the rule ASTs through
  :class:`~repro.core.semantics.Evaluator` -- the semantic reference oracle;
* ``backend="compiled"`` fires each rule through its closure-compiled form
  (:mod:`repro.core.compile`), which skips the per-node dispatch entirely.

The compiled backend additionally uses *dirty-set scheduling*
(:class:`~repro.core.scheduler.RuleWakeup`): a rule whose guard failed is
not re-evaluated until a register in its read set is written.  Skipped
attempts still count as guard failures (they are guaranteed failures), so
``firings``/``guard_failures``/``fire_counts`` match the interp backend's
exhaustive scan exactly.  When an :class:`~repro.core.semantics.EvalHooks`
observer is installed the skip is disabled -- the observer is entitled to
see every attempted evaluation.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.core.compile import raise_for_missing_register, rule_exec
from repro.core.errors import GuardFail, SchedulingError
from repro.core.module import Design, Register, Rule
from repro.core.pycodegen import VALID_BACKENDS, default_rule_backend, generate_rule_execs
from repro.core.scheduler import RuleWakeup
from repro.core.semantics import Evaluator, EvalHooks, RuleOutcome, Store, commit, try_rule


class Simulator:
    """Executes a design under one-rule-at-a-time semantics.

    Parameters
    ----------
    design:
        The elaborated design to execute.
    policy:
        ``"round-robin"`` (default), ``"priority"`` (rule urgency, then
        declaration order) or ``"random"``.
    seed:
        Seed for the ``"random"`` policy, to keep runs reproducible.
    hooks:
        Optional :class:`~repro.core.semantics.EvalHooks` observer (used by
        the software cost model).  Installing hooks disables dirty-set
        skipping so the observer sees every attempted rule evaluation.
    backend:
        ``"interp"`` (tree-walking reference), ``"compiled"`` (closure
        compiled; observationally equivalent and much faster) or
        ``"source"`` (flat generated Python; observationally equivalent
        and faster still).  ``None`` resolves to
        :func:`~repro.core.pycodegen.default_rule_backend` (the
        ``REPRO_RULE_BACKEND`` environment variable, else ``"interp"``).
    """

    def __init__(
        self,
        design: Design,
        policy: str = "round-robin",
        seed: Optional[int] = None,
        hooks: Optional[EvalHooks] = None,
        max_loop_iterations: int = 1_000_000,
        backend: Optional[str] = None,
    ):
        if backend is None:
            backend = default_rule_backend()
        if policy not in ("round-robin", "priority", "random"):
            raise ValueError(f"unknown scheduling policy {policy!r}")
        if backend not in VALID_BACKENDS:
            raise ValueError(f"unknown execution backend {backend!r}")
        self.design = design
        self.policy = policy
        self.backend = backend
        self.rng = random.Random(seed)
        self.hooks = hooks
        self.evaluator = Evaluator(max_loop_iterations=max_loop_iterations)
        self.rules: List[Rule] = list(design.all_rules())
        self._index_of: Dict[Rule, int] = {r: i for i, r in enumerate(self.rules)}
        # Dirty-set scheduling rides with the compiled backend (the interp
        # backend stays the untouched exhaustive-scan reference), and its
        # skipping is exact only when nobody observes the skipped
        # (guaranteed-failing) evaluations.
        self._skip_sleeping = backend != "interp" and hooks is None
        store = design.initial_store()
        if self._skip_sleeping:
            self._wakeup: Optional[RuleWakeup] = RuleWakeup(self.rules)
            self.store: Store = self._wakeup.wrap_store(store)
        else:
            self._wakeup = None
            self.store = store
        self._gen = None
        if backend == "source":
            self._exec, self._gen = generate_rule_execs(
                self.rules, design.name, max_loop_iterations
            )
        elif backend == "compiled":
            self._exec = [rule_exec(r, max_loop_iterations) for r in self.rules]
        else:
            self._exec = []
        self._priority_order: List[Rule] = sorted(
            self.rules, key=lambda r: (-r.urgency, self._index_of[r])
        )
        self._rr_index = 0
        #: Number of rule firings so far.
        self.firings = 0
        #: Number of attempted rule executions whose guard failed.
        self.guard_failures = 0
        #: Firing count per rule name (useful in tests and examples).
        self.fire_counts: Dict[str, int] = {r.full_name: 0 for r in self.rules}

    # -- state access --------------------------------------------------------

    def read(self, reg: Register) -> Any:
        return self.store[reg]

    def write(self, reg: Register, value: Any) -> None:
        """Directly poke a register (test-bench convenience, not a BCL action)."""
        self.store[reg] = value

    # -- scheduling -----------------------------------------------------------

    def _candidate_order(self) -> List[Rule]:
        if self.policy == "priority":
            return self._priority_order
        if self.policy == "random":
            order = list(self.rules)
            self.rng.shuffle(order)
            return order
        # round-robin: start from the rule after the last one that fired
        i = self._rr_index
        return self.rules[i:] + self.rules[:i]

    # -- rule attempt (both backends) -----------------------------------------

    def _attempt(self, rule: Rule) -> Optional[Dict[Register, Any]]:
        """Evaluate ``rule``; its updates if the guard held, else ``None``."""
        if self.backend != "interp":
            read = self.store.__getitem__
            try:
                if self.hooks is not None:
                    return self._exec[self._index_of[rule]].hooked(read, self.hooks)
                return self._exec[self._index_of[rule]].fast(read)
            except GuardFail:
                return None
            except KeyError as exc:
                raise_for_missing_register(exc)
                raise
        outcome = try_rule(rule, self.store, self.evaluator, self.hooks)
        return outcome.updates if outcome.fired else None

    def step(self) -> Optional[RuleOutcome]:
        """Attempt rules (in policy order) until one fires; commit and return it.

        Returns ``None`` when no rule can fire in the current state (the
        design is quiescent / deadlocked).
        """
        if not self.rules:
            return None
        # Re-checked per step so an observer installed after construction
        # still sees every attempted evaluation.
        skip_sleeping = self._skip_sleeping and self.hooks is None
        wakeup = self._wakeup
        sleeping = None
        if skip_sleeping:
            if self.policy != "random" and wakeup.all_asleep:
                # Quiescent: every rule is known guard-disabled.  (The random
                # policy still runs the scan so its RNG consumption -- one
                # shuffle per step -- matches an exhaustive scheduler exactly.)
                self.guard_failures += len(self.rules)
                return None
            sleeping = wakeup.sleeping
        index_of = self._index_of
        for rule in self._candidate_order():
            i = index_of[rule]
            if sleeping is not None and sleeping[i]:
                # Guaranteed guard failure: nothing the rule reads changed
                # since it last failed.
                self.guard_failures += 1
                continue
            updates = self._attempt(rule)
            if updates is None:
                if skip_sleeping:
                    wakeup.sleep_index(i)
                self.guard_failures += 1
                continue
            commit(self.store, updates)
            self.firings += 1
            self.fire_counts[rule.full_name] += 1
            self._rr_index = (i + 1) % len(self.rules)
            return RuleOutcome(rule, fired=True, updates=updates)
        return None

    def run(self, max_steps: int = 10_000) -> int:
        """Fire rules until quiescence or ``max_steps`` firings; return the count."""
        fired = 0
        for _ in range(max_steps):
            if self.step() is None:
                return fired
            fired += 1
        return fired

    def run_until(
        self,
        predicate: Callable[["Simulator"], bool],
        max_steps: int = 1_000_000,
    ) -> int:
        """Fire rules until ``predicate(self)`` holds.

        Raises :class:`SchedulingError` if the design goes quiescent or the
        step bound is exhausted before the predicate becomes true.
        """
        fired = 0
        while not predicate(self):
            if fired >= max_steps:
                raise SchedulingError(
                    f"predicate not reached within {max_steps} rule firings"
                )
            if self.step() is None:
                raise SchedulingError(
                    "design is quiescent but the termination predicate does not hold"
                )
            fired += 1
        return fired
