"""A reference one-rule-at-a-time simulator for whole (unpartitioned) designs.

This is the executable form of the execution procedure in Section 4.1::

    Repeatedly:
      1. Choose a rule to execute.
      2. Compute the set of state updates and the value of the rule's guard.
      3. If the guard is true, apply the updates.

Rule choice is the only source of non-determinism in BCL; the simulator makes
it explicit and controllable (round-robin, fixed priority, or seeded random)
so that tests can check that *all* schedules produce acceptable behaviours
and that partitioned designs are observationally equivalent to the original.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import SchedulingError
from repro.core.module import Design, Register, Rule
from repro.core.semantics import Evaluator, EvalHooks, RuleOutcome, Store, commit, try_rule


class Simulator:
    """Executes a design under one-rule-at-a-time semantics.

    Parameters
    ----------
    design:
        The elaborated design to execute.
    policy:
        ``"round-robin"`` (default), ``"priority"`` (rule urgency, then
        declaration order) or ``"random"``.
    seed:
        Seed for the ``"random"`` policy, to keep runs reproducible.
    hooks:
        Optional :class:`~repro.core.semantics.EvalHooks` observer (used by
        the software cost model).
    """

    def __init__(
        self,
        design: Design,
        policy: str = "round-robin",
        seed: Optional[int] = None,
        hooks: Optional[EvalHooks] = None,
        max_loop_iterations: int = 1_000_000,
    ):
        if policy not in ("round-robin", "priority", "random"):
            raise ValueError(f"unknown scheduling policy {policy!r}")
        self.design = design
        self.policy = policy
        self.rng = random.Random(seed)
        self.hooks = hooks
        self.evaluator = Evaluator(max_loop_iterations=max_loop_iterations)
        self.store: Store = design.initial_store()
        self.rules: List[Rule] = list(design.all_rules())
        self._rr_index = 0
        #: Number of rule firings so far.
        self.firings = 0
        #: Number of attempted rule executions whose guard failed.
        self.guard_failures = 0
        #: Firing count per rule name (useful in tests and examples).
        self.fire_counts: Dict[str, int] = {r.full_name: 0 for r in self.rules}

    # -- state access --------------------------------------------------------

    def read(self, reg: Register) -> Any:
        return self.store[reg]

    def write(self, reg: Register, value: Any) -> None:
        """Directly poke a register (test-bench convenience, not a BCL action)."""
        self.store[reg] = value

    # -- scheduling -----------------------------------------------------------

    def _candidate_order(self) -> List[Rule]:
        if self.policy == "priority":
            return sorted(
                self.rules, key=lambda r: (-r.urgency, self.rules.index(r))
            )
        if self.policy == "random":
            order = list(self.rules)
            self.rng.shuffle(order)
            return order
        # round-robin: start from the rule after the last one that fired
        n = len(self.rules)
        return [self.rules[(self._rr_index + i) % n] for i in range(n)]

    def step(self) -> Optional[RuleOutcome]:
        """Attempt rules (in policy order) until one fires; commit and return it.

        Returns ``None`` when no rule can fire in the current state (the
        design is quiescent / deadlocked).
        """
        if not self.rules:
            return None
        order = self._candidate_order()
        for rule in order:
            outcome = try_rule(rule, self.store, self.evaluator, self.hooks)
            if outcome.fired:
                commit(self.store, outcome.updates)
                self.firings += 1
                self.fire_counts[rule.full_name] += 1
                self._rr_index = (self.rules.index(rule) + 1) % len(self.rules)
                return outcome
            self.guard_failures += 1
        return None

    def run(self, max_steps: int = 10_000) -> int:
        """Fire rules until quiescence or ``max_steps`` firings; return the count."""
        fired = 0
        for _ in range(max_steps):
            if self.step() is None:
                return fired
            fired += 1
        return fired

    def run_until(
        self,
        predicate: Callable[["Simulator"], bool],
        max_steps: int = 1_000_000,
    ) -> int:
        """Fire rules until ``predicate(self)`` holds.

        Raises :class:`SchedulingError` if the design goes quiescent or the
        step bound is exhausted before the predicate becomes true.
        """
        fired = 0
        while not predicate(self):
            if fired >= max_steps:
                raise SchedulingError(
                    f"predicate not reached within {max_steps} rule firings"
                )
            if self.step() is None:
                raise SchedulingError(
                    "design is quiescent but the termination predicate does not hold"
                )
            fired += 1
        return fired
