"""Code transformations that reduce the cost of generated software (Section 6.3).

Four transformations are implemented, each individually switchable through
:class:`OptimizationConfig` so that the ablation benchmarks can measure their
effect exactly as the paper discusses them:

* **Guard lifting** -- hoist ``when`` guards to the top of the rule so the
  scheduler can reject a rule before doing any work
  (:func:`repro.core.guards.lift_rule`).
* **Method inlining / try-catch avoidance** -- inline user-module method
  calls so their implicit guards become visible and liftable; once a rule's
  residual body cannot fail, the generated code needs neither the try/catch
  block nor the commit/rollback machinery (Figures 9 and 10).
* **Sequentialisation of parallel actions** -- replace ``A | B`` by ``A ; B``
  when the write set of ``A`` is disjoint from the read set of ``B``,
  removing the need for dynamically allocated parallel shadows.
* **Partial shadowing** -- shadow only the registers a rule can actually
  write instead of the whole module state.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.action import (
    Action,
    IfA,
    LetA,
    LocalGuard,
    Loop,
    MethodCallA,
    NoAction,
    Par,
    RegWrite,
    Seq,
    WhenA,
)
from repro.core.analysis import read_set, rule_write_set, write_set
from repro.core.expr import (
    BinOp,
    Const,
    Expr,
    FieldSelect,
    KernelCall,
    LetE,
    MethodCallE,
    Mux,
    RegRead,
    UnOp,
    Var,
    WhenE,
)
from repro.core.guards import conj, lift_action
from repro.core.module import Design, Module, PrimitiveModule, Register, Rule


@dataclass(frozen=True)
class OptimizationConfig:
    """Which of the Section 6.3 software optimisations are enabled."""

    lift_guards: bool = True
    inline_methods: bool = True
    sequentialize: bool = True
    partial_shadowing: bool = True

    @classmethod
    def none(cls) -> "OptimizationConfig":
        """The naive compilation scheme of Figure 9."""
        return cls(False, False, False, False)

    @classmethod
    def all(cls) -> "OptimizationConfig":
        """The fully optimised scheme of Figure 10."""
        return cls(True, True, True, True)

    def describe(self) -> str:
        flags = []
        for name in ("lift_guards", "inline_methods", "sequentialize", "partial_shadowing"):
            flags.append(f"{name}={'on' if getattr(self, name) else 'off'}")
        return ", ".join(flags)


# --------------------------------------------------------------------------
# method inlining
# --------------------------------------------------------------------------


def _freshen(name: str, counter: Dict[str, int]) -> str:
    counter[name] = counter.get(name, 0) + 1
    return f"{name}${counter[name]}"


def inline_methods_expr(expr: Expr, _counter: Optional[Dict[str, int]] = None) -> Expr:
    """Inline user-module value-method calls inside an expression."""
    counter = _counter if _counter is not None else {}

    def rec_e(e: Expr) -> Expr:
        if isinstance(e, (Const, Var, RegRead)):
            return e
        if isinstance(e, UnOp):
            return UnOp(e.op, rec_e(e.operand))
        if isinstance(e, BinOp):
            return BinOp(e.op, rec_e(e.left), rec_e(e.right))
        if isinstance(e, Mux):
            return Mux(rec_e(e.cond), rec_e(e.then), rec_e(e.orelse))
        if isinstance(e, WhenE):
            return WhenE(rec_e(e.body), rec_e(e.guard))
        if isinstance(e, LetE):
            return LetE(e.name, rec_e(e.value), rec_e(e.body))
        if isinstance(e, FieldSelect):
            return FieldSelect(rec_e(e.operand), e.field)
        if isinstance(e, KernelCall):
            return KernelCall(
                e.name, e.fn, [rec_e(a) for a in e.args], e.sw_cycles, e.hw_cycles
            )
        if isinstance(e, MethodCallE):
            instance, method = e.instance, e.instance.get_method(e.method)
            args = [rec_e(a) for a in e.args]
            if isinstance(instance, PrimitiveModule) or method.body is None:
                return MethodCallE(instance, e.method, args)
            # Inline: bind parameters with fresh names, attach the implicit guard.
            body = inline_methods_expr(method.body, counter)
            guard = inline_methods_expr(method.guard, counter)
            renames = {p: _freshen(p, counter) for p in method.params}
            body = _rename_vars_expr(body, renames)
            guard = _rename_vars_expr(guard, renames)
            result: Expr = WhenE(body, guard) if not _is_true(guard) else body
            for param, arg in reversed(list(zip(method.params, args))):
                result = LetE(renames[param], arg, result)
            return result
        raise TypeError(f"inline_methods_expr: unhandled node {e!r}")

    return rec_e(expr)


def inline_methods_action(action: Action, _counter: Optional[Dict[str, int]] = None) -> Action:
    """Inline user-module method calls (action and value) inside an action."""
    counter = _counter if _counter is not None else {}

    def rec_a(a: Action) -> Action:
        if isinstance(a, NoAction):
            return a
        if isinstance(a, RegWrite):
            return RegWrite(a.reg, inline_methods_expr(a.value, counter))
        if isinstance(a, IfA):
            return IfA(
                inline_methods_expr(a.cond, counter),
                rec_a(a.then),
                rec_a(a.orelse) if a.orelse is not None else None,
            )
        if isinstance(a, WhenA):
            return WhenA(rec_a(a.body), inline_methods_expr(a.guard, counter))
        if isinstance(a, Par):
            return Par([rec_a(s) for s in a.actions])
        if isinstance(a, Seq):
            return Seq([rec_a(s) for s in a.actions])
        if isinstance(a, LetA):
            return LetA(a.name, inline_methods_expr(a.value, counter), rec_a(a.body))
        if isinstance(a, Loop):
            return Loop(inline_methods_expr(a.cond, counter), rec_a(a.body), a.max_iterations)
        if isinstance(a, LocalGuard):
            return LocalGuard(rec_a(a.body))
        if isinstance(a, MethodCallA):
            instance, method = a.instance, a.instance.get_method(a.method)
            args = [inline_methods_expr(arg, counter) for arg in a.args]
            if isinstance(instance, PrimitiveModule) or method.body is None:
                return MethodCallA(instance, a.method, args)
            body = inline_methods_action(method.body, counter)
            guard = inline_methods_expr(method.guard, counter)
            renames = {p: _freshen(p, counter) for p in method.params}
            body = _rename_vars_action(body, renames)
            guard = _rename_vars_expr(guard, renames)
            result: Action = WhenA(body, guard) if not _is_true(guard) else body
            for param, arg in reversed(list(zip(method.params, args))):
                result = LetA(renames[param], arg, result)
            return result
        raise TypeError(f"inline_methods_action: unhandled node {a!r}")

    return rec_a(action)


def _is_true(expr: Expr) -> bool:
    return isinstance(expr, Const) and expr.value is True


def _rename_vars_expr(expr: Expr, renames: Dict[str, str]) -> Expr:
    if not renames:
        return expr
    if isinstance(expr, Var):
        return Var(renames.get(expr.name, expr.name))
    if isinstance(expr, (Const, RegRead)):
        return expr
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _rename_vars_expr(expr.operand, renames))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _rename_vars_expr(expr.left, renames),
            _rename_vars_expr(expr.right, renames),
        )
    if isinstance(expr, Mux):
        return Mux(
            _rename_vars_expr(expr.cond, renames),
            _rename_vars_expr(expr.then, renames),
            _rename_vars_expr(expr.orelse, renames),
        )
    if isinstance(expr, WhenE):
        return WhenE(
            _rename_vars_expr(expr.body, renames), _rename_vars_expr(expr.guard, renames)
        )
    if isinstance(expr, LetE):
        inner = dict(renames)
        inner.pop(expr.name, None)  # shadowed
        return LetE(
            expr.name,
            _rename_vars_expr(expr.value, renames),
            _rename_vars_expr(expr.body, inner),
        )
    if isinstance(expr, FieldSelect):
        return FieldSelect(_rename_vars_expr(expr.operand, renames), expr.field)
    if isinstance(expr, KernelCall):
        return KernelCall(
            expr.name,
            expr.fn,
            [_rename_vars_expr(a, renames) for a in expr.args],
            expr.sw_cycles,
            expr.hw_cycles,
        )
    if isinstance(expr, MethodCallE):
        return MethodCallE(
            expr.instance, expr.method, [_rename_vars_expr(a, renames) for a in expr.args]
        )
    raise TypeError(f"_rename_vars_expr: unhandled node {expr!r}")


def _rename_vars_action(action: Action, renames: Dict[str, str]) -> Action:
    if not renames:
        return action
    if isinstance(action, NoAction):
        return action
    if isinstance(action, RegWrite):
        return RegWrite(action.reg, _rename_vars_expr(action.value, renames))
    if isinstance(action, IfA):
        return IfA(
            _rename_vars_expr(action.cond, renames),
            _rename_vars_action(action.then, renames),
            _rename_vars_action(action.orelse, renames) if action.orelse is not None else None,
        )
    if isinstance(action, WhenA):
        return WhenA(
            _rename_vars_action(action.body, renames),
            _rename_vars_expr(action.guard, renames),
        )
    if isinstance(action, Par):
        return Par([_rename_vars_action(s, renames) for s in action.actions])
    if isinstance(action, Seq):
        return Seq([_rename_vars_action(s, renames) for s in action.actions])
    if isinstance(action, LetA):
        inner = dict(renames)
        inner.pop(action.name, None)
        return LetA(
            action.name,
            _rename_vars_expr(action.value, renames),
            _rename_vars_action(action.body, inner),
        )
    if isinstance(action, Loop):
        return Loop(
            _rename_vars_expr(action.cond, renames),
            _rename_vars_action(action.body, renames),
            action.max_iterations,
        )
    if isinstance(action, LocalGuard):
        return LocalGuard(_rename_vars_action(action.body, renames))
    if isinstance(action, MethodCallA):
        return MethodCallA(
            action.instance,
            action.method,
            [_rename_vars_expr(a, renames) for a in action.args],
        )
    raise TypeError(f"_rename_vars_action: unhandled node {action!r}")


# --------------------------------------------------------------------------
# sequentialisation of parallel actions
# --------------------------------------------------------------------------


def _order_is_sequentializable(actions: List[Action]) -> bool:
    """Whether executing ``actions`` in order is equivalent to their parallel composition."""
    for i in range(len(actions)):
        w_i = write_set(actions[i])
        for j in range(i + 1, len(actions)):
            if w_i & read_set(actions[j]):
                return False
            if w_i & write_set(actions[j]):
                # A double write would be an error anyway; stay conservative
                # and keep the parallel form so the error is reported there.
                return False
    return True


def sequentialize_action(action: Action) -> Action:
    """Replace parallel compositions by equivalent sequential ones where legal.

    Children are transformed first.  For a parallel group the given order is
    tried first, then all permutations (the group sizes in real designs are
    tiny), falling back to the parallel form when no legal order exists --
    e.g. the register swap ``a := b | b := a``.
    """
    if isinstance(action, Par):
        children = [sequentialize_action(a) for a in action.actions]
        if _order_is_sequentializable(children):
            return Seq(children) if len(children) > 1 else children[0]
        if len(children) <= 6:
            for perm in itertools.permutations(children):
                if _order_is_sequentializable(list(perm)):
                    return Seq(list(perm))
        return Par(children)
    if isinstance(action, Seq):
        return Seq([sequentialize_action(a) for a in action.actions])
    if isinstance(action, IfA):
        return IfA(
            action.cond,
            sequentialize_action(action.then),
            sequentialize_action(action.orelse) if action.orelse is not None else None,
        )
    if isinstance(action, WhenA):
        return WhenA(sequentialize_action(action.body), action.guard)
    if isinstance(action, LetA):
        return LetA(action.name, action.value, sequentialize_action(action.body))
    if isinstance(action, Loop):
        return Loop(action.cond, sequentialize_action(action.body), action.max_iterations)
    if isinstance(action, LocalGuard):
        return LocalGuard(sequentialize_action(action.body))
    return action


# --------------------------------------------------------------------------
# whole-rule compilation product
# --------------------------------------------------------------------------


@dataclass
class CompiledRule:
    """The result of applying the software optimisations to one rule.

    ``guard`` is the lifted top-level guard (``True`` when nothing was
    lifted), ``body`` the residual action, ``can_fail`` whether the residual
    body may still raise a guard failure (deciding try/catch + rollback),
    and ``shadow_registers`` the set of registers that must be shadowed
    before executing the body.  ``compiled_fn`` caches the closure-compiled
    form of the guard/body pair (see :mod:`repro.core.compile`); it is
    populated lazily by :func:`repro.core.compile.compiled_rule_exec` when an
    engine runs with ``backend="compiled"``.
    """

    rule: Rule
    guard: Expr
    body: Action
    can_fail: bool
    shadow_registers: Set[Register]
    config: OptimizationConfig
    compiled_fn: Optional[object] = None

    @property
    def needs_shadow(self) -> bool:
        return self.can_fail and bool(self.shadow_registers)


def compile_rule(
    rule: Rule,
    config: OptimizationConfig,
    all_registers: Optional[List[Register]] = None,
) -> CompiledRule:
    """Apply the enabled Section 6.3 transformations to a rule.

    The result is memoised per ``(rule, config)``: the transformations are
    deterministic over the immutable elaborated rule, and every engine
    construction over the same design would otherwise redo the full
    inline/sequentialise/lift pipeline (and lose the closure-compiled form
    cached on the result).
    """
    cache = getattr(rule, "_compile_rule_cache", None)
    if cache is None:
        cache = {}
        rule._compile_rule_cache = cache  # type: ignore[attr-defined]
    key = (config, None if all_registers is None else tuple(all_registers))
    cached = cache.get(key)
    if cached is not None:
        return cached
    compiled = _compile_rule_uncached(rule, config, all_registers)
    cache[key] = compiled
    return compiled


def _compile_rule_uncached(
    rule: Rule,
    config: OptimizationConfig,
    all_registers: Optional[List[Register]] = None,
) -> CompiledRule:
    from repro.core.guards import may_fail
    from repro.core.expr import TRUE

    body: Action = rule.action
    if config.inline_methods:
        body = inline_methods_action(body)
    if config.sequentialize:
        body = sequentialize_action(body)
    guard: Expr = TRUE
    if config.lift_guards:
        body, guard = lift_action(body)

    can_fail = may_fail(body, primitive_guards_hoisted=config.lift_guards)
    if config.partial_shadowing:
        shadow = write_set(body)
    else:
        shadow = set(all_registers) if all_registers is not None else write_set(body)
    if not can_fail:
        # In-place execution: no shadow needed at all (Section 6.3).
        shadow = set() if config.partial_shadowing else shadow
    return CompiledRule(rule, guard, body, can_fail, shadow, config)


def compile_design_rules(
    design: Design, config: OptimizationConfig
) -> Dict[Rule, CompiledRule]:
    """Compile every rule of a design under the given optimisation config."""
    all_regs = design.all_registers()
    return {rule: compile_rule(rule, config, all_regs) for rule in design.all_rules()}
