"""Bit-accurate BCL types.

Section 2.3 of the paper identifies data-representation mismatch as a major
source of HW/SW codesign bugs: the C++ and Verilog compilers may lay out the
"same" struct differently.  BCL solves this by giving every type a single
canonical bit-level representation used on both sides of the interface.  The
classes here implement that: every type knows its bit width and can ``pack``
a Python-level value into an unsigned integer of exactly that many bits (and
``unpack`` it back).  The marshaling layer (:mod:`repro.platform.marshal`)
builds channel messages exclusively from these packed representations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Sequence, Tuple

from repro.core.errors import TypeCheckError
from repro.core.fixedpoint import FixComplex, FixedPoint


class BCLType:
    """Base class of all BCL types."""

    def bit_width(self) -> int:
        """Number of bits of the canonical representation."""
        raise NotImplementedError

    def pack(self, value: Any) -> int:
        """Encode ``value`` as an unsigned integer of :meth:`bit_width` bits."""
        raise NotImplementedError

    def unpack(self, bits: int) -> Any:
        """Decode an unsigned integer produced by :meth:`pack`."""
        raise NotImplementedError

    def default(self) -> Any:
        """The reset value of a register of this type."""
        raise NotImplementedError

    def accepts(self, value: Any) -> bool:
        """Whether ``value`` is a legal inhabitant of this type."""
        try:
            self.pack(value)
            return True
        except (TypeCheckError, TypeError, ValueError):
            return False

    def check(self, value: Any, context: str = "") -> None:
        if not self.accepts(value):
            raise TypeCheckError(
                f"value {value!r} is not a member of type {self}"
                + (f" ({context})" if context else "")
            )

    def __repr__(self) -> str:  # pragma: no cover - subclasses override
        return self.__class__.__name__


def _check_range(value: int, lo: int, hi: int, type_repr: str) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeCheckError(f"{type_repr} expects an int, got {value!r}")
    if not lo <= value <= hi:
        raise TypeCheckError(f"value {value} out of range [{lo}, {hi}] for {type_repr}")


@dataclass(frozen=True)
class BoolT(BCLType):
    """The Boolean type (one bit)."""

    def bit_width(self) -> int:
        return 1

    def pack(self, value: Any) -> int:
        if not isinstance(value, bool):
            raise TypeCheckError(f"Bool expects a bool, got {value!r}")
        return 1 if value else 0

    def unpack(self, bits: int) -> bool:
        return bool(bits & 1)

    def default(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "Bool"


@dataclass(frozen=True)
class BitT(BCLType):
    """Raw bit vector of width ``n`` (unsigned integer value)."""

    n: int

    def bit_width(self) -> int:
        return self.n

    def pack(self, value: Any) -> int:
        _check_range(value, 0, (1 << self.n) - 1, repr(self))
        return value

    def unpack(self, bits: int) -> int:
        return bits & ((1 << self.n) - 1)

    def default(self) -> int:
        return 0

    def __repr__(self) -> str:
        return f"Bit#({self.n})"


@dataclass(frozen=True)
class UIntT(BCLType):
    """Unsigned integer of width ``n``."""

    n: int = 32

    def bit_width(self) -> int:
        return self.n

    def pack(self, value: Any) -> int:
        _check_range(value, 0, (1 << self.n) - 1, repr(self))
        return value

    def unpack(self, bits: int) -> int:
        return bits & ((1 << self.n) - 1)

    def default(self) -> int:
        return 0

    def __repr__(self) -> str:
        return f"UInt#({self.n})"


@dataclass(frozen=True)
class IntT(BCLType):
    """Signed two's-complement integer of width ``n``."""

    n: int = 32

    def bit_width(self) -> int:
        return self.n

    def pack(self, value: Any) -> int:
        lo = -(1 << (self.n - 1))
        hi = (1 << (self.n - 1)) - 1
        _check_range(value, lo, hi, repr(self))
        return value & ((1 << self.n) - 1)

    def unpack(self, bits: int) -> int:
        bits &= (1 << self.n) - 1
        if bits >= 1 << (self.n - 1):
            bits -= 1 << self.n
        return bits

    def default(self) -> int:
        return 0

    def __repr__(self) -> str:
        return f"Int#({self.n})"


@dataclass(frozen=True)
class FixPtT(BCLType):
    """Signed fixed-point type; values are :class:`~repro.core.fixedpoint.FixedPoint`."""

    int_bits: int = 8
    frac_bits: int = 24

    def bit_width(self) -> int:
        return self.int_bits + self.frac_bits

    def pack(self, value: Any) -> int:
        if not isinstance(value, FixedPoint):
            raise TypeCheckError(f"{self!r} expects FixedPoint, got {value!r}")
        if (value.int_bits, value.frac_bits) != (self.int_bits, self.frac_bits):
            raise TypeCheckError(
                f"fixed-point format mismatch: value is {value.int_bits}.{value.frac_bits}, "
                f"type is {self.int_bits}.{self.frac_bits}"
            )
        return value.to_bits()

    def unpack(self, bits: int) -> FixedPoint:
        return FixedPoint.from_bits(bits, self.int_bits, self.frac_bits)

    def default(self) -> FixedPoint:
        return FixedPoint.zero(self.int_bits, self.frac_bits)

    def __repr__(self) -> str:
        return f"FixPt#({self.int_bits},{self.frac_bits})"


@dataclass(frozen=True)
class ComplexT(BCLType):
    """Complex number over a fixed-point element type (``Complex#(FixPt)``)."""

    elem: FixPtT = FixPtT()

    def bit_width(self) -> int:
        return 2 * self.elem.bit_width()

    def pack(self, value: Any) -> int:
        if not isinstance(value, FixComplex):
            raise TypeCheckError(f"{self!r} expects FixComplex, got {value!r}")
        w = self.elem.bit_width()
        return (self.elem.pack(value.real) << w) | self.elem.pack(value.imag)

    def unpack(self, bits: int) -> FixComplex:
        w = self.elem.bit_width()
        imag = self.elem.unpack(bits & ((1 << w) - 1))
        real = self.elem.unpack(bits >> w)
        return FixComplex(real, imag)

    def default(self) -> FixComplex:
        return FixComplex(self.elem.default(), self.elem.default())

    def __repr__(self) -> str:
        return f"Complex#({self.elem!r})"


class VectorT(BCLType):
    """Fixed-length vector of a homogeneous element type (``Vector#(n, t)``).

    Values are tuples of length ``n``.  Element 0 occupies the least
    significant bits, matching BSV's packing convention.
    """

    def __init__(self, n: int, elem: BCLType):
        if n <= 0:
            raise TypeCheckError("vector length must be positive")
        self.n = n
        self.elem = elem

    def bit_width(self) -> int:
        cached = getattr(self, "_bit_width_cache", None)
        if cached is None:
            cached = self.n * self.elem.bit_width()
            self._bit_width_cache = cached
        return cached

    def pack(self, value: Any) -> int:
        if not isinstance(value, (tuple, list)) or len(value) != self.n:
            raise TypeCheckError(
                f"{self!r} expects a sequence of length {self.n}, got {value!r}"
            )
        w = self.elem.bit_width()
        bits = 0
        for i, v in enumerate(value):
            bits |= self.elem.pack(v) << (i * w)
        return bits

    def unpack(self, bits: int) -> Tuple[Any, ...]:
        w = self.elem.bit_width()
        mask = (1 << w) - 1
        return tuple(self.elem.unpack((bits >> (i * w)) & mask) for i in range(self.n))

    def default(self) -> Tuple[Any, ...]:
        return tuple(self.elem.default() for _ in range(self.n))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorT) and other.n == self.n and other.elem == self.elem

    def __hash__(self) -> int:
        return hash(("VectorT", self.n, self.elem))

    def __repr__(self) -> str:
        return f"Vector#({self.n},{self.elem!r})"


class StructT(BCLType):
    """A named product type with ordered fields (``struct { ... }``).

    Values are plain dictionaries keyed by field name.  The first declared
    field occupies the most significant bits, matching the struct packing of
    BSV and the canonical layout generated for the C++ side.
    """

    def __init__(self, name: str, fields: Sequence[Tuple[str, BCLType]]):
        if not fields:
            raise TypeCheckError(f"struct {name} must have at least one field")
        names = [f for f, _ in fields]
        if len(set(names)) != len(names):
            raise TypeCheckError(f"struct {name} has duplicate field names")
        self.name = name
        self.fields: Tuple[Tuple[str, BCLType], ...] = tuple(fields)

    def field_type(self, field: str) -> BCLType:
        for f, t in self.fields:
            if f == field:
                return t
        raise TypeCheckError(f"struct {self.name} has no field {field!r}")

    def bit_width(self) -> int:
        # Memoised: struct widths sit on the per-message marshaling path.
        cached = getattr(self, "_bit_width_cache", None)
        if cached is None:
            cached = sum(t.bit_width() for _, t in self.fields)
            self._bit_width_cache = cached
        return cached

    def pack(self, value: Any) -> int:
        if not isinstance(value, Mapping):
            raise TypeCheckError(f"{self!r} expects a mapping, got {value!r}")
        missing = [f for f, _ in self.fields if f not in value]
        if missing:
            raise TypeCheckError(f"struct {self.name} value missing fields {missing}")
        bits = 0
        for fname, ftype in self.fields:
            bits = (bits << ftype.bit_width()) | ftype.pack(value[fname])
        return bits

    def unpack(self, bits: int) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for fname, ftype in reversed(self.fields):
            w = ftype.bit_width()
            out[fname] = ftype.unpack(bits & ((1 << w) - 1))
            bits >>= w
        return {f: out[f] for f, _ in self.fields}

    def default(self) -> Dict[str, Any]:
        return {f: t.default() for f, t in self.fields}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StructT)
            and other.name == self.name
            and other.fields == self.fields
        )

    def __hash__(self) -> int:
        return hash(("StructT", self.name, self.fields))

    def __repr__(self) -> str:
        inner = ", ".join(f"{f}: {t!r}" for f, t in self.fields)
        return f"Struct {self.name} {{{inner}}}"


class OpaqueT(BCLType):
    """Internal-only state with no canonical bit representation.

    Used for registers that never cross a domain boundary (e.g. the ray
    tracer's traversal stack).  Packing such a value is an error by design:
    if it ever reaches a synchronizer the marshaling layer fails loudly,
    which is exactly the data-format discipline the paper argues for.
    """

    def __init__(self, default: Any = None):
        self._default = default

    def bit_width(self) -> int:
        raise TypeCheckError("opaque internal state has no canonical bit layout")

    def pack(self, value: Any) -> int:
        raise TypeCheckError("opaque internal state cannot cross a domain boundary")

    def unpack(self, bits: int) -> Any:
        raise TypeCheckError("opaque internal state cannot cross a domain boundary")

    def default(self) -> Any:
        return self._default

    def accepts(self, value: Any) -> bool:
        return True

    def check(self, value: Any, context: str = "") -> None:
        return None

    def __repr__(self) -> str:
        return "Opaque"


def words_for(ty: BCLType, word_bits: int = 32) -> int:
    """Number of ``word_bits``-wide channel words needed to carry one value of ``ty``.

    Used by the interface generator and the channel cost model: a
    ``Vector#(64, Complex#(FixPt#(8,24)))`` frame occupies 128 32-bit words.
    """
    width = ty.bit_width()
    return (width + word_bits - 1) // word_bits
