"""Closure compilation: lower rules to nested Python closures at elaboration.

The paper's generated C++ is fast because every BCL rule is *compiled* --
guard lifting, inlining and sequentialisation turn it into straight-line
code -- whereas :class:`~repro.core.semantics.Evaluator` re-dispatches over
the AST (a chain of ``isinstance`` tests, dict-copied environments and
operator-table lookups) on every firing.  This module closes that gap for
the Python reproduction: each :class:`~repro.core.expr.Expr` /
:class:`~repro.core.action.Action` node is lowered *once* to a closure, so
firing a rule afterwards is one call through a tree of precompiled closures
with

* constants, operator functions (``BINARY_OPS``), native method
  implementations and method bodies resolved at compile time,
* environments as tuples indexed by statically assigned slots instead of
  per-``let`` dict copies,
* observation hooks specialised away entirely when none are installed, and
* prebuilt :class:`~repro.core.errors.GuardFail` instances on the failure
  paths (mirroring the generated C++'s cheap ``throw``).

Three closure *modes* are produced lazily per rule:

``fast``
    No hooks at all -- used by the reference simulator when no observer is
    installed.
``hooked``
    Calls the :class:`~repro.core.semantics.EvalHooks` callbacks that carry
    cost information (``on_register_read``/``on_register_write``,
    ``on_kernel``, ``on_method``, ``on_guard_fail``) exactly as the tree
    walker does, and ``on_node`` for the cost-bearing arithmetic nodes
    (``BinOp``/``UnOp``/``Mux``/``FieldSelect``).  Structural nodes do not
    trigger ``on_node`` (the tree walker visits them, but no cost model
    observes them), so ``SwCostAccumulator.cpu_cycles`` is reproduced
    bit-for-bit while ``nodes_visited`` intentionally counts fewer nodes.
``latency``
    Calls only ``on_kernel``/``on_method`` -- the callbacks
    :class:`~repro.sim.costmodel.HwLatencyAccumulator` observes -- so the
    hardware engine can compute a rule's updates *and* its FSM latency in a
    single evaluation.

Every compiled closure has the uniform signature ``fn(env, read, hooks)``
(``env`` a tuple of slot values, ``read`` the register-read function,
``hooks`` ignored in ``fast`` mode), which keeps composition trivial.
Action closures always return a *fresh* updates dict, which lets parallel
composition reuse its first branch's dict as the merge accumulator.

Evaluation order, laziness (non-strict lets are memoised thunk cells) and
guard-failure points mirror the tree walker exactly; the tree walker remains
the semantic reference oracle behind the engines' ``backend="interp"``
switch, and ``tests/test_compiled_backend.py`` checks observational
equivalence (stores, fire counts, cost statistics) between the two.

Compiled closures assume the elaborated design is immutable (rule actions
and method bodies are never rewritten after compilation) and that foreign
kernels are pure -- the same assumptions the hardware engine's re-evaluation
and the static read/write-set analysis already make.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.action import (
    Action,
    IfA,
    LetA,
    LocalGuard,
    Loop,
    MethodCallA,
    NoAction,
    Par,
    RegWrite,
    Seq,
    WhenA,
)
from repro.core.errors import (
    DoubleWriteError,
    ElaborationError,
    GuardFail,
    SimulationError,
)
from repro.core.expr import (
    BINARY_OPS,
    UNARY_OPS,
    BinOp,
    Const,
    Expr,
    FieldSelect,
    KernelCall,
    LetE,
    MethodCallE,
    Mux,
    RegRead,
    UnOp,
    Var,
    WhenE,
)
from repro.core.module import Method, Module, PrimitiveModule, Register, Rule

#: Read function supplied by the engines (usually ``store.__getitem__``).
ReadFn = Callable[..., Any]
#: A compiled node: ``fn(env, read, hooks) -> value | updates``.
ClosureFn = Callable[[tuple, ReadFn, Any], Any]

#: Closure modes (see module docstring).
MODE_FAST = "fast"
MODE_HOOKED = "hooked"
MODE_LATENCY = "latency"


def raise_for_missing_register(exc: KeyError) -> None:
    """Convert a store-miss ``KeyError`` to the tree walker's diagnostic.

    The compiled engines read through ``store.__getitem__`` for speed; when
    the missing key is a register this re-raises the same
    :class:`SimulationError` the interp backend's ``try_rule`` produces.
    Other ``KeyError``\\ s (e.g. a struct field select) return to the caller,
    which should re-raise.
    """
    key = exc.args[0] if exc.args else None
    if isinstance(key, Register):
        raise SimulationError(
            f"register {key.full_name} is not part of this store"
        ) from None


class _Cell:
    """A memoised thunk cell for a non-strict let binding (compiled ``_Thunk``)."""

    __slots__ = ("forced", "value", "fn", "env", "read", "hooks")

    def __init__(self, fn: ClosureFn, env: tuple, read: ReadFn, hooks: Any):
        self.forced = False
        self.value: Any = None
        self.fn = fn
        self.env = env
        self.read = read
        self.hooks = hooks

    def force(self) -> Any:
        if not self.forced:
            self.value = self.fn(self.env, self.read, self.hooks)
            self.forced = True
        return self.value


# Scope maps a variable name to ``(slot_index, is_thunk)``: method parameters
# are strict values, let bindings are thunk cells.
Scope = Dict[str, Tuple[int, bool]]


def _has_hook_sites(node) -> bool:
    """Whether evaluating ``node`` can trigger a kernel/method callback."""
    for sub in node.walk():
        if isinstance(sub, (KernelCall, MethodCallE, MethodCallA)):
            return True
    return False


def _seq_never_reads_back(actions) -> bool:
    """Whether no element of a ``Seq`` reads a register an earlier one writes.

    Uses the conservative static read/write sets, so ``True`` guarantees the
    sequential overlay can never be consulted and the incoming read function
    may be threaded through unchanged.
    """
    from repro.core.analysis import read_set, write_set

    written: set = set()
    for sub in actions:
        if written and (written & read_set(sub)):
            return False
        written |= write_set(sub)
    return True


class ClosureCompiler:
    """Compiles expressions and actions to closures for one hook mode."""

    def __init__(self, mode: str = MODE_FAST, max_loop_iterations: int = 1_000_000):
        if mode not in (MODE_FAST, MODE_HOOKED, MODE_LATENCY):
            raise ValueError(f"unknown closure mode {mode!r}")
        self.mode = mode
        #: Emit the full cost-callback set (register/guard/node hooks).
        self.all_hooks = mode == MODE_HOOKED
        #: Emit kernel/method callbacks (both hooked and latency modes).
        self.kernel_hooks = mode in (MODE_HOOKED, MODE_LATENCY)
        self.max_loop_iterations = max_loop_iterations
        # Lazily compiled user-module methods, keyed by method identity.  The
        # call-site closure captures the (mutable) per-method dict so mutual
        # recursion between methods compiles without infinite regress.
        self._methods: Dict[int, Dict[str, ClosureFn]] = {}

    # ------------------------------------------------------------------ expr

    def compile_expr(self, expr: Expr, scope: Scope, depth: int) -> ClosureFn:
        all_hooks = self.all_hooks

        # Latency mode only observes kernel/method sites; a subtree without
        # any compiles identically in fast mode, where the peephole fusions
        # below apply.
        if self.mode == MODE_LATENCY and _has_hook_sites(expr):
            pass  # compile below, in latency mode
        elif not all_hooks:
            return self._compile_expr_fused(expr, scope, depth)
        return self._compile_expr_generic(expr, scope, depth)

    def _compile_expr_fused(self, expr: Expr, scope: Scope, depth: int) -> ClosureFn:
        """Hook-free compilation with peephole fusion of hot leaf patterns.

        Binary operations over register reads and constants (``cnt < 17``,
        ``acc + 1``) are the bulk of rule guards; fusing the leaf access into
        the operation closure removes one or two closure calls per node.
        """
        if isinstance(expr, BinOp) and expr.op not in ("&&", "||"):
            op_fn = BINARY_OPS[expr.op]
            left, right = expr.left, expr.right
            if isinstance(right, Const):
                const = right.value
                if isinstance(left, RegRead):
                    reg = left.reg
                    def reg_op_const(env, read, hooks, _op=op_fn, _r=reg, _c=const):
                        return _op(read(_r), _c)
                    return reg_op_const
                left_fn = self.compile_expr(left, scope, depth)
                def any_op_const(env, read, hooks, _op=op_fn, _l=left_fn, _c=const):
                    return _op(_l(env, read, hooks), _c)
                return any_op_const
            if isinstance(left, RegRead):
                reg = left.reg
                if isinstance(right, RegRead):
                    reg_b = right.reg
                    def reg_op_reg(env, read, hooks, _op=op_fn, _a=reg, _b=reg_b):
                        return _op(read(_a), read(_b))
                    return reg_op_reg
                right_fn = self.compile_expr(right, scope, depth)
                def reg_op_any(env, read, hooks, _op=op_fn, _r=reg, _f=right_fn):
                    return _op(read(_r), _f(env, read, hooks))
                return reg_op_any
        if isinstance(expr, UnOp) and isinstance(expr.operand, RegRead):
            op_fn = UNARY_OPS[expr.op]
            reg = expr.operand.reg
            return lambda env, read, hooks, _op=op_fn, _r=reg: _op(read(_r))
        return self._compile_expr_generic(expr, scope, depth)

    def _compile_expr_generic(self, expr: Expr, scope: Scope, depth: int) -> ClosureFn:
        all_hooks = self.all_hooks

        if isinstance(expr, Const):
            value = expr.value
            return lambda env, read, hooks, _v=value: _v

        if isinstance(expr, Var):
            if expr.name not in scope:
                name = expr.name
                def unbound(env, read, hooks, _n=name):
                    raise ElaborationError(f"unbound variable {_n!r}")
                return unbound
            slot, is_thunk = scope[expr.name]
            if is_thunk:
                def force_var(env, read, hooks, _i=slot):
                    cell = env[_i]
                    if cell.forced:
                        return cell.value
                    value = cell.fn(cell.env, cell.read, cell.hooks)
                    cell.value = value
                    cell.forced = True
                    return value
                return force_var
            return lambda env, read, hooks, _i=slot: env[_i]

        if isinstance(expr, RegRead):
            reg = expr.reg
            if all_hooks:
                def read_reg(env, read, hooks, _r=reg):
                    hooks.on_register_read(_r)
                    return read(_r)
                return read_reg
            return lambda env, read, hooks, _r=reg: read(_r)

        if isinstance(expr, UnOp):
            op_fn = UNARY_OPS[expr.op]
            operand = self.compile_expr(expr.operand, scope, depth)
            if all_hooks:
                def un_op(env, read, hooks, _op=op_fn, _f=operand, _n=expr):
                    hooks.on_node(_n)
                    return _op(_f(env, read, hooks))
                return un_op
            return lambda env, read, hooks, _op=op_fn, _f=operand: _op(_f(env, read, hooks))

        if isinstance(expr, BinOp):
            left = self.compile_expr(expr.left, scope, depth)
            right = self.compile_expr(expr.right, scope, depth)
            if expr.op == "&&":
                if all_hooks:
                    def sc_and_h(env, read, hooks, _l=left, _r=right, _n=expr):
                        hooks.on_node(_n)
                        if not _l(env, read, hooks):
                            return False
                        return bool(_r(env, read, hooks))
                    return sc_and_h
                def sc_and(env, read, hooks, _l=left, _r=right):
                    if not _l(env, read, hooks):
                        return False
                    return bool(_r(env, read, hooks))
                return sc_and
            if expr.op == "||":
                if all_hooks:
                    def sc_or_h(env, read, hooks, _l=left, _r=right, _n=expr):
                        hooks.on_node(_n)
                        if _l(env, read, hooks):
                            return True
                        return bool(_r(env, read, hooks))
                    return sc_or_h
                def sc_or(env, read, hooks, _l=left, _r=right):
                    if _l(env, read, hooks):
                        return True
                    return bool(_r(env, read, hooks))
                return sc_or
            op_fn = BINARY_OPS[expr.op]
            if all_hooks:
                def bin_op_h(env, read, hooks, _op=op_fn, _l=left, _r=right, _n=expr):
                    hooks.on_node(_n)
                    return _op(_l(env, read, hooks), _r(env, read, hooks))
                return bin_op_h
            def bin_op(env, read, hooks, _op=op_fn, _l=left, _r=right):
                return _op(_l(env, read, hooks), _r(env, read, hooks))
            return bin_op

        if isinstance(expr, Mux):
            cond = self.compile_expr(expr.cond, scope, depth)
            then = self.compile_expr(expr.then, scope, depth)
            orelse = self.compile_expr(expr.orelse, scope, depth)
            if all_hooks:
                def mux_h(env, read, hooks, _c=cond, _t=then, _e=orelse, _n=expr):
                    hooks.on_node(_n)
                    if _c(env, read, hooks):
                        return _t(env, read, hooks)
                    return _e(env, read, hooks)
                return mux_h
            def mux(env, read, hooks, _c=cond, _t=then, _e=orelse):
                if _c(env, read, hooks):
                    return _t(env, read, hooks)
                return _e(env, read, hooks)
            return mux

        if isinstance(expr, WhenE):
            guard = self.compile_expr(expr.guard, scope, depth)
            body = self.compile_expr(expr.body, scope, depth)
            fail = GuardFail(f"expression guard failed at {expr!r}")
            if all_hooks:
                def when_e_h(env, read, hooks, _g=guard, _b=body, _n=expr, _x=fail):
                    if not _g(env, read, hooks):
                        hooks.on_guard_fail(_n)
                        _x.__traceback__ = None
                        raise _x
                    return _b(env, read, hooks)
                return when_e_h
            def when_e(env, read, hooks, _g=guard, _b=body, _x=fail):
                if not _g(env, read, hooks):
                    _x.__traceback__ = None
                    raise _x
                return _b(env, read, hooks)
            return when_e

        if isinstance(expr, LetE):
            value = self.compile_expr(expr.value, scope, depth)
            inner = dict(scope)
            inner[expr.name] = (depth, True)
            body = self.compile_expr(expr.body, inner, depth + 1)
            def let_e(env, read, hooks, _v=value, _b=body):
                return _b(env + (_Cell(_v, env, read, hooks),), read, hooks)
            return let_e

        if isinstance(expr, FieldSelect):
            operand = self.compile_expr(expr.operand, scope, depth)
            field = expr.field
            if isinstance(field, int):
                if all_hooks:
                    def sel_idx_h(env, read, hooks, _f=operand, _i=field, _n=expr):
                        hooks.on_node(_n)
                        return _f(env, read, hooks)[_i]
                    return sel_idx_h
                return lambda env, read, hooks, _f=operand, _i=field: _f(env, read, hooks)[_i]
            if all_hooks:
                def sel_h(env, read, hooks, _f=operand, _a=field, _n=expr):
                    hooks.on_node(_n)
                    value = _f(env, read, hooks)
                    if isinstance(value, dict):
                        return value[_a]
                    return getattr(value, _a)
                return sel_h
            def sel(env, read, hooks, _f=operand, _a=field):
                value = _f(env, read, hooks)
                if isinstance(value, dict):
                    return value[_a]
                return getattr(value, _a)
            return sel

        if isinstance(expr, KernelCall):
            arg_fns = tuple(self.compile_expr(a, scope, depth) for a in expr.args)
            fn = expr.fn
            if self.kernel_hooks:
                def kernel_h(env, read, hooks, _fns=arg_fns, _fn=fn, _k=expr):
                    values = [f(env, read, hooks) for f in _fns]
                    hooks.on_kernel(_k, values)
                    return _fn(*values)
                return kernel_h
            if len(arg_fns) == 1:
                a0 = arg_fns[0]
                return lambda env, read, hooks, _a0=a0, _fn=fn: _fn(_a0(env, read, hooks))
            if len(arg_fns) == 2:
                a0, a1 = arg_fns
                def kernel2(env, read, hooks, _a0=a0, _a1=a1, _fn=fn):
                    return _fn(_a0(env, read, hooks), _a1(env, read, hooks))
                return kernel2
            def kernel(env, read, hooks, _fns=arg_fns, _fn=fn):
                return _fn(*[f(env, read, hooks) for f in _fns])
            return kernel

        if isinstance(expr, MethodCallE):
            return self._compile_method_call(expr, scope, depth, is_action=False)

        raise ElaborationError(f"cannot compile expression node {expr!r}")

    # ---------------------------------------------------------------- action

    def compile_action(self, action: Action, scope: Scope, depth: int) -> ClosureFn:
        all_hooks = self.all_hooks

        if isinstance(action, NoAction):
            return lambda env, read, hooks: {}

        if isinstance(action, RegWrite):
            reg = action.reg
            if not all_hooks:
                # Constant writes (``busy := True``) and register copies are
                # the hottest actions; fuse the value access away.
                if isinstance(action.value, Const):
                    const = action.value.value
                    return lambda env, read, hooks, _r=reg, _c=const: {_r: _c}
                if isinstance(action.value, RegRead):
                    src = action.value.reg
                    return lambda env, read, hooks, _r=reg, _s=src: {_r: read(_s)}
            value = self.compile_expr(action.value, scope, depth)
            if all_hooks:
                def write_h(env, read, hooks, _v=value, _r=reg):
                    result = _v(env, read, hooks)
                    hooks.on_register_write(_r)
                    return {_r: result}
                return write_h
            return lambda env, read, hooks, _v=value, _r=reg: {_r: _v(env, read, hooks)}

        if isinstance(action, IfA):
            cond = self.compile_expr(action.cond, scope, depth)
            then = self.compile_action(action.then, scope, depth)
            if action.orelse is None:
                def if_a(env, read, hooks, _c=cond, _t=then):
                    if _c(env, read, hooks):
                        return _t(env, read, hooks)
                    return {}
                return if_a
            orelse = self.compile_action(action.orelse, scope, depth)
            def if_else(env, read, hooks, _c=cond, _t=then, _e=orelse):
                if _c(env, read, hooks):
                    return _t(env, read, hooks)
                return _e(env, read, hooks)
            return if_else

        if isinstance(action, WhenA):
            guard = self.compile_expr(action.guard, scope, depth)
            body = self.compile_action(action.body, scope, depth)
            fail = GuardFail(f"action guard failed at {action!r}")
            if all_hooks:
                def when_a_h(env, read, hooks, _g=guard, _b=body, _n=action, _x=fail):
                    if not _g(env, read, hooks):
                        hooks.on_guard_fail(_n)
                        _x.__traceback__ = None
                        raise _x
                    return _b(env, read, hooks)
                return when_a_h
            def when_a(env, read, hooks, _g=guard, _b=body, _x=fail):
                if not _g(env, read, hooks):
                    _x.__traceback__ = None
                    raise _x
                return _b(env, read, hooks)
            return when_a

        if isinstance(action, Par):
            sub_fns = tuple(self.compile_action(a, scope, depth) for a in action.actions)
            first, rest = sub_fns[0], sub_fns[1:]
            if not rest:
                return first
            def par(env, read, hooks, _first=first, _rest=rest):
                merged = _first(env, read, hooks)
                for f in _rest:
                    for reg, value in f(env, read, hooks).items():
                        if reg in merged:
                            raise DoubleWriteError(
                                f"parallel composition writes register {reg.full_name} twice"
                            )
                        merged[reg] = value
                return merged
            return par

        if isinstance(action, Seq):
            sub_fns = tuple(self.compile_action(a, scope, depth) for a in action.actions)
            if _seq_never_reads_back(action.actions):
                # No later element reads an earlier element's writes (the
                # common shape after sequentialisation of parallel actions),
                # so the overlay-read indirection can never trigger: thread
                # the incoming read function straight through.
                def sequence_flat(env, read, hooks, _fns=sub_fns):
                    overlay: Dict[Any, Any] = {}
                    for f in _fns:
                        overlay.update(f(env, read, hooks))
                    return overlay
                return sequence_flat
            def sequence(env, read, hooks, _fns=sub_fns):
                overlay: Dict[Any, Any] = {}
                def overlaid_read(reg, _o=overlay, _r=read):
                    if reg in _o:
                        return _o[reg]
                    return _r(reg)
                for f in _fns:
                    overlay.update(f(env, overlaid_read, hooks))
                return overlay
            return sequence

        if isinstance(action, LetA):
            value = self.compile_expr(action.value, scope, depth)
            inner = dict(scope)
            inner[action.name] = (depth, True)
            body = self.compile_action(action.body, inner, depth + 1)
            def let_a(env, read, hooks, _v=value, _b=body):
                return _b(env + (_Cell(_v, env, read, hooks),), read, hooks)
            return let_a

        if isinstance(action, Loop):
            cond = self.compile_expr(action.cond, scope, depth)
            body = self.compile_action(action.body, scope, depth)
            limit = min(action.max_iterations, self.max_loop_iterations)
            def loop(env, read, hooks, _c=cond, _b=body, _limit=limit):
                overlay: Dict[Any, Any] = {}
                def overlaid_read(reg, _o=overlay, _r=read):
                    if reg in _o:
                        return _o[reg]
                    return _r(reg)
                iterations = 0
                while _c(env, overlaid_read, hooks):
                    overlay.update(_b(env, overlaid_read, hooks))
                    iterations += 1
                    if iterations >= _limit:
                        raise SimulationError(
                            f"loop exceeded {_limit} iterations; either the bound is "
                            "too small or the loop does not terminate"
                        )
                return overlay
            return loop

        if isinstance(action, LocalGuard):
            body = self.compile_action(action.body, scope, depth)
            def local_guard(env, read, hooks, _b=body):
                try:
                    return _b(env, read, hooks)
                except GuardFail:
                    return {}
            return local_guard

        if isinstance(action, MethodCallA):
            return self._compile_method_call(action, scope, depth, is_action=True)

        raise ElaborationError(f"cannot compile action node {action!r}")

    # ---------------------------------------------------------------- methods

    def _compile_method_call(self, call, scope: Scope, depth: int, is_action: bool) -> ClosureFn:
        instance: Module = call.instance
        method: Method = instance.get_method(call.method)
        if len(call.args) != len(method.params):
            raise ElaborationError(
                f"method {instance.name}.{call.method} expects "
                f"{len(method.params)} arguments, got {len(call.args)}"
            )
        arg_fns = tuple(self.compile_expr(a, scope, depth) for a in call.args)
        emit_method_hook = self.kernel_hooks
        all_hooks = self.all_hooks
        method_name = call.method

        if isinstance(instance, PrimitiveModule):
            native = instance.get_native(method_name)
            guard_fn, body_fn = native.guard_fn, native.body_fn
            fail = GuardFail(
                f"{'action' if is_action else 'value'} method "
                f"{instance.name}.{method_name} is not ready"
            )
            if is_action:
                def call_native_a(
                    env, read, hooks,
                    _fns=arg_fns, _g=guard_fn, _b=body_fn,
                    _inst=instance, _name=method_name, _m=method, _x=fail,
                ):
                    if emit_method_hook:
                        hooks.on_method(_inst, _name)
                    values = [f(env, read, hooks) for f in _fns]
                    if not _g(read, *values):
                        if all_hooks:
                            hooks.on_guard_fail(_m)
                        _x.__traceback__ = None
                        raise _x
                    updates, _ = _b(read, *values)
                    if all_hooks:
                        for reg in updates:
                            hooks.on_register_write(reg)
                    return updates
                return call_native_a
            def call_native_v(
                env, read, hooks,
                _fns=arg_fns, _g=guard_fn, _b=body_fn,
                _inst=instance, _name=method_name, _m=method, _x=fail,
            ):
                if emit_method_hook:
                    hooks.on_method(_inst, _name)
                values = [f(env, read, hooks) for f in _fns]
                if not _g(read, *values):
                    if all_hooks:
                        hooks.on_guard_fail(_m)
                    _x.__traceback__ = None
                    raise _x
                _, result = _b(read, *values)
                return result
            return call_native_v

        # User-module method: compile its guard and body once, in a fresh
        # parameter scope, resolved lazily through the shared cache dict so
        # (mutually) recursive methods terminate at compile time.
        compiled = self._compiled_method(method, is_action)
        fail = GuardFail(
            f"{'action' if is_action else 'value'} method "
            f"{instance.name}.{method_name} is not ready"
        )
        def call_user(
            env, read, hooks,
            _fns=arg_fns, _c=compiled, _inst=instance, _name=method_name,
            _m=method, _x=fail,
        ):
            if emit_method_hook:
                hooks.on_method(_inst, _name)
            method_env = tuple(f(env, read, hooks) for f in _fns)
            if not _c["guard"](method_env, read, hooks):
                if all_hooks:
                    hooks.on_guard_fail(_m)
                _x.__traceback__ = None
                raise _x
            return _c["body"](method_env, read, hooks)
        return call_user

    def _compiled_method(self, method: Method, is_action: bool) -> Dict[str, ClosureFn]:
        key = id(method)
        compiled = self._methods.get(key)
        if compiled is not None:
            return compiled
        compiled = {}
        self._methods[key] = compiled  # pre-register: breaks recursion cycles
        param_scope: Scope = {p: (i, False) for i, p in enumerate(method.params)}
        param_depth = len(method.params)
        compiled["guard"] = self.compile_expr(method.guard, param_scope, param_depth)
        if method.body is None:
            owner = method.module.name if method.module is not None else "?"
            kind, name = method.kind, method.name
            def missing_body(env, read, hooks, _o=owner, _k=kind, _n=name):
                raise ElaborationError(f"{_k} method {_o}.{_n} has no body")
            compiled["body"] = missing_body
        elif is_action:
            compiled["body"] = self.compile_action(method.body, param_scope, param_depth)
        else:
            compiled["body"] = self.compile_expr(method.body, param_scope, param_depth)
        return compiled


# --------------------------------------------------------------------------
# counting mode: folded software-cost accumulation
# --------------------------------------------------------------------------


class CountingCompiler:
    """Compiles closures that accumulate CPU-cycle costs into a plain cell.

    The ``hooked`` mode reproduces :class:`~repro.sim.costmodel.SwCostAccumulator`
    through its generic callback interface -- one Python method call per
    cost-bearing node.  This compiler specialises the accumulation against a
    concrete :class:`~repro.sim.costmodel.SwCostParams` instead: closures
    have the same ``fn(env, read, cell)`` shape (the hooks slot carries a
    one-element list) and add pre-folded integer constants to ``cell[0]``.

    *Straight-line* subtrees -- no guard-failure points, no branching, no
    lazy bindings, no dynamic kernel costs -- have a statically known total
    cost, so they compile to a single ``cell[0] += C`` followed by their
    hook-free fast closure: the rule body of a fully lifted rule becomes one
    constant add plus pure computation, which is exactly the generated C++'s
    cost structure (Section 6.3).  The accumulated totals equal the tree
    walker's ``cpu_cycles`` bit-for-bit, including on guard-failure paths
    (a folded constant is only added when its subtree is reached, and a
    straight-line subtree cannot fail partway).

    The structural cases below (If/When/Par/Seq/Let/Loop/LocalGuard) mirror
    :class:`ClosureCompiler`'s hook-free branches on purpose: both copies
    are pinned to the tree-walking oracle by the differential suite
    (``tests/test_compiled_backend.py``), so a semantics change that lands
    in only one copy fails those tests rather than drifting silently.
    """

    def __init__(self, params, max_loop_iterations: int = 1_000_000):
        self.params = params
        self.max_loop_iterations = max_loop_iterations
        # Straight-line subtrees are executed through hook-free closures.
        self._fast = ClosureCompiler(MODE_FAST, max_loop_iterations)
        self._methods: Dict[int, Dict[str, ClosureFn]] = {}

    # -- cost analysis ------------------------------------------------------

    def static_cost(self, node, scope: Scope) -> Optional[int]:
        """Total CPU cost of ``node`` if it is straight-line, else ``None``.

        Straight-line means: evaluation always visits every sub-node exactly
        once (no Mux/short-circuit/If branches, no loops), cannot raise a
        guard failure, forces no lazy bindings, and all kernel costs are
        constants.  Method calls are never straight-line (their implicit
        guards may fail and their native bodies have dynamic write counts).
        """
        p = self.params
        if isinstance(node, Const):
            return 0
        if isinstance(node, Var):
            entry = scope.get(node.name)
            if entry is None or entry[1]:  # unbound or lazy (thunk) binding
                return None
            return 0
        if isinstance(node, RegRead):
            return p.reg_read
        if isinstance(node, UnOp):
            inner = self.static_cost(node.operand, scope)
            return None if inner is None else p.alu_op + inner
        if isinstance(node, BinOp):
            if node.op in ("&&", "||"):
                return None
            left = self.static_cost(node.left, scope)
            if left is None:
                return None
            right = self.static_cost(node.right, scope)
            return None if right is None else p.alu_op + left + right
        if isinstance(node, FieldSelect):
            inner = self.static_cost(node.operand, scope)
            return None if inner is None else p.alu_op + inner
        if isinstance(node, KernelCall):
            if callable(node.sw_cycles):
                return None
            total = int(node.sw_cycles) + p.kernel_dispatch
            for arg in node.args:
                inner = self.static_cost(arg, scope)
                if inner is None:
                    return None
                total += inner
            return total
        if isinstance(node, NoAction):
            return 0
        if isinstance(node, RegWrite):
            inner = self.static_cost(node.value, scope)
            return None if inner is None else p.reg_write + inner
        if isinstance(node, (Par, Seq)):
            total = 0
            for sub in node.actions:
                inner = self.static_cost(sub, scope)
                if inner is None:
                    return None
                total += inner
            return total
        # Mux, WhenE/WhenA, LetE/LetA, IfA, Loop, LocalGuard, method calls:
        # branching, failing, lazy or dynamic -- never straight-line.
        return None

    # -- compilation --------------------------------------------------------

    def compile_expr(self, expr: Expr, scope: Scope, depth: int) -> ClosureFn:
        cost = self.static_cost(expr, scope)
        if cost is not None:
            fast = self._fast.compile_expr(expr, scope, depth)
            if cost == 0:
                return fast
            def static_e(env, read, cell, _f=fast, _c=cost):
                cell[0] += _c
                return _f(env, read, cell)
            return static_e
        return self._compile_expr_dynamic(expr, scope, depth)

    def compile_action(self, action: Action, scope: Scope, depth: int) -> ClosureFn:
        cost = self.static_cost(action, scope)
        if cost is not None:
            fast = self._fast.compile_action(action, scope, depth)
            if cost == 0:
                return fast
            def static_a(env, read, cell, _f=fast, _c=cost):
                cell[0] += _c
                return _f(env, read, cell)
            return static_a
        return self._compile_action_dynamic(action, scope, depth)

    def _compile_expr_dynamic(self, expr: Expr, scope: Scope, depth: int) -> ClosureFn:
        p = self.params

        if isinstance(expr, Var):
            # Dynamic only when lazy (or unbound); forcing charges the
            # binding's cost to the cell captured at creation, exactly like
            # the tree walker's thunks.
            if expr.name not in scope:
                name = expr.name
                def unbound(env, read, cell, _n=name):
                    raise ElaborationError(f"unbound variable {_n!r}")
                return unbound
            slot, _ = scope[expr.name]
            def force_var(env, read, cell, _i=slot):
                thunk = env[_i]
                if thunk.forced:
                    return thunk.value
                value = thunk.fn(thunk.env, thunk.read, thunk.hooks)
                thunk.value = value
                thunk.forced = True
                return value
            return force_var

        if isinstance(expr, UnOp):
            op_fn = UNARY_OPS[expr.op]
            operand = self.compile_expr(expr.operand, scope, depth)
            alu = p.alu_op
            def un_op(env, read, cell, _op=op_fn, _f=operand, _c=alu):
                cell[0] += _c
                return _op(_f(env, read, cell))
            return un_op

        if isinstance(expr, BinOp):
            left = self.compile_expr(expr.left, scope, depth)
            right = self.compile_expr(expr.right, scope, depth)
            alu = p.alu_op
            if expr.op == "&&":
                def sc_and(env, read, cell, _l=left, _r=right, _c=alu):
                    cell[0] += _c
                    if not _l(env, read, cell):
                        return False
                    return bool(_r(env, read, cell))
                return sc_and
            if expr.op == "||":
                def sc_or(env, read, cell, _l=left, _r=right, _c=alu):
                    cell[0] += _c
                    if _l(env, read, cell):
                        return True
                    return bool(_r(env, read, cell))
                return sc_or
            op_fn = BINARY_OPS[expr.op]
            def bin_op(env, read, cell, _op=op_fn, _l=left, _r=right, _c=alu):
                cell[0] += _c
                return _op(_l(env, read, cell), _r(env, read, cell))
            return bin_op

        if isinstance(expr, Mux):
            cond = self.compile_expr(expr.cond, scope, depth)
            then = self.compile_expr(expr.then, scope, depth)
            orelse = self.compile_expr(expr.orelse, scope, depth)
            alu = p.alu_op
            def mux(env, read, cell, _co=cond, _t=then, _e=orelse, _c=alu):
                cell[0] += _c
                if _co(env, read, cell):
                    return _t(env, read, cell)
                return _e(env, read, cell)
            return mux

        if isinstance(expr, WhenE):
            guard = self.compile_expr(expr.guard, scope, depth)
            body = self.compile_expr(expr.body, scope, depth)
            fail = GuardFail(f"expression guard failed at {expr!r}")
            def when_e(env, read, cell, _g=guard, _b=body, _x=fail):
                if not _g(env, read, cell):
                    _x.__traceback__ = None
                    raise _x
                return _b(env, read, cell)
            return when_e

        if isinstance(expr, LetE):
            value = self.compile_expr(expr.value, scope, depth)
            inner = dict(scope)
            inner[expr.name] = (depth, True)
            body = self.compile_expr(expr.body, inner, depth + 1)
            def let_e(env, read, cell, _v=value, _b=body):
                return _b(env + (_Cell(_v, env, read, cell),), read, cell)
            return let_e

        if isinstance(expr, FieldSelect):
            operand = self.compile_expr(expr.operand, scope, depth)
            field = expr.field
            alu = p.alu_op
            if isinstance(field, int):
                def sel_idx(env, read, cell, _f=operand, _i=field, _c=alu):
                    cell[0] += _c
                    return _f(env, read, cell)[_i]
                return sel_idx
            def sel(env, read, cell, _f=operand, _a=field, _c=alu):
                cell[0] += _c
                value = _f(env, read, cell)
                if isinstance(value, dict):
                    return value[_a]
                return getattr(value, _a)
            return sel

        if isinstance(expr, KernelCall):
            arg_fns = tuple(self.compile_expr(a, scope, depth) for a in expr.args)
            fn = expr.fn
            dispatch = p.kernel_dispatch
            if callable(expr.sw_cycles):
                cost_fn = expr.sw_cycles
                def kernel_dyn(env, read, cell, _fns=arg_fns, _fn=fn, _cf=cost_fn, _d=dispatch):
                    values = [f(env, read, cell) for f in _fns]
                    cell[0] += int(_cf(*values)) + _d
                    return _fn(*values)
                return kernel_dyn
            static = int(expr.sw_cycles) + dispatch
            def kernel(env, read, cell, _fns=arg_fns, _fn=fn, _c=static):
                values = [f(env, read, cell) for f in _fns]
                cell[0] += _c
                return _fn(*values)
            return kernel

        if isinstance(expr, MethodCallE):
            return self._compile_method_call(expr, scope, depth, is_action=False)

        if isinstance(expr, (Const, RegRead)):  # pragma: no cover - static
            return self.compile_expr(expr, scope, depth)
        raise ElaborationError(f"cannot compile expression node {expr!r}")

    def _compile_action_dynamic(self, action: Action, scope: Scope, depth: int) -> ClosureFn:
        p = self.params

        if isinstance(action, RegWrite):
            value = self.compile_expr(action.value, scope, depth)
            reg = action.reg
            wcost = p.reg_write
            def write(env, read, cell, _v=value, _r=reg, _c=wcost):
                result = _v(env, read, cell)
                cell[0] += _c
                return {_r: result}
            return write

        if isinstance(action, IfA):
            cond = self.compile_expr(action.cond, scope, depth)
            then = self.compile_action(action.then, scope, depth)
            if action.orelse is None:
                def if_a(env, read, cell, _c=cond, _t=then):
                    if _c(env, read, cell):
                        return _t(env, read, cell)
                    return {}
                return if_a
            orelse = self.compile_action(action.orelse, scope, depth)
            def if_else(env, read, cell, _c=cond, _t=then, _e=orelse):
                if _c(env, read, cell):
                    return _t(env, read, cell)
                return _e(env, read, cell)
            return if_else

        if isinstance(action, WhenA):
            guard = self.compile_expr(action.guard, scope, depth)
            body = self.compile_action(action.body, scope, depth)
            fail = GuardFail(f"action guard failed at {action!r}")
            def when_a(env, read, cell, _g=guard, _b=body, _x=fail):
                if not _g(env, read, cell):
                    _x.__traceback__ = None
                    raise _x
                return _b(env, read, cell)
            return when_a

        if isinstance(action, Par):
            sub_fns = tuple(self.compile_action(a, scope, depth) for a in action.actions)
            first, rest = sub_fns[0], sub_fns[1:]
            if not rest:
                return first
            def par(env, read, cell, _first=first, _rest=rest):
                merged = _first(env, read, cell)
                for f in _rest:
                    for reg, value in f(env, read, cell).items():
                        if reg in merged:
                            raise DoubleWriteError(
                                f"parallel composition writes register {reg.full_name} twice"
                            )
                        merged[reg] = value
                return merged
            return par

        if isinstance(action, Seq):
            sub_fns = tuple(self.compile_action(a, scope, depth) for a in action.actions)
            if _seq_never_reads_back(action.actions):
                def sequence_flat(env, read, cell, _fns=sub_fns):
                    overlay: Dict[Any, Any] = {}
                    for f in _fns:
                        overlay.update(f(env, read, cell))
                    return overlay
                return sequence_flat
            def sequence(env, read, cell, _fns=sub_fns):
                overlay: Dict[Any, Any] = {}
                def overlaid_read(reg, _o=overlay, _r=read):
                    if reg in _o:
                        return _o[reg]
                    return _r(reg)
                for f in _fns:
                    overlay.update(f(env, overlaid_read, cell))
                return overlay
            return sequence

        if isinstance(action, LetA):
            value = self.compile_expr(action.value, scope, depth)
            inner = dict(scope)
            inner[action.name] = (depth, True)
            body = self.compile_action(action.body, inner, depth + 1)
            def let_a(env, read, cell, _v=value, _b=body):
                return _b(env + (_Cell(_v, env, read, cell),), read, cell)
            return let_a

        if isinstance(action, Loop):
            cond = self.compile_expr(action.cond, scope, depth)
            body = self.compile_action(action.body, scope, depth)
            limit = min(action.max_iterations, self.max_loop_iterations)
            def loop(env, read, cell, _c=cond, _b=body, _limit=limit):
                overlay: Dict[Any, Any] = {}
                def overlaid_read(reg, _o=overlay, _r=read):
                    if reg in _o:
                        return _o[reg]
                    return _r(reg)
                iterations = 0
                while _c(env, overlaid_read, cell):
                    overlay.update(_b(env, overlaid_read, cell))
                    iterations += 1
                    if iterations >= _limit:
                        raise SimulationError(
                            f"loop exceeded {_limit} iterations; either the bound is "
                            "too small or the loop does not terminate"
                        )
                return overlay
            return loop

        if isinstance(action, LocalGuard):
            body = self.compile_action(action.body, scope, depth)
            def local_guard(env, read, cell, _b=body):
                try:
                    return _b(env, read, cell)
                except GuardFail:
                    return {}
            return local_guard

        if isinstance(action, MethodCallA):
            return self._compile_method_call(action, scope, depth, is_action=True)

        if isinstance(action, NoAction):  # pragma: no cover - static
            return self.compile_action(action, scope, depth)
        raise ElaborationError(f"cannot compile action node {action!r}")

    def _compile_method_call(self, call, scope: Scope, depth: int, is_action: bool) -> ClosureFn:
        p = self.params
        instance: Module = call.instance
        method: Method = instance.get_method(call.method)
        if len(call.args) != len(method.params):
            raise ElaborationError(
                f"method {instance.name}.{call.method} expects "
                f"{len(method.params)} arguments, got {len(call.args)}"
            )
        arg_fns = tuple(self.compile_expr(a, scope, depth) for a in call.args)
        fail = GuardFail(
            f"{'action' if is_action else 'value'} method "
            f"{instance.name}.{call.method} is not ready"
        )

        if isinstance(instance, PrimitiveModule):
            native = instance.get_native(call.method)
            guard_fn, body_fn = native.guard_fn, native.body_fn
            overhead = p.native_method_overhead
            if hasattr(instance, "read_latency"):
                overhead += p.regfile_access
            if is_action:
                wcost = p.reg_write
                def call_native_a(
                    env, read, cell,
                    _fns=arg_fns, _g=guard_fn, _b=body_fn, _o=overhead, _w=wcost, _x=fail,
                ):
                    cell[0] += _o
                    values = [f(env, read, cell) for f in _fns]
                    if not _g(read, *values):
                        _x.__traceback__ = None
                        raise _x
                    updates, _ = _b(read, *values)
                    cell[0] += _w * len(updates)
                    return updates
                return call_native_a
            def call_native_v(
                env, read, cell,
                _fns=arg_fns, _g=guard_fn, _b=body_fn, _o=overhead, _x=fail,
            ):
                cell[0] += _o
                values = [f(env, read, cell) for f in _fns]
                if not _g(read, *values):
                    _x.__traceback__ = None
                    raise _x
                _, result = _b(read, *values)
                return result
            return call_native_v

        compiled = self._compiled_method(method, is_action)
        overhead = p.method_call_overhead
        def call_user(env, read, cell, _fns=arg_fns, _c=compiled, _o=overhead, _x=fail):
            cell[0] += _o
            method_env = tuple(f(env, read, cell) for f in _fns)
            if not _c["guard"](method_env, read, cell):
                _x.__traceback__ = None
                raise _x
            return _c["body"](method_env, read, cell)
        return call_user

    def _compiled_method(self, method: Method, is_action: bool) -> Dict[str, ClosureFn]:
        key = id(method)
        compiled = self._methods.get(key)
        if compiled is not None:
            return compiled
        compiled = {}
        self._methods[key] = compiled
        param_scope: Scope = {name: (i, False) for i, name in enumerate(method.params)}
        param_depth = len(method.params)
        compiled["guard"] = self.compile_expr(method.guard, param_scope, param_depth)
        if method.body is None:
            owner = method.module.name if method.module is not None else "?"
            kind, name = method.kind, method.name
            def missing_body(env, read, cell, _o=owner, _k=kind, _n=name):
                raise ElaborationError(f"{_k} method {_o}.{_n} has no body")
            compiled["body"] = missing_body
        elif is_action:
            compiled["body"] = self.compile_action(method.body, param_scope, param_depth)
        else:
            compiled["body"] = self.compile_expr(method.body, param_scope, param_depth)
        return compiled


# --------------------------------------------------------------------------
# per-rule entry points
# --------------------------------------------------------------------------

_EMPTY_SCOPE: Scope = {}


class RuleExec:
    """Lazily compiled closure entry points for one rule's raw action.

    ``fast(read)``, ``hooked(read, hooks)`` and ``latency(read, hooks)`` each
    evaluate the whole rule against ``read`` and return its updates dict,
    raising :class:`GuardFail` when the rule cannot fire.
    """

    __slots__ = ("rule", "max_loop_iterations", "_fast", "_hooked", "_latency")

    def __init__(self, rule: Rule, max_loop_iterations: int = 1_000_000):
        self.rule = rule
        self.max_loop_iterations = max_loop_iterations
        self._fast: Optional[ClosureFn] = None
        self._hooked: Optional[ClosureFn] = None
        self._latency: Optional[ClosureFn] = None

    def _compile(self, mode: str) -> ClosureFn:
        compiler = ClosureCompiler(mode, self.max_loop_iterations)
        return compiler.compile_action(self.rule.action, _EMPTY_SCOPE, 0)

    def fast(self, read: ReadFn) -> Dict[Any, Any]:
        fn = self._fast
        if fn is None:
            fn = self._fast = self._compile(MODE_FAST)
        return fn((), read, None)

    def hooked(self, read: ReadFn, hooks: Any) -> Dict[Any, Any]:
        fn = self._hooked
        if fn is None:
            fn = self._hooked = self._compile(MODE_HOOKED)
        return fn((), read, hooks)

    def latency(self, read: ReadFn, hooks: Any) -> Dict[Any, Any]:
        fn = self._latency
        if fn is None:
            fn = self._latency = self._compile(MODE_LATENCY)
        return fn((), read, hooks)


def rule_exec(rule: Rule, max_loop_iterations: int = 1_000_000) -> RuleExec:
    """The (cached) compiled executor for ``rule``'s raw action.

    The cache lives on the rule object; it is keyed by the loop bound so an
    engine with a non-default ``max_loop_iterations`` gets its own compile.
    """
    cached = getattr(rule, "_compiled_exec", None)
    if cached is None or cached.max_loop_iterations != max_loop_iterations:
        cached = RuleExec(rule, max_loop_iterations)
        rule._compiled_exec = cached  # type: ignore[attr-defined]
    return cached


class CompiledRuleExec:
    """Compiled guard/body closures for an optimised rule (Section 6.3 form).

    Wraps a :class:`~repro.core.optimize.CompiledRule`: the lifted top-level
    guard and the residual body compile to closures in two flavours --

    * ``guard_counting``/``body_counting``: cost accumulation folded against
      a concrete :class:`~repro.sim.costmodel.SwCostParams` into a plain
      ``[int]`` cell (:class:`CountingCompiler`); what the software engine
      uses on its hot path.
    * ``guard_hooked``/``body_hooked``: generic
      :class:`~repro.core.semantics.EvalHooks` callbacks, compiled lazily,
      for observers other than the cost accumulator.
    """

    __slots__ = (
        "guard",
        "body",
        "max_loop_iterations",
        "_hooked",
        "_counting",
        "_counting_params",
    )

    def __init__(self, guard: Expr, body: Action, max_loop_iterations: int = 1_000_000):
        self.guard = guard
        self.body = body
        self.max_loop_iterations = max_loop_iterations
        self._hooked: Optional[Tuple[ClosureFn, ClosureFn]] = None
        self._counting: Optional[Tuple[ClosureFn, ClosureFn]] = None
        self._counting_params: Any = None

    def _hooked_fns(self) -> Tuple[ClosureFn, ClosureFn]:
        fns = self._hooked
        if fns is None:
            compiler = ClosureCompiler(MODE_HOOKED, self.max_loop_iterations)
            fns = self._hooked = (
                compiler.compile_expr(self.guard, _EMPTY_SCOPE, 0),
                compiler.compile_action(self.body, _EMPTY_SCOPE, 0),
            )
        return fns

    def counting_fns(self, params) -> Tuple[ClosureFn, ClosureFn]:
        """Closures accumulating ``params`` costs into a ``[int]`` cell."""
        if self._counting is None or self._counting_params != params:
            compiler = CountingCompiler(params, self.max_loop_iterations)
            self._counting = (
                compiler.compile_expr(self.guard, _EMPTY_SCOPE, 0),
                compiler.compile_action(self.body, _EMPTY_SCOPE, 0),
            )
            self._counting_params = params
        return self._counting

    def guard_hooked(self, read: ReadFn, hooks: Any) -> Any:
        return self._hooked_fns()[0]((), read, hooks)

    def body_hooked(self, read: ReadFn, hooks: Any) -> Dict[Any, Any]:
        return self._hooked_fns()[1]((), read, hooks)


def compiled_rule_exec(compiled_rule, max_loop_iterations: int = 1_000_000) -> CompiledRuleExec:
    """The (cached) closure executor for an optimised rule.

    Populates ``CompiledRule.compiled_fn`` on first use so repeated engine
    constructions over the same compiled rules share one compile.
    """
    cached = compiled_rule.compiled_fn
    if cached is None or cached.max_loop_iterations != max_loop_iterations:
        cached = CompiledRuleExec(
            compiled_rule.guard, compiled_rule.body, max_loop_iterations
        )
        compiled_rule.compiled_fn = cached
    return cached


# --------------------------------------------------------------------------
# transport dataplane
# --------------------------------------------------------------------------
#
# The same closure-compilation idea the rule engines use -- resolve
# everything resolvable at elaboration, leave only the data-dependent work
# in the hot path -- applied to the co-simulator's channel transport.  A
# transport *route* (one synchronizer mapped onto one topology link) never
# changes during a run: its endpoint stores, its data register, its credit
# arithmetic inputs (FIFO depth, words per element) and its delivery
# callbacks are all fixed.  ``compile_transport_pump`` and
# ``compile_transport_delivery`` lower them once into closures whose cell
# variables are pre-bound, so the per-iteration cost is a couple of dict
# lookups instead of attribute chains, routing decisions and per-element
# tuple re-slicing.
#
# These helpers are deliberately structural (they touch their collaborators
# only through the callables and attributes passed in), so the core layer
# does not import platform/sim types.


def compile_transport_pump(
    data_reg: Any,
    depth: int,
    producer_store: Any,
    consumer_store: Any,
    vc: Any,
    direction: Any,
    locked: Callable[[], Any],
    charge_driver: Optional[Callable[[int, float], None]] = None,
    occupancy_of: Optional[Callable[[], int]] = None,
) -> Callable[[float], bool]:
    """Compile one producer-side transport route to a pump closure.

    The closure launches as many queued elements as the consumer's credit
    window allows, in one batch: the credit window
    ``depth - consumer_occupancy - in_flight`` is computed once (occupancy
    cannot change mid-pump -- deliveries happen in a separate phase), the
    drained prefix is committed with a single tuple re-slice, and the
    channel send is inlined with the route's *pre-computed* constants --
    per-message occupancy and propagation latency never change for a fixed
    route, so the per-element work is packing the element into wire words
    (the virtual channel's layout-compiled ``encode``) and appending them
    to the link's slotted :class:`~repro.platform.channel.MessagePool`
    rings -- no per-message object is constructed.  Counter updates
    (channel/vc statistics, credits, in-flight counts) are committed once
    per batch; ``busy_cycles`` is accumulated per element so floating-point
    results stay bitwise identical to the reference transport.  Observable
    behaviour (message order/timing, wire words, credit accounting, stall
    counts, driver charges) is identical to marshaling and sending one
    element at a time through ``ChannelDirection.send_words``.

    ``occupancy_of`` overrides where the consumer occupancy is read from:
    by default it is ``len(consumer_store[data_reg])`` (the in-process
    consumer endpoint), but a distributed route pre-binds a reader over the
    consumer process's published occupancy cell instead -- the credit
    arithmetic is unchanged, only the observation point moves across the
    process boundary.

    Returns ``pump(now) -> bool`` (whether any element was launched).
    """
    if occupancy_of is None:

        def occupancy_of() -> int:
            return len(consumer_store[data_reg])

    vc_id = vc.vc_id
    words = vc.words_per_element
    encode_batch = vc.encode_batch
    note_stall = vc.note_credit_stall
    vc_stats = vc.stats
    stats = direction.stats
    per_vc = stats.per_vc_messages
    # Pool rings, pre-bound: list identities are stable (compaction trims
    # in place).  A route's message length is fixed by its channel type, so
    # the word/vc/bound rings fill with three C-level extends per batch; the
    # only per-element Python work left is packing the value and the float
    # accumulation of busy time (iterated, not closed-form, so the results
    # stay bitwise identical to the reference transport's per-element adds).
    pool = direction.pool
    pool_words = pool.words
    words_extend = pool_words.extend
    vc_extend = pool.vc_ids.extend
    bounds_extend = pool.bounds.extend
    due_append = pool.due.append
    compact = pool.compact
    # Route constants: one message's channel occupancy and one-way latency.
    occupancy = direction.params.occupancy_cycles(words, direction.burst)
    latency = direction.params.one_way_latency_cycles

    def pump(now: float) -> bool:
        queue = producer_store[data_reg]
        if not queue:
            return False
        if data_reg in locked():
            # An in-flight rule will commit a deferred update to this
            # endpoint; draining it now would be clobbered by that commit.
            return False
        window = depth - occupancy_of() - vc.in_flight
        if window <= 0:
            note_stall()
            return False
        n = len(queue)
        if window < n:
            n = window
        compact()
        words_extend(encode_batch(queue[:n]))
        end = len(pool_words)
        bounds_extend(range(end - (n - 1) * words, end + 1, words))
        vc_extend([vc_id] * n)
        busy = direction.busy_until
        busy_cycles = stats.busy_cycles
        if charge_driver is None:
            for _ in range(n):
                start = busy if busy > now else now
                busy = start + occupancy
                due_append(busy + latency)
                busy_cycles += occupancy
        else:
            for _ in range(n):
                start = busy if busy > now else now
                busy = start + occupancy
                due_append(busy + latency)
                busy_cycles += occupancy
                # The processor spends time marshaling and driving the DMA.
                charge_driver(words, now)
        direction.busy_until = busy
        stats.busy_cycles = busy_cycles
        stats.messages += n
        stats.words += n * words
        per_vc[vc_id] = per_vc.get(vc_id, 0) + n
        vc.credits = window - n
        vc.in_flight += n
        vc_stats.messages_sent += n
        vc_stats.words_sent += n * words
        producer_store[data_reg] = queue[n:]
        if n < len(queue):
            note_stall()
        return True

    return pump


def compile_transport_delivery(
    direction: Any,
    vc_by_id: Dict[int, Any],
    deliver: Callable[[Any, Any, float], None],
    deliver_batch: Optional[Callable[[Any, tuple, float], None]] = None,
    charge_driver: Optional[Callable[[int, float], None]] = None,
) -> Callable[[float], bool]:
    """Compile one topology link's consumer side to a delivery closure.

    Everything per-link is pre-resolved: the link's due-message scan, the
    vc_id -> virtual-channel table, the target engine's delivery entry
    points and (for software consumers) the driver-cost charge.

    The due prefix is read straight out of the link's slotted
    :class:`~repro.platform.channel.MessagePool`: per message the closure
    advances two head cursors and decodes the payload *in place* from the
    flat word ring (the virtual channel's layout-compiled ``decode`` with a
    start index -- zero-copy, no per-message object, no slicing).

    When the target supplies ``deliver_batch`` (hardware engines -- their
    parking condition cannot change mid-sweep), consecutive due messages of
    the same virtual channel land as one batched endpoint append instead of
    growing the endpoint tuple one element at a time, and the vc
    credit/stat updates commit once per run.  Software consumers deliver
    per element: each delivery's driver charge makes the engine busy, which
    parks the *next* delivery -- batching would change credit timing.

    Returns ``deliver_due(now) -> bool`` (whether any message landed).
    """
    if deliver_batch is not None and charge_driver is not None:
        raise ValueError(
            "deliver_batch and charge_driver are mutually exclusive: driver "
            "charges make the consumer busy mid-sweep, so charged targets "
            "must deliver per element"
        )
    pool = direction.pool
    # Ring identities are stable (compaction trims in place): pre-bind them,
    # along with each virtual channel's endpoint register and compiled
    # decoders, so the per-message work is cursor arithmetic plus one decode.
    pool_words = pool.words
    vc_ids = pool.vc_ids
    bounds = pool.bounds
    due_ring = pool.due
    info_by_vc = {
        vc_id: (vc, vc.decode, vc.decode_run, vc.sync.data, vc.words_per_element)
        for vc_id, vc in vc_by_id.items()
    }

    if deliver_batch is None:

        def deliver_due(now: float) -> bool:
            i = pool.head
            total = len(due_ring)
            if i >= total or due_ring[i] > now:
                return False
            start = pool.word_head
            while i < total and due_ring[i] <= now:
                vc, decode, _, data_reg, n_words = info_by_vc[vc_ids[i]]
                # Skip the header word; decode the payload in place.
                deliver(data_reg, decode(pool_words, start + 1), now)
                vc.on_deliver()
                if charge_driver is not None:
                    # Demarshaling / copy out of the DMA buffer costs CPU time.
                    charge_driver(n_words, now)
                start = bounds[i]
                i += 1
            pool.head = i
            pool.word_head = start
            return True

        return deliver_due

    def deliver_due_batched(now: float) -> bool:
        i = pool.head
        total = len(due_ring)
        if i >= total or due_ring[i] > now:
            return False
        cut = i + 1
        while cut < total and due_ring[cut] <= now:
            cut += 1
        start = pool.word_head
        while i < cut:
            vc_id = vc_ids[i]
            j = i + 1
            while j < cut and vc_ids[j] == vc_id:
                j += 1
            vc, decode, decode_run, data_reg, _ = info_by_vc[vc_id]
            k = j - i
            if k == 1:
                items: tuple = (decode(pool_words, start + 1),)
            else:
                # Same-vc run: fixed message stride, decoded in one call.
                items = tuple(decode_run(pool_words, start, k))
            start = bounds[j - 1]
            deliver_batch(data_reg, items, now)
            vc.in_flight -= k
            vc.stats.messages_delivered += k
            i = j
        pool.head = cut
        pool.word_head = start
        return True

    return deliver_due_batched
