"""Rule schedulers for the two execution targets.

Hardware and software want opposite schedules from the same rules
(Section 6.3, "Scheduling"):

* **Hardware** executes, in every clock cycle, a maximal set of *enabled,
  pairwise non-conflicting* rules -- "passing the data through the
  algorithm".  :class:`HwSchedule` precomputes the static conflict matrix and
  greedily selects such a set each cycle.
* **Software** executes one rule at a time and wants to avoid wasted work
  (partial execution followed by rollback) and to exploit data locality --
  "passing the algorithm over the data".  :class:`SwSchedule` orders the
  rules in dataflow (producer-before-consumer) order and, after a rule
  fires, prefers its dataflow successors.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.core.analysis import ConflictMatrix, dataflow_edges, dataflow_order
from repro.core.module import Rule


class HwSchedule:
    """Static schedule information for a hardware partition."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules: List[Rule] = sorted(rules, key=lambda r: (-r.urgency,))
        self.conflict_matrix = ConflictMatrix(self.rules)

    def select(self, enabled: Sequence[Rule]) -> List[Rule]:
        """Greedy maximal set of non-conflicting rules among ``enabled``.

        Rules are considered in urgency order (then declaration order), which
        matches the deterministic scheduler the BSV compiler constructs.
        """
        chosen: List[Rule] = []
        enabled_set = set(enabled)
        for rule in self.rules:
            if rule in enabled_set and self.conflict_matrix.conflict_free_with(rule, chosen):
                chosen.append(rule)
        return chosen

    @property
    def n_conflicting_pairs(self) -> int:
        return self.conflict_matrix.n_conflicting_pairs


class SwSchedule:
    """Static schedule information for a software partition."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules: List[Rule] = list(rules)
        self.order: List[Rule] = dataflow_order(self.rules)
        edges = dataflow_edges(self.rules)
        self.successors: Dict[Rule, List[Rule]] = {r: [] for r in self.rules}
        for a, b in edges:
            self.successors[a].append(b)
        for rule in self.successors:
            self.successors[rule].sort(key=self.order.index)

    def candidates(self, last_fired: Optional[Rule]) -> List[Rule]:
        """The order in which the software engine should attempt rules next.

        After ``last_fired``, its dataflow successors are tried first (the
        data they need is hot and their guards are most likely to be true),
        then the full dataflow order.
        """
        if last_fired is None or last_fired not in self.successors:
            return list(self.order)
        preferred = self.successors[last_fired]
        rest = [r for r in self.order if r not in preferred]
        return preferred + rest
