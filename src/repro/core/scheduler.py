"""Rule schedulers for the two execution targets.

Hardware and software want opposite schedules from the same rules
(Section 6.3, "Scheduling"):

* **Hardware** executes, in every clock cycle, a maximal set of *enabled,
  pairwise non-conflicting* rules -- "passing the data through the
  algorithm".  :class:`HwSchedule` precomputes the static conflict matrix and
  greedily selects such a set each cycle.
* **Software** executes one rule at a time and wants to avoid wasted work
  (partial execution followed by rollback) and to exploit data locality --
  "passing the algorithm over the data".  :class:`SwSchedule` orders the
  rules in dataflow (producer-before-consumer) order and, after a rule
  fires, prefers its dataflow successors.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.analysis import (
    ConflictMatrix,
    dataflow_edges,
    dataflow_order,
    rule_read_set,
)
from repro.core.module import Register, Rule


class HwSchedule:
    """Static schedule information for a hardware partition."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules: List[Rule] = sorted(rules, key=lambda r: (-r.urgency,))
        self.conflict_matrix = ConflictMatrix(self.rules)

    def select(self, enabled: Sequence[Rule]) -> List[Rule]:
        """Greedy maximal set of non-conflicting rules among ``enabled``.

        Rules are considered in urgency order (then declaration order), which
        matches the deterministic scheduler the BSV compiler constructs.
        """
        chosen: List[Rule] = []
        enabled_set = set(enabled)
        for rule in self.rules:
            if rule in enabled_set and self.conflict_matrix.conflict_free_with(rule, chosen):
                chosen.append(rule)
        return chosen

    @property
    def n_conflicting_pairs(self) -> int:
        return self.conflict_matrix.n_conflicting_pairs


class SwSchedule:
    """Static schedule information for a software partition."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules: List[Rule] = list(rules)
        self.order: List[Rule] = dataflow_order(self.rules)
        edges = dataflow_edges(self.rules)
        self.successors: Dict[Rule, List[Rule]] = {r: [] for r in self.rules}
        for a, b in edges:
            self.successors[a].append(b)
        for rule in self.successors:
            self.successors[rule].sort(key=self.order.index)

        self._order_tuple: Tuple[Rule, ...] = tuple(self.order)
        self._candidate_cache: Dict[Optional[Rule], Tuple[Rule, ...]] = {}

    def candidates(self, last_fired: Optional[Rule]) -> Tuple[Rule, ...]:
        """The order in which the software engine should attempt rules next.

        After ``last_fired``, its dataflow successors are tried first (the
        data they need is hot and their guards are most likely to be true),
        then the full dataflow order.  The order depends only on
        ``last_fired``, so it is computed once per rule, cached, and
        returned as an immutable tuple.
        """
        if last_fired is None or last_fired not in self.successors:
            return self._order_tuple
        cached = self._candidate_cache.get(last_fired)
        if cached is None:
            preferred = self.successors[last_fired]
            rest = [r for r in self.order if r not in preferred]
            cached = self._candidate_cache[last_fired] = tuple(preferred + rest)
        return cached


# --------------------------------------------------------------------------
# dirty-set rule scheduling
# --------------------------------------------------------------------------


class WakingStore(dict):
    """A register store that reports every write to a wake callback.

    All state mutation in the simulators flows through plain dict writes
    (``store[reg] = value`` or ``commit``'s ``store.update``), so wrapping
    the store is what lets dirty-set scheduling observe *every* producer --
    rule commits, channel deliveries, the co-simulator's transport drain and
    test-bench pokes -- without per-call-site bookkeeping.

    Wrapping *copies* the source dict (a plain dict cannot be retrofitted
    with write interception in place); the engines therefore expose the
    wrapped store as ``engine.store`` and empty the original so that any
    caller still holding it fails fast instead of silently diverging.
    """

    __slots__ = ("wake",)

    def __init__(self, data, wake: Callable[[Register], None]):
        super().__init__(data)
        self.wake = wake

    def __setitem__(self, reg, value):
        dict.__setitem__(self, reg, value)
        self.wake(reg)

    def update(self, other=(), **kwargs):  # type: ignore[override]
        if not isinstance(other, dict):
            other = dict(other)  # normalise pair-iterables so wakes see keys
        dict.update(self, other, **kwargs)
        wake = self.wake
        for reg in other:
            wake(reg)
        for reg in kwargs:
            wake(reg)


_NO_WAKERS: Tuple[int, ...] = ()


class RuleWakeup:
    """A register→rules wakeup index implementing dirty-set scheduling.

    A rule whose guard failed cannot become enabled until some register in
    its (conservative) read set is written, so the engines mark it *sleeping*
    and skip re-attempting it; any write to a register it reads clears the
    flag.  This turns the per-step "re-try every rule" scan into a scan of
    the rules actually woken by recent state changes, without changing which
    rule fires (the skipped attempts were guaranteed guard failures).
    """

    __slots__ = ("rules", "index_of", "wakers", "sleeping", "n_sleeping")

    def __init__(self, rules: Sequence[Rule]):
        self.rules: List[Rule] = list(rules)
        self.index_of: Dict[Rule, int] = {r: i for i, r in enumerate(self.rules)}
        wakers: Dict[Register, List[int]] = {}
        for i, rule in enumerate(self.rules):
            for reg in rule_read_set(rule):
                wakers.setdefault(reg, []).append(i)
        self.wakers: Dict[Register, Tuple[int, ...]] = {
            reg: tuple(ids) for reg, ids in wakers.items()
        }
        #: sleeping[i] is truthy when rule i is known guard-disabled.
        self.sleeping = bytearray(len(self.rules))
        self.n_sleeping = 0

    def wrap_store(self, store: Dict[Register, Any]) -> WakingStore:
        """Wrap ``store`` so every write wakes the rules that read the register.

        The source dict is emptied after copying: the wrapped store is the
        only live store from here on, and stale aliases fail fast.
        """
        wrapped = WakingStore(store, self.wake)
        store.clear()
        return wrapped

    def wake(self, reg: Register) -> None:
        ids = self.wakers.get(reg, _NO_WAKERS)
        if ids:
            sleeping = self.sleeping
            for i in ids:
                if sleeping[i]:
                    sleeping[i] = 0
                    self.n_sleeping -= 1

    def sleep_index(self, i: int) -> None:
        if not self.sleeping[i]:
            self.sleeping[i] = 1
            self.n_sleeping += 1

    @property
    def all_asleep(self) -> bool:
        """Whether every rule is known guard-disabled (nothing can fire)."""
        return self.n_sleeping == len(self.rules)
