"""BCL expressions.

Expressions are the pure fragment of the kernel grammar (Figure 7)::

    e ::= r                  -- register read
        | c                  -- constant
        | t                  -- variable reference
        | e op e             -- primitive operation
        | e ? e : e          -- conditional expression
        | e when e           -- guarded expression
        | (t = e in e)       -- let expression
        | m.f(e)             -- value method call

This module adds one extension over the kernel grammar: :class:`KernelCall`,
a call to a *foreign compute kernel* (a pure Python function) annotated with
its hardware and software cost.  The paper's rules call functions such as
``applyRadix`` or ``imdctPreLo`` whose bodies are ordinary arithmetic; the
kernel-call node lets the applications express those bodies at natural
granularity while the cost annotations feed the performance model
(see DESIGN.md, "Two execution layers").
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Union

from repro.core.ast import Node
from repro.core.types import BCLType

# Operators usable in BinOp / UnOp, mapped to their Python evaluation.
BINARY_OPS: dict = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

UNARY_OPS: dict = {
    "-": lambda a: -a,
    "!": lambda a: not a,
    "~": lambda a: ~a,
}


class Expr(Node):
    """Base class of all expressions."""

    def when(self, guard: "Expr") -> "WhenE":
        """``self when guard`` -- attach an explicit guard to this expression."""
        return WhenE(self, guard)


class Const(Expr):
    """A literal constant.  ``ty`` is optional and used only for checking/codegen."""

    _child_fields = ()

    def __init__(self, value: Any, ty: Optional[BCLType] = None):
        self.value = value
        self.ty = ty

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Var(Expr):
    """Reference to a let-bound variable or method parameter."""

    _child_fields = ()

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class RegRead(Expr):
    """Read of a register (state element)."""

    _child_fields = ()

    def __init__(self, reg: "Register"):  # noqa: F821 - forward ref to module.Register
        self.reg = reg

    def __repr__(self) -> str:
        return f"RegRead({self.reg.name})"


class UnOp(Expr):
    """Unary primitive operation."""

    _child_fields = ("operand",)

    def __init__(self, op: str, operand: Expr):
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand


class BinOp(Expr):
    """Binary primitive operation (``e op e``)."""

    _child_fields = ("left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right


class Mux(Expr):
    """Conditional expression ``cond ? then : else``.

    Unlike a guarded expression, both arms are legal to evaluate; only the
    selected arm's guard matters (when-axiom A.4/A.5 analogues for
    expressions).
    """

    _child_fields = ("cond", "then", "orelse")

    def __init__(self, cond: Expr, then: Expr, orelse: Expr):
        self.cond = cond
        self.then = then
        self.orelse = orelse


class WhenE(Expr):
    """Guarded expression ``body when guard``."""

    _child_fields = ("body", "guard")

    def __init__(self, body: Expr, guard: Expr):
        self.body = body
        self.guard = guard


class LetE(Expr):
    """Non-strict let binding inside an expression: ``(name = value in body)``."""

    _child_fields = ("value", "body")

    def __init__(self, name: str, value: Expr, body: Expr):
        self.name = name
        self.value = value
        self.body = body


class MethodCallE(Expr):
    """Call of a *value* method ``m.f(e...)`` on a module instance."""

    _child_fields = ("args",)

    def __init__(self, instance: "Module", method: str, args: Sequence[Expr] = ()):  # noqa: F821
        self.instance = instance
        self.method = method
        self.args = list(args)

    def __repr__(self) -> str:
        return f"MethodCallE({self.instance.name}.{self.method}, {self.args!r})"


class FieldSelect(Expr):
    """Select a struct field or a vector element from an expression value."""

    _child_fields = ("operand",)

    def __init__(self, operand: Expr, field: Union[str, int]):
        self.operand = operand
        self.field = field


class KernelCall(Expr):
    """Call of a foreign compute kernel.

    ``fn`` is a pure Python function of the evaluated argument values.
    ``sw_cycles`` / ``hw_cycles`` give the execution cost of the kernel in
    CPU cycles (software partition) and FPGA cycles (hardware partition);
    each may be a constant or a callable of the evaluated arguments.
    """

    _child_fields = ("args",)

    def __init__(
        self,
        name: str,
        fn: Callable[..., Any],
        args: Sequence[Expr] = (),
        sw_cycles: Union[int, Callable[..., int]] = 1,
        hw_cycles: Union[int, Callable[..., int]] = 1,
    ):
        self.name = name
        self.fn = fn
        self.args = list(args)
        self.sw_cycles = sw_cycles
        self.hw_cycles = hw_cycles

    def cost(self, which: str, arg_values: Sequence[Any]) -> int:
        """Evaluate the cost annotation ``which`` ('sw' or 'hw') for the given args."""
        spec = self.sw_cycles if which == "sw" else self.hw_cycles
        if callable(spec):
            return int(spec(*arg_values))
        return int(spec)

    def __repr__(self) -> str:
        return f"KernelCall({self.name}, {self.args!r})"


# -- convenience constructors -------------------------------------------------


def const(value: Any, ty: Optional[BCLType] = None) -> Const:
    return Const(value, ty)


TRUE = Const(True)
FALSE = Const(False)


def lift_value(value: Union[Expr, Any]) -> Expr:
    """Wrap a plain Python value in :class:`Const`; pass expressions through."""
    return value if isinstance(value, Expr) else Const(value)
