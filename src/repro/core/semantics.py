"""Operational semantics of kernel BCL: action and expression evaluation.

The evaluator implements the one-rule-at-a-time semantics of Section 5:

* evaluating a rule yields either a set of register updates (its guard was
  true) or nothing (a guard somewhere inside failed);
* parallel composition ``a1 | a2`` evaluates both branches against the same
  incoming state and merges their updates, raising ``DoubleWriteError`` if
  both write the same register;
* sequential composition ``a1 ; a2`` lets ``a2`` observe ``a1``'s updates;
* ``localGuard a`` converts a guard failure inside ``a`` into a no-op;
* lets are non-strict (a binding whose value's guard would fail only matters
  if the binding is used), while method-call arguments are strict;
* method calls on user modules are inlined (guard conjunction included);
  method calls on primitives run their native implementations.

Guard failure is signalled with the :class:`~repro.core.errors.GuardFail`
exception, mirroring the generated C++'s use of ``throw`` (Section 6.2).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.action import (
    Action,
    IfA,
    LetA,
    LocalGuard,
    Loop,
    MethodCallA,
    NoAction,
    Par,
    RegWrite,
    Seq,
    WhenA,
)
from repro.core.errors import (
    DoubleWriteError,
    ElaborationError,
    GuardFail,
    SimulationError,
)
from repro.core.expr import (
    BINARY_OPS,
    UNARY_OPS,
    BinOp,
    Const,
    Expr,
    FieldSelect,
    KernelCall,
    LetE,
    MethodCallE,
    Mux,
    RegRead,
    UnOp,
    Var,
    WhenE,
)
from repro.core.module import Method, Module, PrimitiveModule, Register, Rule

Store = Dict[Register, Any]
Updates = Dict[Register, Any]
ReadFn = Callable[[Register], Any]


class EvalHooks:
    """Observation hooks used by the software cost model and by tracing tools.

    The default implementation does nothing; the interpreter calls these at
    well-defined points so that cost accounting never perturbs semantics.
    """

    def on_node(self, node) -> None:
        """Called once per AST node evaluated."""

    def on_kernel(self, kernel: KernelCall, arg_values: Sequence[Any]) -> None:
        """Called when a foreign kernel is invoked (after argument evaluation)."""

    def on_method(self, module: Module, method: str) -> None:
        """Called for every method invocation (primitive or user)."""

    def on_guard_fail(self, node) -> None:
        """Called when a guard failure is raised at ``node``."""

    def on_register_write(self, reg: Register) -> None:
        """Called when an update to ``reg`` is recorded."""

    def on_register_read(self, reg: Register) -> None:
        """Called when ``reg`` is read."""


class _Thunk:
    """A lazily evaluated let-binding (BCL lets are non-strict)."""

    __slots__ = ("expr", "env", "read", "evaluator", "hooks", "_value", "_forced")

    def __init__(self, expr: Expr, env: Dict[str, Any], read: ReadFn, evaluator, hooks):
        self.expr = expr
        self.env = env
        self.read = read
        self.evaluator = evaluator
        self.hooks = hooks
        self._value: Any = None
        self._forced = False

    def force(self) -> Any:
        if not self._forced:
            self._value = self.evaluator.eval_expr(self.expr, self.env, self.read, self.hooks)
            self._forced = True
        return self._value


class Evaluator:
    """Evaluates expressions and actions against a read function.

    The evaluator is stateless; all state flows through the ``read`` callback
    and the returned update dictionaries, which is what makes shadowing,
    sequential overlays and rollback compositional.
    """

    def __init__(self, max_loop_iterations: int = 1_000_000):
        self.max_loop_iterations = max_loop_iterations

    # ------------------------------------------------------------------ expr

    def eval_expr(
        self,
        expr: Expr,
        env: Dict[str, Any],
        read: ReadFn,
        hooks: Optional[EvalHooks] = None,
    ) -> Any:
        hooks = hooks or _NO_HOOKS
        hooks.on_node(expr)

        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            if expr.name not in env:
                raise ElaborationError(f"unbound variable {expr.name!r}")
            value = env[expr.name]
            return value.force() if isinstance(value, _Thunk) else value
        if isinstance(expr, RegRead):
            hooks.on_register_read(expr.reg)
            return read(expr.reg)
        if isinstance(expr, UnOp):
            return UNARY_OPS[expr.op](self.eval_expr(expr.operand, env, read, hooks))
        if isinstance(expr, BinOp):
            left = self.eval_expr(expr.left, env, read, hooks)
            # Short-circuit boolean operators so a guarded right operand is
            # only evaluated when it matters.
            if expr.op == "&&" and not left:
                return False
            if expr.op == "||" and left:
                return True
            right = self.eval_expr(expr.right, env, read, hooks)
            return BINARY_OPS[expr.op](left, right)
        if isinstance(expr, Mux):
            cond = self.eval_expr(expr.cond, env, read, hooks)
            branch = expr.then if cond else expr.orelse
            return self.eval_expr(branch, env, read, hooks)
        if isinstance(expr, WhenE):
            guard = self.eval_expr(expr.guard, env, read, hooks)
            if not guard:
                hooks.on_guard_fail(expr)
                raise GuardFail(f"expression guard failed at {expr!r}")
            return self.eval_expr(expr.body, env, read, hooks)
        if isinstance(expr, LetE):
            new_env = dict(env)
            new_env[expr.name] = _Thunk(expr.value, env, read, self, hooks)
            return self.eval_expr(expr.body, new_env, read, hooks)
        if isinstance(expr, FieldSelect):
            value = self.eval_expr(expr.operand, env, read, hooks)
            if isinstance(expr.field, int):
                return value[expr.field]
            if isinstance(value, dict):
                return value[expr.field]
            return getattr(value, expr.field)
        if isinstance(expr, KernelCall):
            arg_values = [self.eval_expr(a, env, read, hooks) for a in expr.args]
            hooks.on_kernel(expr, arg_values)
            return expr.fn(*arg_values)
        if isinstance(expr, MethodCallE):
            return self._call_value_method(expr.instance, expr.method, expr.args, env, read, hooks)
        raise ElaborationError(f"cannot evaluate expression node {expr!r}")

    # ---------------------------------------------------------------- action

    def exec_action(
        self,
        action: Action,
        env: Dict[str, Any],
        read: ReadFn,
        hooks: Optional[EvalHooks] = None,
    ) -> Updates:
        hooks = hooks or _NO_HOOKS
        hooks.on_node(action)

        if isinstance(action, NoAction):
            return {}
        if isinstance(action, RegWrite):
            value = self.eval_expr(action.value, env, read, hooks)
            hooks.on_register_write(action.reg)
            return {action.reg: value}
        if isinstance(action, IfA):
            cond = self.eval_expr(action.cond, env, read, hooks)
            if cond:
                return self.exec_action(action.then, env, read, hooks)
            if action.orelse is not None:
                return self.exec_action(action.orelse, env, read, hooks)
            return {}
        if isinstance(action, WhenA):
            guard = self.eval_expr(action.guard, env, read, hooks)
            if not guard:
                hooks.on_guard_fail(action)
                raise GuardFail(f"action guard failed at {action!r}")
            return self.exec_action(action.body, env, read, hooks)
        if isinstance(action, Par):
            return self._exec_par(action, env, read, hooks)
        if isinstance(action, Seq):
            return self._exec_seq(action.actions, env, read, hooks)
        if isinstance(action, LetA):
            new_env = dict(env)
            new_env[action.name] = _Thunk(action.value, env, read, self, hooks)
            return self.exec_action(action.body, new_env, read, hooks)
        if isinstance(action, Loop):
            return self._exec_loop(action, env, read, hooks)
        if isinstance(action, LocalGuard):
            try:
                return self.exec_action(action.body, env, read, hooks)
            except GuardFail:
                return {}
        if isinstance(action, MethodCallA):
            return self._call_action_method(
                action.instance, action.method, action.args, env, read, hooks
            )
        raise ElaborationError(f"cannot execute action node {action!r}")

    # ------------------------------------------------------------- composites

    def _exec_par(self, action: Par, env: Dict[str, Any], read: ReadFn, hooks: EvalHooks) -> Updates:
        merged: Updates = {}
        for sub in action.actions:
            updates = self.exec_action(sub, env, read, hooks)
            for reg, value in updates.items():
                if reg in merged:
                    raise DoubleWriteError(
                        f"parallel composition writes register {reg.full_name} twice"
                    )
                merged[reg] = value
        return merged

    def _exec_seq(
        self, actions: Sequence[Action], env: Dict[str, Any], read: ReadFn, hooks: EvalHooks
    ) -> Updates:
        overlay: Updates = {}

        def overlaid_read(reg: Register) -> Any:
            if reg in overlay:
                return overlay[reg]
            return read(reg)

        for sub in actions:
            updates = self.exec_action(sub, env, overlaid_read, hooks)
            overlay.update(updates)
        return overlay

    def _exec_loop(self, action: Loop, env: Dict[str, Any], read: ReadFn, hooks: EvalHooks) -> Updates:
        overlay: Updates = {}

        def overlaid_read(reg: Register) -> Any:
            if reg in overlay:
                return overlay[reg]
            return read(reg)

        limit = min(action.max_iterations, self.max_loop_iterations)
        iterations = 0
        while self.eval_expr(action.cond, env, overlaid_read, hooks):
            updates = self.exec_action(action.body, env, overlaid_read, hooks)
            overlay.update(updates)
            iterations += 1
            if iterations >= limit:
                raise SimulationError(
                    f"loop exceeded {limit} iterations; "
                    "either the bound is too small or the loop does not terminate"
                )
        return overlay

    # ---------------------------------------------------------------- methods

    def _bind_params(
        self,
        method: Method,
        args: Sequence[Expr],
        env: Dict[str, Any],
        read: ReadFn,
        hooks: EvalHooks,
    ) -> List[Any]:
        if len(args) != len(method.params):
            raise ElaborationError(
                f"method {method.module.name}.{method.name} expects "
                f"{len(method.params)} arguments, got {len(args)}"
            )
        # Method calls are strict (each method is a concrete port).
        return [self.eval_expr(a, env, read, hooks) for a in args]

    def _call_value_method(
        self,
        instance: Module,
        name: str,
        args: Sequence[Expr],
        env: Dict[str, Any],
        read: ReadFn,
        hooks: EvalHooks,
    ) -> Any:
        hooks.on_method(instance, name)
        method = instance.get_method(name)
        arg_values = self._bind_params(method, args, env, read, hooks)
        if isinstance(instance, PrimitiveModule):
            native = instance.get_native(name)
            if not native.guard_fn(read, *arg_values):
                hooks.on_guard_fail(method)
                raise GuardFail(f"value method {instance.name}.{name} is not ready")
            _, result = native.body_fn(read, *arg_values)
            return result
        method_env = dict(zip(method.params, arg_values))
        guard_ok = self.eval_expr(method.guard, method_env, read, hooks)
        if not guard_ok:
            hooks.on_guard_fail(method)
            raise GuardFail(f"value method {instance.name}.{name} is not ready")
        if method.body is None:
            raise ElaborationError(f"value method {instance.name}.{name} has no body")
        return self.eval_expr(method.body, method_env, read, hooks)

    def _call_action_method(
        self,
        instance: Module,
        name: str,
        args: Sequence[Expr],
        env: Dict[str, Any],
        read: ReadFn,
        hooks: EvalHooks,
    ) -> Updates:
        hooks.on_method(instance, name)
        method = instance.get_method(name)
        arg_values = self._bind_params(method, args, env, read, hooks)
        if isinstance(instance, PrimitiveModule):
            native = instance.get_native(name)
            if not native.guard_fn(read, *arg_values):
                hooks.on_guard_fail(method)
                raise GuardFail(f"action method {instance.name}.{name} is not ready")
            updates, _ = native.body_fn(read, *arg_values)
            for reg in updates:
                hooks.on_register_write(reg)
            return updates
        method_env = dict(zip(method.params, arg_values))
        guard_ok = self.eval_expr(method.guard, method_env, read, hooks)
        if not guard_ok:
            hooks.on_guard_fail(method)
            raise GuardFail(f"action method {instance.name}.{name} is not ready")
        if method.body is None:
            raise ElaborationError(f"action method {instance.name}.{name} has no body")
        return self.exec_action(method.body, method_env, read, hooks)


_NO_HOOKS = EvalHooks()


class RuleOutcome:
    """The result of attempting one rule: whether it fired, and its updates."""

    def __init__(self, rule: Rule, fired: bool, updates: Optional[Updates] = None):
        self.rule = rule
        self.fired = fired
        self.updates: Updates = updates or {}

    def __repr__(self) -> str:
        status = "fired" if self.fired else "guard-failed"
        return f"RuleOutcome({self.rule.full_name}, {status}, {len(self.updates)} updates)"


def try_rule(
    rule: Rule,
    store: Store,
    evaluator: Optional[Evaluator] = None,
    hooks: Optional[EvalHooks] = None,
) -> RuleOutcome:
    """Evaluate ``rule`` against ``store`` without committing anything.

    Returns a :class:`RuleOutcome`; the caller decides whether/when to commit
    (``store.update(outcome.updates)``), which is what lets the HW and SW
    engines impose their own schedules on the same semantics.
    """
    evaluator = evaluator or Evaluator()

    def read(reg: Register) -> Any:
        if reg not in store:
            raise SimulationError(f"register {reg.full_name} is not part of this store")
        return store[reg]

    try:
        updates = evaluator.exec_action(rule.action, {}, read, hooks)
    except GuardFail:
        return RuleOutcome(rule, fired=False)
    return RuleOutcome(rule, fired=True, updates=updates)


def commit(store: Store, updates: Updates) -> None:
    """Apply a rule's updates to the store (the commit phase of Section 6.2)."""
    store.update(updates)
