"""Partition extraction (Section 4.3, Figure 6).

After type checking and domain inference, the code for a particular domain
``D`` is obtained by keeping only the rules annotated with ``D``.  Each
partition is then a complete BCL program of its own that communicates with
the other partitions exclusively through the synchronizer endpoints that
landed on the cut.  The compiler's third output -- the interface -- is
derived from that cut set by :mod:`repro.codegen.interface`.

The partitioner also performs the safety check that makes the whole scheme
trustworthy: every non-synchronizer state element must be touched only by
rules of its own domain (otherwise the program needed a synchronizer and the
domain type check should have failed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.core.analysis import modules_touched, rule_read_set, rule_write_set
from repro.core.domains import (
    Domain,
    effective_module_domain,
    infer_design_domains,
    unresolved_domain_variables,
)
from repro.core.errors import PartitionError
from repro.core.module import Design, Module, Register, Rule
from repro.core.synchronizers import SyncFifo, cross_domain_synchronizers


@dataclass
class PartitionedProgram:
    """One domain's slice of the design: its rules, state and synchronizer endpoints."""

    domain: Domain
    rules: List[Rule] = field(default_factory=list)
    modules: List[Module] = field(default_factory=list)
    registers: List[Register] = field(default_factory=list)
    #: Synchronizers whose *producer* (enq) side lives in this domain.
    produces_to: List[SyncFifo] = field(default_factory=list)
    #: Synchronizers whose *consumer* (deq/first) side lives in this domain.
    consumes_from: List[SyncFifo] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.domain.name

    def __repr__(self) -> str:
        return (
            f"PartitionedProgram({self.domain.name}, rules={len(self.rules)}, "
            f"registers={len(self.registers)}, "
            f"out_syncs={len(self.produces_to)}, in_syncs={len(self.consumes_from)})"
        )


def default_engine_kind(domain: Union[Domain, str]) -> str:
    """The default engine kind (``"hw"``/``"sw"``) a domain simulates on.

    Domains whose name starts with ``HW`` -- case-insensitively, so
    ``hw_accel`` behaves like ``HW_ACCEL`` -- run on the cycle-level hardware
    engine; everything else runs on the cost-modelled software engine.  This
    is the *single* source of that convention: the co-simulation fabric, the
    sweep examples and the interface generator must all consult it (or an
    explicit ``engine_kinds`` override) so a domain never simulates as
    hardware in one layer and generates software transactors in another.
    """
    name = domain.name if isinstance(domain, Domain) else domain
    return "hw" if name.upper().startswith("HW") else "sw"


@dataclass
class Partitioning:
    """The result of partitioning a design: per-domain programs plus the cut."""

    design: Design
    programs: Dict[Domain, PartitionedProgram]
    cut: List[SyncFifo]

    def program(self, domain: Domain) -> PartitionedProgram:
        if domain not in self.programs:
            raise PartitionError(f"design has no partition for domain {domain.name}")
        return self.programs[domain]

    @property
    def domains(self) -> List[Domain]:
        return sorted(self.programs.keys(), key=lambda d: d.name)

    def route_pairs(self) -> List[tuple]:
        """The (producer, consumer) domain-name pairs the cut actually uses.

        This is the link set a :class:`~repro.platform.channel.Topology`
        must provide: one serialised point-to-point link per pair, in cut
        order (deduplicated).  A two-domain design yields the classic
        ``[(SW, HW), (HW, SW)]`` duplex pair (or a subset when traffic is
        one-directional).
        """
        pairs: List[tuple] = []
        seen: Set[tuple] = set()
        for sync in self.cut:
            pair = (sync.domain_enq.name, sync.domain_deq.name)
            if pair not in seen:
                seen.add(pair)
                pairs.append(pair)
        return pairs

    def engine_kinds(
        self, overrides: Optional[Dict[Union[Domain, str], str]] = None
    ) -> Dict[str, str]:
        """Domain-name -> engine-kind (``"hw"``/``"sw"``) mapping for this design.

        Starts from :func:`default_engine_kind` for every partitioned domain
        and applies ``overrides`` (keyed by :class:`Domain` or name) on top.
        An override naming a domain the design does not partition into is an
        error -- it would silently configure nothing.
        """
        kinds = {d.name: default_engine_kind(d) for d in self.programs}
        for key, kind in (overrides or {}).items():
            if kind not in ("hw", "sw"):
                raise PartitionError(f"unknown engine kind {kind!r} (expected 'hw'/'sw')")
            name = key.name if isinstance(key, Domain) else key
            if name not in kinds:
                raise PartitionError(
                    f"engine_kinds names domain {name!r} but the design partitions "
                    f"into {sorted(kinds)}"
                )
            kinds[name] = kind
        return kinds

    def engine_kind(
        self,
        domain: Union[Domain, str],
        overrides: Optional[Dict[Union[Domain, str], str]] = None,
    ) -> str:
        """The engine kind one domain simulates on (overrides, else the default).

        Same validation as :meth:`engine_kinds` (it is a lookup into it), so
        a typo'd domain or an invalid override kind raises instead of
        silently falling back to a default.
        """
        name = domain.name if isinstance(domain, Domain) else domain
        kinds = self.engine_kinds(overrides)
        if name not in kinds:
            raise PartitionError(
                f"design has no partition for domain {name!r}; partitions: {sorted(kinds)}"
            )
        return kinds[name]

    def independent_groups(self) -> List[List[Domain]]:
        """Connected components of the domain graph induced by the cut.

        Domains joined (transitively) by a synchronizer must co-simulate in
        one fabric; domains in different components never exchange a message
        and may be sharded into separate simulations/processes
        (:mod:`repro.sim.shard`) or run under independent clocks inside one
        fabric (:class:`~repro.sim.cosim.CosimFabric`).  Returned sorted by
        each group's first domain name for determinism.  The result is
        memoised (elaborated designs are immutable after construction).
        """
        cached = getattr(self, "_groups_cache", None)
        if cached is not None:
            return cached
        parent: Dict[Domain, Domain] = {d: d for d in self.programs}

        def find(d: Domain) -> Domain:
            while parent[d] is not d:
                parent[d] = parent[parent[d]]
                d = parent[d]
            return d

        for sync in self.cut:
            a, b = sync.domain_enq, sync.domain_deq
            if a in parent and b in parent:
                ra, rb = find(a), find(b)
                if ra is not rb:
                    parent[rb] = ra
        groups: Dict[Domain, List[Domain]] = {}
        for d in self.programs:
            groups.setdefault(find(d), []).append(d)
        ordered = [sorted(g, key=lambda d: d.name) for g in groups.values()]
        ordered = sorted(ordered, key=lambda g: g[0].name)
        self._groups_cache = ordered
        return ordered

    # -- group-aware views --------------------------------------------------
    #
    # Everything below projects the partitioning onto one independent group,
    # indexed by position in :meth:`independent_groups`.  These views are what
    # lets a fabric decompose one design's co-simulation into independently
    # clocked sub-fabrics, and a done predicate's observations be attributed
    # to the (single) group that owns each observed register.

    @property
    def group_count(self) -> int:
        """How many independent groups the cut decomposes the design into."""
        return len(self.independent_groups())

    def _group_index(self) -> Dict[str, int]:
        cached = getattr(self, "_group_index_cache", None)
        if cached is None:
            cached = {
                d.name: i
                for i, group in enumerate(self.independent_groups())
                for d in group
            }
            self._group_index_cache = cached
        return cached

    def group_of(self, domain: Union[Domain, str]) -> int:
        """The index (into :meth:`independent_groups`) of a domain's group."""
        name = domain.name if isinstance(domain, Domain) else domain
        index = self._group_index()
        if name not in index:
            raise PartitionError(
                f"design has no partition for domain {name!r}; partitions: "
                f"{sorted(index)}"
            )
        return index[name]

    def group_cut(self, group: int) -> List["SyncFifo"]:
        """The cut synchronizers internal to one group, in cut order.

        Every synchronizer's two endpoint domains lie in the *same* group by
        construction (the groups are the connected components of the graph
        the cut induces), so the global cut partitions cleanly.
        """
        index = self._group_index()
        return [s for s in self.cut if index[s.domain_enq.name] == group]

    def group_route_pairs(self, group: int) -> List[tuple]:
        """:meth:`route_pairs` restricted to one group (same order, no cross-group pair)."""
        index = self._group_index()
        return [pair for pair in self.route_pairs() if index[pair[0]] == group]

    def register_group(self, reg: Register) -> Optional[int]:
        """The group owning a register, or ``None`` if no partition owns it.

        A partition's registers belong to its domain's group; a cut
        synchronizer's internal registers belong to the (single) group both
        its endpoints are in.  Registers outside every partition (e.g. state
        of a module with no domain and no rules) have no owning group.
        """
        table = getattr(self, "_register_group_cache", None)
        if table is None:
            index = self._group_index()
            table = {}
            for domain, prog in self.programs.items():
                gid = index[domain.name]
                for r in prog.registers:
                    table[r] = gid
            for sync in self.cut:
                gid = index[sync.domain_enq.name]
                for r in sync.registers:
                    table[r] = gid
            self._register_group_cache = table
        return table.get(reg)

    def split_registers_by_group(self, registers) -> Dict[int, List[Register]]:
        """Split a set of observed registers by owning group.

        The partition-level view of done-predicate attribution: each group
        whose index appears in the result owns part of the predicate's view
        and must evaluate it; groups absent from the result can run to
        quiescence.  (The fabric implements the same attribution over its
        engines' stores -- ``CosimFabric.group_of_register`` -- which
        additionally covers registers partitioning does not own and falls
        back to the default store's group; this method is the
        engine-independent counterpart.)  Registers with no owning group
        are dropped from the result.
        """
        split: Dict[int, List[Register]] = {}
        for reg in registers:
            gid = self.register_group(reg)
            if gid is not None:
                split.setdefault(gid, []).append(reg)
        return {gid: split[gid] for gid in sorted(split)}

    def summary(self) -> str:
        """Human-readable description used by examples, the lint CLI and
        EXPERIMENTS.md: per-domain rule rosters, the cut with per-channel
        credit windows (the FIFO depth is the credit window unless the link
        overrides it), and route/group totals."""
        lines = [f"Partitioning of design {self.design.name!r}:"]
        for domain in self.domains:
            prog = self.programs[domain]
            rule_names = ", ".join(r.name for r in prog.rules) or "(none)"
            lines.append(f"  [{domain.name}] rules: {rule_names}")
        if self.cut:
            for sync in self.cut:
                lines.append(
                    f"  [cut] {sync.name}: {sync.domain_enq.name} -> {sync.domain_deq.name}"
                    f" ({sync.ty!r}, credit window {sync.depth})"
                )
        else:
            lines.append("  [cut] empty (single-domain design)")
        groups = self.independent_groups()
        lines.append(
            f"  [totals] {len(self.domains)} domain(s), {len(self.route_pairs())} "
            f"route(s), {len(self.cut)} cut channel(s), {len(groups)} independent "
            f"group(s)"
        )
        return "\n".join(lines)


def partition_design(design: Design, default_domain: Optional[Domain] = None) -> Partitioning:
    """Split ``design`` into per-domain programs connected by synchronizers.

    ``default_domain`` is assigned to rules that touch no domain-annotated
    state (typically pure bookkeeping rules); passing ``None`` makes such
    rules an error, which is the strict reading of the paper's type system.
    """
    unresolved = unresolved_domain_variables(design)
    if unresolved:
        raise PartitionError(
            f"design {design.name} still has unresolved domain variables {unresolved}; "
            "call substitute_domains()/specialize_synchronizers() first"
        )

    rule_domains = infer_design_domains(design, default_domain)
    cut = cross_domain_synchronizers(design)
    cut_set: Set[Module] = set(cut)

    domains = sorted({d for d in rule_domains.values()}, key=lambda d: d.name)
    programs: Dict[Domain, PartitionedProgram] = {
        d: PartitionedProgram(domain=d) for d in domains
    }

    # Rules.
    for rule, domain in rule_domains.items():
        programs[domain].rules.append(rule)

    # State ownership and the safety check.
    _assign_state(design, programs, cut_set, default_domain)

    # Synchronizer endpoints.
    for sync in cut:
        if sync.domain_enq in programs:
            programs[sync.domain_enq].produces_to.append(sync)
        if sync.domain_deq in programs:
            programs[sync.domain_deq].consumes_from.append(sync)

    _check_isolation(rule_domains, cut_set)

    return Partitioning(design=design, programs=programs, cut=cut)


def _assign_state(
    design: Design,
    programs: Dict[Domain, PartitionedProgram],
    cut_set: Set[Module],
    default_domain: Optional[Domain],
) -> None:
    """Assign every module (and its registers) to the partition that owns it."""
    for module in design.all_modules():
        if module in cut_set:
            continue  # split between both sides; handled by the interface generator
        if isinstance(module, SyncFifo) and not module.is_cross_domain:
            # A specialised (same-domain) synchronizer is a plain FIFO whose
            # owner is its endpoint domain -- which lives on its *methods*,
            # not on the module, so the generic lookup below would misfile
            # it under the default domain.
            domain = module.domain_enq
        else:
            domain = effective_module_domain(module)
        if domain is None:
            domain = default_domain
        if domain is None or domain not in programs:
            # A module with no rules and no domain (e.g. a structural wrapper)
            # does not need to be placed unless it owns registers.
            if module.registers and domain is None:
                if default_domain is None:
                    raise PartitionError(
                        f"module {module.full_name} owns state but has no domain and no "
                        "default domain was provided"
                    )
            if domain is None or domain not in programs:
                continue
        prog = programs[domain]
        prog.modules.append(module)
        prog.registers.extend(module.registers)


def _check_isolation(rule_domains: Dict[Rule, Domain], cut_set: Set[Module]) -> None:
    """Every non-synchronizer state element is touched by one domain only."""
    touchers: Dict[Register, Set[Domain]] = {}
    for rule, domain in rule_domains.items():
        for reg in rule_read_set(rule) | rule_write_set(rule):
            if reg.parent in cut_set:
                continue
            touchers.setdefault(reg, set()).add(domain)
    violations = {
        reg.full_name: sorted(d.name for d in doms)
        for reg, doms in touchers.items()
        if len(doms) > 1
    }
    if violations:
        raise PartitionError(
            "state elements are shared across domains without a synchronizer: "
            f"{violations}"
        )
