"""Static analyses: read/write sets, method usage and rule conflicts.

The BSV/BCL compilation strategy never detects conflicts dynamically
(Section 6.1): the compiler performs a *pairwise static analysis* to
conservatively estimate which rules conflict, and the scheduler then only
runs non-conflicting rules concurrently.  The analyses here provide exactly
that information, and additionally feed

* partial shadowing (only the write set of a rule needs shadow state),
* sequentialisation of parallel actions (legal when the writer's write set
  misses the other branch's read set), and
* the software scheduler's dataflow ordering.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.core.action import (
    Action,
    IfA,
    LetA,
    LocalGuard,
    Loop,
    MethodCallA,
    NoAction,
    Par,
    RegWrite,
    Seq,
    WhenA,
)
from repro.core.ast import Node
from repro.core.expr import MethodCallE
from repro.core.module import Design, Method, Module, PrimitiveModule, Register, Rule


def _method_nodes(node: Node):
    for sub in node.walk():
        if isinstance(sub, (MethodCallA, MethodCallE)):
            yield sub


def read_set(node: Node) -> Set[Register]:
    """Registers possibly read while evaluating ``node`` (conservative)."""
    from repro.core.expr import RegRead

    regs: Set[Register] = set()
    for sub in node.walk():
        if isinstance(sub, RegRead):
            regs.add(sub.reg)
        elif isinstance(sub, (MethodCallA, MethodCallE)):
            regs |= _method_read_set(sub.instance, sub.method)
    return regs


def write_set(node: Node) -> Set[Register]:
    """Registers possibly written while executing ``node`` (conservative)."""
    regs: Set[Register] = set()
    for sub in node.walk():
        if isinstance(sub, RegWrite):
            regs.add(sub.reg)
        elif isinstance(sub, MethodCallA):
            regs |= _method_write_set(sub.instance, sub.method)
    return regs


def _method_read_set(instance: Module, name: str) -> FrozenSet[Register]:
    method = instance.get_method(name)
    cached = getattr(method, "_read_set_cache", None)
    if cached is not None:
        return cached
    if isinstance(instance, PrimitiveModule):
        native = instance.get_native(name)
        result = frozenset(native.reads)
    else:
        regs: Set[Register] = set()
        if method.body is not None:
            regs |= read_set(method.body)
        regs |= read_set(method.guard)
        result = frozenset(regs)
    method._read_set_cache = result  # type: ignore[attr-defined]
    return result


def _method_write_set(instance: Module, name: str) -> FrozenSet[Register]:
    method = instance.get_method(name)
    cached = getattr(method, "_write_set_cache", None)
    if cached is not None:
        return cached
    if isinstance(instance, PrimitiveModule):
        native = instance.get_native(name)
        result = frozenset(native.writes)
    elif method.kind != "action" or method.body is None:
        result = frozenset()
    else:
        result = frozenset(write_set(method.body))
    method._write_set_cache = result  # type: ignore[attr-defined]
    return result


# The rule-level analyses are memoised on the rule objects: every scheduler,
# engine and partition check asks for the same sets repeatedly, and an
# elaborated rule's action never changes.  (``read_set``/``write_set`` on
# arbitrary nodes stay uncached -- the optimiser calls them on freshly
# rewritten bodies.)


def rule_read_set(rule: Rule) -> FrozenSet[Register]:
    cached = getattr(rule, "_read_set_cache", None)
    if cached is None:
        cached = frozenset(read_set(rule.action))
        rule._read_set_cache = cached  # type: ignore[attr-defined]
    return cached


def rule_write_set(rule: Rule) -> FrozenSet[Register]:
    cached = getattr(rule, "_write_set_cache", None)
    if cached is None:
        cached = frozenset(write_set(rule.action))
        rule._write_set_cache = cached  # type: ignore[attr-defined]
    return cached


def primitive_method_calls(rule: Rule) -> Dict[PrimitiveModule, Set[str]]:
    """Which methods the rule invokes on each primitive module (transitively).

    User-module method calls are expanded so that, e.g., a rule calling
    ``ifft.input(x)`` is charged with the ``enq`` it performs on the FIFO
    inside ``ifft``.
    """
    cached = getattr(rule, "_primitive_calls_cache", None)
    if cached is not None:
        return cached
    result: Dict[PrimitiveModule, Set[str]] = {}

    def visit(node: Node) -> None:
        for call in _method_nodes(node):
            instance = call.instance
            if isinstance(instance, PrimitiveModule):
                result.setdefault(instance, set()).add(call.method)
            else:
                method = instance.get_method(call.method)
                if method.body is not None:
                    visit(method.body)
                visit(method.guard)

    visit(rule.action)
    rule._primitive_calls_cache = result  # type: ignore[attr-defined]
    return result


def conflicts(rule_a: Rule, rule_b: Rule) -> bool:
    """Conservative pairwise conflict check between two rules.

    Two rules conflict when they cannot both execute in the same hardware
    clock cycle while preserving one-rule-at-a-time semantics.  The check is
    the classic write/write or read/write intersection test, refined by the
    primitive modules' own knowledge of which method pairs are concurrently
    schedulable (e.g. ``enq`` and ``deq`` of a pipeline FIFO).
    """
    if rule_a is rule_b:
        return True
    cache = getattr(rule_a, "_conflict_cache", None)
    if cache is None:
        cache = {}
        rule_a._conflict_cache = cache  # type: ignore[attr-defined]
    cached = cache.get(rule_b)
    if cached is not None:
        return cached
    result = _conflicts_uncached(rule_a, rule_b)
    cache[rule_b] = result
    return result


def _conflicts_uncached(rule_a: Rule, rule_b: Rule) -> bool:
    reads_a, writes_a = rule_read_set(rule_a), rule_write_set(rule_a)
    reads_b, writes_b = rule_read_set(rule_b), rule_write_set(rule_b)
    shared = (writes_a & writes_b) | (writes_a & reads_b) | (writes_b & reads_a)
    if not shared:
        return False

    calls_a = primitive_method_calls(rule_a)
    calls_b = primitive_method_calls(rule_b)
    for reg in shared:
        owner = reg.parent
        if not isinstance(owner, PrimitiveModule):
            return True
        methods_a = calls_a.get(owner, set())
        methods_b = calls_b.get(owner, set())
        if not methods_a or not methods_b:
            # Direct register access into a primitive's internals: conservative.
            return True
        for ma in methods_a:
            for mb in methods_b:
                if not owner.concurrently_schedulable(ma, mb):
                    return True
    return False


class ConflictMatrix:
    """Precomputed pairwise conflict relation for all rules of a design."""

    def __init__(self, rules: List[Rule]):
        self.rules = list(rules)
        self._index: Dict[Rule, int] = {r: i for i, r in enumerate(self.rules)}
        self._conflicting: Set[FrozenSet[int]] = set()
        for i in range(len(self.rules)):
            for j in range(i + 1, len(self.rules)):
                if conflicts(self.rules[i], self.rules[j]):
                    self._conflicting.add(frozenset((i, j)))

    def conflict(self, rule_a: Rule, rule_b: Rule) -> bool:
        if rule_a is rule_b:
            return True
        i = self._index[rule_a]
        j = self._index[rule_b]
        return frozenset((i, j)) in self._conflicting

    def conflict_free_with(self, rule: Rule, chosen: List[Rule]) -> bool:
        """Whether ``rule`` conflicts with none of the already-chosen rules."""
        return all(not self.conflict(rule, other) for other in chosen)

    @property
    def n_conflicting_pairs(self) -> int:
        return len(self._conflicting)


def dataflow_edges(rules: List[Rule]) -> Set[Tuple[Rule, Rule]]:
    """Producer→consumer edges: rule A feeds rule B if A writes state B reads."""
    edges: Set[Tuple[Rule, Rule]] = set()
    reads = {r: rule_read_set(r) for r in rules}
    writes = {r: rule_write_set(r) for r in rules}
    for a in rules:
        for b in rules:
            if a is b:
                continue
            if writes[a] & reads[b]:
                edges.add((a, b))
    return edges


def dataflow_order(rules: List[Rule]) -> List[Rule]:
    """Topological (producer-before-consumer) ordering of rules.

    Cycles (e.g. credit loops) are broken by falling back to declaration
    order within the strongly connected component.  The software scheduler
    uses this ordering to "pass the algorithm over the data" (Section 6.3).
    """
    edges = dataflow_edges(rules)
    successors: Dict[Rule, Set[Rule]] = {r: set() for r in rules}
    indegree: Dict[Rule, int] = {r: 0 for r in rules}
    for a, b in edges:
        if b not in successors[a]:
            successors[a].add(b)
            indegree[b] += 1

    order: List[Rule] = []
    remaining = list(rules)
    indeg = dict(indegree)
    while remaining:
        ready = [r for r in remaining if indeg[r] == 0]
        if not ready:
            # Cycle: emit the earliest remaining rule to break it.
            ready = [remaining[0]]
        chosen = ready[0]
        order.append(chosen)
        remaining.remove(chosen)
        for succ in successors[chosen]:
            if succ in indeg:
                indeg[succ] = max(0, indeg[succ] - 1)
        indeg.pop(chosen, None)
    return order


def modules_touched(rule: Rule) -> Set[Module]:
    """Every module whose state or methods the rule touches (for partition checks)."""
    touched: Set[Module] = set()
    for reg in rule_read_set(rule) | rule_write_set(rule):
        if reg.parent is not None:
            touched.add(reg.parent)
    for call in _method_nodes(rule.action):
        touched.add(call.instance)
    return touched
