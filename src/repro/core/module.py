"""Modules, registers, rules and methods.

A BCL program is a hierarchy of modules.  Every module owns

* *state elements* -- registers and sub-module instances (ultimately all
  state is built from registers),
* *rules* -- guarded atomic actions describing internal state transitions,
* *methods* -- the interface through which the enclosing module (or the
  environment) interacts with it.  Every method carries an implicit guard;
  calling an unready method invalidates the calling rule.

The classes below represent the *elaborated* program: modules are concrete
instances (as after BSV static elaboration), so rules and methods refer to
register and sub-module objects directly rather than by name.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.action import Action, MethodCallA, RegWrite
from repro.core.errors import ElaborationError, TypeCheckError
from repro.core.expr import Const, Expr, MethodCallE, RegRead, TRUE, lift_value
from repro.core.types import BCLType


class Register:
    """A primitive state element holding one value of a BCL type."""

    def __init__(self, name: str, ty: BCLType, init: Any = None):
        self.name = name
        self.ty = ty
        self.init = ty.default() if init is None else init
        self.parent: Optional["Module"] = None

    @property
    def full_name(self) -> str:
        """Hierarchical name, e.g. ``top.ifft.buff0_data``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.full_name}.{self.name}"

    # -- DSL sugar ---------------------------------------------------------

    def read(self) -> RegRead:
        """An expression reading this register."""
        return RegRead(self)

    def write(self, value) -> RegWrite:
        """An action writing ``value`` (expression or constant) to this register."""
        return RegWrite(self, lift_value(value))

    def __repr__(self) -> str:
        return f"Register({self.full_name}, {self.ty!r})"


class Method:
    """An interface method of a module.

    ``kind`` is ``"action"`` (the body is an :class:`Action`) or ``"value"``
    (the body is an :class:`Expr`).  ``guard`` is the method's explicit guard;
    implicit guards arise from guarded sub-terms of the body.  ``domain``
    optionally pins the method to a computational domain -- ordinary methods
    inherit their module's domain, synchronizer methods override it.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        params: Sequence[str] = (),
        body: Optional[object] = None,
        guard: Optional[Expr] = None,
        domain: Optional["Domain"] = None,  # noqa: F821
    ):
        if kind not in ("action", "value"):
            raise TypeCheckError(f"method kind must be 'action' or 'value', got {kind!r}")
        self.name = name
        self.kind = kind
        self.params = list(params)
        self.body = body
        self.guard = guard if guard is not None else TRUE
        self.domain = domain
        self.module: Optional["Module"] = None

    def __repr__(self) -> str:
        owner = self.module.name if self.module else "?"
        return f"Method({owner}.{self.name}, kind={self.kind})"


class Rule:
    """A guarded atomic action owned by a module.

    The rule's guard is the conjunction of every explicit and implicit guard
    inside ``action``; evaluation of the rule either commits the computed
    state updates (guard true) or has no effect (guard false).
    """

    def __init__(
        self,
        name: str,
        action: Action,
        domain: Optional["Domain"] = None,  # noqa: F821
        urgency: int = 0,
    ):
        self.name = name
        self.action = action
        self.domain = domain
        self.urgency = urgency
        self.module: Optional["Module"] = None

    @property
    def full_name(self) -> str:
        if self.module is None:
            return self.name
        return f"{self.module.full_name}.{self.name}"

    def __repr__(self) -> str:
        return f"Rule({self.full_name})"


class Module:
    """A BCL module instance: state, rules and interface methods."""

    def __init__(self, name: str, domain: Optional["Domain"] = None):  # noqa: F821
        self.name = name
        self.domain = domain
        self.parent: Optional["Module"] = None
        self.registers: List[Register] = []
        self.submodules: List[Module] = []
        self.rules: List[Rule] = []
        self.methods: Dict[str, Method] = {}

    # -- construction ------------------------------------------------------

    def add_register(self, name: str, ty: BCLType, init: Any = None) -> Register:
        reg = Register(name, ty, init)
        reg.parent = self
        self.registers.append(reg)
        return reg

    def add_submodule(self, module: "Module") -> "Module":
        module.parent = self
        self.submodules.append(module)
        return module

    def add_rule(
        self,
        name: str,
        action: Action,
        domain: Optional["Domain"] = None,  # noqa: F821
        urgency: int = 0,
    ) -> Rule:
        rule = Rule(name, action, domain=domain, urgency=urgency)
        rule.module = self
        self.rules.append(rule)
        return rule

    def add_method(
        self,
        name: str,
        kind: str,
        params: Sequence[str] = (),
        body: Optional[object] = None,
        guard: Optional[Expr] = None,
        domain: Optional["Domain"] = None,  # noqa: F821
    ) -> Method:
        if name in self.methods:
            raise ElaborationError(f"module {self.name} already has a method {name!r}")
        method = Method(name, kind, params, body, guard, domain)
        method.module = self
        self.methods[name] = method
        return method

    # -- interface calls (DSL sugar) ----------------------------------------

    def call(self, method: str, *args) -> MethodCallA:
        """Build an action-method call on this module."""
        self._check_method(method, "action")
        return MethodCallA(self, method, [lift_value(a) for a in args])

    def value(self, method: str, *args) -> MethodCallE:
        """Build a value-method call on this module."""
        self._check_method(method, "value")
        return MethodCallE(self, method, [lift_value(a) for a in args])

    def _check_method(self, method: str, kind: str) -> None:
        m = self.get_method(method)
        if m.kind != kind:
            raise TypeCheckError(
                f"method {self.name}.{method} is a {m.kind} method, used as {kind} method"
            )

    def get_method(self, name: str) -> Method:
        if name not in self.methods:
            raise ElaborationError(f"module {self.name} has no method {name!r}")
        return self.methods[name]

    # -- hierarchy queries ---------------------------------------------------

    @property
    def full_name(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.full_name}.{self.name}"

    def all_modules(self) -> Iterator["Module"]:
        """This module and every module below it, pre-order."""
        yield self
        for sub in self.submodules:
            yield from sub.all_modules()

    def all_registers(self) -> Iterator[Register]:
        for mod in self.all_modules():
            yield from mod.registers

    def all_rules(self) -> Iterator[Rule]:
        for mod in self.all_modules():
            yield from mod.rules

    def is_primitive(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"Module({self.full_name})"


class PrimitiveModule(Module):
    """A module whose methods are implemented natively by the interpreter.

    Primitives (registers are handled separately; FIFOs, register files,
    wires, synchronizers) expose :class:`NativeMethod` entries: a guard
    function and a body function over the interpreter's store.  Sub-classes
    may also declare pairs of methods that are *concurrently schedulable*
    within one hardware clock cycle even though they touch the same internal
    state (e.g. ``enq``/``deq`` of a pipeline FIFO).
    """

    def __init__(self, name: str, domain: Optional["Domain"] = None):  # noqa: F821
        super().__init__(name, domain)
        self.native: Dict[str, "NativeMethod"] = {}

    def add_native_method(
        self,
        name: str,
        kind: str,
        guard_fn: Callable[..., bool],
        body_fn: Callable[..., Tuple[Dict[Register, Any], Any]],
        params: Sequence[str] = (),
        domain: Optional["Domain"] = None,  # noqa: F821
        reads: Sequence[Register] = (),
        writes: Sequence[Register] = (),
    ) -> "NativeMethod":
        method = self.add_method(name, kind, params, body=None, domain=domain)
        native = NativeMethod(method, guard_fn, body_fn, list(reads), list(writes))
        self.native[name] = native
        return native

    def get_native(self, name: str) -> "NativeMethod":
        if name not in self.native:
            raise ElaborationError(f"primitive {self.name} has no native method {name!r}")
        return self.native[name]

    def concurrently_schedulable(self, method_a: str, method_b: str) -> bool:
        """Whether two methods may be invoked by different rules in the same HW cycle."""
        return False

    def symbolic_guard(self, method: str, args: Sequence[object]) -> Optional[object]:
        """A guard *expression* equivalent to the method's implicit guard, if known.

        Guard lifting uses this to hoist primitive-method readiness (e.g. a
        FIFO ``enq``'s *not full* condition) to the top of the rule, which is
        what lets the generated software check a cheap condition up front and
        then execute the rule body in place without shadow state
        (Section 6.3).  Returning ``None`` means "unknown -- stay
        conservative".
        """
        return None

    def is_primitive(self) -> bool:
        return True


class NativeMethod:
    """Native implementation of a primitive-module method.

    ``guard_fn(read, *args)`` returns a bool; ``body_fn(read, *args)`` returns
    ``(updates, return_value)`` where ``updates`` maps registers to new
    values and ``read`` is a function ``Register -> current value`` supplied
    by the interpreter (so the primitive sees the correct shadowed state).
    """

    def __init__(
        self,
        method: Method,
        guard_fn: Callable[..., bool],
        body_fn: Callable[..., Tuple[Dict[Register, Any], Any]],
        reads: List[Register],
        writes: List[Register],
    ):
        self.method = method
        self.guard_fn = guard_fn
        self.body_fn = body_fn
        self.reads = reads
        self.writes = writes


class Design:
    """A complete elaborated BCL program: a root module plus bookkeeping."""

    def __init__(self, root: Module, name: Optional[str] = None):
        self.root = root
        self.name = name or root.name

    def all_modules(self) -> List[Module]:
        return list(self.root.all_modules())

    def all_registers(self) -> List[Register]:
        return list(self.root.all_registers())

    def all_rules(self) -> List[Rule]:
        return list(self.root.all_rules())

    def find_module(self, name: str) -> Module:
        for mod in self.root.all_modules():
            if mod.name == name or mod.full_name == name:
                return mod
        raise ElaborationError(f"design {self.name} has no module named {name!r}")

    def find_rule(self, name: str) -> Rule:
        for rule in self.root.all_rules():
            if rule.name == name or rule.full_name == name:
                return rule
        raise ElaborationError(f"design {self.name} has no rule named {name!r}")

    def initial_store(self) -> Dict[Register, Any]:
        """The reset state: every register mapped to its initial value."""
        return {reg: reg.init for reg in self.all_registers()}

    def __repr__(self) -> str:
        return (
            f"Design({self.name}, modules={len(self.all_modules())}, "
            f"rules={len(self.all_rules())}, registers={len(self.all_registers())})"
        )
