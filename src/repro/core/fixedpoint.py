"""Fixed-point and complex fixed-point arithmetic.

The paper's Vorbis evaluation uses 32-bit fixed-point values with 24 bits of
fractional precision (Section 7.1), and the data-format discussion in
Section 2.3 motivates a *single* canonical bit-level representation shared by
the hardware and software partitions.  :class:`FixedPoint` is that
representation: a signed two's-complement integer of ``int_bits + frac_bits``
bits interpreted with a binary point ``frac_bits`` from the right.

All arithmetic wraps (two's complement) exactly as the synthesized hardware
would, so software and hardware partitions of the same design produce
bit-identical results -- which is what the partition-equivalence tests rely
on.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

Number = Union[int, float, "FixedPoint"]


def _wrap(raw: int, total_bits: int) -> int:
    """Wrap ``raw`` into the signed two's-complement range of ``total_bits``."""
    mask = (1 << total_bits) - 1
    raw &= mask
    if raw >= 1 << (total_bits - 1):
        raw -= 1 << total_bits
    return raw


# --------------------------------------------------------------------------
# raw-integer fast path
# --------------------------------------------------------------------------
#
# The kernel dataplane (repro.core.kernelcompile and the batch kernels built
# on it) computes over plain raw two's-complement ints and boxes FixedPoint
# objects only at kernel boundaries.  These module-level helpers are the
# single definition of that raw arithmetic; each mirrors the corresponding
# FixedPoint operator bit for bit (wrap after every operation, Python floor
# semantics for shifts and division, round-half-even quantisation).


def raw_wrap(raw: int, total_bits: int) -> int:
    """Public alias of the two's-complement wrap (see :func:`_wrap`)."""
    return _wrap(raw, total_bits)


def raw_add(a: int, b: int, total_bits: int) -> int:
    """Raw equivalent of ``FixedPoint.__add__`` for same-format operands."""
    return _wrap(a + b, total_bits)


def raw_sub(a: int, b: int, total_bits: int) -> int:
    """Raw equivalent of ``FixedPoint.__sub__`` for same-format operands."""
    return _wrap(a - b, total_bits)


def raw_mul(a: int, b: int, frac_bits: int, total_bits: int) -> int:
    """Raw equivalent of ``FixedPoint.__mul__`` (shift is arithmetic/floor)."""
    return _wrap((a * b) >> frac_bits, total_bits)


def raw_div(a: int, b: int, frac_bits: int, total_bits: int) -> int:
    """Raw equivalent of ``FixedPoint.__truediv__`` (Python floor division)."""
    if b == 0:
        raise ZeroDivisionError("fixed-point division by zero")
    return _wrap((a << frac_bits) // b, total_bits)


def raw_neg(a: int, total_bits: int) -> int:
    """Raw equivalent of ``FixedPoint.__neg__``."""
    return _wrap(-a, total_bits)


def raw_shift_right(a: int, n: int, total_bits: int) -> int:
    """Raw equivalent of ``FixedPoint.__rshift__`` (arithmetic shift)."""
    return _wrap(a >> n, total_bits)


def raw_shift_left(a: int, n: int, total_bits: int) -> int:
    """Raw equivalent of ``FixedPoint.__lshift__``."""
    return _wrap(a << n, total_bits)


def raw_from_float(value: float, frac_bits: int, total_bits: int) -> int:
    """Raw equivalent of ``FixedPoint.from_float`` (round half to even)."""
    return _wrap(int(round(value * (1 << frac_bits))), total_bits)


def raw_to_bits(raw: int, total_bits: int) -> int:
    """Raw equivalent of ``FixedPoint.to_bits`` (unsigned bit pattern)."""
    return raw & ((1 << total_bits) - 1)


def from_wrapped_raw(raw: int, int_bits: int, frac_bits: int) -> "FixedPoint":
    """Box an *already wrapped* raw int without re-wrapping (kernel boxing path).

    The caller guarantees ``raw`` is in the signed range of the format; every
    helper above returns such values.  ``FixedPoint.from_raw`` remains the
    safe constructor for unwrapped inputs.
    """
    fp = FixedPoint.__new__(FixedPoint)
    fp.raw = raw
    fp.int_bits = int_bits
    fp.frac_bits = frac_bits
    return fp


def box_fixed_vector(raws: Iterable[int], int_bits: int, frac_bits: int) -> Tuple["FixedPoint", ...]:
    """Box a sequence of wrapped raw ints into a ``FixedPoint`` tuple."""
    new = FixedPoint.__new__
    out = []
    for raw in raws:
        fp = new(FixedPoint)
        fp.raw = raw
        fp.int_bits = int_bits
        fp.frac_bits = frac_bits
        out.append(fp)
    return tuple(out)


def box_complex_vector(
    re_raws: Iterable[int], im_raws: Iterable[int], int_bits: int, frac_bits: int
) -> Tuple["FixComplex", ...]:
    """Box parallel wrapped raw re/im sequences into a ``FixComplex`` tuple."""
    new_fp = FixedPoint.__new__
    new_cx = FixComplex.__new__
    out = []
    for re_raw, im_raw in zip(re_raws, im_raws):
        re = new_fp(FixedPoint)
        re.raw = re_raw
        re.int_bits = int_bits
        re.frac_bits = frac_bits
        im = new_fp(FixedPoint)
        im.raw = im_raw
        im.int_bits = int_bits
        im.frac_bits = frac_bits
        cx = new_cx(FixComplex)
        cx.real = re
        cx.imag = im
        out.append(cx)
    return tuple(out)


class FixedPoint:
    """A signed fixed-point number with ``int_bits`` integer and ``frac_bits`` fractional bits.

    The value is stored as the raw (scaled) integer ``raw`` so that the
    represented real number is ``raw / 2**frac_bits``.  Instances are
    treated as immutable and are hashable, which lets them be used directly
    as register values in the interpreter's store.

    Fixed-point multiplies and adds are by far the hottest operations in the
    Vorbis pipeline (every IMDCT butterfly runs through here in *both*
    partitions), so this is a ``__slots__`` value class with hand-specialised
    arithmetic rather than a frozen dataclass: the common same-format
    fast path wraps and constructs the result without going through
    ``_coerce``/``_make``/``__init__`` dispatch.  Semantics (two's-complement
    wrapping, format-mismatch errors, equality and hashing) are unchanged.
    """

    __slots__ = ("raw", "int_bits", "frac_bits")

    def __init__(self, raw: int, int_bits: int = 8, frac_bits: int = 24):
        self.raw = raw
        self.int_bits = int_bits
        self.frac_bits = frac_bits

    def __eq__(self, other: object):
        if other.__class__ is FixedPoint:
            return (
                self.raw == other.raw
                and self.int_bits == other.int_bits
                and self.frac_bits == other.frac_bits
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.raw, self.int_bits, self.frac_bits))

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_float(cls, value: float, int_bits: int = 8, frac_bits: int = 24) -> "FixedPoint":
        """Quantise a Python float to the nearest representable fixed-point value."""
        raw = int(round(value * (1 << frac_bits)))
        return cls(_wrap(raw, int_bits + frac_bits), int_bits, frac_bits)

    @classmethod
    def from_raw(cls, raw: int, int_bits: int = 8, frac_bits: int = 24) -> "FixedPoint":
        """Build a value directly from its raw two's-complement integer."""
        return cls(_wrap(raw, int_bits + frac_bits), int_bits, frac_bits)

    @classmethod
    def zero(cls, int_bits: int = 8, frac_bits: int = 24) -> "FixedPoint":
        return cls(0, int_bits, frac_bits)

    # -- properties --------------------------------------------------------

    @property
    def total_bits(self) -> int:
        return self.int_bits + self.frac_bits

    def to_float(self) -> float:
        return self.raw / float(1 << self.frac_bits)

    def to_bits(self) -> int:
        """Unsigned bit pattern (for marshaling onto the channel)."""
        return self.raw & ((1 << self.total_bits) - 1)

    @classmethod
    def from_bits(cls, bits: int, int_bits: int = 8, frac_bits: int = 24) -> "FixedPoint":
        return cls.from_raw(bits, int_bits, frac_bits)

    # -- helpers -----------------------------------------------------------

    def _coerce(self, other: Number) -> "FixedPoint":
        if isinstance(other, FixedPoint):
            if (other.int_bits, other.frac_bits) != (self.int_bits, self.frac_bits):
                raise TypeError(
                    "fixed-point format mismatch: "
                    f"{self.int_bits}.{self.frac_bits} vs {other.int_bits}.{other.frac_bits}"
                )
            return other
        if isinstance(other, bool):
            raise TypeError("cannot mix bool with FixedPoint arithmetic")
        if isinstance(other, (int, float)):
            return FixedPoint.from_float(float(other), self.int_bits, self.frac_bits)
        raise TypeError(f"cannot coerce {type(other).__name__} to FixedPoint")

    def _make(self, raw: int) -> "FixedPoint":
        total_bits = self.int_bits + self.frac_bits
        raw &= (1 << total_bits) - 1
        if raw >= 1 << (total_bits - 1):
            raw -= 1 << total_bits
        result = FixedPoint.__new__(FixedPoint)
        result.raw = raw
        result.int_bits = self.int_bits
        result.frac_bits = self.frac_bits
        return result

    # -- arithmetic --------------------------------------------------------
    #
    # Each operation inlines the common case (both operands already share a
    # format); mixed int/float operands fall back to ``_coerce``.

    def __add__(self, other: Number) -> "FixedPoint":
        if (
            other.__class__ is not FixedPoint
            or other.int_bits != self.int_bits
            or other.frac_bits != self.frac_bits
        ):
            other = self._coerce(other)
        return self._make(self.raw + other.raw)

    __radd__ = __add__

    def __sub__(self, other: Number) -> "FixedPoint":
        if (
            other.__class__ is not FixedPoint
            or other.int_bits != self.int_bits
            or other.frac_bits != self.frac_bits
        ):
            other = self._coerce(other)
        return self._make(self.raw - other.raw)

    def __rsub__(self, other: Number) -> "FixedPoint":
        o = self._coerce(other)
        return o - self

    def __mul__(self, other: Number) -> "FixedPoint":
        if (
            other.__class__ is not FixedPoint
            or other.int_bits != self.int_bits
            or other.frac_bits != self.frac_bits
        ):
            other = self._coerce(other)
        return self._make((self.raw * other.raw) >> self.frac_bits)

    __rmul__ = __mul__

    def __truediv__(self, other: Number) -> "FixedPoint":
        o = self._coerce(other)
        if o.raw == 0:
            raise ZeroDivisionError("fixed-point division by zero")
        return self._make((self.raw << self.frac_bits) // o.raw)

    def __neg__(self) -> "FixedPoint":
        return self._make(-self.raw)

    def __abs__(self) -> "FixedPoint":
        return self._make(abs(self.raw))

    def __lshift__(self, n: int) -> "FixedPoint":
        return self._make(self.raw << n)

    def __rshift__(self, n: int) -> "FixedPoint":
        return self._make(self.raw >> n)

    # -- comparisons -------------------------------------------------------

    def __lt__(self, other: Number) -> bool:
        return self.raw < self._coerce(other).raw

    def __le__(self, other: Number) -> bool:
        return self.raw <= self._coerce(other).raw

    def __gt__(self, other: Number) -> bool:
        return self.raw > self._coerce(other).raw

    def __ge__(self, other: Number) -> bool:
        return self.raw >= self._coerce(other).raw

    def __float__(self) -> float:
        return self.to_float()

    def __repr__(self) -> str:
        return f"FixedPoint({self.to_float():.6f}, fmt={self.int_bits}.{self.frac_bits})"


class FixComplex:
    """A complex number whose real and imaginary parts are :class:`FixedPoint`.

    Mirrors the ``Complex#(FixPt)`` type of the paper's IFFT interface.
    Like :class:`FixedPoint`, a ``__slots__`` value class on the butterfly
    hot path; treated as immutable.
    """

    __slots__ = ("real", "imag")

    def __init__(self, real: FixedPoint, imag: FixedPoint):
        self.real = real
        self.imag = imag

    def __eq__(self, other: object):
        if other.__class__ is FixComplex:
            return self.real == other.real and self.imag == other.imag
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.real, self.imag))

    @classmethod
    def from_floats(
        cls, real: float, imag: float = 0.0, int_bits: int = 8, frac_bits: int = 24
    ) -> "FixComplex":
        return cls(
            FixedPoint.from_float(real, int_bits, frac_bits),
            FixedPoint.from_float(imag, int_bits, frac_bits),
        )

    @classmethod
    def zero(cls, int_bits: int = 8, frac_bits: int = 24) -> "FixComplex":
        return cls(FixedPoint.zero(int_bits, frac_bits), FixedPoint.zero(int_bits, frac_bits))

    def __add__(self, other: "FixComplex") -> "FixComplex":
        return FixComplex(self.real + other.real, self.imag + other.imag)

    def __sub__(self, other: "FixComplex") -> "FixComplex":
        return FixComplex(self.real - other.real, self.imag - other.imag)

    def __mul__(self, other: Union["FixComplex", FixedPoint, int, float]) -> "FixComplex":
        if isinstance(other, FixComplex):
            return FixComplex(
                self.real * other.real - self.imag * other.imag,
                self.real * other.imag + self.imag * other.real,
            )
        return FixComplex(self.real * other, self.imag * other)

    __rmul__ = __mul__

    def __neg__(self) -> "FixComplex":
        return FixComplex(-self.real, -self.imag)

    def conj(self) -> "FixComplex":
        return FixComplex(self.real, -self.imag)

    def to_complex(self) -> complex:
        return complex(self.real.to_float(), self.imag.to_float())

    def __repr__(self) -> str:
        return f"FixComplex({self.real.to_float():.6f}, {self.imag.to_float():.6f})"


def fix_vector(values: Iterable[float], int_bits: int = 8, frac_bits: int = 24) -> Tuple[FixedPoint, ...]:
    """Quantise an iterable of floats into a tuple of :class:`FixedPoint`."""
    return tuple(FixedPoint.from_float(v, int_bits, frac_bits) for v in values)


def fix_complex_vector(
    values: Iterable[complex], int_bits: int = 8, frac_bits: int = 24
) -> Tuple[FixComplex, ...]:
    """Quantise an iterable of complex floats into a tuple of :class:`FixComplex`."""
    return tuple(
        FixComplex.from_floats(v.real, v.imag, int_bits, frac_bits) for v in map(complex, values)
    )
