"""The kernel compiler: backend selection and caching for foreign kernels.

PRs 1-5 compiled the *machinery* around the foreign kernels (rule bodies,
transport, marshaling) into specialised closures while keeping an
interpreted oracle.  This module extends the same two-backend discipline
down into the kernels themselves:

* ``oracle`` -- the original object-based kernel implementations, kept
  verbatim (``FixedPoint``/``FixComplex`` arithmetic element by element).
  This is the semantic reference every fast path is tested against.
* ``python`` -- batch loops over flat raw two's-complement ints: a kernel
  invocation unboxes its inputs once, computes in plain-int arithmetic
  (via :mod:`repro.core.fixedpoint`'s ``raw_*`` helpers or their inlined
  equivalents) and boxes the result once.
* ``numpy`` -- the same raw-integer computation vectorised over int64
  arrays.  Optional: used only when NumPy is importable (and not disabled
  via ``REPRO_NO_NUMPY=1``), and only for fixed-point formats of at most
  :data:`NUMPY_MAX_TOTAL_BITS` total bits, where an int64 product cannot
  overflow.  Wider formats silently fall back to the ``python`` backend.

The invariant is the one rules and transport already obey: every backend
produces *bit-identical* results, so a ``CosimResult`` never depends on
which backend ran.

Selection: ``set_kernel_backend()`` / the ``REPRO_KERNEL_BACKEND``
environment variable (``auto`` -- the default -- resolves to ``numpy``
when available, else ``python``).

The module also hosts the memoised pure-kernel result cache.  ROADMAP
documents that foreign kernels are assumed pure (hardware engines already
re-evaluate them freely); this cache exploits exactly that assumption,
keyed by the kernel name, its format parameters and the flat raw input
tuple.  Only kernels returning immutable values may use it -- cached
results are shared between hits.  ``REPRO_KERNEL_CACHE=0`` or
``set_kernel_cache(False)`` disables it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional, Tuple


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


if _env_flag("REPRO_NO_NUMPY"):
    np = None  # type: ignore[assignment]
else:
    try:
        import numpy as np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
        np = None  # type: ignore[assignment]

#: Whether the NumPy backend is available in this process.
HAVE_NUMPY = np is not None

#: Widest fixed-point format (total bits) the NumPy backend accepts: with
#: 32-bit values an int64 product is at most 2**62, so no intermediate of
#: the wrap-after-every-op sequence can overflow.  Wider formats use the
#: pure-Python raw path.
NUMPY_MAX_TOTAL_BITS = 32

#: The selectable kernel backends (``auto`` additionally accepted by
#: :func:`set_kernel_backend` and ``REPRO_KERNEL_BACKEND``).
KERNEL_BACKENDS = ("oracle", "python", "numpy")


def _resolve(name: str) -> str:
    if name == "auto":
        return "numpy" if HAVE_NUMPY else "python"
    return name


def _initial_backend() -> str:
    requested = os.environ.get("REPRO_KERNEL_BACKEND", "auto").strip().lower() or "auto"
    if requested not in KERNEL_BACKENDS + ("auto",):
        raise ValueError(
            f"REPRO_KERNEL_BACKEND={requested!r}; expected one of {KERNEL_BACKENDS + ('auto',)}"
        )
    if requested == "numpy" and not HAVE_NUMPY:
        raise ValueError(
            "REPRO_KERNEL_BACKEND=numpy but NumPy is not importable "
            "(or disabled via REPRO_NO_NUMPY)"
        )
    return _resolve(requested)


_backend = _initial_backend()

#: Monotonic selection stamp: bumped by every (successful) backend change so
#: hoisted per-kernel bindings (:func:`bind_effective_backend`) know when
#: their cached choice is stale without re-resolving on every invocation.
_generation = 0


def kernel_backend() -> str:
    """The resolved kernel backend: ``oracle``, ``python`` or ``numpy``."""
    return _backend


def kernel_backend_generation() -> int:
    """The current backend-selection generation (see :func:`set_kernel_backend`)."""
    return _generation


def set_kernel_backend(name: str) -> str:
    """Select the kernel backend; returns the previously resolved backend.

    ``auto`` re-resolves to ``numpy`` when available, else ``python``.
    Requesting ``numpy`` without NumPy raises.  Every call (including via
    :func:`kernel_backend_override`) bumps the selection generation, which
    invalidates all bindings made by :func:`bind_effective_backend`.
    """
    global _backend, _generation
    name = name.strip().lower()
    if name not in KERNEL_BACKENDS + ("auto",):
        raise ValueError(f"unknown kernel backend {name!r}; expected one of {KERNEL_BACKENDS + ('auto',)}")
    if name == "numpy" and not HAVE_NUMPY:
        raise ValueError("NumPy kernel backend requested but NumPy is not importable")
    previous = _backend
    _backend = _resolve(name)
    _generation += 1
    return previous


@contextmanager
def kernel_backend_override(name: str) -> Iterator[str]:
    """Context manager: run with a specific kernel backend, then restore."""
    previous = set_kernel_backend(name)
    try:
        yield _backend
    finally:
        set_kernel_backend(previous)


def effective_backend(total_bits: int) -> str:
    """The backend a kernel over a ``total_bits``-wide format should run.

    Demotes ``numpy`` to ``python`` for formats wider than
    :data:`NUMPY_MAX_TOTAL_BITS` (int64 overflow would break bit-exactness).
    """
    backend = _backend
    if backend == "numpy" and total_bits > NUMPY_MAX_TOTAL_BITS:
        return "python"
    return backend


def bind_effective_backend(total_bits: int) -> Callable[[], str]:
    """Bind :func:`effective_backend`'s choice once, at elaboration time.

    Returns a zero-argument callable for the per-invocation hot path: it
    re-runs the width demotion logic only when the selection generation has
    moved (``set_kernel_backend`` / ``kernel_backend_override``), otherwise
    it returns the cached choice.  Dispatching kernels call the binding
    instead of re-resolving the backend on every invocation.
    """
    choice = [_generation, effective_backend(total_bits)]

    def bound() -> str:
        gen = _generation
        if choice[0] != gen:
            choice[0] = gen
            choice[1] = effective_backend(total_bits)
        return choice[1]

    return bound


# --------------------------------------------------------------------------
# memoised pure-kernel result cache
# --------------------------------------------------------------------------

#: FIFO-evicted; a bound this size covers every distinct frame of the
#: benchmark workloads while keeping worst-case memory flat.
_CACHE_LIMIT = int(os.environ.get("REPRO_KERNEL_CACHE_LIMIT", "8192"))

_cache_enabled = os.environ.get("REPRO_KERNEL_CACHE", "1").strip().lower() not in (
    "0",
    "false",
    "no",
    "off",
)
_cache: Dict[Tuple[Any, ...], Any] = {}
_hits = 0
_misses = 0


def kernel_cache_enabled() -> bool:
    return _cache_enabled


def set_kernel_cache(enabled: bool) -> bool:
    """Enable/disable the kernel result cache; returns the previous setting.

    Disabling clears the cache so a later re-enable starts cold.
    """
    global _cache_enabled
    previous = _cache_enabled
    _cache_enabled = bool(enabled)
    if not _cache_enabled:
        _cache.clear()
    return previous


@contextmanager
def kernel_cache_override(enabled: bool) -> Iterator[None]:
    """Context manager: run with the cache forced on/off, then restore."""
    previous = set_kernel_cache(enabled)
    try:
        yield
    finally:
        set_kernel_cache(previous)


def clear_kernel_cache() -> None:
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0


def kernel_cache_info() -> Dict[str, Any]:
    return {
        "enabled": _cache_enabled,
        "entries": len(_cache),
        "limit": _CACHE_LIMIT,
        "hits": _hits,
        "misses": _misses,
    }


def cache_get(key: Tuple[Any, ...]) -> Optional[Any]:
    """Cached kernel result for ``key``, or ``None``.

    Kernel results are never ``None``, so ``None`` unambiguously means a
    miss (or a disabled cache).  Keys must include the kernel name, its
    scalar/format parameters and the flat raw input tuple -- nothing that
    compares equal across semantically different invocations.
    """
    global _hits, _misses
    if not _cache_enabled:
        return None
    result = _cache.get(key)
    if result is None:
        _misses += 1
    else:
        _hits += 1
    return result


def cache_put(key: Tuple[Any, ...], value: Any) -> Any:
    """Store a kernel result (only immutable values may be cached) and return it."""
    if _cache_enabled:
        if len(_cache) >= _CACHE_LIMIT:
            _cache.pop(next(iter(_cache)))
        _cache[key] = value
    return value


# --------------------------------------------------------------------------
# NumPy raw-integer arithmetic (int64, wrap-after-every-op)
# --------------------------------------------------------------------------
#
# Each helper mirrors one FixedPoint operation elementwise.  The wrap is the
# branchless sign-extension identity ((x & mask) ^ sign) - sign, valid for
# any int64 input; >> on int64 is an arithmetic shift, matching Python's
# floor semantics on negative values.


def np_wrap(arr: "np.ndarray", total_bits: int) -> "np.ndarray":
    """Elementwise two's-complement wrap into ``total_bits`` (int64 arrays)."""
    mask = (1 << total_bits) - 1
    sign = 1 << (total_bits - 1)
    return ((arr & mask) ^ sign) - sign


def np_add(a: "np.ndarray", b: "np.ndarray", total_bits: int) -> "np.ndarray":
    return np_wrap(a + b, total_bits)


def np_sub(a: "np.ndarray", b: "np.ndarray", total_bits: int) -> "np.ndarray":
    return np_wrap(a - b, total_bits)


def np_mul(a: "np.ndarray", b: "np.ndarray", frac_bits: int, total_bits: int) -> "np.ndarray":
    return np_wrap((a * b) >> frac_bits, total_bits)


def np_table(raws: Tuple[int, ...]) -> "np.ndarray":
    """A read-only int64 array over a flat raw tuple (for cached tables)."""
    arr = np.array(raws, dtype=np.int64)
    arr.flags.writeable = False
    return arr
