"""Cost models for the generated software and hardware implementations.

The evaluation reports execution times in FPGA cycles.  The hardware side is
cycle-accurate by construction (one rule firing per clock, multi-cycle
kernels occupy their rule for their latency).  The software side models the
generated C++ of Section 6.2/6.3: every rule attempt pays a scheduling
overhead, guard evaluation costs whatever the guard expression touches, and
-- depending on which optimisations are enabled -- a rule execution
additionally pays for try/catch setup, shadow-state creation, commit and
rollback.  The constants live in :class:`SwCostParams` so ablation
benchmarks can vary them; the defaults are calibrated to the PPC440-class
embedded processor of the paper's platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.expr import BinOp, FieldSelect, KernelCall, Mux, UnOp
from repro.core.module import Module, PrimitiveModule, Register
from repro.core.semantics import EvalHooks

#: AST nodes that cost one ALU operation when evaluated (all other nodes are
#: structural and free); shared by the hooks below and the closure compiler.
COSTED_NODES = (BinOp, UnOp, Mux, FieldSelect)


@dataclass(frozen=True)
class SwCostParams:
    """CPU-cycle costs of the software runtime's primitive operations."""

    #: Cost of the scheduler selecting and dispatching one rule attempt.
    rule_attempt_overhead: int = 12
    #: Cost per register read / write reached during evaluation.
    reg_read: int = 2
    reg_write: int = 2
    #: Cost per primitive ALU operation / mux / comparison.
    alu_op: int = 1
    #: Call overhead of a (non-inlined) user-module method invocation.
    method_call_overhead: int = 8
    #: Call overhead of a primitive (FIFO, RegFile, wire) method invocation.
    native_method_overhead: int = 6
    #: Dispatch overhead of a foreign compute kernel (argument marshaling etc.).
    kernel_dispatch: int = 4
    #: Extra cost per access to an indexed memory (RegFile) -- processor-side
    #: memories live in cached DRAM, not registers.
    regfile_access: int = 10
    #: Cost of setting up a C++ try/catch block around a rule body (Figure 9).
    try_catch_setup: int = 60
    #: Cost of the explicit branch-to-rollback handling used once methods are
    #: inlined and try/catch can be avoided (Figure 10).
    branch_guard_handling: int = 6
    #: Cost of creating shadow state, per shadowed register.
    shadow_per_register: int = 14
    #: Cost of committing one shadowed register back to the live state.
    commit_per_register: int = 8
    #: Base cost of a rollback after a mid-rule guard failure.
    rollback_base: int = 40
    #: Cost of rolling back one shadowed register.
    rollback_per_register: int = 6
    #: Fixed processor-side cost of launching or receiving one channel message
    #: (driver call, DMA descriptor setup, cache management).  Hardware-side
    #: marshaling is dedicated logic and is modelled as free.
    driver_per_message: int = 500
    #: Processor-side marshaling cost per transferred channel word (packing /
    #: copying into or out of the DMA buffer).
    driver_per_word: int = 5


class SwCostAccumulator(EvalHooks):
    """Accumulates CPU cycles while the evaluator walks a rule.

    One accumulator is used per rule attempt; the engine reads
    :attr:`cpu_cycles` afterwards and decides what to add for shadowing,
    commit or rollback based on the rule's compiled form.
    """

    def __init__(self, params: SwCostParams):
        self.params = params
        self.cpu_cycles = 0
        self.kernel_cycles = 0
        self.guard_failed = False
        self.nodes_visited = 0

    def on_node(self, node) -> None:
        self.nodes_visited += 1
        # Arithmetic-ish nodes; structural nodes (Seq/Par/Let/...) are free.
        if isinstance(node, COSTED_NODES):
            self.cpu_cycles += self.params.alu_op

    def on_kernel(self, kernel: KernelCall, arg_values: Sequence[Any]) -> None:
        cost = kernel.cost("sw", arg_values)
        self.kernel_cycles += cost
        self.cpu_cycles += cost + self.params.kernel_dispatch

    def on_method(self, module: Module, method: str) -> None:
        if isinstance(module, PrimitiveModule):
            self.cpu_cycles += self.params.native_method_overhead
            if hasattr(module, "read_latency"):
                self.cpu_cycles += self.params.regfile_access
        else:
            self.cpu_cycles += self.params.method_call_overhead

    def on_guard_fail(self, node) -> None:
        self.guard_failed = True

    def on_register_read(self, reg: Register) -> None:
        self.cpu_cycles += self.params.reg_read

    def on_register_write(self, reg: Register) -> None:
        self.cpu_cycles += self.params.reg_write


class HwLatencyAccumulator(EvalHooks):
    """Computes the latency, in FPGA cycles, of one hardware rule firing.

    A rule is combinational (1 cycle) unless it invokes multi-cycle kernels
    or indexed memories; kernel latencies add up (they execute within the
    rule's FSM), and each memory access contributes its ``read_latency``.
    """

    def __init__(self):
        self.extra_cycles = 0

    def on_kernel(self, kernel: KernelCall, arg_values: Sequence[Any]) -> None:
        self.extra_cycles += max(0, kernel.cost("hw", arg_values) - 1)

    def on_method(self, module: Module, method: str) -> None:
        read_latency = getattr(module, "read_latency", None)
        if read_latency is not None and read_latency > 1:
            self.extra_cycles += read_latency - 1

    @property
    def latency(self) -> int:
        return 1 + self.extra_cycles
