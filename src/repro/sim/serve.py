"""Persistent fabric serving: elaborate once, stream requests through it.

Every entry point before this layer paid full elaboration -- partitioning,
closure compilation, layout compilation, topology wiring -- per run and
threw the fabric away.  The paper's own framing is the opposite: the
expensive artifact is the *interface* (generated once per partitioning),
not the *message*, and the same interfaces carry all traffic.  A
:class:`FabricServer` is the executable counterpart of that asymmetry:

* **elaborate once** -- build the workload and its
  :class:`~repro.sim.cosim.CosimFabric` (or two-partition
  :class:`~repro.sim.cosim.Cosimulator`) a single time;
* **snapshot at reset** -- capture every engine store, FIFO endpoint,
  :class:`~repro.platform.channel.MessagePool` ring, virtual channel and
  per-group clock right after elaboration
  (:meth:`~repro.sim.cosim.CosimFabric.snapshot`), while all statistics are
  zero and all clocks read zero;
* **stream requests** -- each :class:`Request` writes its inputs through
  :meth:`~repro.sim.cosim.CosimFabric.write`, runs the resident fabric to
  its ``done`` condition, reads its outputs, and then
  :meth:`~repro.sim.cosim.CosimFabric.restore`\\ s the snapshot in O(state).

Because the snapshot is the reset state, the ``CosimResult`` of each run
*is* the per-request delta (all counters started at zero), and because the
restore is complete, a request served by a resident fabric is **bitwise
identical** to the same request served by a freshly elaborated fabric
(:func:`serve_fresh` is that oracle; ``tests/test_serve.py`` pins the
equivalence over both backends, both transports and both schedulers).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.module import Register
from repro.sim.cosim import CosimFabric, CosimResult, Cosimulator


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator`` with a reportable value on zero duration.

    Trivial workloads can legitimately measure a zero-length interval
    (coarse clocks, empty request lists); every throughput/speedup figure
    the serving and sharding layers report goes through this guard so no
    ``float("inf")`` or ``ZeroDivisionError`` ever reaches a report.
    """
    if denominator > 0:
        return numerator / denominator
    return default


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered)) - 1
    return ordered[max(0, min(len(ordered) - 1, rank))]


@dataclass(frozen=True)
class Request:
    """One independent unit of traffic through a resident fabric.

    Plain picklable data (a request may be dispatched to a worker process
    holding the resident fabric): registers are named by ``full_name`` and
    resolved against the server's design.

    * ``writes`` -- input registers to set before the run (e.g. the vorbis
      ``frame_idx`` start offset or the raytracer ``pixel_idx`` start).
    * ``done_min`` -- completion thresholds: the request is done when every
      named register has reached its value (``read >= threshold``).  The
      generated predicate reads **all** of its registers on every
      evaluation -- the static-read-set contract grouped execution and
      process-parallel grouping require.  Empty means "use the workload's
      own ``cosim_done``".
    * ``outputs`` -- registers whose final values the caller wants back
      (e.g. checksums).
    """

    name: str
    writes: Mapping[str, Any] = field(default_factory=dict)
    done_min: Mapping[str, Any] = field(default_factory=dict)
    outputs: Tuple[str, ...] = ()
    max_cycles: Optional[float] = None


@dataclass
class RequestResult:
    """Outcome of one served request: the per-request delta plus outputs."""

    name: str
    result: CosimResult
    outputs: Dict[str, Any]
    wall_seconds: float


#: How a server maps the workload onto engines: ``"duplex"`` is the classic
#: two-partition :class:`Cosimulator`, ``"fabric"`` the N-domain
#: :class:`CosimFabric`; ``"auto"`` picks ``"fabric"`` whenever explicit
#: ``engine_kinds`` are given (the same convention as ``SweepTask``).
FABRIC_KINDS = ("auto", "duplex", "fabric")


class FabricServer:
    """A resident co-simulation fabric that serves a stream of requests.

    ``builder(*args, **kwargs)`` elaborates the workload exactly once (same
    picklable builder-spec contract as the sharding layer); the constructor
    captures the reset snapshot.  :meth:`serve` then runs one request --
    write inputs, run to done, read outputs, restore -- leaving the fabric
    back at reset, so requests are independent: the N-th request of a
    stream is bitwise identical to the same request served first, or served
    by a fresh elaboration (:func:`serve_fresh`).
    """

    def __init__(
        self,
        builder: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        *,
        backend: str = "compiled",
        transport: Optional[str] = None,
        engine_kinds: Optional[Dict[str, str]] = None,
        fabric_kind: str = "auto",
        scheduler: str = "grouped",
        max_cycles: float = 500_000_000.0,
    ):
        if fabric_kind not in FABRIC_KINDS:
            raise ValueError(
                f"unknown fabric_kind {fabric_kind!r} (expected one of {FABRIC_KINDS})"
            )
        t0 = time.perf_counter()
        self.builder = builder
        self.args = args
        self.kwargs = dict(kwargs or {})
        self.backend = backend
        self.transport = transport
        self.engine_kinds = dict(engine_kinds) if engine_kinds else None
        self.scheduler = scheduler
        self.max_cycles = max_cycles
        self.workload = builder(*args, **self.kwargs)
        if fabric_kind == "auto":
            fabric_kind = "fabric" if self.engine_kinds is not None else "duplex"
        self.fabric_kind = fabric_kind
        if fabric_kind == "duplex":
            self.fabric: CosimFabric = Cosimulator(
                self.workload.design, backend=backend, transport=transport
            )
        else:
            self.fabric = CosimFabric(
                self.workload.design,
                backend=backend,
                transport=transport,
                engine_kinds=dict(self.engine_kinds) if self.engine_kinds else None,
            )
        self._registry: Dict[str, Register] = {
            reg.full_name: reg for reg in self.workload.design.all_registers()
        }
        self._snapshot = self.fabric.snapshot()
        self.elaborate_seconds = time.perf_counter() - t0
        self.requests_served = 0

    # -- name resolution -----------------------------------------------------

    def register(self, full_name: str) -> Register:
        """Resolve a request's register name against the resident design."""
        try:
            return self._registry[full_name]
        except KeyError:
            raise KeyError(
                f"design {self.workload.design.name} has no register "
                f"{full_name!r} (requests name registers by full_name)"
            ) from None

    def _done_for(self, request: Request) -> Callable[[CosimFabric], bool]:
        if not request.done_min:
            return self.workload.cosim_done
        thresholds = [
            (self.register(name), request.done_min[name])
            for name in sorted(request.done_min)
        ]

        def done(cosim) -> bool:
            # Read every threshold register on every evaluation (no
            # short-circuit): the static-read-set contract that lets the
            # reset-state probe attribute the predicate to groups.
            ok = True
            for reg, minimum in thresholds:
                if not cosim.read(reg) >= minimum:
                    ok = False
            return ok

        return done

    # -- serving ---------------------------------------------------------------

    def reset(self) -> None:
        """Rewind the resident fabric to its reset snapshot."""
        self.fabric.restore(self._snapshot)

    def serve(self, request: Request) -> RequestResult:
        """Serve one request; the fabric is back at reset on return.

        The restore runs even when the simulation raises, so a failed
        request never poisons the next one.
        """
        t0 = time.perf_counter()
        fabric = self.fabric
        try:
            for name in sorted(request.writes):
                fabric.write(self.register(name), request.writes[name])
            result = fabric.run(
                self._done_for(request),
                max_cycles=(
                    request.max_cycles
                    if request.max_cycles is not None
                    else self.max_cycles
                ),
                scheduler=self.scheduler,
            )
            outputs = {
                name: fabric.read(self.register(name)) for name in request.outputs
            }
        finally:
            self.reset()
        self.requests_served += 1
        return RequestResult(
            name=request.name,
            result=result,
            outputs=outputs,
            wall_seconds=time.perf_counter() - t0,
        )

    def serve_many(self, requests: Sequence[Request]) -> List[RequestResult]:
        """Serve a stream of requests in order on the resident fabric."""
        return [self.serve(request) for request in requests]


def serve_fresh(
    builder: Callable[..., Any],
    request: Request,
    args: Tuple[Any, ...] = (),
    kwargs: Optional[Dict[str, Any]] = None,
    **server_options: Any,
) -> RequestResult:
    """Serve one request on a freshly elaborated fabric (the oracle/baseline).

    This is both the acceptance oracle for persistent serving (a resident
    server's results must match it bitwise, request by request) and the
    elaborate-per-request baseline the serving benchmark amortises against.
    """
    return FabricServer(builder, args, kwargs, **server_options).serve(request)


@dataclass
class ServingStats:
    """Throughput/latency roll-up of one served request stream."""

    requests: int
    wall_seconds: float
    elaborate_seconds: float
    latencies: List[float]

    @classmethod
    def of(
        cls, results: Sequence[RequestResult], wall_seconds: float, elaborate_seconds: float
    ) -> "ServingStats":
        return cls(
            requests=len(results),
            wall_seconds=wall_seconds,
            elaborate_seconds=elaborate_seconds,
            latencies=[r.wall_seconds for r in results],
        )

    @property
    def requests_per_second(self) -> float:
        """Sustained request throughput (elaboration excluded: it amortises)."""
        return safe_ratio(self.requests, self.wall_seconds)

    @property
    def p50_seconds(self) -> float:
        return percentile(self.latencies, 50)

    @property
    def p99_seconds(self) -> float:
        return percentile(self.latencies, 99)

    def row(self) -> Dict[str, Any]:
        """The benchmark-report shape of these statistics (plain data)."""
        return {
            "requests": self.requests,
            "wall_seconds": round(self.wall_seconds, 6),
            "elaborate_seconds": round(self.elaborate_seconds, 6),
            "requests_per_second": round(self.requests_per_second, 3),
            "p50_ms": round(self.p50_seconds * 1e3, 4),
            "p99_ms": round(self.p99_seconds * 1e3, 4),
        }
