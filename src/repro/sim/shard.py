"""Multiprocess sharding of co-simulations: sweeps and single-design groups.

Two kinds of parallelism live here, both thin wrappers over the unified
work-stealing worker pool of :mod:`repro.sim.pool` (one submission path,
one worker-side execution path, per-worker resident fabrics -- workers
never receive an elaborated design; every task names a module-level
*builder*, picklable by qualified name, plus its arguments):

* **Sweeps** (:func:`run_sweep` over :class:`SweepTask`) -- a partitioning
  study (Figure 13: every placement letter of every application) is
  embarrassingly parallel: each point elaborates its own design and runs
  its own fabric, sharing nothing.  Results reassemble by task name, so a
  sharded sweep returns exactly the same per-task ``CosimResult``s as a
  serial one (``tests/test_fabric.py`` verifies this bit for bit).
  Repeated points of the *same* builder spec within one worker reuse its
  resident fabric (snapshot/restore instead of re-elaboration).

* **Groups of one design** (:func:`run_grouped` over :class:`GroupTask`)
  -- the independent partition groups of a *single* design
  (:meth:`~repro.core.partition.Partitioning.independent_groups`) share no
  synchronizer, so each group sub-fabric runs under its own clock in its
  own worker (:meth:`~repro.sim.cosim.CosimFabric.run_group`): the worker
  elaborates the full design (once per worker, resident thereafter), runs
  only its group, and returns the group's plain-data ``CosimResult`` plus
  the final values of the done predicate's observed registers it owns.
  The parent merges the parts with
  :meth:`~repro.sim.cosim.CosimResult.merge` and re-evaluates the full
  done predicate over the reported finals -- producing a result bitwise
  identical to the fabric's own serial grouped run
  (``tests/test_groups.py`` verifies this bit for bit).

Process pools come from the ``fork`` start method where available
(workloads built from closures elaborate identically in forked children)
and degrade to in-process serial execution -- the same code path --
when pools are unavailable.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import SimulationError
from repro.sim.cosim import CosimFabric, CosimResult
from repro.sim.pool import PoolOutcome, PoolTask, run_pool, run_pool_task
from repro.sim.serve import safe_ratio


@dataclass
class SweepTask:
    """One point of a sweep: how a worker builds and runs a workload.

    ``builder(*args, **kwargs)`` must be picklable (a module-level
    callable) and return a workload object exposing ``.design`` and a
    ``cosim_done`` termination predicate.  ``engine_kinds`` (domain name ->
    ``"hw"``/``"sw"``) selects the N-domain fabric; when ``None`` the
    classic two-partition :class:`~repro.sim.cosim.Cosimulator` runs it.
    """

    name: str
    builder: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    backend: str = "compiled"
    transport: Optional[str] = None
    engine_kinds: Optional[Dict[str, str]] = None
    max_cycles: float = 500_000_000.0


@dataclass
class SweepOutcome:
    """Per-task outcome: the simulation result plus worker-side wall time."""

    name: str
    result: CosimResult
    wall_seconds: float
    pid: int
    #: Whether the worker elaborated for this task (False: it ran on a
    #: resident fabric the worker already held for the same builder spec).
    elaborated: bool = True


@dataclass
class SweepReport:
    """A completed sweep: per-task outcomes plus aggregate accounting."""

    outcomes: Dict[str, SweepOutcome]
    wall_seconds: float
    processes: int

    @property
    def results(self) -> Dict[str, CosimResult]:
        return {name: o.result for name, o in self.outcomes.items()}

    @property
    def worker_seconds(self) -> float:
        """Total compute across workers (serial-equivalent wall time)."""
        return sum(o.wall_seconds for o in self.outcomes.values())

    @property
    def elaborations(self) -> int:
        """How many tasks paid elaboration (the rest ran on resident fabrics)."""
        return sum(1 for o in self.outcomes.values() if o.elaborated)

    @property
    def speedup(self) -> float:
        """Parallel efficiency proxy: worker compute over sweep wall time."""
        return safe_ratio(self.worker_seconds, self.wall_seconds, default=1.0)

    def table(self) -> str:
        lines = [f"{'task':<18} {'fpga cycles':>12} {'wall (s)':>9} {'pid':>7}"]
        for name, o in self.outcomes.items():
            lines.append(
                f"{name:<18} {o.result.fpga_cycles:>12.0f} {o.wall_seconds:>9.3f} {o.pid:>7}"
            )
        lines.append(
            f"{len(self.outcomes)} tasks on {self.processes} processes: "
            f"{self.wall_seconds:.3f}s wall, {self.worker_seconds:.3f}s compute "
            f"({self.speedup:.2f}x), {self.elaborations} elaborations"
        )
        return "\n".join(lines)


def _sweep_pool_task(task: SweepTask) -> PoolTask:
    return PoolTask(
        name=task.name,
        builder=task.builder,
        args=task.args,
        kwargs=dict(task.kwargs),
        backend=task.backend,
        transport=task.transport,
        engine_kinds=dict(task.engine_kinds) if task.engine_kinds else None,
        max_cycles=task.max_cycles,
        kind="run",
    )


def _sweep_outcome(outcome: PoolOutcome) -> SweepOutcome:
    return SweepOutcome(
        name=outcome.name,
        result=outcome.result,
        wall_seconds=outcome.wall_seconds,
        pid=outcome.pid,
        elaborated=outcome.elaborated,
    )


def run_task(task: SweepTask) -> SweepOutcome:
    """Run one sweep task in the current process (resident-cache aware)."""
    return _sweep_outcome(run_pool_task(_sweep_pool_task(task)))


def run_sweep(
    tasks: List[SweepTask],
    processes: Optional[int] = None,
    mp_context: Optional[str] = None,
) -> SweepReport:
    """Run a sweep, fanning tasks across ``processes`` worker processes.

    ``processes=None`` uses one worker per CPU (capped at the task count);
    dispatch, work stealing and serial degradation per
    :func:`repro.sim.pool.run_pool`.
    """
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        raise ValueError(f"sweep task names must be unique, got {names}")
    if processes is None:
        processes = min(len(tasks), os.cpu_count() or 1)
    processes = max(1, min(processes, len(tasks))) if tasks else 1

    t0 = time.perf_counter()
    outcomes, processes = run_pool(
        [_sweep_pool_task(t) for t in tasks], processes, mp_context
    )
    return SweepReport(
        outcomes={o.name: _sweep_outcome(o) for o in outcomes},
        wall_seconds=time.perf_counter() - t0,
        processes=processes,
    )


# --------------------------------------------------------------------------
# single-design group parallelism
# --------------------------------------------------------------------------


def evaluate_grouped_done(
    fabric: CosimFabric,
    done: Callable[[CosimFabric], bool],
    observed,
    finals: Dict[str, Any],
    *,
    caller: str = "run_grouped",
) -> bool:
    """Re-evaluate a full done predicate over worker-reported finals.

    The shared completion step of every process-parallel grouped execution
    (:func:`run_grouped` and :func:`repro.sim.distrib.run_distributed`):
    evaluate ``done`` on the parent's never-run fabric with the workers'
    observed finals overriding the registers they own, while *recording*
    the evaluation's read set.  ``observed`` is the reset-state probe's
    read set from before dispatch.

    A predicate whose read set is static is fully served by the finals.
    One that reads *different* registers at completion than it did at the
    reset-state probe (e.g. a cross-group conjunction built from a
    short-circuiting generator) just evaluated those reads against reset
    values -- whichever way the verdict went, it is unreliable, so this
    fails loudly instead of reporting it.
    """
    completed, final_reads = fabric.probe_done(done, finals)
    unreported = sorted(
        reg.full_name
        for reg in final_reads
        if reg.full_name not in finals
        and reg not in observed
        and fabric.group_of_register(reg) is not None
    )
    if unreported:
        raise SimulationError(
            f"{caller} cannot evaluate {fabric.design.name}'s done "
            f"predicate: it read {unreported} at completion but not at the "
            "reset-state probe, so no worker reported their finals.  Done "
            "predicates for grouped runs must read their full register set "
            "on every evaluation (no cross-group short-circuit)."
        )
    return completed


@dataclass
class GroupTask:
    """One independent group of one design: what a worker builds and runs.

    Like :class:`SweepTask`, ``builder(*args, **kwargs)`` must be picklable
    and return a workload exposing ``.design`` and ``cosim_done``; the
    worker elaborates the *full* design, then runs only group
    ``group_index`` of its fabric (reads escaping the group resolve to
    reset values, so the outcome is independent of every other group).
    """

    name: str
    builder: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    backend: str = "compiled"
    transport: Optional[str] = None
    engine_kinds: Optional[Dict[str, str]] = None
    group_index: int = 0
    max_cycles: float = 500_000_000.0


@dataclass
class GroupOutcome:
    """Per-group outcome: the group's result, its observed finals, timing."""

    name: str
    group_index: int
    result: CosimResult
    #: Final values (keyed by register full name) of the done predicate's
    #: observed registers this group owns -- the plain-data slice the parent
    #: needs to re-evaluate the full predicate across groups.
    observations: Dict[str, Any]
    wall_seconds: float
    pid: int
    #: Whether the worker elaborated for this task (False: resident fabric).
    elaborated: bool = True


@dataclass
class GroupedReport:
    """A completed grouped run: the merged result plus per-group accounting."""

    result: CosimResult
    outcomes: List[GroupOutcome]
    wall_seconds: float
    processes: int

    @property
    def worker_seconds(self) -> float:
        """Total compute across group workers (serial-equivalent wall time)."""
        return sum(o.wall_seconds for o in self.outcomes)

    @property
    def speedup(self) -> float:
        """Wall-clock speedup factor: group compute over run wall time."""
        return safe_ratio(self.worker_seconds, self.wall_seconds, default=1.0)

    def table(self) -> str:
        lines = [f"{'group':<22} {'fpga cycles':>12} {'wall (s)':>9} {'pid':>7}"]
        for o in self.outcomes:
            lines.append(
                f"{o.name:<22} {o.result.fpga_cycles:>12.0f} {o.wall_seconds:>9.3f} {o.pid:>7}"
            )
        lines.append(
            f"{len(self.outcomes)} groups on {self.processes} processes: "
            f"{self.wall_seconds:.3f}s wall, {self.worker_seconds:.3f}s compute "
            f"({self.speedup:.2f}x); merged: {self.result!r}"
        )
        return "\n".join(lines)


def _group_pool_task(task: GroupTask) -> PoolTask:
    # Group workers always use the N-domain fabric (run_group is a fabric
    # entry point), even with default engine kinds -- the historical
    # run_group_task behaviour.
    return PoolTask(
        name=task.name,
        builder=task.builder,
        args=task.args,
        kwargs=dict(task.kwargs),
        backend=task.backend,
        transport=task.transport,
        engine_kinds=dict(task.engine_kinds) if task.engine_kinds else None,
        max_cycles=task.max_cycles,
        kind="group",
        group_index=task.group_index,
        fabric_kind="fabric",
    )


def _group_outcome(task: GroupTask, outcome: PoolOutcome) -> GroupOutcome:
    return GroupOutcome(
        name=outcome.name,
        group_index=task.group_index,
        result=outcome.result,
        observations=dict(outcome.observations or {}),
        wall_seconds=outcome.wall_seconds,
        pid=outcome.pid,
        elaborated=outcome.elaborated,
    )


def run_group_task(task: GroupTask) -> GroupOutcome:
    """Run one group of one design in the current process (resident-aware)."""
    return _group_outcome(task, run_pool_task(_group_pool_task(task)))


def run_grouped(
    builder: Callable[..., Any],
    args: Tuple[Any, ...] = (),
    kwargs: Optional[Dict[str, Any]] = None,
    *,
    name: Optional[str] = None,
    backend: str = "compiled",
    transport: Optional[str] = None,
    engine_kinds: Optional[Dict[str, str]] = None,
    processes: Optional[int] = None,
    max_cycles: float = 500_000_000.0,
    mp_context: Optional[str] = None,
) -> GroupedReport:
    """Run one design's independent groups across worker processes.

    The parent elaborates the workload once -- to count the fabric's groups
    and, at the end, to re-evaluate the full done predicate over the
    workers' reported finals -- but never runs it.  One :class:`GroupTask`
    per group is dispatched in group order through the unified pool
    (``processes<=1`` runs them serially in this process, same code path);
    the merged result obeys
    :meth:`~repro.sim.cosim.CosimResult.merge`'s deterministic rules and is
    bitwise identical to ``CosimFabric.run``'s own serial grouped result.
    """
    kwargs = dict(kwargs or {})
    workload = builder(*args, **kwargs)
    # The parent fabric never executes a rule: it only counts groups and
    # re-evaluates the done predicate over reported finals, so build it on
    # the interpreted backend and skip the whole-design closure compilation
    # the workers will each pay for their own runs.
    fabric = CosimFabric(
        workload.design,
        backend="interp",
        transport="interp",
        engine_kinds=dict(engine_kinds) if engine_kinds else None,
    )
    n_groups = fabric.group_count
    # The reset-state read set; used after the merge to detect predicates
    # whose reads turned out to be data-dependent (see below).
    _, observed = fabric.probe_done(workload.cosim_done)
    base = name or workload.design.name
    tasks = [
        GroupTask(
            name=f"{base}[g{i}]",
            builder=builder,
            args=args,
            kwargs=kwargs,
            backend=backend,
            transport=transport,
            engine_kinds=dict(engine_kinds) if engine_kinds else None,
            group_index=i,
            max_cycles=max_cycles,
        )
        for i in range(n_groups)
    ]
    if processes is None:
        processes = min(n_groups, os.cpu_count() or 1)
    processes = max(1, min(processes, n_groups))

    t0 = time.perf_counter()
    pool_outcomes, processes = run_pool(
        [_group_pool_task(t) for t in tasks], processes, mp_context
    )
    wall = time.perf_counter() - t0
    outcomes = [_group_outcome(t, o) for t, o in zip(tasks, pool_outcomes)]

    finals: Dict[str, Any] = {}
    for outcome in outcomes:
        finals.update(outcome.observations)
    merged = CosimResult.merge([o.result for o in outcomes])
    merged.completed = evaluate_grouped_done(
        fabric, workload.cosim_done, observed, finals
    )
    return GroupedReport(
        result=merged, outcomes=outcomes, wall_seconds=wall, processes=processes
    )


def merge_results(results: Dict[str, CosimResult]) -> Dict[str, Any]:
    """Aggregate statistics across a sweep's per-task results.

    A thin *presentation* wrapper over
    :meth:`~repro.sim.cosim.CosimResult.merge` (``strict=False``: different
    placements of one design legitimately share rule names), used when the
    tasks are shards of one study -- the points of a placement sweep, or a
    design's independent groups -- and a single roll-up row is wanted next
    to the per-task rows.  The merge semantics (max cycles, ordered sums,
    key unions) live in ``CosimResult.merge``; only the row shape is
    decided here.
    """
    if not results:
        return {
            "tasks": 0,
            "completed": 0,
            "fpga_cycles_max": 0.0,
            "fpga_cycles_sum": 0.0,
            "sw_firings": 0,
            "hw_firings": 0,
            "channel_messages": 0,
            "channel_words": 0,
        }
    merged = CosimResult.merge(results.values(), strict=False)
    return {
        "tasks": len(results),
        "completed": sum(1 for r in results.values() if r.completed),
        "fpga_cycles_max": merged.fpga_cycles,
        "fpga_cycles_sum": sum(r.fpga_cycles for r in results.values()),
        "sw_firings": merged.sw_firings,
        "hw_firings": merged.hw_firings,
        "channel_messages": merged.channel_messages,
        "channel_words": merged.channel_words,
    }
