"""Multiprocess sharding of co-simulations: sweeps and single-design groups.

Two kinds of parallelism live here, both built on the same
compile-once / run-anywhere model (workers never receive an elaborated
design -- designs hold foreign-kernel closures that do not pickle, and
shipping one would serialise the elaboration we want parallelised;
instead every task names a module-level *builder*, picklable by qualified
name, plus its arguments, and each worker elaborates for itself):

* **Sweeps** (:func:`run_sweep` over :class:`SweepTask`) -- a partitioning
  study (Figure 13: every placement letter of every application) is
  embarrassingly parallel: each point elaborates its own design and runs
  its own fabric, sharing nothing.  Results reassemble by task name, so a
  sharded sweep returns exactly the same per-task ``CosimResult``s as a
  serial one (``tests/test_fabric.py`` verifies this bit for bit).

* **Groups of one design** (:func:`run_grouped` over :class:`GroupTask`)
  -- the independent partition groups of a *single* design
  (:meth:`~repro.core.partition.Partitioning.independent_groups`) share no
  synchronizer, so each group sub-fabric runs under its own clock in its
  own worker (:meth:`~repro.sim.cosim.CosimFabric.run_group`): the worker
  elaborates the full design, runs only its group, and returns the
  group's plain-data ``CosimResult`` plus the final values of the done
  predicate's observed registers it owns.  The parent merges the parts
  with :meth:`~repro.sim.cosim.CosimResult.merge` and re-evaluates the
  full done predicate over the reported finals -- producing a result
  bitwise identical to the fabric's own serial grouped run
  (``tests/test_groups.py`` verifies this bit for bit).

Process pools come from the ``fork`` start method where available
(workloads built from closures elaborate identically in forked children)
and degrade to in-process serial execution -- the same code path --
when pools are unavailable.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import SimulationError
from repro.sim.cosim import CosimFabric, CosimResult, Cosimulator


@dataclass
class SweepTask:
    """One point of a sweep: how a worker builds and runs a workload.

    ``builder(*args, **kwargs)`` must be picklable (a module-level
    callable) and return a workload object exposing ``.design`` and a
    ``cosim_done`` termination predicate.  ``engine_kinds`` (domain name ->
    ``"hw"``/``"sw"``) selects the N-domain fabric; when ``None`` the
    classic two-partition :class:`~repro.sim.cosim.Cosimulator` runs it.
    """

    name: str
    builder: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    backend: str = "compiled"
    transport: Optional[str] = None
    engine_kinds: Optional[Dict[str, str]] = None
    max_cycles: float = 500_000_000.0


@dataclass
class SweepOutcome:
    """Per-task outcome: the simulation result plus worker-side wall time."""

    name: str
    result: CosimResult
    wall_seconds: float
    pid: int


@dataclass
class SweepReport:
    """A completed sweep: per-task outcomes plus aggregate accounting."""

    outcomes: Dict[str, SweepOutcome]
    wall_seconds: float
    processes: int

    @property
    def results(self) -> Dict[str, CosimResult]:
        return {name: o.result for name, o in self.outcomes.items()}

    @property
    def worker_seconds(self) -> float:
        """Total compute across workers (serial-equivalent wall time)."""
        return sum(o.wall_seconds for o in self.outcomes.values())

    @property
    def speedup(self) -> float:
        """Parallel efficiency proxy: worker compute over sweep wall time."""
        return self.worker_seconds / self.wall_seconds if self.wall_seconds > 0 else 1.0

    def table(self) -> str:
        lines = [f"{'task':<18} {'fpga cycles':>12} {'wall (s)':>9} {'pid':>7}"]
        for name, o in self.outcomes.items():
            lines.append(
                f"{name:<18} {o.result.fpga_cycles:>12.0f} {o.wall_seconds:>9.3f} {o.pid:>7}"
            )
        lines.append(
            f"{len(self.outcomes)} tasks on {self.processes} processes: "
            f"{self.wall_seconds:.3f}s wall, {self.worker_seconds:.3f}s compute "
            f"({self.speedup:.2f}x)"
        )
        return "\n".join(lines)


def run_task(task: SweepTask) -> SweepOutcome:
    """Elaborate and run one sweep task in the current process."""
    t0 = time.perf_counter()
    workload = task.builder(*task.args, **task.kwargs)
    if task.engine_kinds is None:
        sim = Cosimulator(workload.design, backend=task.backend, transport=task.transport)
    else:
        sim = CosimFabric(
            workload.design,
            backend=task.backend,
            transport=task.transport,
            engine_kinds=dict(task.engine_kinds),
        )
    result = sim.run(workload.cosim_done, max_cycles=task.max_cycles)
    return SweepOutcome(
        name=task.name,
        result=result,
        wall_seconds=time.perf_counter() - t0,
        pid=os.getpid(),
    )


def _dispatch_tasks(runner, tasks, processes: int, mp_context: Optional[str]):
    """Map ``runner`` over ``tasks`` on a worker pool; returns ``(outcomes, processes)``.

    The shared dispatch policy of both runners: ``processes<=1`` (or a
    single task) runs serially in this process -- same code path, no pool
    -- which is also the automatic fallback when the platform cannot
    fork.  ``mp_context`` picks the multiprocessing start method
    (``"fork"`` is preferred: workloads built from closures elaborate
    identically in forked children).
    """
    if processes <= 1 or len(tasks) <= 1:
        return [runner(task) for task in tasks], 1
    if mp_context is None:
        mp_context = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    ctx = multiprocessing.get_context(mp_context)
    try:
        with ctx.Pool(processes) as pool:
            return pool.map(runner, tasks), processes
    except (OSError, multiprocessing.ProcessError):
        # Pool creation can fail in constrained sandboxes; degrade to serial.
        return [runner(task) for task in tasks], 1


def run_sweep(
    tasks: List[SweepTask],
    processes: Optional[int] = None,
    mp_context: Optional[str] = None,
) -> SweepReport:
    """Run a sweep, fanning tasks across ``processes`` worker processes.

    ``processes=None`` uses one worker per CPU (capped at the task count);
    dispatch and serial-degradation policy per :func:`_dispatch_tasks`.
    """
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        raise ValueError(f"sweep task names must be unique, got {names}")
    if processes is None:
        processes = min(len(tasks), os.cpu_count() or 1)
    processes = max(1, min(processes, len(tasks))) if tasks else 1

    t0 = time.perf_counter()
    outcomes, processes = _dispatch_tasks(run_task, tasks, processes, mp_context)
    return SweepReport(
        outcomes={o.name: o for o in outcomes},
        wall_seconds=time.perf_counter() - t0,
        processes=processes,
    )


# --------------------------------------------------------------------------
# single-design group parallelism
# --------------------------------------------------------------------------


@dataclass
class GroupTask:
    """One independent group of one design: what a worker builds and runs.

    Like :class:`SweepTask`, ``builder(*args, **kwargs)`` must be picklable
    and return a workload exposing ``.design`` and ``cosim_done``; the
    worker elaborates the *full* design, then runs only group
    ``group_index`` of its fabric (reads escaping the group resolve to
    reset values, so the outcome is independent of every other group).
    """

    name: str
    builder: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    backend: str = "compiled"
    transport: Optional[str] = None
    engine_kinds: Optional[Dict[str, str]] = None
    group_index: int = 0
    max_cycles: float = 500_000_000.0


@dataclass
class GroupOutcome:
    """Per-group outcome: the group's result, its observed finals, timing."""

    name: str
    group_index: int
    result: CosimResult
    #: Final values (keyed by register full name) of the done predicate's
    #: observed registers this group owns -- the plain-data slice the parent
    #: needs to re-evaluate the full predicate across groups.
    observations: Dict[str, Any]
    wall_seconds: float
    pid: int


@dataclass
class GroupedReport:
    """A completed grouped run: the merged result plus per-group accounting."""

    result: CosimResult
    outcomes: List[GroupOutcome]
    wall_seconds: float
    processes: int

    @property
    def worker_seconds(self) -> float:
        """Total compute across group workers (serial-equivalent wall time)."""
        return sum(o.wall_seconds for o in self.outcomes)

    @property
    def speedup(self) -> float:
        """Wall-clock speedup factor: group compute over run wall time."""
        return self.worker_seconds / self.wall_seconds if self.wall_seconds > 0 else 1.0

    def table(self) -> str:
        lines = [f"{'group':<22} {'fpga cycles':>12} {'wall (s)':>9} {'pid':>7}"]
        for o in self.outcomes:
            lines.append(
                f"{o.name:<22} {o.result.fpga_cycles:>12.0f} {o.wall_seconds:>9.3f} {o.pid:>7}"
            )
        lines.append(
            f"{len(self.outcomes)} groups on {self.processes} processes: "
            f"{self.wall_seconds:.3f}s wall, {self.worker_seconds:.3f}s compute "
            f"({self.speedup:.2f}x); merged: {self.result!r}"
        )
        return "\n".join(lines)


def run_group_task(task: GroupTask) -> GroupOutcome:
    """Elaborate the design and run one of its groups in the current process."""
    t0 = time.perf_counter()
    workload = task.builder(*task.args, **task.kwargs)
    fabric = CosimFabric(
        workload.design,
        backend=task.backend,
        transport=task.transport,
        engine_kinds=dict(task.engine_kinds) if task.engine_kinds else None,
    )
    result = fabric.run_group(
        task.group_index, workload.cosim_done, max_cycles=task.max_cycles
    )
    return GroupOutcome(
        name=task.name,
        group_index=task.group_index,
        result=result,
        observations=fabric.group_observations(task.group_index),
        wall_seconds=time.perf_counter() - t0,
        pid=os.getpid(),
    )


def run_grouped(
    builder: Callable[..., Any],
    args: Tuple[Any, ...] = (),
    kwargs: Optional[Dict[str, Any]] = None,
    *,
    name: Optional[str] = None,
    backend: str = "compiled",
    transport: Optional[str] = None,
    engine_kinds: Optional[Dict[str, str]] = None,
    processes: Optional[int] = None,
    max_cycles: float = 500_000_000.0,
    mp_context: Optional[str] = None,
) -> GroupedReport:
    """Run one design's independent groups across worker processes.

    The parent elaborates the workload once -- to count the fabric's groups
    and, at the end, to re-evaluate the full done predicate over the
    workers' reported finals -- but never runs it.  One :class:`GroupTask`
    per group is dispatched in group order (``processes<=1`` runs them
    serially in this process, same code path); the merged result obeys
    :meth:`~repro.sim.cosim.CosimResult.merge`'s deterministic rules and is
    bitwise identical to ``CosimFabric.run``'s own serial grouped result.
    """
    kwargs = dict(kwargs or {})
    workload = builder(*args, **kwargs)
    # The parent fabric never executes a rule: it only counts groups and
    # re-evaluates the done predicate over reported finals, so build it on
    # the interpreted backend and skip the whole-design closure compilation
    # the workers will each pay for their own runs.
    fabric = CosimFabric(
        workload.design,
        backend="interp",
        transport="interp",
        engine_kinds=dict(engine_kinds) if engine_kinds else None,
    )
    n_groups = fabric.group_count
    # The reset-state read set; used after the merge to detect predicates
    # whose reads turned out to be data-dependent (see below).
    _, observed = fabric.probe_done(workload.cosim_done)
    base = name or workload.design.name
    tasks = [
        GroupTask(
            name=f"{base}[g{i}]",
            builder=builder,
            args=args,
            kwargs=kwargs,
            backend=backend,
            transport=transport,
            engine_kinds=dict(engine_kinds) if engine_kinds else None,
            group_index=i,
            max_cycles=max_cycles,
        )
        for i in range(n_groups)
    ]
    if processes is None:
        processes = min(n_groups, os.cpu_count() or 1)
    processes = max(1, min(processes, n_groups))

    t0 = time.perf_counter()
    outcomes, processes = _dispatch_tasks(run_group_task, tasks, processes, mp_context)
    wall = time.perf_counter() - t0

    finals: Dict[str, Any] = {}
    for outcome in outcomes:
        finals.update(outcome.observations)
    merged = CosimResult.merge([o.result for o in outcomes])
    completed, final_reads = fabric.probe_done(workload.cosim_done, finals)
    # A predicate whose read set is static is fully served by the workers'
    # observed finals.  One that reads *different* registers at completion
    # than it did at the reset-state probe (e.g. a cross-group conjunction
    # built from a short-circuiting generator) just evaluated those reads
    # against reset values -- whichever way the verdict went, it is
    # unreliable, so fail loudly instead of reporting it.
    unreported = sorted(
        reg.full_name
        for reg in final_reads
        if reg.full_name not in finals
        and reg not in observed
        and fabric.group_of_register(reg) is not None
    )
    if unreported:
        raise SimulationError(
            f"run_grouped cannot evaluate {workload.design.name}'s done "
            f"predicate: it read {unreported} at completion but not at the "
            "reset-state probe, so no worker reported their finals.  Done "
            "predicates for grouped runs must read their full register set "
            "on every evaluation (no cross-group short-circuit)."
        )
    merged.completed = completed
    return GroupedReport(
        result=merged, outcomes=outcomes, wall_seconds=wall, processes=processes
    )


def merge_results(results: Dict[str, CosimResult]) -> Dict[str, Any]:
    """Aggregate statistics across a sweep's per-task results.

    A thin *presentation* wrapper over
    :meth:`~repro.sim.cosim.CosimResult.merge` (``strict=False``: different
    placements of one design legitimately share rule names), used when the
    tasks are shards of one study -- the points of a placement sweep, or a
    design's independent groups -- and a single roll-up row is wanted next
    to the per-task rows.  The merge semantics (max cycles, ordered sums,
    key unions) live in ``CosimResult.merge``; only the row shape is
    decided here.
    """
    if not results:
        return {
            "tasks": 0,
            "completed": 0,
            "fpga_cycles_max": 0.0,
            "fpga_cycles_sum": 0.0,
            "sw_firings": 0,
            "hw_firings": 0,
            "channel_messages": 0,
            "channel_words": 0,
        }
    merged = CosimResult.merge(results.values(), strict=False)
    return {
        "tasks": len(results),
        "completed": sum(1 for r in results.values() if r.completed),
        "fpga_cycles_max": merged.fpga_cycles,
        "fpga_cycles_sum": sum(r.fpga_cycles for r in results.values()),
        "sw_firings": merged.sw_firings,
        "hw_firings": merged.hw_firings,
        "channel_messages": merged.channel_messages,
        "channel_words": merged.channel_words,
    }
