"""Multiprocess sharding of co-simulation sweeps.

A partitioning study (Figure 13: every placement letter of every
application) is embarrassingly parallel: each point elaborates its own
design and runs its own fabric, sharing nothing.  This module fans such a
sweep across worker processes and merges the :class:`~repro.sim.cosim.CosimResult`s.

Designs are *not* shipped between processes -- elaborated designs hold
foreign kernels (closures) that do not pickle, and shipping them would
also serialise the elaboration we want parallelised.  Instead a
:class:`SweepTask` names a module-level *builder* (picklable by qualified
name) plus its arguments; each worker elaborates the workload itself, runs
it, and returns only the plain-data result.  This is the compile-once /
run-anywhere model the paper's flow implies, applied to the simulator.

Independent partition *groups* of one design
(:meth:`~repro.core.partition.Partitioning.independent_groups`) shard the
same way: each group is a closed sub-design (no synchronizer leaves it),
so a task per group runs it as its own fabric.

Process-pool results are deterministic: tasks are dispatched in order and
results are reassembled by task name, so a sharded sweep returns exactly
the same per-task ``CosimResult``s as a serial one
(``tests/test_fabric.py`` verifies this bit-for-bit).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.cosim import CosimFabric, CosimResult, Cosimulator


@dataclass
class SweepTask:
    """One point of a sweep: how a worker builds and runs a workload.

    ``builder(*args, **kwargs)`` must be picklable (a module-level
    callable) and return a workload object exposing ``.design`` and a
    ``cosim_done`` termination predicate.  ``engine_kinds`` (domain name ->
    ``"hw"``/``"sw"``) selects the N-domain fabric; when ``None`` the
    classic two-partition :class:`~repro.sim.cosim.Cosimulator` runs it.
    """

    name: str
    builder: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    backend: str = "compiled"
    transport: Optional[str] = None
    engine_kinds: Optional[Dict[str, str]] = None
    max_cycles: float = 500_000_000.0


@dataclass
class SweepOutcome:
    """Per-task outcome: the simulation result plus worker-side wall time."""

    name: str
    result: CosimResult
    wall_seconds: float
    pid: int


@dataclass
class SweepReport:
    """A completed sweep: per-task outcomes plus aggregate accounting."""

    outcomes: Dict[str, SweepOutcome]
    wall_seconds: float
    processes: int

    @property
    def results(self) -> Dict[str, CosimResult]:
        return {name: o.result for name, o in self.outcomes.items()}

    @property
    def worker_seconds(self) -> float:
        """Total compute across workers (serial-equivalent wall time)."""
        return sum(o.wall_seconds for o in self.outcomes.values())

    @property
    def speedup(self) -> float:
        """Parallel efficiency proxy: worker compute over sweep wall time."""
        return self.worker_seconds / self.wall_seconds if self.wall_seconds > 0 else 1.0

    def table(self) -> str:
        lines = [f"{'task':<18} {'fpga cycles':>12} {'wall (s)':>9} {'pid':>7}"]
        for name, o in self.outcomes.items():
            lines.append(
                f"{name:<18} {o.result.fpga_cycles:>12.0f} {o.wall_seconds:>9.3f} {o.pid:>7}"
            )
        lines.append(
            f"{len(self.outcomes)} tasks on {self.processes} processes: "
            f"{self.wall_seconds:.3f}s wall, {self.worker_seconds:.3f}s compute "
            f"({self.speedup:.2f}x)"
        )
        return "\n".join(lines)


def run_task(task: SweepTask) -> SweepOutcome:
    """Elaborate and run one sweep task in the current process."""
    t0 = time.perf_counter()
    workload = task.builder(*task.args, **task.kwargs)
    if task.engine_kinds is None:
        sim = Cosimulator(workload.design, backend=task.backend, transport=task.transport)
    else:
        sim = CosimFabric(
            workload.design,
            backend=task.backend,
            transport=task.transport,
            engine_kinds=dict(task.engine_kinds),
        )
    result = sim.run(workload.cosim_done, max_cycles=task.max_cycles)
    return SweepOutcome(
        name=task.name,
        result=result,
        wall_seconds=time.perf_counter() - t0,
        pid=os.getpid(),
    )


def run_sweep(
    tasks: List[SweepTask],
    processes: Optional[int] = None,
    mp_context: Optional[str] = None,
) -> SweepReport:
    """Run a sweep, fanning tasks across ``processes`` worker processes.

    ``processes=None`` uses one worker per CPU (capped at the task count);
    ``processes<=1`` runs serially in this process -- same code path, no
    pool -- which is also the automatic fallback when the platform cannot
    fork.  ``mp_context`` picks the multiprocessing start method
    (``"fork"`` is preferred: workloads built from closures elaborate
    identically in forked children).
    """
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        raise ValueError(f"sweep task names must be unique, got {names}")
    if processes is None:
        processes = min(len(tasks), os.cpu_count() or 1)
    processes = max(1, min(processes, len(tasks))) if tasks else 1

    t0 = time.perf_counter()
    if processes <= 1 or len(tasks) <= 1:
        outcomes = [run_task(task) for task in tasks]
        return SweepReport(
            outcomes={o.name: o for o in outcomes},
            wall_seconds=time.perf_counter() - t0,
            processes=1,
        )

    if mp_context is None:
        mp_context = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    ctx = multiprocessing.get_context(mp_context)
    try:
        with ctx.Pool(processes) as pool:
            outcomes = pool.map(run_task, tasks)
    except (OSError, multiprocessing.ProcessError):
        # Pool creation can fail in constrained sandboxes; degrade to serial.
        outcomes = [run_task(task) for task in tasks]
        processes = 1
    return SweepReport(
        outcomes={o.name: o for o in outcomes},
        wall_seconds=time.perf_counter() - t0,
        processes=processes,
    )


def merge_results(results: Dict[str, CosimResult]) -> Dict[str, Any]:
    """Aggregate statistics across a sweep's per-task results.

    Used when the tasks are *shards of one study* (e.g. the independent
    partition groups of a design, or the points of a placement sweep) and a
    single roll-up row is wanted next to the per-task rows.
    """
    return {
        "tasks": len(results),
        "completed": sum(1 for r in results.values() if r.completed),
        "fpga_cycles_max": max((r.fpga_cycles for r in results.values()), default=0.0),
        "fpga_cycles_sum": sum(r.fpga_cycles for r in results.values()),
        "sw_firings": sum(r.sw_firings for r in results.values()),
        "hw_firings": sum(r.hw_firings for r in results.values()),
        "channel_messages": sum(r.channel_messages for r in results.values()),
        "channel_words": sum(r.channel_words for r in results.values()),
    }
