"""Cycle-level simulator for a hardware partition.

The hardware implementation of a rule-based design executes, in every clock
cycle, a maximal set of enabled rules that the static conflict analysis has
shown to be safely concurrent (Section 6.1).  The engine here does exactly
that: per cycle it evaluates the guards of the schedulable rules, selects a
conflict-free subset with :class:`~repro.core.scheduler.HwSchedule`, and
commits their updates in a sequential order consistent with one-rule-at-a-time
semantics.  Rules whose bodies contain multi-cycle kernels (e.g. a pipelined
radix stage or a BVH intersection test) occupy their state for the kernel
latency before committing, which models a per-rule FSM.

The engine is driven by the co-simulator one clock edge at a time and reports
whether it made progress, so the co-simulator can skip over idle stretches
(e.g. while the hardware waits ~100 cycles for a bus response) without
simulating every empty cycle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.analysis import rule_read_set, rule_write_set
from repro.core.compile import RuleExec, raise_for_missing_register, rule_exec
from repro.core.errors import GuardFail
from repro.core.module import Register, Rule
from repro.core.pycodegen import (
    VALID_BACKENDS,
    default_rule_backend,
    generate_hw_step,
    generate_rule_execs,
)
from repro.core.scheduler import HwSchedule, RuleWakeup
from repro.core.semantics import Evaluator, Store, commit, try_rule
from repro.sim.costmodel import HwLatencyAccumulator


class HwEngine:
    """Executes the rules of one hardware partition, cycle by cycle.

    ``backend="interp"`` evaluates rules through the tree-walking
    :class:`~repro.core.semantics.Evaluator` (guards are checked with one
    evaluation, then the selected rules are re-evaluated under the latency
    accumulator, exactly like the reference implementation always did).
    ``backend="compiled"`` fires each rule through its closure-compiled form
    *once*, computing updates and FSM latency together; a selected rule is
    only re-evaluated if an earlier rule in the same cycle committed to a
    register it reads.  The compiled backend also uses dirty-set scheduling:
    a rule whose guard failed is not re-checked until something it reads is
    written.  In that mode the engine wraps the store it is given to observe
    external writes; always use ``engine.store`` (the live store) after
    construction.
    """

    def __init__(
        self,
        rules: List[Rule],
        store: Store,
        name: str = "HW",
        backend: Optional[str] = None,
    ):
        if backend is None:
            backend = default_rule_backend()
        if backend not in VALID_BACKENDS:
            raise ValueError(f"unknown execution backend {backend!r}")
        self.name = name
        self.rules = list(rules)
        self.backend = backend
        self._use_dirty = backend != "interp"
        if self._use_dirty:
            self._wakeup: Optional[RuleWakeup] = RuleWakeup(self.rules)
            self.store = self._wakeup.wrap_store(store)
        else:
            self._wakeup = None
            self.store = store
        self.schedule = HwSchedule(self.rules)
        self.evaluator = Evaluator()
        self._gen = None
        self._step_gen = None
        if backend == "source":
            execs, self._gen = generate_rule_execs(
                self.rules, name, modes=("latency",)
            )
            self._exec: Dict[Rule, RuleExec] = dict(zip(self.rules, execs))
        elif backend == "compiled":
            self._exec = {rule: rule_exec(rule) for rule in self.rules}
        else:
            self._exec = {}
        #: rule -> (finish_time, deferred updates) for in-flight multi-cycle rules.
        self.busy: Dict[Rule, Tuple[float, Dict[Register, Any]]] = {}
        #: reference-counted union of the busy rules' write sets (kept
        #: incrementally -- rebuilding it per cycle dominated busy designs).
        self._locked_count: Dict[Register, int] = {}
        #: earliest finish time among busy rules (None when idle).
        self._next_finish: Optional[float] = None
        #: deliveries queued because their target register was locked by a busy rule.
        self._pending_deliveries: List[Tuple[Register, Any]] = []
        self._write_sets: Dict[Rule, Set[Register]] = {
            rule: set(rule_write_set(rule)) for rule in self.rules
        }
        self._read_sets: Dict[Rule, Set[Register]] = {
            rule: set(rule_read_set(rule)) for rule in self.rules
        }
        # Statistics
        self.fire_counts: Dict[str, int] = {r.full_name: 0 for r in self.rules}
        self.cycles_active = 0
        self.total_firings = 0
        self.last_cycle_stepped: Optional[float] = None
        # Source backend: a fused generated step_cycle shadows the class
        # method.  Installed last so the generated module pre-binds the
        # fully initialised engine state (busy table, locked view, wakeup).
        if backend == "source":
            self._step_gen = generate_hw_step(self, self._exec, HwLatencyAccumulator)
            self.step_cycle = self._step_gen.namespace["step_cycle"]

    # -- snapshot / restore ---------------------------------------------------

    def snapshot(self) -> tuple:
        """Capture every mutable field as plain data (O(state), no recompilation).

        Store values are shared shallowly under the engines' rebind-only
        contract; the in-flight rule table copies its per-rule deferred
        update dicts (a rule commit mutates nothing inside them, but the
        table itself changes as rules finish).
        """
        wakeup = self._wakeup
        return (
            dict(self.store),
            bytes(wakeup.sleeping) if wakeup is not None else None,
            wakeup.n_sleeping if wakeup is not None else 0,
            {rule: (finish, dict(updates)) for rule, (finish, updates) in self.busy.items()},
            dict(self._locked_count),
            self._next_finish,
            list(self._pending_deliveries),
            dict(self.fire_counts),
            self.cycles_active,
            self.total_firings,
            self.last_cycle_stepped,
        )

    def restore(self, snap: tuple) -> None:
        """Reset the engine to a snapshot, in place.

        The store keeps its identity (transport closures pre-bind it and the
        bound ``locked_registers`` method): contents are rewritten through
        the unbound ``dict`` methods (no wake callbacks), the wakeup state is
        restored explicitly, and ``_locked_count`` is refilled in place so
        the pre-bound ``locked_registers`` view stays truthful.
        """
        (
            contents,
            sleeping,
            n_sleeping,
            busy,
            locked_count,
            self._next_finish,
            pending_deliveries,
            fire_counts,
            self.cycles_active,
            self.total_firings,
            self.last_cycle_stepped,
        ) = snap
        store = self.store
        dict.clear(store)
        dict.update(store, contents)
        wakeup = self._wakeup
        if wakeup is not None:
            wakeup.sleeping[:] = sleeping
            wakeup.n_sleeping = n_sleeping
        self.busy.clear()
        self.busy.update(
            {rule: (finish, dict(updates)) for rule, (finish, updates) in busy.items()}
        )
        self._locked_count.clear()
        self._locked_count.update(locked_count)
        self._pending_deliveries = list(pending_deliveries)
        self.fire_counts.clear()
        self.fire_counts.update(fire_counts)

    # -- channel-facing API ---------------------------------------------------

    def locked_registers(self):
        """Registers owned by in-flight multi-cycle rules (their deferred updates).

        The co-simulator's transport layer must not mutate these concurrently,
        otherwise the deferred commit would clobber the transport's change.
        Returns a set-like view (supports ``in``, ``&`` and iteration).
        """
        return self._locked_count.keys()

    # Backwards-compatible private alias used internally.
    _locked_registers = locked_registers

    def _lock_rule(self, rule: Rule, finish: float, updates: Dict[Register, Any]) -> None:
        self.busy[rule] = (finish, updates)
        locked = self._locked_count
        for reg in self._write_sets[rule]:
            locked[reg] = locked.get(reg, 0) + 1
        if self._next_finish is None or finish < self._next_finish:
            self._next_finish = finish

    def _unlock_rule(self, rule: Rule) -> Dict[Register, Any]:
        _, updates = self.busy.pop(rule)
        locked = self._locked_count
        for reg in self._write_sets[rule]:
            count = locked[reg] - 1
            if count:
                locked[reg] = count
            else:
                del locked[reg]
        self._next_finish = (
            min(finish for finish, _ in self.busy.values()) if self.busy else None
        )
        return updates

    def deliver(self, reg: Register, item: Any, now: float) -> None:
        """Append an arriving element to an endpoint FIFO register.

        If the register is currently locked by an in-flight multi-cycle rule
        the delivery is parked and applied as soon as the rule commits, so no
        update is ever lost.
        """
        if reg in self._locked_registers():
            self._pending_deliveries.append((reg, item))
        else:
            self.store[reg] = tuple(self.store[reg]) + (item,)

    def deliver_batch(self, reg: Register, items: Tuple[Any, ...], now: float) -> None:
        """Append several arriving elements to an endpoint FIFO register at once.

        Equivalent to ``deliver`` per element: the parking condition (the
        register locked by an in-flight multi-cycle rule) cannot change
        between the deliveries of one transport sweep, so the whole batch
        either parks or lands with a single endpoint-tuple extension.
        """
        if reg in self._locked_registers():
            self._pending_deliveries.extend((reg, item) for item in items)
        else:
            self.store[reg] = tuple(self.store[reg]) + tuple(items)

    def _flush_pending_deliveries(self) -> None:
        if not self._pending_deliveries:
            return
        locked = self._locked_registers()
        still_pending: List[Tuple[Register, Any]] = []
        for reg, item in self._pending_deliveries:
            if reg in locked:
                still_pending.append((reg, item))
            else:
                self.store[reg] = tuple(self.store[reg]) + (item,)
        self._pending_deliveries = still_pending

    # -- execution -------------------------------------------------------------

    def next_completion_time(self) -> Optional[float]:
        return self._next_finish

    def step_cycle(self, now: float) -> bool:
        """Simulate one clock edge at time ``now``.  Returns True on progress."""
        if not self.rules:
            return False
        if self.last_cycle_stepped == now:
            return False
        self.last_cycle_stepped = now

        progress = False

        # 1. Complete multi-cycle rules whose latency has elapsed.
        if self._next_finish is not None and self._next_finish <= now:
            finished = [rule for rule, (finish, _) in self.busy.items() if finish <= now]
            for rule in finished:
                commit(self.store, self._unlock_rule(rule))
                progress = True
            self._flush_pending_deliveries()

        # 2. Determine which rules may attempt to fire this cycle.  Sleeping
        #    rules (guard failed, read set untouched since) cannot be enabled
        #    and are skipped without evaluation.
        use_dirty = self._use_dirty
        sleeping = index_of = None
        if use_dirty:
            if self._wakeup.all_asleep and not self.busy:
                # Every rule is known guard-disabled and nothing is in flight.
                if progress:
                    self.cycles_active += 1
                return progress
            sleeping = self._wakeup.sleeping
            index_of = self._wakeup.index_of
        locked = self._locked_registers()
        if use_dirty:
            candidates = [
                rule
                for rule in self.rules
                if rule not in self.busy
                and not sleeping[index_of[rule]]
                and not (self._write_sets[rule] & locked)
            ]
        else:
            candidates = [
                rule
                for rule in self.rules
                if rule not in self.busy and not (self._write_sets[rule] & locked)
            ]
        if not candidates:
            if progress:
                self.cycles_active += 1
            return progress

        compiled = self.backend != "interp"
        enabled: List[Rule] = []
        #: rule -> (updates, latency) evaluated against this cycle's initial state.
        evaluated: Dict[Rule, Tuple[Dict[Register, Any], int]] = {}
        if compiled:
            read = self.store.__getitem__
            for rule in candidates:
                latency_hooks = HwLatencyAccumulator()
                try:
                    updates = self._exec[rule].latency(read, latency_hooks)
                except GuardFail:
                    self._wakeup.sleep_index(index_of[rule])
                    continue
                except KeyError as exc:
                    raise_for_missing_register(exc)
                    raise
                evaluated[rule] = (updates, latency_hooks.latency)
                enabled.append(rule)
        else:
            for rule in candidates:
                outcome = try_rule(rule, self.store, self.evaluator)
                if outcome.fired:
                    enabled.append(rule)

        chosen = self.schedule.select(enabled)

        # 3. Execute the chosen set sequentially (consistent with the
        #    one-rule-at-a-time semantics the concurrent schedule must respect).
        #    A rule whose updates are deferred (multi-cycle kernel) locks its
        #    write set for the rest of the cycle as well, so no other rule in
        #    the same cycle can produce an immediate update that the deferred
        #    commit would later clobber.
        cycle_locked: Set[Register] = set(locked)
        cycle_dirty: Set[Register] = set()
        for rule in chosen:
            if self._write_sets[rule] & cycle_locked:
                continue
            if compiled:
                updates, latency = evaluated[rule]
                if self._read_sets[rule] & cycle_dirty:
                    # An earlier rule in this cycle wrote state this rule
                    # reads; the phase-2 evaluation is stale, redo it.
                    latency_hooks = HwLatencyAccumulator()
                    try:
                        updates = self._exec[rule].latency(
                            self.store.__getitem__, latency_hooks
                        )
                    except GuardFail:
                        self._wakeup.sleep_index(index_of[rule])
                        continue
                    except KeyError as exc:
                        raise_for_missing_register(exc)
                        raise
                    latency = latency_hooks.latency
            else:
                latency_hooks = HwLatencyAccumulator()
                outcome = try_rule(rule, self.store, self.evaluator, latency_hooks)
                if not outcome.fired:
                    # An earlier rule in the same cycle changed the state under it.
                    continue
                updates, latency = outcome.updates, latency_hooks.latency
            self.fire_counts[rule.full_name] += 1
            self.total_firings += 1
            progress = True
            if latency <= 1:
                commit(self.store, updates)
                cycle_dirty.update(updates)
            else:
                self._lock_rule(rule, now + latency, updates)
                cycle_locked |= self._write_sets[rule]

        if progress:
            self.cycles_active += 1
        return progress

    def is_idle(self) -> bool:
        return not self.busy and not self._pending_deliveries
