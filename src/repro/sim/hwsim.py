"""Cycle-level simulator for a hardware partition.

The hardware implementation of a rule-based design executes, in every clock
cycle, a maximal set of enabled rules that the static conflict analysis has
shown to be safely concurrent (Section 6.1).  The engine here does exactly
that: per cycle it evaluates the guards of the schedulable rules, selects a
conflict-free subset with :class:`~repro.core.scheduler.HwSchedule`, and
commits their updates in a sequential order consistent with one-rule-at-a-time
semantics.  Rules whose bodies contain multi-cycle kernels (e.g. a pipelined
radix stage or a BVH intersection test) occupy their state for the kernel
latency before committing, which models a per-rule FSM.

The engine is driven by the co-simulator one clock edge at a time and reports
whether it made progress, so the co-simulator can skip over idle stretches
(e.g. while the hardware waits ~100 cycles for a bus response) without
simulating every empty cycle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.analysis import rule_write_set
from repro.core.module import Register, Rule
from repro.core.scheduler import HwSchedule
from repro.core.semantics import Evaluator, Store, commit, try_rule
from repro.sim.costmodel import HwLatencyAccumulator


class HwEngine:
    """Executes the rules of one hardware partition, cycle by cycle."""

    def __init__(self, rules: List[Rule], store: Store, name: str = "HW"):
        self.name = name
        self.rules = list(rules)
        self.store = store
        self.schedule = HwSchedule(self.rules)
        self.evaluator = Evaluator()
        #: rule -> (finish_time, deferred updates) for in-flight multi-cycle rules.
        self.busy: Dict[Rule, Tuple[float, Dict[Register, Any]]] = {}
        #: deliveries queued because their target register was locked by a busy rule.
        self._pending_deliveries: List[Tuple[Register, Any]] = []
        self._write_sets: Dict[Rule, Set[Register]] = {
            rule: rule_write_set(rule) for rule in self.rules
        }
        # Statistics
        self.fire_counts: Dict[str, int] = {r.full_name: 0 for r in self.rules}
        self.cycles_active = 0
        self.total_firings = 0
        self.last_cycle_stepped: Optional[float] = None

    # -- channel-facing API ---------------------------------------------------

    def locked_registers(self) -> Set[Register]:
        """Registers owned by in-flight multi-cycle rules (their deferred updates).

        The co-simulator's transport layer must not mutate these concurrently,
        otherwise the deferred commit would clobber the transport's change.
        """
        locked: Set[Register] = set()
        for rule in self.busy:
            locked |= self._write_sets[rule]
        return locked

    # Backwards-compatible private alias used internally.
    _locked_registers = locked_registers

    def deliver(self, reg: Register, item: Any, now: float) -> None:
        """Append an arriving element to an endpoint FIFO register.

        If the register is currently locked by an in-flight multi-cycle rule
        the delivery is parked and applied as soon as the rule commits, so no
        update is ever lost.
        """
        if reg in self._locked_registers():
            self._pending_deliveries.append((reg, item))
        else:
            self.store[reg] = tuple(self.store[reg]) + (item,)

    def _flush_pending_deliveries(self) -> None:
        if not self._pending_deliveries:
            return
        locked = self._locked_registers()
        still_pending: List[Tuple[Register, Any]] = []
        for reg, item in self._pending_deliveries:
            if reg in locked:
                still_pending.append((reg, item))
            else:
                self.store[reg] = tuple(self.store[reg]) + (item,)
        self._pending_deliveries = still_pending

    # -- execution -------------------------------------------------------------

    def next_completion_time(self) -> Optional[float]:
        if not self.busy:
            return None
        return min(finish for finish, _ in self.busy.values())

    def step_cycle(self, now: float) -> bool:
        """Simulate one clock edge at time ``now``.  Returns True on progress."""
        if not self.rules:
            return False
        if self.last_cycle_stepped == now:
            return False
        self.last_cycle_stepped = now

        progress = False

        # 1. Complete multi-cycle rules whose latency has elapsed.
        finished = [rule for rule, (finish, _) in self.busy.items() if finish <= now]
        for rule in finished:
            _, updates = self.busy.pop(rule)
            commit(self.store, updates)
            progress = True
        if finished:
            self._flush_pending_deliveries()

        # 2. Determine which rules may attempt to fire this cycle.
        locked = self._locked_registers()
        candidates = [
            rule
            for rule in self.rules
            if rule not in self.busy and not (self._write_sets[rule] & locked)
        ]
        if not candidates:
            if progress:
                self.cycles_active += 1
            return progress

        enabled: List[Rule] = []
        for rule in candidates:
            outcome = try_rule(rule, self.store, self.evaluator)
            if outcome.fired:
                enabled.append(rule)

        chosen = self.schedule.select(enabled)

        # 3. Execute the chosen set sequentially (consistent with the
        #    one-rule-at-a-time semantics the concurrent schedule must respect).
        #    A rule whose updates are deferred (multi-cycle kernel) locks its
        #    write set for the rest of the cycle as well, so no other rule in
        #    the same cycle can produce an immediate update that the deferred
        #    commit would later clobber.
        cycle_locked: Set[Register] = set(locked)
        for rule in chosen:
            if self._write_sets[rule] & cycle_locked:
                continue
            latency_hooks = HwLatencyAccumulator()
            outcome = try_rule(rule, self.store, self.evaluator, latency_hooks)
            if not outcome.fired:
                # An earlier rule in the same cycle changed the state under it.
                continue
            self.fire_counts[rule.full_name] += 1
            self.total_firings += 1
            progress = True
            if latency_hooks.latency <= 1:
                commit(self.store, outcome.updates)
            else:
                self.busy[rule] = (now + latency_hooks.latency, outcome.updates)
                cycle_locked |= self._write_sets[rule]

        if progress:
            self.cycles_active += 1
        return progress

    def is_idle(self) -> bool:
        return not self.busy and not self._pending_deliveries
