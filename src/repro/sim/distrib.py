"""Distributed co-simulation: groups in processes, links as framed wire words.

The fabric's group decomposition (:class:`repro.sim.cosim.CosimFabric`)
already proves that independently clocked groups share no state -- each
group may run "in a different process".  This module takes that literally:

* **Placement.**  ``placement="group"`` (the scaling story) gives every
  independent group its own long-lived worker process; the groups share
  nothing, so no data plane crosses a process boundary at all and the
  workers simply run their group sub-fabric loops.  ``placement="domain"``
  (the stretch placement, and the one that exercises the wire) splits every
  multi-domain group into one *member* process per domain and advances the
  members in an iteration-lockstep protocol equivalent to the serial group
  loop.

* **Data plane.**  A cut link whose producer and consumer land in
  different member processes is carried as the *actual framed wire words*
  the generated transactors speak: the producer's transport pump runs
  unmodified (its credit window reads the consumer's published occupancy
  instead of the in-process endpoint -- see
  :func:`repro.core.compile.compile_transport_pump`'s ``occupancy_of``),
  its link replica's :class:`~repro.platform.channel.MessagePool` fills
  with ``MessageLayout``-packed words, and a *carrier* moves each framed
  record -- ``(due, header word, payload words)`` -- into the consumer
  process's replica pool, where the unmodified delivery sweep demarshals
  it.  Nothing but those raw integers (plus the simulated delivery time)
  crosses the boundary: no pickled values, no Python objects.

* **Carriers.**  Two interchangeable transports move the records:
  ``carrier="shm"`` uses one fixed-size SPSC word ring per crossing link in
  a single ``multiprocessing.shared_memory`` arena (the producer's tail
  write is the doorbell, the consumer's head write returns the space), and
  ``carrier="socket"`` streams the same records over pre-forked
  ``socketpair`` byte streams.  Credit/occupancy counters and the lockstep
  barriers always live in the shared arena.

* **Equivalence.**  Workers re-elaborate the design from a picklable
  builder spec (elaboration is deterministic; an elaborated fabric cannot
  cross a process boundary), the lockstep protocol replays the serial group
  loop's phase order cycle for cycle, and the parent reassembles each
  group's :class:`~repro.sim.cosim.CosimResult` in the serial orderings --
  so the merged result is **bitwise identical** to
  ``scheduler="grouped"`` on a fresh fabric, for both rule backends and
  both carriers.

The protocol notes (ring word-frame layout, doorbell/credit slots, the
barrier schedule and why it is race-free) are documented in ROADMAP.md
under "Distributed co-simulation".
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import struct
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.compile import compile_transport_pump
from repro.core.errors import SimulationError
from repro.platform.marshal import unframe_header
from repro.sim.cosim import (
    CosimFabric,
    CosimResult,
    Cosimulator,
    _deliver_routes_interp,
    _pump_routes_interp,
)
from repro.sim.pool import _POOL_STALL_SECONDS, _picklable_error

__all__ = [
    "DistributedReport",
    "MemberOutcome",
    "run_distributed",
]

_NAN = float("nan")

#: Leader decisions broadcast through the control block each iteration.
_CONTINUE, _STOP, _BUDGET = 1, 2, 3

#: Ring header slots (head, tail) preceding the data area.
_RING_DATA = 2


# ---------------------------------------------------------------------------
# shared-memory arena and carriers
# ---------------------------------------------------------------------------


class _ShmArena:
    """One shared-memory segment carved into 64-bit slots.

    Holds every lockstep group's control block (barriers, credit cells,
    observed-register cells) and -- under the shm carrier -- every crossing
    link's word ring.  Slot assignment is computed once in the parent and
    shipped in the (fork-inherited) plans; views over the buffer are built
    lazily *per process*, never pre-fork, so each process releases exactly
    the views it created.

    Three typed views alias the same slots: ``u`` (uint64: barriers,
    counters, wire words), ``f`` (float64: simulated times, bit-punned into
    their slots) and ``q`` (int64: observed register values).
    """

    def __init__(self, slots: int):
        from multiprocessing import shared_memory

        self._shm = shared_memory.SharedMemory(create=True, size=max(8, slots * 8))
        self._views: List[memoryview] = []
        self._u = self._f = self._q = None

    def _view(self, fmt: str) -> memoryview:
        view = self._shm.buf.cast(fmt)
        self._views.append(view)
        return view

    @property
    def u(self) -> memoryview:
        if self._u is None:
            self._u = self._view("Q")
        return self._u

    @property
    def f(self) -> memoryview:
        if self._f is None:
            self._f = self._view("d")
        return self._f

    @property
    def q(self) -> memoryview:
        if self._q is None:
            self._q = self._view("q")
        return self._q

    def close(self) -> None:
        for view in self._views:
            view.release()
        self._views.clear()
        self._u = self._f = self._q = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - view left alive by a caller
            pass

    def unlink(self) -> None:
        self.close()
        self._shm.unlink()


class _ShmRing:
    """SPSC ring of 64-bit slots carrying one link's framed wire records.

    Layout at ``base`` (slot units): ``[head, tail, data[capacity]]``.
    ``head`` and ``tail`` are monotonically increasing *word* cursors taken
    modulo ``capacity`` per slot: the producer writes a record then
    advances ``tail`` (the doorbell -- the single producer-side store the
    consumer polls), the consumer reads a record then advances ``head``
    (the credit return -- freed space the producer polls).  One record is
    ``[due (float64, bit-punned), n_words, framed words...]``; records may
    wrap the data area.  Exactly one process pushes and exactly one pops,
    and the lockstep barrier schedule keeps push and pop phases of any
    iteration pair disjoint, so the monotone cursors are the only
    synchronisation needed.
    """

    __slots__ = (
        "u",
        "f",
        "base",
        "capacity",
        "records_out",
        "words_out",
        "records_in",
        "words_in",
        "full_retries",
    )

    def __init__(self, arena: _ShmArena, base: int, capacity: int):
        self.u = arena.u
        self.f = arena.f
        self.base = base
        self.capacity = capacity
        self.records_out = 0
        self.words_out = 0
        self.records_in = 0
        self.words_in = 0
        self.full_retries = 0

    def can_ship(self, n_words: int) -> bool:
        u = self.u
        return self.capacity - (u[self.base + 1] - u[self.base]) >= n_words + 2

    def ship(self, due: float, words: List[int]) -> None:
        u = self.u
        base = self.base + _RING_DATA
        cap = self.capacity
        tail = u[self.base + 1]
        self.f[base + tail % cap] = due
        u[base + (tail + 1) % cap] = len(words)
        for k, word in enumerate(words):
            u[base + (tail + 2 + k) % cap] = word
        # Publish: the tail store is the doorbell (written strictly after
        # the record body on x86's total store order).
        u[self.base + 1] = tail + 2 + len(words)
        self.records_out += 1
        self.words_out += len(words)

    def pop_record(self) -> Optional[Tuple[float, List[int]]]:
        u = self.u
        head = u[self.base]
        if head == u[self.base + 1]:
            return None
        base = self.base + _RING_DATA
        cap = self.capacity
        due = self.f[base + head % cap]
        n = u[base + (head + 1) % cap]
        words = [u[base + (head + 2 + k) % cap] for k in range(n)]
        # Return the space: the head store is the credit.
        u[self.base] = head + 2 + n
        self.records_in += 1
        self.words_in += n
        return due, words


class _SocketLane:
    """Byte-stream carrier over one end of a pre-forked ``socketpair``.

    Same record stream as :class:`_ShmRing` -- ``<dQ`` header (due,
    n_words) followed by ``n_words`` little-endian 64-bit words -- over a
    blocking producer ``sendall`` and a non-blocking consumer drain with a
    partial-record reassembly buffer.  Credits bound the in-flight volume
    far below AF_UNIX buffering, so the producer never blocks in practice;
    the barrier schedule guarantees every record shipped in iteration ``i``
    is readable before the consumer drains iteration ``i + 1``.
    """

    _HEADER = struct.Struct("<dQ")

    __slots__ = (
        "sock",
        "buf",
        "records_out",
        "words_out",
        "records_in",
        "words_in",
        "full_retries",
    )

    def __init__(self, sock: socket.socket, consumer: bool):
        self.sock = sock
        if consumer:
            sock.setblocking(False)
        self.buf = bytearray()
        self.records_out = 0
        self.words_out = 0
        self.records_in = 0
        self.words_in = 0
        self.full_retries = 0

    def can_ship(self, n_words: int) -> bool:
        return True

    def ship(self, due: float, words: List[int]) -> None:
        self.sock.sendall(struct.pack(f"<dQ{len(words)}Q", due, len(words), *words))
        self.records_out += 1
        self.words_out += len(words)

    def pop_record(self) -> Optional[Tuple[float, List[int]]]:
        while True:
            buf = self.buf
            if len(buf) >= 16:
                due, n = self._HEADER.unpack_from(buf, 0)
                need = 16 + 8 * n
                if len(buf) >= need:
                    words = list(struct.unpack_from(f"<{n}Q", buf, 16))
                    del buf[:need]
                    self.records_in += 1
                    self.words_in += n
                    return due, words
            try:
                chunk = self.sock.recv(1 << 16)
            except BlockingIOError:
                return None
            if not chunk:
                return None
            buf += chunk


# ---------------------------------------------------------------------------
# plans: what the parent computes once and every member agrees on
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _RemoteLink:
    """One cut link that crosses a member boundary, with its carrier resources."""

    src: str
    dst: str
    ring_base: int = 0
    capacity: int = 0
    socket_index: int = -1


@dataclass(frozen=True)
class _GroupPlan:
    """Shared-arena layout of one lockstep (multi-member) group.

    The control block at ``control_base`` holds, in 64-bit slots:

    * per member ``m``: ``arrive_a[m]``, ``arrive_b[m]`` (barrier
      generation counters), ``progress[m]`` and ``next_time[m]`` (the
      member's published per-iteration loop inputs);
    * the leader's broadcast: ``release`` (generation), ``decision``
      (CONTINUE/STOP/BUDGET), ``decision_now`` (the new clock) and the
      group's ``completed`` flag;
    * per remote route ``r`` (cut order): ``delivered[r]`` and
      ``occupancy[r]`` -- the consumer-published credit state the
      producer's unmodified pump window reads;
    * per observed register (sorted full names): its value as int64, so
      the leader can evaluate the group's done predicate over live
      cross-member state.
    """

    group_index: int
    members: Tuple[Tuple[str, ...], ...]
    control_base: int
    observed: Tuple[str, ...]
    remote_route_cuts: Tuple[int, ...]
    remote_links: Tuple[_RemoteLink, ...]

    # -- slot addressing ----------------------------------------------------

    def arrive_a_slot(self, m: int) -> int:
        return self.control_base + 4 * m

    def arrive_b_slot(self, m: int) -> int:
        return self.control_base + 4 * m + 1

    def progress_slot(self, m: int) -> int:
        return self.control_base + 4 * m + 2

    def next_time_slot(self, m: int) -> int:
        return self.control_base + 4 * m + 3

    @property
    def _broadcast_base(self) -> int:
        return self.control_base + 4 * len(self.members)

    @property
    def release_slot(self) -> int:
        return self._broadcast_base

    @property
    def decision_slot(self) -> int:
        return self._broadcast_base + 1

    @property
    def decision_now_slot(self) -> int:
        return self._broadcast_base + 2

    @property
    def completed_slot(self) -> int:
        return self._broadcast_base + 3

    def delivered_slot(self, r: int) -> int:
        return self._broadcast_base + 4 + 2 * r

    def occupancy_slot(self, r: int) -> int:
        return self._broadcast_base + 4 + 2 * r + 1

    def observed_slot(self, o: int) -> int:
        return self._broadcast_base + 4 + 2 * len(self.remote_route_cuts) + o

    @property
    def slots(self) -> int:
        return (
            4 * len(self.members)
            + 4
            + 2 * len(self.remote_route_cuts)
            + len(self.observed)
        )


@dataclass(frozen=True)
class _MemberSpec:
    """One unit of placed work: a worker runs one or more of these."""

    global_index: int
    group_index: int
    member_index: int
    mode: str  # "solo" | "lockstep"
    domain_names: Tuple[str, ...]
    label: str


@dataclass
class _WorkerAssignment:
    """Everything one worker process needs (inherited via fork, never pickled)."""

    builder: Callable[..., Any]
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any]
    backend: str
    transport: Optional[str]
    engine_kinds: Optional[Dict[str, str]]
    fabric_kind: str
    done_attr: str
    members: List[_MemberSpec]
    plans: Dict[int, _GroupPlan]
    arena: Optional[_ShmArena]
    sockets: List[Tuple[socket.socket, socket.socket]]
    carrier: str
    max_cycles: float
    max_iterations: int
    barrier_timeout: float


@dataclass
class MemberOutcome:
    """Per-member accounting of one distributed run."""

    label: str
    group_index: int
    member_index: int
    mode: str
    domains: Tuple[str, ...]
    pid: int
    wall_seconds: float
    #: Carrier endpoint counters: records/words shipped and received by
    #: this member, plus ring-full retries (backpressure events).
    carrier: Dict[str, int] = field(default_factory=dict)


@dataclass
class DistributedReport:
    """What :func:`run_distributed` hands back.

    ``result`` is bitwise identical to ``scheduler="grouped"`` on a fresh
    fabric; the rest is accounting: per-member outcomes, wall-clock time,
    the placement/carrier actually used and the aggregate data plane
    (``records``/``words`` that physically crossed process boundaries as
    framed wire words, and ``full_retries`` -- carrier backpressure
    events).  ``fallback=True`` marks a platform without ``fork``, where
    the run degraded to the in-process grouped scheduler.
    """

    result: CosimResult
    outcomes: List[MemberOutcome]
    wall_seconds: float
    processes: int
    placement: str
    carrier: str
    data_plane: Dict[str, int]
    fallback: bool = False

    def table(self) -> str:
        """Human-readable per-member summary."""
        lines = [
            f"{'member':<40} {'mode':<9} {'pid':>7} {'wall(s)':>8} "
            f"{'recs':>6} {'words':>8} {'full':>5}"
        ]
        for o in self.outcomes:
            c = o.carrier
            lines.append(
                f"{o.label:<40} {o.mode:<9} {o.pid:>7} {o.wall_seconds:>8.3f} "
                f"{c.get('records_out', 0):>6} {c.get('words_out', 0):>8} "
                f"{c.get('full_retries', 0):>5}"
            )
        d = self.data_plane
        lines.append(
            f"{self.processes} processes ({self.placement} placement, "
            f"{self.carrier} carrier): {d['records']} records / {d['words']} "
            f"wire words crossed process boundaries, {d['full_retries']} "
            f"ring-full retries, {self.wall_seconds:.3f}s wall"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _build_fabric(
    workload: Any,
    fabric_kind: str,
    backend: str,
    transport: Optional[str],
    engine_kinds: Optional[Dict[str, str]],
) -> CosimFabric:
    """Elaborate a fabric from a workload, mirroring the serving layer."""
    kind = fabric_kind
    if kind == "auto":
        kind = "fabric" if engine_kinds else "duplex"
    if kind == "duplex":
        return Cosimulator(workload.design, backend=backend, transport=transport)
    return CosimFabric(
        workload.design,
        backend=backend,
        transport=transport,
        engine_kinds=dict(engine_kinds) if engine_kinds else None,
    )


def _one_route_pump(route: tuple) -> Callable[[float], bool]:
    """Interpreted pump closure over a single member-local route."""
    routes = (route,)

    def pump(now: float) -> bool:
        return _pump_routes_interp(routes, now)

    return pump


def _remote_route_pump(
    route: tuple, occupancy_of: Callable[[], int]
) -> Callable[[float], bool]:
    """Interpreted pump for a route whose consumer lives in another process.

    Body identical to :func:`repro.sim.cosim._pump_routes_interp` for one
    route, with the consumer occupancy read from the published cell instead
    of the (reset, never-advancing) in-process replica endpoint.  All
    bookkeeping -- credits, stall counts, driver charges, send order and
    timing -- is unchanged.
    """
    from repro.platform.marshal import marshal_message

    sync, vc, producer_engine, producer_store, _consumer_store, direction, sw_producer = route
    data = sync.data
    depth = sync.depth
    ty = sync.ty

    def pump(now: float) -> bool:
        if not producer_store[data]:
            return False
        if data in producer_engine.locked_registers():
            return False
        progress = False
        while producer_store[data]:
            consumer_occupancy = occupancy_of()
            if consumer_occupancy + vc.in_flight >= depth:
                vc.note_credit_stall()
                break
            vc.credits = depth - consumer_occupancy - vc.in_flight
            item = producer_store[data][0]
            producer_store[data] = tuple(producer_store[data][1:])
            words = marshal_message(vc.vc_id, ty, item, vc.word_bits)
            direction.send_words(vc.vc_id, words, now)
            vc.on_send()
            if sw_producer:
                producer_engine.charge_driver(vc.words_per_element, now)
            progress = True
        return progress

    return pump


def _make_endpoint(a: _WorkerAssignment, rl: _RemoteLink, consumer: bool):
    if a.carrier == "shm":
        return _ShmRing(a.arena, rl.ring_base, rl.capacity)
    pair = a.sockets[rl.socket_index]
    return _SocketLane(pair[1] if consumer else pair[0], consumer)


def _carrier_stats(endpoints) -> Dict[str, int]:
    stats = {
        "records_out": 0,
        "words_out": 0,
        "records_in": 0,
        "words_in": 0,
        "full_retries": 0,
    }
    for ep in endpoints:
        stats["records_out"] += ep.records_out
        stats["words_out"] += ep.words_out
        stats["records_in"] += ep.records_in
        stats["words_in"] += ep.words_in
        stats["full_retries"] += ep.full_retries
    return stats


def _run_solo_member(
    fabric: CosimFabric, done, spec: _MemberSpec, a: _WorkerAssignment
) -> dict:
    """Run a whole group in this process: the group loop, unmodified."""
    t0 = time.perf_counter()
    result = fabric.run_group(
        spec.group_index,
        done,
        max_cycles=a.max_cycles,
        max_iterations=a.max_iterations,
    )
    return {
        "kind": "solo",
        "result": result,
        "observations": fabric.group_observations(spec.group_index),
        "pid": os.getpid(),
        "wall_seconds": time.perf_counter() - t0,
        "carrier": _carrier_stats(()),
    }


def _run_lockstep_member(
    fabric: CosimFabric, done, spec: _MemberSpec, a: _WorkerAssignment
) -> dict:
    """Advance one member (a subset of a group's domains) in lockstep.

    Replays the serial group loop's phase order per iteration -- deliver
    due messages, step hardware engines, step software engines, pump the
    transport -- over this member's engines and routes, with two barriers
    per iteration:

    * **A** after the member publishes its consumer-side credit state
      (delivered counts and endpoint occupancies), so every producer pumps
      against exactly the occupancy the serial pump phase would read;
    * **B** after the member publishes its progress bit, next event time
      and observed-register values, after which the leader (member 0)
      replays the serial end-of-iteration decision -- quiescence check,
      budget check, done check -- and broadcasts CONTINUE (with the new
      clock), STOP or BUDGET.

    Freshly pumped records leave on the carriers between A and B of
    iteration ``i`` and are drained into the consumer's replica pool
    before the deliver phase of iteration ``i + 1`` -- the same pool state
    the serial loop would see, because a record pumped at ``i`` is never
    deliverable before ``i + 1``.
    """
    plan = a.plans[spec.group_index]
    g = spec.group_index
    my = spec.member_index
    group = fabric._groups[g]
    member_names = set(spec.domain_names)
    u, f, q = a.arena.u, a.arena.f, a.arena.q
    t0 = time.perf_counter()

    # Probe the done predicate at reset state: records the observed set
    # (the parent only dispatches when the predicate is still false) and
    # attributes it to groups, exactly as run_group does for solo members.
    _already, observed = fabric.probe_done(done)
    owners = {fabric.group_of_register(reg) for reg in observed}
    done_g = done if g in owners else None
    obs_names = tuple(
        sorted(
            reg.full_name
            for reg in observed
            if fabric.group_of_register(reg) == g
        )
    )
    if obs_names != plan.observed:
        raise SimulationError(
            f"distributed member {spec.label}: observed-register plan mismatch "
            f"(parent planned {plan.observed}, member sees {obs_names}); "
            "the done predicate's read set must be deterministic at reset"
        )
    own_names = set(fabric.observations_for_domains(spec.domain_names))
    by_name = {reg.full_name: reg for reg in observed}
    own_obs = [
        (o, by_name[nm]) for o, nm in enumerate(plan.observed) if nm in own_names
    ]

    # -- engines: the group's engine order restricted to this member --------
    doms = [d for d in group.domains if d.name in member_names]
    hw_engines = [
        fabric.engines[d] for d in doms if fabric.engine_kinds[d.name] == "hw"
    ]
    sw_engines = [
        fabric.engines[d] for d in doms if fabric.engine_kinds[d.name] == "sw"
    ]

    # -- carrier endpoints over the member-crossing links --------------------
    endpoints: Dict[Tuple[str, str], Any] = {}
    for rl in plan.remote_links:
        if rl.src in member_names:
            endpoints[(rl.src, rl.dst)] = _make_endpoint(a, rl, consumer=False)
        elif rl.dst in member_names:
            endpoints[(rl.src, rl.dst)] = _make_endpoint(a, rl, consumer=True)

    gidx = fabric._group_index
    in_carriers: List[Tuple[Any, Any]] = []
    out_carriers: List[Tuple[Any, Any]] = []
    scan_pools: List[Any] = []
    for link in fabric.topology.links:
        if gidx.get(link.dst, gidx.get(link.src, 0)) != g:
            continue
        key = (link.src, link.dst)
        if link.dst in member_names:
            pool = fabric.topology.direction(link.src, link.dst).pool
            scan_pools.append(pool)
            if key in endpoints:
                in_carriers.append((endpoints[key], pool))
        elif link.src in member_names:
            pool = fabric.topology.direction(link.src, link.dst).pool
            scan_pools.append(pool)
            if key in endpoints:
                out_carriers.append((endpoints[key], pool))

    # -- transport routes: local pumps verbatim, remote pumps re-windowed ----
    compiled = fabric._pump_fns is not None
    cell_of_cut = {cut: r for r, cut in enumerate(plan.remote_route_cuts)}
    pump_fns: List[Callable[[float], bool]] = []
    out_routes: List[Tuple[Any, int]] = []  # (vc, cell) for producer-side remotes
    in_routes: List[Tuple[int, Any, Any, Any]] = []  # (cell, vc, store, data reg)
    for j, route in enumerate(fabric._routes):
        sync, vc, peng, pstore, cstore, direction, sw_prod = route
        src = sync.domain_enq.name
        dst = sync.domain_deq.name
        if src in member_names and dst in member_names:
            pump_fns.append(fabric._pump_fns[j] if compiled else _one_route_pump(route))
        elif src in member_names:
            r = cell_of_cut[j]
            occ_slot = plan.occupancy_slot(r)
            occ_fn = lambda u=u, k=occ_slot: u[k]  # noqa: E731
            if compiled:
                pump_fns.append(
                    compile_transport_pump(
                        sync.data,
                        sync.depth,
                        pstore,
                        cstore,
                        vc,
                        direction,
                        peng.locked_registers,
                        peng.charge_driver if sw_prod else None,
                        occupancy_of=occ_fn,
                    )
                )
            else:
                pump_fns.append(_remote_route_pump(route, occ_fn))
            out_routes.append((vc, r))
        elif dst in member_names:
            in_routes.append((cell_of_cut[j], vc, cstore, sync.data))

    # -- delivery sweeps terminating in this member --------------------------
    if compiled:
        deliver_fns = [
            fabric._deliver_fns[j]
            for j, d in enumerate(fabric._delivery_dsts)
            if d in member_names
        ]

        def deliver_due(now: float) -> bool:
            progress = False
            for fn in deliver_fns:
                progress |= fn(now)
            return progress

    else:
        droutes = [
            fabric._delivery_routes[j]
            for j, d in enumerate(fabric._delivery_dsts)
            if d in member_names
        ]
        by_id = fabric.vcs.by_id

        def deliver_due(now: float) -> bool:
            return _deliver_routes_interp(droutes, by_id, now)

    # -- barriers ------------------------------------------------------------
    M = len(plan.members)
    a_slots = [plan.arrive_a_slot(m) for m in range(M)]
    b_slots = [plan.arrive_b_slot(m) for m in range(M)]
    leader = my == 0

    def wait_at_least(idx: int, target: int, what: str) -> None:
        if u[idx] >= target:
            return
        deadline = time.monotonic() + a.barrier_timeout
        spins = 0
        while u[idx] < target:
            spins += 1
            if spins & 0x3F == 0:
                time.sleep(0.00002)
                if time.monotonic() > deadline:
                    raise SimulationError(
                        f"distributed member {spec.label} timed out after "
                        f"{a.barrier_timeout:.0f}s waiting for {what} "
                        f"(iteration {target})"
                    )

    def leader_evaluate() -> bool:
        # Observed registers owned by *other members of this group* are
        # answered from their published cells; the leader's own are read
        # live; other groups' resolve to reset values through the active-
        # group scope -- together exactly the serial done evaluation.
        overrides = {
            nm: int(q[plan.observed_slot(o)])
            for o, nm in enumerate(plan.observed)
            if nm not in own_names
        }
        return fabric.evaluate_done(done, finals=overrides or None)

    def budget_error(at: float, iterations: int) -> SimulationError:
        hint = ""
        if done_g is not None and len(fabric._groups) > 1:
            hint = (
                "; a group that never quiesces and terminates only through a "
                "cross-group done predicate needs scheduler='lockstep'"
            )
        return SimulationError(
            f"co-simulation of {fabric.design.name}{group._label()} exceeded "
            f"its cycle/iteration budget (now={at}, iterations={iterations})"
            f"{hint}"
        )

    last_delivered = [0] * len(out_routes)
    now = 0.0
    completed = False
    i = 0
    fabric._active_group = g
    try:
        if not (now <= a.max_cycles and i < a.max_iterations):
            raise budget_error(now, i)
        while True:
            i += 1

            # Phase 0: drain arrived wire records into the replica pools
            # (bookkeeping, not progress: the producer already counted the
            # send, and delivery happens below when a record is due).
            for ep, pool in in_carriers:
                while True:
                    rec = ep.pop_record()
                    if rec is None:
                        break
                    due, words = rec
                    vc_id, payload_len = unframe_header(words[0])
                    if payload_len != len(words) - 1:
                        raise SimulationError(
                            f"distributed member {spec.label}: framed record "
                            f"header declares {payload_len} payload words but "
                            f"{len(words) - 1} arrived on the carrier"
                        )
                    pool.push(vc_id, words, due)

            progress = False
            progress |= deliver_due(now)
            for engine in hw_engines:
                progress |= engine.step_cycle(now)
            for engine in sw_engines:
                progress |= engine.step(now)

            # Publish consumer-side credit state, then barrier A.
            for r, vc, cstore, data_reg in in_routes:
                u[plan.delivered_slot(r)] = vc.stats.messages_delivered
                u[plan.occupancy_slot(r)] = len(cstore[data_reg])
            u[a_slots[my]] = i
            for idx in a_slots:
                wait_at_least(idx, i, "barrier A (credit publish)")

            # Import peers' delivery acknowledgements (credit returns).
            for k, (vc, r) in enumerate(out_routes):
                seen = u[plan.delivered_slot(r)]
                vc.in_flight -= seen - last_delivered[k]
                last_delivered[k] = seen

            for pump in pump_fns:
                progress |= pump(now)

            # Ship freshly pumped records; a full carrier leaves the rest
            # queued in the local pool (pure backpressure -- the credit
            # window already bounds what the consumer must absorb, so this
            # only delays the physical copy, never the simulated timing).
            shipped_min: Optional[float] = None
            for ep, pool in out_carriers:
                while True:
                    n_words = pool.next_record_words()
                    if n_words == 0:
                        break
                    if not ep.can_ship(n_words):
                        ep.full_retries += 1
                        break
                    _vc_id, words, due = pool.pop_next()
                    ep.ship(due, words)
                    if shipped_min is None or due < shipped_min:
                        shipped_min = due

            # This member's next event time: in-transit records it just
            # shipped, its pools (arrived and unshipped), and its engines.
            local_next = shipped_min
            for pool in scan_pools:
                t = pool.next_due()
                if t is not None and (local_next is None or t < local_next):
                    local_next = t
            for engine in hw_engines:
                t = engine.next_completion_time()
                if t is not None and (local_next is None or t < local_next):
                    local_next = t
            for engine in sw_engines:
                t = engine.next_event_time(now)
                if t is not None and (local_next is None or t < local_next):
                    local_next = t

            # Publish loop inputs and observed values, then barrier B.
            for o, reg in own_obs:
                value = fabric.read(reg)
                if value is True or value is False:
                    value = int(value)
                if not isinstance(value, int):
                    raise SimulationError(
                        f"distributed member {spec.label}: observed register "
                        f"{reg.full_name} holds {value!r}, which does not fit "
                        "the control block's int64 cells; domain placement "
                        "needs integer-valued done predicates (use "
                        "placement='group' for this design)"
                    )
                q[plan.observed_slot(o)] = value
            u[plan.progress_slot(my)] = 1 if progress else 0
            f[plan.next_time_slot(my)] = local_next if local_next is not None else _NAN
            u[b_slots[my]] = i

            if leader:
                for idx in b_slots:
                    wait_at_least(idx, i, "barrier B (decision inputs)")
                progress_any = any(u[plan.progress_slot(m)] for m in range(M))
                nexts = []
                for m in range(M):
                    t = f[plan.next_time_slot(m)]
                    if t == t:  # not NaN
                        nexts.append(t)
                if not progress_any and not nexts:
                    # Quiescent: finished or deadlocked -- ask the predicate.
                    done_now = leader_evaluate() if done_g is not None else True
                    u[plan.completed_slot] = 1 if done_now else 0
                    f[plan.decision_now_slot] = now
                    u[plan.decision_slot] = _STOP
                else:
                    new_now = (
                        now + 1.0 if progress_any else max(now + 1.0, min(nexts))
                    )
                    f[plan.decision_now_slot] = new_now
                    if not (new_now <= a.max_cycles and i < a.max_iterations):
                        u[plan.decision_slot] = _BUDGET
                    elif done_g is not None and leader_evaluate():
                        # The serial loop's top-of-iteration done check.
                        u[plan.completed_slot] = 1
                        u[plan.decision_slot] = _STOP
                    else:
                        u[plan.decision_slot] = _CONTINUE
                u[plan.release_slot] = i
            else:
                wait_at_least(plan.release_slot, i, "the leader's decision")

            decision = u[plan.decision_slot]
            decided_now = f[plan.decision_now_slot]
            if decision == _CONTINUE:
                now = decided_now
                continue
            if decision == _STOP:
                completed = bool(u[plan.completed_slot])
                now = decided_now
                break
            raise budget_error(decided_now, i)

        # -- member report: everything result assembly needs, as plain data --
        domains_report: Dict[str, Dict[str, Any]] = {}
        for d in doms:
            engine = fabric.engines[d]
            if fabric.engine_kinds[d.name] == "hw":
                domains_report[d.name] = {
                    "kind": "hw",
                    "fire_counts": dict(engine.fire_counts),
                    "firings": engine.total_firings,
                    "active_cycles": engine.cycles_active,
                }
            else:
                domains_report[d.name] = {
                    "kind": "sw",
                    "fire_counts": dict(engine.fire_counts),
                    "firings": engine.total_firings,
                    "busy_fpga_cycles": engine.busy_fpga_cycles,
                    "cpu_cycles": engine.cpu_cycles_total,
                    "cpu_cycles_wasted": engine.cpu_cycles_wasted,
                    "cpu_cycles_driver": engine.cpu_cycles_driver,
                    "guard_failures": engine.guard_failures,
                }
        vcs_report: Dict[int, Tuple[int, int, int]] = {}
        for j, route in enumerate(fabric._routes):
            sync, vc = route[0], route[1]
            if sync.domain_enq.name in member_names:
                vcs_report[j] = (
                    vc.stats.messages_sent,
                    vc.stats.words_sent,
                    vc.stats.stalled_on_credit,
                )
        links_report: Dict[str, Tuple[int, int, float]] = {}
        for link in fabric.topology.links:
            if gidx.get(link.dst, gidx.get(link.src, 0)) != g:
                continue
            if link.src in member_names:
                d = fabric.topology.direction(link.src, link.dst)
                links_report[f"{link.src}->{link.dst}"] = (
                    d.stats.messages,
                    d.stats.words,
                    d.stats.busy_cycles,
                )
        return {
            "kind": "lockstep",
            "group": g,
            "member": my,
            "now": now,
            "completed": completed,
            "iterations": i,
            "domains": domains_report,
            "vcs": vcs_report,
            "links": links_report,
            "observations": fabric.observations_for_domains(spec.domain_names),
            "pid": os.getpid(),
            "wall_seconds": time.perf_counter() - t0,
            "carrier": _carrier_stats(endpoints.values()),
        }
    finally:
        fabric._active_group = None


def _worker_main(a: _WorkerAssignment, conn) -> None:
    """Worker entry: elaborate once, run assigned members, report per member."""
    try:
        fabric = None
        done = None
        snap = None
        for spec in a.members:
            try:
                if fabric is None:
                    workload = a.builder(*a.args, **a.kwargs)
                    done = getattr(workload, a.done_attr)
                    fabric = _build_fabric(
                        workload, a.fabric_kind, a.backend, a.transport, a.engine_kinds
                    )
                    if len(a.members) > 1:
                        # More members will follow: remember reset state so
                        # each runs from it, like a fresh elaboration would.
                        snap = fabric.snapshot()
                elif snap is not None:
                    fabric.restore(snap)
                if spec.mode == "solo":
                    report = _run_solo_member(fabric, done, spec, a)
                else:
                    report = _run_lockstep_member(fabric, done, spec, a)
                conn.send(("done", spec.global_index, report))
            except BaseException as exc:
                conn.send(("error", spec.global_index, _picklable_error(exc)))
                return
        conn.send(("bye", -1, None))
    except Exception:  # pragma: no cover - reporting channel itself broke
        pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
        if a.arena is not None:
            a.arena.close()


# ---------------------------------------------------------------------------
# parent side: planning, dispatch, reassembly
# ---------------------------------------------------------------------------


def _plan_groups(
    parent: CosimFabric,
    layouts: List[Dict[str, Any]],
    member_domains: List[List[Tuple[str, ...]]],
    carrier: str,
    ring_words: Optional[int],
) -> Tuple[Dict[int, _GroupPlan], int, int]:
    """Control-block and carrier assignment for every lockstep group.

    Returns ``(plans, total arena slots, socketpair count)``.  Ring
    capacities default to twice the worst-case credit-window volume of the
    link's routes (``depth * (words_per_element + record overhead)``
    summed), floored at 256 slots -- so backpressure is the exception, not
    the steady state; ``ring_words`` overrides the capacity (tests use a
    tiny ring to exercise the full-ring path).
    """
    plans: Dict[int, _GroupPlan] = {}
    cursor = 0
    socket_count = 0
    for g, members in enumerate(member_domains):
        if len(members) == 1:
            continue
        layout = layouts[g]
        member_of: Dict[str, int] = {}
        for mi, names in enumerate(members):
            for nm in names:
                member_of[nm] = mi
        remote_routes = [
            r for r in layout["routes"] if member_of[r["src"]] != member_of[r["dst"]]
        ]
        remote_cuts = tuple(r["cut_index"] for r in remote_routes)
        by_link: Dict[Tuple[str, str], List[dict]] = {}
        for r in remote_routes:
            by_link.setdefault((r["src"], r["dst"]), []).append(r)
        observed = tuple(
            sorted(
                reg.full_name
                for reg in parent._last_observed
                if parent.group_of_register(reg) == g
            )
        )
        control_base = cursor
        cursor += 4 * len(members) + 4 + 2 * len(remote_routes) + len(observed)
        links: List[_RemoteLink] = []
        for src, dst in layout["links"]:
            routes = by_link.get((src, dst))
            if not routes:
                continue
            if carrier == "shm":
                need = sum(r["depth"] * (r["words_per_element"] + 2) for r in routes)
                capacity = ring_words if ring_words is not None else max(256, 2 * need)
                floor = max(r["words_per_element"] for r in routes) + 2
                if capacity < floor:
                    raise ValueError(
                        f"ring_words={capacity} cannot hold one framed record "
                        f"of link {src}->{dst} (needs at least {floor} slots)"
                    )
                links.append(
                    _RemoteLink(src, dst, ring_base=cursor, capacity=capacity)
                )
                cursor += _RING_DATA + capacity
            else:
                links.append(_RemoteLink(src, dst, socket_index=socket_count))
                socket_count += 1
        plans[g] = _GroupPlan(
            group_index=g,
            members=tuple(tuple(m) for m in members),
            control_base=control_base,
            observed=observed,
            remote_route_cuts=remote_cuts,
            remote_links=tuple(links),
        )
    return plans, cursor, socket_count


def _assemble_lockstep_result(
    design_name: str,
    layout: Dict[str, Any],
    plan: _GroupPlan,
    reports: List[dict],
) -> CosimResult:
    """Reassemble one lockstep group's ``CosimResult`` from member reports.

    Replicates ``_GroupFabric.result`` field for field: fire counts from
    hardware then software engines in group engine order, virtual channels
    in cut order, domains in engine order, link statistics in topology
    registration order -- with each number taken from the member that owns
    the engine (or the producing/sending side, for channels).  Ordered
    float sums accumulate in the serial order, so the result is bitwise
    identical to an in-process group run.
    """
    member_of: Dict[str, int] = {}
    for mi, names in enumerate(plan.members):
        for nm in names:
            member_of[nm] = mi
    nows = {r["now"] for r in reports}
    flags = {r["completed"] for r in reports}
    if len(nows) != 1 or len(flags) != 1:
        raise SimulationError(
            f"distributed group {plan.group_index} of {design_name} diverged: "
            f"member clocks {sorted(nows)}, completion flags {sorted(flags)}"
        )

    def dom(name: str) -> Dict[str, Any]:
        return reports[member_of[name]]["domains"][name]

    fire_counts: Dict[str, int] = {}
    for name, kind in layout["domains"]:
        if kind == "hw":
            fire_counts.update(dom(name)["fire_counts"])
    for name, kind in layout["domains"]:
        if kind != "hw":
            fire_counts.update(dom(name)["fire_counts"])
    vc_stats: Dict[str, Dict[str, int]] = {}
    for route in layout["routes"]:
        sent, words, stalls = reports[member_of[route["src"]]]["vcs"][
            route["cut_index"]
        ]
        vc_stats[route["key"]] = {
            "messages": sent,
            "words": words,
            "credit_stalls": stalls,
        }
    domain_stats: Dict[str, Dict[str, Any]] = {}
    for name, kind in layout["domains"]:
        rep = dom(name)
        if kind == "hw":
            domain_stats[name] = {
                "kind": "hw",
                "firings": rep["firings"],
                "active_cycles": rep["active_cycles"],
            }
        else:
            domain_stats[name] = {
                "kind": "sw",
                "firings": rep["firings"],
                "busy_fpga_cycles": rep["busy_fpga_cycles"],
                "cpu_cycles": rep["cpu_cycles"],
                "guard_failures": rep["guard_failures"],
            }
    sw_reports = [dom(name) for name, kind in layout["domains"] if kind != "hw"]
    hw_reports = [dom(name) for name, kind in layout["domains"] if kind == "hw"]
    link_rows = []
    for src, dst in layout["links"]:
        mi = member_of.get(src)
        row = reports[mi]["links"].get(f"{src}->{dst}") if mi is not None else None
        link_rows.append(row if row is not None else (0, 0, 0.0))
    return CosimResult(
        design_name=design_name,
        fpga_cycles=reports[0]["now"],
        completed=reports[0]["completed"],
        sw_busy_fpga_cycles=sum(r["busy_fpga_cycles"] for r in sw_reports),
        sw_cpu_cycles=sum(r["cpu_cycles"] for r in sw_reports),
        sw_cpu_cycles_wasted=sum(r["cpu_cycles_wasted"] for r in sw_reports),
        sw_cpu_cycles_driver=sum(r["cpu_cycles_driver"] for r in sw_reports),
        sw_firings=sum(r["firings"] for r in sw_reports),
        sw_guard_failures=sum(r["guard_failures"] for r in sw_reports),
        hw_firings=sum(r["firings"] for r in hw_reports),
        hw_active_cycles=sum(r["active_cycles"] for r in hw_reports),
        channel_messages=sum(row[0] for row in link_rows),
        channel_words=sum(row[1] for row in link_rows),
        channel_busy_cycles=sum(row[2] for row in link_rows),
        fire_counts=fire_counts,
        vc_stats=vc_stats,
        domain_stats=domain_stats,
    )


def _serial_fallback(
    workload: Any,
    builder,
    args,
    kwargs,
    backend,
    transport,
    engine_kinds,
    fabric_kind,
    done_attr,
    placement,
    carrier,
    max_cycles,
    max_iterations,
    t0,
) -> "DistributedReport":
    """No usable ``fork``: run the identical grouped semantics in-process."""
    if workload is None:
        workload = builder(*args, **kwargs)
    fabric = _build_fabric(workload, fabric_kind, backend, transport, engine_kinds)
    result = fabric.run(
        getattr(workload, done_attr),
        max_cycles=max_cycles,
        max_iterations=max_iterations,
        scheduler="grouped",
    )
    return DistributedReport(
        result=result,
        outcomes=[],
        wall_seconds=time.perf_counter() - t0,
        processes=1,
        placement=placement,
        carrier=carrier,
        data_plane={"records": 0, "words": 0, "full_retries": 0},
        fallback=True,
    )


def run_distributed(
    builder: Callable[..., Any],
    args: Tuple[Any, ...] = (),
    kwargs: Optional[Dict[str, Any]] = None,
    *,
    name: Optional[str] = None,
    backend: str = "compiled",
    transport: Optional[str] = None,
    engine_kinds: Optional[Dict[str, str]] = None,
    fabric_kind: str = "fabric",
    done_attr: str = "cosim_done",
    placement: str = "group",
    carrier: str = "shm",
    processes: Optional[int] = None,
    max_cycles: float = 500_000_000.0,
    max_iterations: int = 5_000_000,
    ring_words: Optional[int] = None,
    barrier_timeout: float = 300.0,
    parent: Optional[CosimFabric] = None,
    done: Optional[Callable[[CosimFabric], bool]] = None,
) -> DistributedReport:
    """Run ``builder(*args, **kwargs)``'s design distributed across processes.

    ``builder`` must be a module-level callable returning a workload whose
    done predicate is attribute ``done_attr`` (the compile-once /
    run-anywhere contract of :mod:`repro.sim.shard`): worker processes
    re-elaborate the design from the spec, so nothing elaborated ever
    crosses a process boundary -- only framed wire words (the data plane)
    and plain-data member reports (the result plane).

    ``placement="group"`` runs each independent group in its own worker
    (capped by ``processes``, packed round-robin); ``placement="domain"``
    additionally splits multi-domain groups into one member process per
    domain, joined by the lockstep protocol with every member-crossing cut
    link carried as framed words over ``carrier`` (``"shm"`` rings or
    ``"socket"`` streams).  ``ring_words`` forces the per-link ring
    capacity (tests use a tiny ring to exercise backpressure).

    ``parent``/``done`` let an already-elaborated fabric
    (``CosimFabric.run(scheduler="distributed")``) reuse itself for
    planning and final evaluation.  The returned report's ``result`` is
    bitwise identical to that fabric's ``scheduler="grouped"`` result on a
    fresh elaboration.  Platforms without the ``fork`` start method fall
    back to the in-process grouped scheduler (``fallback=True``).
    """
    if placement not in ("group", "domain"):
        raise ValueError(f"unknown placement {placement!r} (expected 'group'/'domain')")
    if carrier not in ("shm", "socket"):
        raise ValueError(f"unknown carrier {carrier!r} (expected 'shm'/'socket')")
    kwargs = dict(kwargs or {})
    t0 = time.perf_counter()
    workload = None
    if done is None or parent is None:
        workload = builder(*args, **kwargs)
        if done is None:
            done = getattr(workload, done_attr)
        if parent is None:
            # The parent never executes a rule: interp elaboration skips the
            # closure compilation each worker pays for its own run.
            parent = _build_fabric(workload, fabric_kind, "interp", "interp", engine_kinds)
    base_name = name or parent.design.name
    n_groups = parent.group_count

    already, observed = parent.probe_done(done)
    if already:
        merged = CosimResult.merge(
            [parent._groups[i].result(True) for i in range(n_groups)]
        )
        merged.completed = True
        return DistributedReport(
            result=merged,
            outcomes=[],
            wall_seconds=time.perf_counter() - t0,
            processes=0,
            placement=placement,
            carrier=carrier,
            data_plane={"records": 0, "words": 0, "full_retries": 0},
        )

    if "fork" not in multiprocessing.get_all_start_methods():
        return _serial_fallback(
            workload, builder, args, kwargs, backend, transport, engine_kinds,
            fabric_kind, done_attr, placement, carrier, max_cycles,
            max_iterations, t0,
        )
    ctx = multiprocessing.get_context("fork")

    # -- placement: groups -> members ---------------------------------------
    layouts = [parent.group_layout(i) for i in range(n_groups)]
    member_domains: List[List[Tuple[str, ...]]] = []
    for layout in layouts:
        names = [nm for nm, _kind in layout["domains"]]
        if placement == "group" or len(names) == 1:
            member_domains.append([tuple(names)])
        else:
            member_domains.append([(nm,) for nm in names])

    specs: List[_MemberSpec] = []
    solo_specs: List[_MemberSpec] = []
    lockstep_specs: List[_MemberSpec] = []
    for g, members in enumerate(member_domains):
        for m, names in enumerate(members):
            if len(members) == 1:
                spec = _MemberSpec(
                    len(specs), g, m, "solo", names, f"{base_name}[g{g}]"
                )
                solo_specs.append(spec)
            else:
                spec = _MemberSpec(
                    len(specs),
                    g,
                    m,
                    "lockstep",
                    names,
                    f"{base_name}[g{g}:{'+'.join(names)}]",
                )
                lockstep_specs.append(spec)
            specs.append(spec)

    plans, total_slots, socket_count = _plan_groups(
        parent, layouts, member_domains, carrier, ring_words
    )
    arena = _ShmArena(total_slots) if plans else None
    socks = [socket.socketpair() for _ in range(socket_count)]

    shared = dict(
        builder=builder,
        args=tuple(args),
        kwargs=kwargs,
        backend=backend,
        transport=transport,
        engine_kinds=dict(engine_kinds) if engine_kinds else None,
        fabric_kind=fabric_kind,
        done_attr=done_attr,
        plans=plans,
        arena=arena,
        sockets=socks,
        carrier=carrier,
        max_cycles=max_cycles,
        max_iterations=max_iterations,
        barrier_timeout=barrier_timeout,
    )
    assignments: List[_WorkerAssignment] = []
    if solo_specs:
        n_workers = (
            len(solo_specs)
            if processes is None
            else max(1, min(processes, len(solo_specs)))
        )
        for w in range(n_workers):
            assignments.append(
                _WorkerAssignment(members=solo_specs[w::n_workers], **shared)
            )
    for spec in lockstep_specs:
        assignments.append(_WorkerAssignment(members=[spec], **shared))

    # -- dispatch and collection --------------------------------------------
    label_of = {spec.global_index: spec.label for spec in specs}
    reports: Dict[int, dict] = {}
    procs: List[Any] = []
    open_conns: Dict[int, Any] = {}
    pending: Dict[int, set] = {}
    failure: Optional[BaseException] = None
    try:
        for w, assignment in enumerate(assignments):
            recv_end, send_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main, args=(assignment, send_end), daemon=True
            )
            proc.start()
            send_end.close()
            procs.append(proc)
            open_conns[w] = recv_end
            pending[w] = {s.global_index for s in assignment.members}

        last_heard = time.monotonic()
        while any(pending.values()) and failure is None:
            ready = (
                mp_connection.wait(list(open_conns.values()), timeout=0.2)
                if open_conns
                else ()
            )
            for conn in ready:
                w = next(k for k, c in open_conns.items() if c is conn)
                try:
                    kind, gmi, payload = conn.recv()
                except EOFError:
                    conn.close()
                    del open_conns[w]
                    continue
                last_heard = time.monotonic()
                if kind == "done":
                    reports[gmi] = payload
                    pending[w].discard(gmi)
                elif kind == "error":
                    if isinstance(payload, SimulationError):
                        # e.g. the members' budget error: identical to the
                        # serial scheduler's, re-raised verbatim.
                        failure = payload
                    else:
                        failure = SimulationError(
                            f"distributed member {label_of[gmi]} failed: "
                            f"{type(payload).__name__}: {payload}"
                        )
                    break
            if failure is not None:
                break
            if not ready:
                for w, proc in enumerate(procs):
                    if (
                        pending[w]
                        and proc.exitcode is not None
                        and (w not in open_conns or not open_conns[w].poll())
                    ):
                        labels = ", ".join(
                            label_of[idx] for idx in sorted(pending[w])
                        )
                        failure = SimulationError(
                            f"distributed worker for {labels} died with exit "
                            f"code {proc.exitcode} before reporting its results"
                        )
                        break
                if failure is None and (
                    time.monotonic() - last_heard > _POOL_STALL_SECONDS
                ):
                    stuck = ", ".join(
                        label_of[idx]
                        for w in sorted(pending)
                        for idx in sorted(pending[w])
                    )
                    failure = SimulationError(
                        f"distributed run stalled: no member report for "
                        f"{_POOL_STALL_SECONDS:.0f}s (waiting on {stuck})"
                    )
        if failure is not None:
            raise failure
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=10.0)
        for conn in open_conns.values():
            try:
                conn.close()
            except Exception:
                pass
        if arena is not None:
            arena.unlink()
        for end_a, end_b in socks:
            end_a.close()
            end_b.close()

    # -- reassembly ----------------------------------------------------------
    by_member = {
        (spec.group_index, spec.member_index): reports[spec.global_index]
        for spec in specs
    }
    group_results: List[CosimResult] = []
    finals: Dict[str, Any] = {}
    for g in range(n_groups):
        members = member_domains[g]
        if len(members) == 1:
            rep = by_member[(g, 0)]
            group_results.append(rep["result"])
            finals.update(rep["observations"])
        else:
            mreports = [by_member[(g, m)] for m in range(len(members))]
            group_results.append(
                _assemble_lockstep_result(
                    parent.design.name, layouts[g], plans[g], mreports
                )
            )
            for rep in mreports:
                finals.update(rep["observations"])
    merged = CosimResult.merge(group_results)
    from repro.sim.shard import evaluate_grouped_done

    merged.completed = evaluate_grouped_done(
        parent, done, observed, finals, caller="run_distributed"
    )

    outcomes: List[MemberOutcome] = []
    data_plane = {"records": 0, "words": 0, "full_retries": 0}
    for spec in specs:
        rep = reports[spec.global_index]
        carrier_stats = dict(rep.get("carrier") or {})
        data_plane["records"] += carrier_stats.get("records_out", 0)
        data_plane["words"] += carrier_stats.get("words_out", 0)
        data_plane["full_retries"] += carrier_stats.get("full_retries", 0)
        outcomes.append(
            MemberOutcome(
                label=spec.label,
                group_index=spec.group_index,
                member_index=spec.member_index,
                mode=spec.mode,
                domains=spec.domain_names,
                pid=rep.get("pid", 0),
                wall_seconds=rep.get("wall_seconds", 0.0),
                carrier=carrier_stats,
            )
        )
    return DistributedReport(
        result=merged,
        outcomes=outcomes,
        wall_seconds=time.perf_counter() - t0,
        processes=len(assignments),
        placement=placement,
        carrier=carrier,
        data_plane=data_plane,
    )
