"""Execution engine for a software partition.

Models the single-threaded C++ implementation the BCL compiler generates
(Sections 6.2 and 6.3): a scheduler repeatedly picks a rule, evaluates it
against the (possibly shadowed) program state, and either commits or rolls
back.  The engine executes the *compiled* form of each rule
(:class:`~repro.core.optimize.CompiledRule`), so every optimisation switch --
guard lifting, method inlining / try-catch avoidance, sequentialisation,
partial shadowing -- changes both what is executed and what it costs, which
is how the ablation benchmarks observe their effect.

Costs are accumulated in CPU cycles by :class:`~repro.sim.costmodel.SwCostAccumulator`
and converted to FPGA cycles (the paper's reporting unit) by the platform's
clock ratio.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import GuardFail
from repro.core.module import Register, Rule
from repro.core.optimize import CompiledRule, OptimizationConfig, compile_rule
from repro.core.scheduler import SwSchedule
from repro.core.semantics import Evaluator, Store, commit
from repro.platform.platform import Platform
from repro.sim.costmodel import SwCostAccumulator


class SwEngine:
    """Executes the rules of one software partition under the cost model."""

    def __init__(
        self,
        rules: List[Rule],
        store: Store,
        platform: Platform,
        config: OptimizationConfig = OptimizationConfig.all(),
        all_registers: Optional[List[Register]] = None,
        name: str = "SW",
        max_loop_iterations: int = 1_000_000,
    ):
        self.name = name
        self.rules = list(rules)
        self.store = store
        self.platform = platform
        self.config = config
        self.schedule = SwSchedule(self.rules)
        self.evaluator = Evaluator(max_loop_iterations=max_loop_iterations)
        self.compiled: Dict[Rule, CompiledRule] = {
            rule: compile_rule(rule, config, all_registers) for rule in self.rules
        }
        self.busy_until: float = 0.0
        self._pending_updates: Optional[Dict[Register, Any]] = None
        self._pending_deliveries: List[Tuple[Register, Any]] = []
        self._last_fired: Optional[Rule] = None
        # Statistics (CPU cycles unless noted otherwise).
        self.fire_counts: Dict[str, int] = {r.full_name: 0 for r in self.rules}
        self.total_firings = 0
        self.cpu_cycles_useful = 0.0
        self.cpu_cycles_wasted = 0.0
        self.cpu_cycles_driver = 0.0
        self.guard_failures = 0
        self.busy_fpga_cycles = 0.0

    # -- channel-facing API ----------------------------------------------------

    def deliver(self, reg: Register, item: Any, now: float) -> None:
        """Deliver an arriving element to an endpoint FIFO register.

        Deliveries land between rule executions (the driver runs when the
        runtime is at a transaction boundary), so while a rule is in flight
        they are parked.
        """
        if self.is_busy(now) or self._pending_updates is not None:
            self._pending_deliveries.append((reg, item))
        else:
            self.store[reg] = tuple(self.store[reg]) + (item,)

    def _flush_pending_deliveries(self) -> None:
        for reg, item in self._pending_deliveries:
            self.store[reg] = tuple(self.store[reg]) + (item,)
        self._pending_deliveries = []

    def locked_registers(self) -> set:
        """Registers whose value is pending an uncommitted in-flight rule.

        The transport layer must not mutate these until the rule commits,
        otherwise its deferred updates would overwrite the transport's change.
        """
        if self._pending_updates is None:
            return set()
        return set(self._pending_updates.keys())

    def charge_driver(self, n_words: int, now: float) -> None:
        """Charge the processor for marshaling/driving one channel message.

        Unlike the hardware side (where marshaling is dedicated logic), every
        message that the software partition sends or receives costs CPU time:
        the driver call, DMA descriptor handling and the per-word copy into or
        out of the transfer buffer.  This cost is what makes fine-grained
        offload unprofitable in the paper's partitions A and C.
        """
        params = self.platform.sw_costs
        cpu = params.driver_per_message + params.driver_per_word * n_words
        self.cpu_cycles_driver += cpu
        duration = self.platform.cpu_to_fpga_cycles(cpu)
        self.busy_until = max(self.busy_until, now) + duration
        self.busy_fpga_cycles += duration

    # -- execution ---------------------------------------------------------------

    def is_busy(self, now: float) -> bool:
        return now < self.busy_until

    def next_event_time(self, now: float) -> Optional[float]:
        if self.is_busy(now) or self._pending_updates is not None:
            return self.busy_until
        return None

    def step(self, now: float) -> bool:
        """Advance the software engine at time ``now``.  Returns True on progress."""
        if not self.rules:
            return False
        if self.is_busy(now):
            return False

        progress = False
        if self._pending_updates is not None:
            commit(self.store, self._pending_updates)
            self._pending_updates = None
            self._flush_pending_deliveries()
            progress = True

        self._flush_pending_deliveries()

        wasted_this_scan = 0.0
        for rule in self.schedule.candidates(self._last_fired):
            cpu_cost, fired, updates = self._attempt(rule)
            if fired:
                total_cpu = cpu_cost + wasted_this_scan
                self.cpu_cycles_useful += cpu_cost
                self.cpu_cycles_wasted += wasted_this_scan
                duration = self.platform.cpu_to_fpga_cycles(total_cpu)
                self.busy_until = now + duration
                self.busy_fpga_cycles += duration
                self._pending_updates = updates
                self._last_fired = rule
                self.fire_counts[rule.full_name] += 1
                self.total_firings += 1
                return True
            # Failed attempt: its cost is wasted work, charged to whatever
            # fires next in this scan (the scheduler really does spend it).
            wasted_this_scan += cpu_cost
            self.guard_failures += 1
        # Nothing can fire: the partition is blocked waiting for input.  The
        # scan cost is not charged to simulated time (the runtime blocks on
        # the channel driver rather than spinning at full speed).
        return progress

    # -- single rule attempt -------------------------------------------------------

    def _attempt(self, rule: Rule) -> Tuple[float, bool, Dict[Register, Any]]:
        """Attempt one rule; returns ``(cpu_cost, fired, updates)``."""
        params = self.platform.sw_costs
        cr = self.compiled[rule]
        acc = SwCostAccumulator(params)
        cost = float(params.rule_attempt_overhead)

        def read(reg: Register) -> Any:
            return self.store[reg]

        # 1. Top-level (lifted) guard check.
        try:
            guard_ok = bool(self.evaluator.eval_expr(cr.guard, {}, read, acc))
        except GuardFail:
            guard_ok = False
        cost += acc.cpu_cycles
        if not guard_ok:
            return cost, False, {}

        # 2. Transactional setup for bodies that may still fail.
        body_acc = SwCostAccumulator(params)
        setup = 0.0
        if cr.can_fail:
            if self.config.inline_methods:
                setup += params.branch_guard_handling
            else:
                setup += params.try_catch_setup
            setup += len(cr.shadow_registers) * params.shadow_per_register
        cost += setup

        # 3. Execute the residual body.
        try:
            updates = self.evaluator.exec_action(cr.body, {}, read, body_acc)
        except GuardFail:
            cost += body_acc.cpu_cycles
            cost += params.rollback_base
            cost += len(cr.shadow_registers) * params.rollback_per_register
            return cost, False, {}
        cost += body_acc.cpu_cycles

        # 4. Commit.
        if cr.can_fail:
            cost += len(updates) * params.commit_per_register
        return cost, True, updates

    # -- derived metrics -----------------------------------------------------------

    @property
    def cpu_cycles_total(self) -> float:
        return self.cpu_cycles_useful + self.cpu_cycles_wasted + self.cpu_cycles_driver
