"""Execution engine for a software partition.

Models the single-threaded C++ implementation the BCL compiler generates
(Sections 6.2 and 6.3): a scheduler repeatedly picks a rule, evaluates it
against the (possibly shadowed) program state, and either commits or rolls
back.  The engine executes the *compiled* form of each rule
(:class:`~repro.core.optimize.CompiledRule`), so every optimisation switch --
guard lifting, method inlining / try-catch avoidance, sequentialisation,
partial shadowing -- changes both what is executed and what it costs, which
is how the ablation benchmarks observe their effect.

Costs are accumulated in CPU cycles by :class:`~repro.sim.costmodel.SwCostAccumulator`
and converted to FPGA cycles (the paper's reporting unit) by the platform's
clock ratio.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.compile import compiled_rule_exec
from repro.core.errors import GuardFail
from repro.core.module import Register, Rule
from repro.core.optimize import CompiledRule, OptimizationConfig, compile_rule
from repro.core.pycodegen import (
    VALID_BACKENDS,
    default_rule_backend,
    generate_counting_attempts,
    generate_sw_step,
)
from repro.core.scheduler import RuleWakeup, SwSchedule
from repro.core.semantics import Evaluator, Store, commit
from repro.platform.platform import Platform
from repro.sim.costmodel import SwCostAccumulator

#: Shared empty set-like view for engines with no in-flight rule.
_EMPTY_LOCKED: frozenset = frozenset()


class SwEngine:
    """Executes the rules of one software partition under the cost model.

    ``backend`` selects how a rule attempt is evaluated: ``"interp"`` walks
    the optimised rule's guard/body ASTs through the tree-walking
    :class:`~repro.core.semantics.Evaluator`; ``"compiled"`` calls their
    closure-compiled forms (:mod:`repro.core.compile`); ``"source"``
    calls flat generated-Python attempt functions and replaces ``step``
    with a fused generated superstep (:mod:`repro.core.pycodegen`).  All
    charge identical CPU-cycle costs.  ``None`` resolves to
    :func:`~repro.core.pycodegen.default_rule_backend`.

    The compiled backend additionally uses dirty-set scheduling: a rule
    whose attempt failed is skipped (not re-evaluated) until a register in
    its read set is written.  The cost model still charges the skipped
    attempt -- the scheduler of the generated C++ really would re-run the
    guard -- using the recorded cost of the last real attempt, which is
    exact because nothing the rule reads has changed.  In that mode the
    engine wraps the store it is given to observe external writes; always
    use ``engine.store`` (the live store) after construction.
    """

    def __init__(
        self,
        rules: List[Rule],
        store: Store,
        platform: Platform,
        config: OptimizationConfig = OptimizationConfig.all(),
        all_registers: Optional[List[Register]] = None,
        name: str = "SW",
        max_loop_iterations: int = 1_000_000,
        backend: Optional[str] = None,
    ):
        if backend is None:
            backend = default_rule_backend()
        if backend not in VALID_BACKENDS:
            raise ValueError(f"unknown execution backend {backend!r}")
        self.name = name
        self.rules = list(rules)
        self.backend = backend
        self._use_dirty = backend != "interp"
        if self._use_dirty:
            self._wakeup: Optional[RuleWakeup] = RuleWakeup(self.rules)
            self.store = self._wakeup.wrap_store(store)
        else:
            self._wakeup = None
            self.store = store
        self.platform = platform
        self.config = config
        self.schedule = SwSchedule(self.rules)
        self.evaluator = Evaluator(max_loop_iterations=max_loop_iterations)
        self.compiled: Dict[Rule, CompiledRule] = {
            rule: compile_rule(rule, config, all_registers) for rule in self.rules
        }
        #: rule -> (guard_fn, body_fn) counting closures (compiled backend).
        self._count_fns = (
            {
                rule: compiled_rule_exec(cr, max_loop_iterations).counting_fns(
                    platform.sw_costs
                )
                for rule, cr in self.compiled.items()
            }
            if backend == "compiled"
            else {}
        )
        #: CPU cost of each rule's most recent failed attempt (valid while
        #: the rule sleeps -- its read set is untouched, so the cost is too).
        self._last_fail_cost: Dict[Rule, float] = {}
        self.busy_until: float = 0.0
        self._pending_updates: Optional[Dict[Register, Any]] = None
        self._pending_deliveries: List[Tuple[Register, Any]] = []
        self._last_fired: Optional[Rule] = None
        # Statistics (CPU cycles unless noted otherwise).
        self.fire_counts: Dict[str, int] = {r.full_name: 0 for r in self.rules}
        self.total_firings = 0
        self.cpu_cycles_useful = 0.0
        self.cpu_cycles_wasted = 0.0
        self.cpu_cycles_driver = 0.0
        self.guard_failures = 0
        self.busy_fpga_cycles = 0.0
        # Source backend: generated per-rule attempt functions plus a fused
        # superstep that shadows the class's ``step``.  Installed last so
        # the generated module pre-binds the fully initialised engine state.
        self._attempt_fns: List[Any] = []
        self._gen = None
        self._step_gen = None
        if backend == "source":
            self._attempt_fns, self._gen = generate_counting_attempts(
                self.rules,
                self.compiled,
                platform.sw_costs,
                config,
                name,
                max_loop_iterations,
            )
            self._step_gen = generate_sw_step(self, self._attempt_fns)
            self.step = self._step_gen.namespace["step"]

    # -- snapshot / restore ----------------------------------------------------

    def snapshot(self) -> tuple:
        """Capture every mutable field as plain data (O(state), no recompilation).

        The store is copied shallowly: stored values are immutable by the
        engines' rebind-only contract (rules and transports replace a
        register's value, never mutate it in place), so sharing them between
        the live store and a snapshot is safe.
        """
        wakeup = self._wakeup
        return (
            dict(self.store),
            bytes(wakeup.sleeping) if wakeup is not None else None,
            wakeup.n_sleeping if wakeup is not None else 0,
            self.busy_until,
            None if self._pending_updates is None else dict(self._pending_updates),
            list(self._pending_deliveries),
            self._last_fired,
            dict(self._last_fail_cost),
            dict(self.fire_counts),
            self.total_firings,
            self.cpu_cycles_useful,
            self.cpu_cycles_wasted,
            self.cpu_cycles_driver,
            self.guard_failures,
            self.busy_fpga_cycles,
        )

    def restore(self, snap: tuple) -> None:
        """Reset the engine to a snapshot, in place.

        The store object keeps its identity (transport closures pre-bind
        it); its contents are rewritten through the unbound ``dict`` methods
        so the dirty-set wake callbacks do not fire, and the wakeup state is
        restored explicitly instead.
        """
        (
            contents,
            sleeping,
            n_sleeping,
            self.busy_until,
            pending_updates,
            pending_deliveries,
            self._last_fired,
            last_fail_cost,
            fire_counts,
            self.total_firings,
            self.cpu_cycles_useful,
            self.cpu_cycles_wasted,
            self.cpu_cycles_driver,
            self.guard_failures,
            self.busy_fpga_cycles,
        ) = snap
        store = self.store
        dict.clear(store)
        dict.update(store, contents)
        wakeup = self._wakeup
        if wakeup is not None:
            wakeup.sleeping[:] = sleeping
            wakeup.n_sleeping = n_sleeping
        self._pending_updates = (
            None if pending_updates is None else dict(pending_updates)
        )
        self._pending_deliveries = list(pending_deliveries)
        self._last_fail_cost.clear()
        self._last_fail_cost.update(last_fail_cost)
        self.fire_counts.clear()
        self.fire_counts.update(fire_counts)

    # -- channel-facing API ----------------------------------------------------

    def deliver(self, reg: Register, item: Any, now: float) -> None:
        """Deliver an arriving element to an endpoint FIFO register.

        Deliveries land between rule executions (the driver runs when the
        runtime is at a transaction boundary), so while a rule is in flight
        they are parked.
        """
        if self.is_busy(now) or self._pending_updates is not None:
            self._pending_deliveries.append((reg, item))
        else:
            self.store[reg] = tuple(self.store[reg]) + (item,)

    def _flush_pending_deliveries(self) -> None:
        for reg, item in self._pending_deliveries:
            self.store[reg] = tuple(self.store[reg]) + (item,)
        self._pending_deliveries = []

    def locked_registers(self):
        """Registers whose value is pending an uncommitted in-flight rule.

        The transport layer must not mutate these until the rule commits,
        otherwise its deferred updates would overwrite the transport's change.
        Returns a set-like view (supports ``in``, ``&`` and iteration).
        """
        if self._pending_updates is None:
            return _EMPTY_LOCKED
        return self._pending_updates.keys()

    def charge_driver(self, n_words: int, now: float) -> None:
        """Charge the processor for marshaling/driving one channel message.

        Unlike the hardware side (where marshaling is dedicated logic), every
        message that the software partition sends or receives costs CPU time:
        the driver call, DMA descriptor handling and the per-word copy into or
        out of the transfer buffer.  This cost is what makes fine-grained
        offload unprofitable in the paper's partitions A and C.
        """
        params = self.platform.sw_costs
        cpu = params.driver_per_message + params.driver_per_word * n_words
        self.cpu_cycles_driver += cpu
        duration = self.platform.cpu_to_fpga_cycles(cpu)
        self.busy_until = max(self.busy_until, now) + duration
        self.busy_fpga_cycles += duration

    # -- execution ---------------------------------------------------------------

    def is_busy(self, now: float) -> bool:
        return now < self.busy_until

    def next_event_time(self, now: float) -> Optional[float]:
        if self.is_busy(now) or self._pending_updates is not None:
            return self.busy_until
        return None

    def step(self, now: float) -> bool:
        """Advance the software engine at time ``now``.  Returns True on progress."""
        if not self.rules:
            return False
        if self.is_busy(now):
            return False

        progress = False
        if self._pending_updates is not None:
            commit(self.store, self._pending_updates)
            self._pending_updates = None
            self._flush_pending_deliveries()
            progress = True

        self._flush_pending_deliveries()

        use_dirty = self._use_dirty
        sleeping = index_of = None
        if use_dirty:
            if self._wakeup.all_asleep:
                # Every rule is known guard-disabled: the scan would fail
                # across the board.  Count the failures without iterating.
                self.guard_failures += len(self.rules)
                return progress
            sleeping = self._wakeup.sleeping
            index_of = self._wakeup.index_of

        wasted_this_scan = 0.0
        for rule in self.schedule.candidates(self._last_fired):
            if use_dirty and sleeping[index_of[rule]]:
                # Guaranteed guard failure (read set untouched since the last
                # real attempt); charge the recorded cost without evaluating.
                wasted_this_scan += self._last_fail_cost[rule]
                self.guard_failures += 1
                continue
            cpu_cost, fired, updates = self._attempt(rule)
            if fired:
                total_cpu = cpu_cost + wasted_this_scan
                self.cpu_cycles_useful += cpu_cost
                self.cpu_cycles_wasted += wasted_this_scan
                duration = self.platform.cpu_to_fpga_cycles(total_cpu)
                self.busy_until = now + duration
                self.busy_fpga_cycles += duration
                self._pending_updates = updates
                self._last_fired = rule
                self.fire_counts[rule.full_name] += 1
                self.total_firings += 1
                return True
            # Failed attempt: its cost is wasted work, charged to whatever
            # fires next in this scan (the scheduler really does spend it).
            # The rule sleeps until something it reads is written.
            if use_dirty:
                self._wakeup.sleep_index(index_of[rule])
                self._last_fail_cost[rule] = cpu_cost
            wasted_this_scan += cpu_cost
            self.guard_failures += 1
        # Nothing can fire: the partition is blocked waiting for input.  The
        # scan cost is not charged to simulated time (the runtime blocks on
        # the channel driver rather than spinning at full speed).
        return progress

    # -- single rule attempt -------------------------------------------------------

    def _attempt(self, rule: Rule) -> Tuple[float, bool, Dict[Register, Any]]:
        """Attempt one rule; returns ``(cpu_cost, fired, updates)``.

        The compiled backend runs the closure-compiled guard/body with
        cost-counting cells; the interp backend walks the ASTs under a
        :class:`SwCostAccumulator`.  Both charge identical cycles.
        """
        params = self.platform.sw_costs
        cr = self.compiled[rule]
        read = self.store.__getitem__
        if self.backend == "source":
            cost, updates = self._attempt_fns[self._wakeup.index_of[rule]](read)
            if updates is None:
                return cost, False, {}
            return cost, True, updates
        cost = float(params.rule_attempt_overhead)
        count_fns = self._count_fns.get(rule)

        # 1. Top-level (lifted) guard check.
        if count_fns is not None:
            guard_fn, body_fn = count_fns
            cell = [0]
            try:
                guard_ok = bool(guard_fn((), read, cell))
            except GuardFail:
                guard_ok = False
            cost += cell[0]
        else:
            acc = SwCostAccumulator(params)
            try:
                guard_ok = bool(self.evaluator.eval_expr(cr.guard, {}, read, acc))
            except GuardFail:
                guard_ok = False
            cost += acc.cpu_cycles
        if not guard_ok:
            return cost, False, {}

        # 2. Transactional setup for bodies that may still fail.
        setup = 0.0
        if cr.can_fail:
            if self.config.inline_methods:
                setup += params.branch_guard_handling
            else:
                setup += params.try_catch_setup
            setup += len(cr.shadow_registers) * params.shadow_per_register
        cost += setup

        # 3. Execute the residual body.
        if count_fns is not None:
            body_cell = [0]
            try:
                updates = body_fn((), read, body_cell)
            except GuardFail:
                cost += body_cell[0]
                cost += params.rollback_base
                cost += len(cr.shadow_registers) * params.rollback_per_register
                return cost, False, {}
            cost += body_cell[0]
        else:
            body_acc = SwCostAccumulator(params)
            try:
                updates = self.evaluator.exec_action(cr.body, {}, read, body_acc)
            except GuardFail:
                cost += body_acc.cpu_cycles
                cost += params.rollback_base
                cost += len(cr.shadow_registers) * params.rollback_per_register
                return cost, False, {}
            cost += body_acc.cpu_cycles

        # 4. Commit.
        if cr.can_fail:
            cost += len(updates) * params.commit_per_register
        return cost, True, updates

    # -- derived metrics -----------------------------------------------------------

    @property
    def cpu_cycles_total(self) -> float:
        return self.cpu_cycles_useful + self.cpu_cycles_wasted + self.cpu_cycles_driver
