"""Execution engines: hardware cycle simulation, software cost model, co-simulation."""
