"""Co-simulation of a partitioned design over a physical channel.

This is the executable counterpart of the full compiler flow in Figure 6:
the design is split by domain, the software partition runs on the
cost-modelled sequential engine (:class:`~repro.sim.swsim.SwEngine`), the
hardware partition runs on the cycle-level engine
(:class:`~repro.sim.hwsim.HwEngine`), and every cross-domain synchronizer is
mapped onto a virtual channel of the duplex physical channel with
credit-based flow control and marshaling-derived transfer sizes.

Time is measured in FPGA cycles.  The main loop advances one cycle at a time
while anything is happening and skips directly to the next scheduled event
(a channel delivery, the end of a software rule, a multi-cycle hardware
kernel completing) whenever the system is otherwise idle, so designs that
spend most of their time waiting on the bus (e.g. the ray tracer's partition
B) simulate in time proportional to their event count, not their cycle
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.domains import HW, SW, Domain
from repro.core.errors import SimulationError
from repro.core.module import Design, Register
from repro.core.optimize import OptimizationConfig
from repro.core.partition import Partitioning, partition_design
from repro.core.primitives import Fifo
from repro.core.semantics import Store
from repro.core.synchronizers import SyncFifo
from repro.platform.channel import DuplexChannel
from repro.platform.libdn import VirtualChannelTable
from repro.platform.platform import Platform
from repro.sim.hwsim import HwEngine
from repro.sim.swsim import SwEngine


@dataclass
class CosimResult:
    """Outcome of one co-simulation run (all times in FPGA cycles)."""

    design_name: str
    fpga_cycles: float
    completed: bool
    sw_busy_fpga_cycles: float
    sw_cpu_cycles: float
    sw_cpu_cycles_wasted: float
    sw_cpu_cycles_driver: float
    sw_firings: int
    sw_guard_failures: int
    hw_firings: int
    hw_active_cycles: int
    channel_messages: int
    channel_words: int
    channel_busy_cycles: float
    fire_counts: Dict[str, int] = field(default_factory=dict)
    vc_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def __repr__(self) -> str:
        status = "ok" if self.completed else "INCOMPLETE"
        return (
            f"CosimResult({self.design_name}: {self.fpga_cycles:.0f} FPGA cycles [{status}], "
            f"sw_busy={self.sw_busy_fpga_cycles:.0f}, hw_active={self.hw_active_cycles}, "
            f"channel_msgs={self.channel_messages})"
        )


class Cosimulator:
    """Builds and runs the HW/SW co-simulation of one partitioned design."""

    def __init__(
        self,
        design: Design,
        platform: Optional[Platform] = None,
        config: Optional[OptimizationConfig] = None,
        hw_domain: Domain = HW,
        sw_domain: Domain = SW,
        default_domain: Optional[Domain] = None,
        burst: bool = True,
        max_loop_iterations: int = 1_000_000,
        backend: str = "interp",
    ):
        self.design = design
        self.platform = platform or Platform.ml507()
        self.config = config or OptimizationConfig.all()
        self.hw_domain = hw_domain
        self.sw_domain = sw_domain
        self.burst = burst
        self.backend = backend

        self.partitioning: Partitioning = partition_design(
            design, default_domain if default_domain is not None else sw_domain
        )

        hw_rules = (
            self.partitioning.programs[hw_domain].rules
            if hw_domain in self.partitioning.programs
            else []
        )
        sw_rules = (
            self.partitioning.programs[sw_domain].rules
            if sw_domain in self.partitioning.programs
            else []
        )

        self.hw = HwEngine(hw_rules, design.initial_store(), backend=backend)
        self.sw = SwEngine(
            sw_rules,
            design.initial_store(),
            self.platform,
            self.config,
            design.all_registers(),
            max_loop_iterations=max_loop_iterations,
            backend=backend,
        )
        # The engines wrap their stores for dirty-set write tracking; use the
        # wrapped stores so transport-layer writes wake the rules they affect.
        self.store_hw: Store = self.hw.store
        self.store_sw: Store = self.sw.store
        #: register -> owning store, resolved lazily (domain resolution per
        #: read sat on the termination predicate's per-cycle path).
        self._owning_store: Dict[Register, Store] = {}

        self.channel = DuplexChannel(self.platform.channel, burst=burst)
        self.vcs = VirtualChannelTable(
            self.partitioning.cut, word_bits=self.platform.channel.word_bits
        )
        # Precomputed per-synchronizer transport routing (the engines, stores
        # and channel direction for a sync never change during a run; resolving
        # them per pump call dominated the main loop's idle cost).
        self._routes = []
        for sync in self.partitioning.cut:
            vc = self.vcs.channel_for(sync)
            producer_engine, producer_store = self._engine_for(sync.domain_enq)
            _, consumer_store = self._engine_for(sync.domain_deq)
            towards_hw = sync.domain_deq == self.hw_domain
            self._routes.append(
                (
                    sync,
                    vc,
                    producer_engine,
                    producer_store,
                    consumer_store,
                    self.channel.direction(towards_hw),
                )
            )
        self.now: float = 0.0

    # -- store access helpers ----------------------------------------------------

    def _engine_for(self, domain: Domain) -> Tuple[Any, Store]:
        if domain == self.hw_domain:
            return self.hw, self.store_hw
        return self.sw, self.store_sw

    def read_sw(self, reg: Register) -> Any:
        """Read a register as seen by the software partition."""
        return self.store_sw[reg]

    def read_hw(self, reg: Register) -> Any:
        """Read a register as seen by the hardware partition."""
        return self.store_hw[reg]

    def read(self, reg: Register) -> Any:
        """Read a register from whichever partition owns it."""
        store = self._owning_store.get(reg)
        if store is None:
            owner_domain = _owning_domain(reg, self.hw_domain, self.sw_domain)
            store = self.store_hw if owner_domain == self.hw_domain else self.store_sw
            self._owning_store[reg] = store
        return store[reg]

    def fifo_contents(self, fifo: Fifo) -> Tuple[Any, ...]:
        """Contents of a FIFO in the partition that owns it."""
        return tuple(self.read(fifo.data))

    # -- transport ----------------------------------------------------------------

    def _pump_transport(self, now: float) -> bool:
        """Launch transfers from producer-side endpoints whenever credits allow."""
        progress = False
        for sync, vc, producer_engine, producer_store, consumer_store, direction in self._routes:
            if not producer_store[sync.data]:
                continue
            if sync.data in producer_engine.locked_registers():
                # An in-flight rule will commit a deferred update to this
                # endpoint; draining it now would be clobbered by that commit.
                continue
            while producer_store[sync.data]:
                consumer_occupancy = len(consumer_store[sync.data])
                if consumer_occupancy + vc.in_flight >= sync.depth:
                    vc.note_credit_stall()
                    break
                vc.credits = sync.depth - consumer_occupancy - vc.in_flight
                item = producer_store[sync.data][0]
                producer_store[sync.data] = tuple(producer_store[sync.data][1:])
                direction.send(vc.vc_id, item, vc.words_per_element, now)
                vc.on_send()
                if producer_engine is self.sw:
                    # The processor spends time marshaling and driving the DMA.
                    self.sw.charge_driver(vc.words_per_element, now)
                progress = True
        return progress

    def _deliver_due(self, now: float) -> bool:
        progress = False
        for towards_hw in (True, False):
            direction = self.channel.direction(towards_hw)
            if not direction.in_flight:
                continue
            target = self.hw if towards_hw else self.sw
            for message in direction.deliveries_due(now):
                vc = self.vcs.by_id(message.vc_id)
                target.deliver(vc.sync.data, message.payload, now)
                vc.on_deliver()
                if target is self.sw:
                    # Demarshaling / copy out of the DMA buffer costs CPU time.
                    self.sw.charge_driver(vc.words_per_element, now)
                progress = True
        return progress

    # -- main loop ------------------------------------------------------------------

    def run(
        self,
        done: Callable[["Cosimulator"], bool],
        max_cycles: float = 100_000_000.0,
        max_iterations: int = 5_000_000,
    ) -> CosimResult:
        """Run until ``done(self)`` or until no further progress is possible."""
        completed = False
        iterations = 0
        while self.now <= max_cycles and iterations < max_iterations:
            iterations += 1
            if done(self):
                completed = True
                break

            progress = False
            progress |= self._deliver_due(self.now)
            progress |= self.hw.step_cycle(self.now)
            progress |= self.sw.step(self.now)
            progress |= self._pump_transport(self.now)

            if progress:
                self.now += 1.0
                continue

            next_times = [
                t
                for t in (
                    self.channel.next_delivery_time(),
                    self.hw.next_completion_time(),
                    self.sw.next_event_time(self.now),
                )
                if t is not None
            ]
            if not next_times:
                # Quiescent: either finished (checked at loop top) or deadlocked.
                completed = done(self)
                break
            self.now = max(self.now + 1.0, min(next_times))
        else:
            raise SimulationError(
                f"co-simulation of {self.design.name} exceeded its cycle/iteration budget "
                f"(now={self.now}, iterations={iterations})"
            )

        if not completed:
            completed = done(self)
        return self._result(completed)

    # -- result assembly ---------------------------------------------------------------

    def _result(self, completed: bool) -> CosimResult:
        fire_counts: Dict[str, int] = {}
        fire_counts.update(self.hw.fire_counts)
        fire_counts.update(self.sw.fire_counts)
        vc_stats = {
            vc.sync.name: {
                "messages": vc.stats.messages_sent,
                "words": vc.stats.words_sent,
                "credit_stalls": vc.stats.stalled_on_credit,
            }
            for vc in self.vcs
        }
        return CosimResult(
            design_name=self.design.name,
            fpga_cycles=self.now,
            completed=completed,
            sw_busy_fpga_cycles=self.sw.busy_fpga_cycles,
            sw_cpu_cycles=self.sw.cpu_cycles_total,
            sw_cpu_cycles_wasted=self.sw.cpu_cycles_wasted,
            sw_cpu_cycles_driver=self.sw.cpu_cycles_driver,
            sw_firings=self.sw.total_firings,
            sw_guard_failures=self.sw.guard_failures,
            hw_firings=self.hw.total_firings,
            hw_active_cycles=self.hw.cycles_active,
            channel_messages=self.channel.total_messages,
            channel_words=self.channel.total_words,
            channel_busy_cycles=self.channel.to_hw.stats.busy_cycles
            + self.channel.to_sw.stats.busy_cycles,
            fire_counts=fire_counts,
            vc_stats=vc_stats,
        )


def _owning_domain(reg: Register, hw_domain: Domain, sw_domain: Domain) -> Domain:
    """Which partition's store holds the authoritative value of ``reg``.

    For synchronizer endpoints the consumer side is authoritative for reads
    performed by tests (its contents are what the consumer still has to
    process); for ordinary registers the owning module's domain decides.
    """
    from repro.core.domains import effective_module_domain

    owner = reg.parent
    if isinstance(owner, SyncFifo):
        return owner.domain_deq if not owner.domain_deq.is_variable else sw_domain
    domain = effective_module_domain(owner)
    if domain == hw_domain:
        return hw_domain
    return sw_domain
