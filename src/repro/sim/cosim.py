"""Co-simulation of a partitioned design over a routed channel topology.

This is the executable counterpart of the full compiler flow in Figure 6,
generalised from the paper's fixed HW/SW split to an arbitrary set of
*domain partitions*: the design is split by domain
(:mod:`repro.core.partition`), each partition runs on its own engine (the
cycle-level :class:`~repro.sim.hwsim.HwEngine` or the cost-modelled
sequential :class:`~repro.sim.swsim.SwEngine`), and every cross-domain
synchronizer is mapped onto a virtual channel of the point-to-point link
its (producer domain, consumer domain) route uses in the
:class:`~repro.platform.channel.Topology`.  Synchronizer placement -- not a
fixed two-way split -- defines the partitioning, which is the paper's whole
point; :class:`CosimFabric` is the N-domain event loop and
:class:`Cosimulator` the two-partition view the original API exposed,
kept bitwise-compatible (same `CosimResult`, same cycle accounting).

Time is measured in FPGA cycles.  The event loop advances one cycle at a
time while anything is happening and skips directly to the next scheduled
event (a link delivery, the end of a software rule, a multi-cycle hardware
kernel completing) whenever the system is otherwise idle, so designs that
spend most of their time waiting on the bus (e.g. the ray tracer's
partition B) simulate in time proportional to their event count, not their
cycle count.

A fabric is a composition of **group sub-fabrics**: domain partitions that
share no synchronizer (transitively) are fully independent by the paper's
semantics, so each connected component of the cut graph
(:meth:`~repro.core.partition.Partitioning.independent_groups`) gets its
own :class:`_GroupFabric` -- its own clock, delivery routes and transport
closures.  The default scheduler runs the groups serially, each with its
own idle-skip (a group stalled on the bus never drags the others through
empty cycles); :mod:`repro.sim.shard` fans the same group sub-fabrics out
across worker processes.  Per-group results combine under the documented
deterministic rules of :meth:`CosimResult.merge`, and on single-group
designs (every two-partition workload) the group loop *is* the historical
loop, bitwise identical to the pre-decomposition fabric.

Transport mirrors rule execution's backend ladder: ``transport="interp"``
is the per-synchronizer reference bookkeeping; ``transport="compiled"``
lowers each route to a closure at elaboration
(:func:`~repro.core.compile.compile_transport_pump` /
:func:`~repro.core.compile.compile_transport_delivery`: pre-resolved
endpoint stores, pre-computed credit arithmetic, prebuilt delivery
callbacks, batch FIFO draining); ``transport="source"`` generates flat
Python per route with the layout constants inlined as literals
(:func:`~repro.core.pycodegen.generate_transport_pump` /
:func:`~repro.core.pycodegen.generate_transport_delivery`), observationally
identical to both.  By default the transport backend follows the
rule-execution backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.compile import compile_transport_delivery, compile_transport_pump
from repro.core.domains import HW, SW, Domain, effective_module_domain
from repro.core.pycodegen import (
    VALID_BACKENDS,
    default_rule_backend,
    generate_transport_delivery,
    generate_transport_pump,
)
from repro.core.errors import SimulationError
from repro.core.module import Design, Register
from repro.core.optimize import OptimizationConfig
from repro.core.partition import Partitioning, default_engine_kind, partition_design
from repro.core.primitives import Fifo
from repro.core.semantics import Store
from repro.core.synchronizers import SyncFifo
from repro.platform.channel import DuplexChannel, Topology
from repro.platform.libdn import VirtualChannelTable
from repro.platform.marshal import demarshal_message, marshal_message
from repro.platform.platform import Platform
from repro.sim.hwsim import HwEngine
from repro.sim.swsim import SwEngine

#: Engine kinds a domain can be mapped onto.
ENGINE_KINDS = ("hw", "sw")


def default_engine_kinds(domains) -> Dict[str, str]:
    """The default domain-name -> engine-kind mapping.

    Delegates per domain to
    :func:`repro.core.partition.default_engine_kind` -- the single source of
    the "names starting with ``HW`` are hardware" convention shared with the
    interface generator and the sweep examples.  The multi-domain workloads
    (e.g. ``HW_IMDCT``/``HW_WIN``) follow it; anything else should pass
    ``engine_kinds`` explicitly.
    """
    return {d.name: default_engine_kind(d) for d in domains}


@dataclass
class CosimResult:
    """Outcome of one co-simulation run (all times in FPGA cycles).

    The ``sw_*``/``hw_*`` fields aggregate over every software/hardware
    engine in the fabric (in the two-partition case there is exactly one of
    each, so they read as before); ``domain_stats`` holds the per-domain
    breakdown.
    """

    design_name: str
    fpga_cycles: float
    completed: bool
    sw_busy_fpga_cycles: float
    sw_cpu_cycles: float
    sw_cpu_cycles_wasted: float
    sw_cpu_cycles_driver: float
    sw_firings: int
    sw_guard_failures: int
    hw_firings: int
    hw_active_cycles: int
    channel_messages: int
    channel_words: int
    channel_busy_cycles: float
    fire_counts: Dict[str, int] = field(default_factory=dict)
    vc_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    domain_stats: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def __repr__(self) -> str:
        status = "ok" if self.completed else "INCOMPLETE"
        return (
            f"CosimResult({self.design_name}: {self.fpga_cycles:.0f} FPGA cycles [{status}], "
            f"sw_busy={self.sw_busy_fpga_cycles:.0f}, hw_active={self.hw_active_cycles}, "
            f"channel_msgs={self.channel_messages})"
        )

    #: Scalar fields merged as ordered sums (floats accumulate strictly in
    #: argument order so merged totals are reproducible bit for bit).
    _SUM_FIELDS = (
        "sw_busy_fpga_cycles",
        "sw_cpu_cycles",
        "sw_cpu_cycles_wasted",
        "sw_cpu_cycles_driver",
        "sw_firings",
        "sw_guard_failures",
        "hw_firings",
        "hw_active_cycles",
        "channel_messages",
        "channel_words",
        "channel_busy_cycles",
    )

    @classmethod
    def merge(cls, results, strict: bool = True) -> "CosimResult":
        """Merge per-group (or per-shard) results into one ``CosimResult``.

        The merge rules are deterministic and documented here once, for both
        callers (a fabric merging its group sub-fabrics' results, and
        :func:`repro.sim.shard.merge_results` rolling up a sweep):

        * ``fpga_cycles`` -- the **max** over the parts: independently
          clocked groups overlap in simulated time, so the design finishes
          when its slowest group does.
        * counters and cost totals (:data:`_SUM_FIELDS`) -- **ordered
          sums**, accumulated strictly in the order ``results`` are given
          (group index order for a fabric), so floating-point totals are
          bit-reproducible.
        * ``fire_counts`` / ``vc_stats`` / ``domain_stats`` -- **disjoint
          union** in argument order.  With ``strict=True`` (the group-merge
          contract: each rule, channel and domain belongs to exactly one
          group) a key collision raises :class:`SimulationError`.  With
          ``strict=False`` (sweep roll-ups, where different placements of
          one design legitimately share rule names) colliding integer
          leaves are summed instead.
        * ``completed`` -- ``all()`` over the parts; ``design_name`` -- the
          common name (strict), else the ``+``-join of the distinct names.
        """
        results = list(results)
        if not results:
            raise ValueError("CosimResult.merge needs at least one result")
        names = []
        for r in results:
            if r.design_name not in names:
                names.append(r.design_name)
        if strict and len(names) > 1:
            raise SimulationError(
                f"refusing to merge results of different designs: {names} "
                "(pass strict=False for sweep roll-ups)"
            )
        sums = {f: sum(getattr(r, f) for r in results) for f in cls._SUM_FIELDS}

        def union(field: str):
            merged: Dict[str, Any] = {}
            for r in results:
                for key, value in getattr(r, field).items():
                    if key in merged:
                        if strict:
                            raise SimulationError(
                                f"merge collision on {field}[{key!r}]: groups of one "
                                "design must be disjoint"
                            )
                        if isinstance(value, dict):
                            combined = dict(merged[key])
                            for k, v in value.items():
                                if isinstance(v, (int, float)) and not isinstance(v, bool):
                                    combined[k] = combined.get(k, 0) + v
                                else:
                                    combined[k] = v  # non-numeric leaf (e.g. "kind")
                            merged[key] = combined
                        else:
                            merged[key] = merged[key] + value
                    else:
                        merged[key] = dict(value) if isinstance(value, dict) else value
            return merged

        return cls(
            design_name=names[0] if len(names) == 1 else "+".join(names),
            fpga_cycles=max(r.fpga_cycles for r in results),
            completed=all(r.completed for r in results),
            fire_counts=union("fire_counts"),
            vc_stats=union("vc_stats"),
            domain_stats=union("domain_stats"),
            **sums,
        )


def _pump_routes_interp(routes, now: float) -> bool:
    """Reference (interpreted) transport pump over a route list.

    Per-synchronizer bookkeeping, marshaling and draining one element at a
    time through the plain marshal functions (the semantic oracle the
    compiled closures' layout-compiled encoders are tested against).
    Shared by the whole-fabric lockstep path and the per-group sub-fabrics,
    which pass their projected route subsets.
    """
    progress = False
    for sync, vc, producer_engine, producer_store, consumer_store, direction, sw_producer in routes:
        if not producer_store[sync.data]:
            continue
        if sync.data in producer_engine.locked_registers():
            # An in-flight rule will commit a deferred update to this
            # endpoint; draining it now would be clobbered by that commit.
            continue
        while producer_store[sync.data]:
            consumer_occupancy = len(consumer_store[sync.data])
            if consumer_occupancy + vc.in_flight >= sync.depth:
                vc.note_credit_stall()
                break
            vc.credits = sync.depth - consumer_occupancy - vc.in_flight
            item = producer_store[sync.data][0]
            producer_store[sync.data] = tuple(producer_store[sync.data][1:])
            words = marshal_message(vc.vc_id, sync.ty, item, vc.word_bits)
            direction.send_words(vc.vc_id, words, now)
            vc.on_send()
            if sw_producer:
                # The processor spends time marshaling and driving the DMA.
                producer_engine.charge_driver(vc.words_per_element, now)
            progress = True
    return progress


def _deliver_routes_interp(delivery_routes, by_id, now: float) -> bool:
    """Reference (interpreted) delivery sweep over a delivery-route list."""
    progress = False
    for direction, target, sw_target in delivery_routes:
        pool = direction.pool
        if not pool.pending:
            continue
        while True:
            slot = pool.pop_due(now)
            if slot is None:
                break
            slot_vc_id, words, _due = slot
            vc = by_id(slot_vc_id)
            # Unframe and decode the wire words through the plain marshal
            # functions, validating the header as a real demarshaler would.
            header_vc_id, value = demarshal_message(vc.sync.ty, words, vc.word_bits)
            if header_vc_id != slot_vc_id:
                raise SimulationError(
                    f"link {direction.name}: message header names vc "
                    f"{header_vc_id} but the transport launched it on vc {slot_vc_id}"
                )
            target.deliver(vc.sync.data, value, now)
            vc.on_deliver()
            if sw_target:
                # Demarshaling / copy out of the DMA buffer costs CPU time.
                target.charge_driver(vc.words_per_element, now)
            progress = True
    return progress


class _GroupFabric:
    """One independently clocked group of a fabric: engines, links, a clock.

    A group sub-fabric owns the projection of its parent fabric onto one
    independent domain group: the group's engines (hardware first, then
    software, in the fabric's global order), the transport routes whose
    synchronizers are internal to the group, the delivery sweeps and link
    directions whose traffic terminates in it, and the group's virtual
    channels -- plus its **own simulated clock** (:attr:`now`).  Groups
    share no state by construction (no synchronizer crosses a group
    boundary), so each advances with its own event-skipping loop: a group
    stalled on a bus response no longer drags the other groups through its
    empty cycles, and a group may equally run in a different process.

    :meth:`run` is the fabric's historical event loop verbatim, restricted
    to the group's subsets -- on a single-group design it is *the* loop,
    bitwise identical to the pre-decomposition fabric.
    """

    def __init__(self, fabric: "CosimFabric", index: int):
        self.fabric = fabric
        self.index = index
        gidx = fabric._group_index
        self.domains: List[Domain] = [
            d for d in fabric.domains if gidx[d.name] == index
        ]
        names = {d.name for d in self.domains}
        self.hw_engines: List[HwEngine] = [
            fabric.engines[d]
            for d in self.domains
            if fabric.engine_kinds[d.name] == "hw"
        ]
        self.sw_engines: List[SwEngine] = [
            fabric.engines[d]
            for d in self.domains
            if fabric.engine_kinds[d.name] == "sw"
        ]
        # Producer-side routes in cut order (both endpoints of a route lie
        # in one group by construction), plus their compiled pump closures.
        picks = [
            j
            for j, route in enumerate(fabric._routes)
            if route[0].domain_enq.name in names
        ]
        self.routes = [fabric._routes[j] for j in picks]
        self.pump_fns = (
            [fabric._pump_fns[j] for j in picks]
            if fabric._pump_fns is not None
            else None
        )
        dpicks = [
            j for j, dst in enumerate(fabric._delivery_dsts) if dst in names
        ]
        self.delivery_routes = [fabric._delivery_routes[j] for j in dpicks]
        self.deliver_fns = (
            [fabric._deliver_fns[j] for j in dpicks]
            if fabric._deliver_fns is not None
            else None
        )
        # Every topology link is attributed to exactly one group (its
        # destination's, else its source's, else group 0) so per-group
        # channel statistics sum to the fabric totals, in registration order.
        self.directions = []
        for link in fabric.topology.links:
            owner = gidx.get(link.dst, gidx.get(link.src, 0))
            if owner == index:
                self.directions.append(fabric.topology.direction(link.src, link.dst))
        self._pools = [d.pool for d in self.directions]
        self.vcs = [vc for vc in fabric.vcs if vc.sync.domain_enq.name in names]
        self.now: float = 0.0

    def _label(self) -> str:
        if len(self.fabric._groups) == 1:
            return ""
        return f" (group {self.index}: {'+'.join(d.name for d in self.domains)})"

    # -- transport (group projection) ---------------------------------------

    def _pump_transport(self, now: float) -> bool:
        pumps = self.pump_fns
        if pumps is not None:
            progress = False
            for pump in pumps:
                progress |= pump(now)
            return progress
        return _pump_routes_interp(self.routes, now)

    def _deliver_due(self, now: float) -> bool:
        delivers = self.deliver_fns
        if delivers is not None:
            progress = False
            for deliver_due in delivers:
                progress |= deliver_due(now)
            return progress
        return _deliver_routes_interp(
            self.delivery_routes, self.fabric.vcs.by_id, now
        )

    def _next_delivery_time(self) -> Optional[float]:
        best: Optional[float] = None
        for pool in self._pools:
            head = pool.head
            due = pool.due
            if head < len(due) and (best is None or due[head] < best):
                best = due[head]
        return best

    # -- the event loop ------------------------------------------------------

    def run(
        self,
        done: Optional[Callable[["CosimFabric"], bool]],
        max_cycles: float,
        max_iterations: int,
    ) -> CosimResult:
        """Advance this group until ``done`` (or quiescence) under its own clock.

        ``done=None`` means the group owns nothing the fabric's termination
        predicate observes: it runs to quiescence, which *is* its
        completion.  Otherwise the loop is the historical fabric loop:
        check the predicate, deliver due messages, step hardware engines,
        step software engines, pump the transport, and skip straight to the
        next scheduled event when a cycle made no progress.
        """
        fabric = self.fabric
        completed = False
        iterations = 0
        hw_engines = self.hw_engines
        sw_engines = self.sw_engines
        while self.now <= max_cycles and iterations < max_iterations:
            iterations += 1
            if done is not None and done(fabric):
                completed = True
                break

            progress = False
            progress |= self._deliver_due(self.now)
            for engine in hw_engines:
                progress |= engine.step_cycle(self.now)
            for engine in sw_engines:
                progress |= engine.step(self.now)
            progress |= self._pump_transport(self.now)

            if progress:
                self.now += 1.0
                continue

            next_times = [
                t
                for t in (
                    self._next_delivery_time(),
                    *(engine.next_completion_time() for engine in hw_engines),
                    *(engine.next_event_time(self.now) for engine in sw_engines),
                )
                if t is not None
            ]
            if not next_times:
                # Quiescent: either finished (checked at loop top) or deadlocked.
                completed = True if done is None else done(fabric)
                break
            self.now = max(self.now + 1.0, min(next_times))
        else:
            hint = ""
            if done is not None and len(fabric._groups) > 1:
                hint = (
                    "; a group that never quiesces and terminates only through a "
                    "cross-group done predicate needs scheduler='lockstep'"
                )
            raise SimulationError(
                f"co-simulation of {fabric.design.name}{self._label()} exceeded "
                f"its cycle/iteration budget (now={self.now}, iterations={iterations})"
                f"{hint}"
            )

        if not completed and done is not None:
            completed = done(fabric)
        return self.result(completed)

    # -- result assembly -----------------------------------------------------

    def result(self, completed: bool) -> CosimResult:
        """This group's ``CosimResult`` (the fabric result on single-group designs).

        Assembly order mirrors the historical whole-fabric assembly exactly
        -- fire counts from hardware engines then software engines, virtual
        channels in cut order, domains in engine order, link statistics in
        topology registration order -- restricted to this group, so merging
        the groups reproduces the monolithic orderings.
        """
        fabric = self.fabric
        fire_counts: Dict[str, int] = {}
        for engine in self.hw_engines:
            fire_counts.update(engine.fire_counts)
        for engine in self.sw_engines:
            fire_counts.update(engine.fire_counts)
        vc_stats = {
            fabric._vc_keys[vc]: {
                "messages": vc.stats.messages_sent,
                "words": vc.stats.words_sent,
                "credit_stalls": vc.stats.stalled_on_credit,
            }
            for vc in self.vcs
        }
        domain_stats: Dict[str, Dict[str, Any]] = {}
        for dom in self.domains:
            engine = fabric.engines[dom]
            if isinstance(engine, HwEngine):
                domain_stats[dom.name] = {
                    "kind": "hw",
                    "firings": engine.total_firings,
                    "active_cycles": engine.cycles_active,
                }
            else:
                domain_stats[dom.name] = {
                    "kind": "sw",
                    "firings": engine.total_firings,
                    "busy_fpga_cycles": engine.busy_fpga_cycles,
                    "cpu_cycles": engine.cpu_cycles_total,
                    "guard_failures": engine.guard_failures,
                }
        sw = self.sw_engines
        hw = self.hw_engines
        return CosimResult(
            design_name=fabric.design.name,
            fpga_cycles=self.now,
            completed=completed,
            sw_busy_fpga_cycles=sum(e.busy_fpga_cycles for e in sw),
            sw_cpu_cycles=sum(e.cpu_cycles_total for e in sw),
            sw_cpu_cycles_wasted=sum(e.cpu_cycles_wasted for e in sw),
            sw_cpu_cycles_driver=sum(e.cpu_cycles_driver for e in sw),
            sw_firings=sum(e.total_firings for e in sw),
            sw_guard_failures=sum(e.guard_failures for e in sw),
            hw_firings=sum(e.total_firings for e in hw),
            hw_active_cycles=sum(e.cycles_active for e in hw),
            channel_messages=sum(d.stats.messages for d in self.directions),
            channel_words=sum(d.stats.words for d in self.directions),
            channel_busy_cycles=sum(d.stats.busy_cycles for d in self.directions),
            fire_counts=fire_counts,
            vc_stats=vc_stats,
            domain_stats=domain_stats,
        )


class CosimFabric:
    """N-domain co-simulation: a topology of engines joined by routed links.

    Builds one engine per domain partition of ``design``, a point-to-point
    link per (producer, consumer) domain route on the synchronizer cut, and
    runs the whole fabric under one event loop.  ``engine_kinds`` maps
    domain (or domain name) to ``"hw"``/``"sw"``; unmapped domains follow
    :func:`default_engine_kinds`.  A prebuilt ``topology`` may be supplied
    (e.g. with asymmetric per-link parameters); otherwise one link per used
    route is created from the platform's channel parameters
    (``link_params`` overrides individual routes).
    """

    def __init__(
        self,
        design: Design,
        platform: Optional[Platform] = None,
        config: Optional[OptimizationConfig] = None,
        engine_kinds: Optional[Dict[Union[Domain, str], str]] = None,
        default_domain: Optional[Domain] = None,
        burst: bool = True,
        max_loop_iterations: int = 1_000_000,
        backend: Optional[str] = None,
        transport: Optional[str] = None,
        topology: Optional[Topology] = None,
        link_params=None,
        required_domains: Optional[List[Domain]] = None,
        verify: bool = False,
    ):
        if backend is None:
            backend = default_rule_backend()
        if backend not in VALID_BACKENDS:
            raise ValueError(f"unknown execution backend {backend!r}")
        if transport is None:
            transport = backend
        if transport not in VALID_BACKENDS:
            raise ValueError(f"unknown transport backend {transport!r}")
        self.design = design
        self.platform = platform or Platform.ml507()
        self.config = config or OptimizationConfig.all()
        self.burst = burst
        self.backend = backend
        self.transport = transport

        self.partitioning: Partitioning = partition_design(
            design, default_domain if default_domain is not None else SW
        )

        # -- engines: one per domain, hardware engines stepped first --------
        domains: Dict[str, Domain] = {d.name: d for d in self.partitioning.programs}
        for dom in required_domains or ():
            domains.setdefault(dom.name, dom)
        kinds = default_engine_kinds(domains.values())
        for key, kind in (engine_kinds or {}).items():
            if kind not in ENGINE_KINDS:
                raise ValueError(f"unknown engine kind {kind!r} (expected 'hw'/'sw')")
            name = key.name if isinstance(key, Domain) else key
            if name not in domains:
                raise ValueError(
                    f"engine_kinds names domain {name!r} but the design partitions "
                    f"into {sorted(domains)}"
                )
            kinds[name] = kind
        self.engine_kinds: Dict[str, str] = {name: kinds[name] for name in domains}
        ordered = sorted(
            domains.values(), key=lambda d: (self.engine_kinds[d.name] != "hw", d.name)
        )
        self.domains: List[Domain] = ordered
        self.engines: Dict[Domain, Any] = {}
        self._hw_engines: List[HwEngine] = []
        self._sw_engines: List[SwEngine] = []
        programs = self.partitioning.programs
        for dom in ordered:
            rules = programs[dom].rules if dom in programs else []
            if self.engine_kinds[dom.name] == "hw":
                engine = HwEngine(
                    rules, design.initial_store(), name=dom.name, backend=backend
                )
                self._hw_engines.append(engine)
            else:
                engine = SwEngine(
                    rules,
                    design.initial_store(),
                    self.platform,
                    self.config,
                    design.all_registers(),
                    name=dom.name,
                    max_loop_iterations=max_loop_iterations,
                    backend=backend,
                )
                self._sw_engines.append(engine)
            # The engines wrap their stores for dirty-set write tracking;
            # always address the wrapped store (``engine.store``) so
            # transport-layer writes wake the rules they affect.
            self.engines[dom] = engine

        # -- topology: one serialised link per used route -------------------
        if topology is None:
            topology = self.platform.topology_for(
                self.partitioning.route_pairs(), burst=burst, link_params=link_params
            )
        self.topology = topology

        cut = self.partitioning.cut
        word_bits_by_sync = {
            sync: topology.link(sync.domain_enq.name, sync.domain_deq.name).params.word_bits
            for sync in cut
        }
        self.vcs = VirtualChannelTable(
            cut,
            word_bits=self.platform.channel.word_bits,
            word_bits_by_sync=word_bits_by_sync,
        )
        # Statistics keys for the virtual channels: the synchronizer's bare
        # name (the historical, golden-pinned key) unless several cut syncs
        # share one -- multi-group designs instantiate whole pipelines more
        # than once -- in which case the colliding ones use their full
        # hierarchical names.
        bare_counts: Dict[str, int] = {}
        for sync in cut:
            bare_counts[sync.name] = bare_counts.get(sync.name, 0) + 1
        self._vc_keys: Dict[Any, str] = {
            vc: (vc.sync.name if bare_counts[vc.sync.name] == 1 else vc.sync.full_name)
            for vc in self.vcs
        }

        # -- transport dataplane --------------------------------------------
        # Producer-side routes (the engines, stores and link for a sync
        # never change during a run) and consumer-side delivery sweeps, in
        # deterministic order: routes in cut order, deliveries in topology
        # registration order.
        self._routes: List[tuple] = []
        for sync in cut:
            vc = self.vcs.channel_for(sync)
            producer_engine = self.engines[domains[sync.domain_enq.name]]
            consumer_engine = self.engines[domains[sync.domain_deq.name]]
            direction = topology.direction(sync.domain_enq.name, sync.domain_deq.name)
            self._routes.append(
                (
                    sync,
                    vc,
                    producer_engine,
                    producer_engine.store,
                    consumer_engine.store,
                    direction,
                    isinstance(producer_engine, SwEngine),
                )
            )
        self._delivery_routes: List[tuple] = []
        #: Destination domain name per delivery route (parallel list; used to
        #: project delivery sweeps onto group sub-fabrics).
        self._delivery_dsts: List[str] = []
        for link in topology.links:
            dst = domains.get(link.dst)
            if dst is None:
                continue
            target = self.engines[dst]
            self._delivery_routes.append(
                (
                    topology.direction(link.src, link.dst),
                    target,
                    isinstance(target, SwEngine),
                )
            )
            self._delivery_dsts.append(link.dst)

        if transport == "source":
            self._pump_fns = [
                generate_transport_pump(
                    sync.data,
                    sync.depth,
                    producer_store,
                    consumer_store,
                    vc,
                    direction,
                    producer_engine.locked_registers,
                    producer_engine.charge_driver if sw_producer else None,
                    name=f"{design.name}.route{i}",
                )
                for i, (sync, vc, producer_engine, producer_store, consumer_store, direction, sw_producer) in enumerate(self._routes)
            ]
            vc_by_id = self.vcs.id_table
            self._deliver_fns = [
                generate_transport_delivery(
                    direction,
                    vc_by_id,
                    target.deliver,
                    deliver_batch=None if sw_target else target.deliver_batch,
                    charge_driver=target.charge_driver if sw_target else None,
                    name=f"{design.name}.delivery{i}",
                )
                for i, (direction, target, sw_target) in enumerate(self._delivery_routes)
            ]
        elif transport == "compiled":
            self._pump_fns = [
                compile_transport_pump(
                    sync.data,
                    sync.depth,
                    producer_store,
                    consumer_store,
                    vc,
                    direction,
                    producer_engine.locked_registers,
                    producer_engine.charge_driver if sw_producer else None,
                )
                for sync, vc, producer_engine, producer_store, consumer_store, direction, sw_producer in self._routes
            ]
            vc_by_id = self.vcs.id_table
            self._deliver_fns = [
                compile_transport_delivery(
                    direction,
                    vc_by_id,
                    target.deliver,
                    deliver_batch=None if sw_target else target.deliver_batch,
                    charge_driver=target.charge_driver if sw_target else None,
                )
                for direction, target, sw_target in self._delivery_routes
            ]
        else:
            self._pump_fns = None
            self._deliver_fns = None

        # -- register ownership ---------------------------------------------
        # register -> authoritative store, resolved from the partitioning
        # (not a binary "hw else sw" guess): a partition's state lives in its
        # own engine's store; a synchronizer's consumer side is
        # authoritative for reads performed by tests (its contents are what
        # the consumer still has to process).
        owner: Dict[Register, Store] = {}
        for dom, prog in programs.items():
            store = self.engines[dom].store
            for reg in prog.registers:
                owner[reg] = store
        for sync in cut:
            store = self.engines[domains[sync.domain_deq.name]].store
            for reg in sync.registers:
                owner[reg] = store
        self._owner_store = owner
        if self._sw_engines:
            self._default_store: Store = self._sw_engines[0].store
        elif ordered:
            self._default_store = self.engines[ordered[0]].store
        else:
            self._default_store = {}

        self.now: float = 0.0
        #: Picklable elaboration spec (builder, args, kwargs, done_attr),
        #: attached via :meth:`bind_builder`; required by
        #: ``run(scheduler="distributed")``, whose worker processes
        #: re-elaborate the design from it (foreign-kernel closures do not
        #: pickle, so the fabric itself can never cross a process boundary).
        self._builder_spec: Optional[tuple] = None

        # -- group decomposition --------------------------------------------
        # The fabric is a composition of independently clocked *group
        # sub-fabrics*: one per connected component of the domain graph the
        # cut induces (plus one singleton per required-but-unpartitioned
        # domain, e.g. the empty hardware side of an all-software
        # two-partition design).  Group indices follow
        # ``Partitioning.independent_groups`` order, then extra domains in
        # name order -- deterministically reproducible in any process that
        # elaborates the same design.
        group_index: Dict[str, int] = dict(self.partitioning._group_index())
        for name in sorted(n for n in domains if n not in group_index):
            group_index[name] = len(set(group_index.values())) if group_index else 0
        self._group_index = group_index
        self._store_group: Dict[int, int] = {
            id(self.engines[d].store): group_index[d.name] for d in ordered
        }
        #: Reset values, served for reads that escape the active group's
        #: scope (deterministic in-process and across processes: a group
        #: sub-fabric never observes another group's progress).
        self._initial_values: Dict[Register, Any] = design.initial_store()
        self._active_group: Optional[int] = None
        self._observing: Optional[set] = None
        self._read_overrides: Optional[Dict[str, Any]] = None
        self._last_observed: set = set()
        n_groups = (max(group_index.values()) + 1) if group_index else 1
        self._groups: List[_GroupFabric] = [
            _GroupFabric(self, i) for i in range(n_groups)
        ]

        if verify:
            # Strict mode: statically lint the design and audit this fabric's
            # snapshot coverage before the first cycle runs.  Imported lazily
            # -- the analysis package depends on this module.
            from repro.analysis import audit_fabric, require_clean, verify_design

            diags = verify_design(
                design,
                default_domain=default_domain if default_domain is not None else SW,
                link_params=link_params,
                config=self.config,
            )
            diags += audit_fabric(self)
            require_clean(diags, context=f"CosimFabric({design.name!r})")

    # -- store access helpers ----------------------------------------------

    def engine(self, domain: Union[Domain, str]) -> Any:
        """The engine simulating ``domain``'s partition."""
        name = domain.name if isinstance(domain, Domain) else domain
        for dom, engine in self.engines.items():
            if dom.name == name:
                return engine
        raise KeyError(f"fabric has no engine for domain {name!r}")

    def _resolve_owner(self, reg: Register) -> Store:
        parent = reg.parent
        if isinstance(parent, SyncFifo):
            dom = parent.domain_deq
        else:
            dom = effective_module_domain(parent)
        if dom is not None and not dom.is_variable:
            for d, engine in self.engines.items():
                if d == dom:
                    return engine.store
        return self._default_store

    def read(self, reg: Register) -> Any:
        """Read a register from whichever partition owns it.

        Three run-scoped behaviours compose on top of the owner-resolved
        read (all inactive outside group-decomposed execution):

        * while a done predicate is being *probed*, the registers it reads
          are recorded, attributing the predicate to owning groups;
        * while one group sub-fabric runs, reads of *another* group's state
          resolve to the design's reset values, so a group's execution (and
          its done evaluations) never depend on which other groups happen
          to have run already -- the property that makes serial and
          process-parallel group execution bitwise equal;
        * :meth:`evaluate_done` may override observed registers by full
          name with finals reported from worker processes.
        """
        if self._observing is not None:
            self._observing.add(reg)
        overrides = self._read_overrides
        if overrides is not None and reg.full_name in overrides:
            return overrides[reg.full_name]
        store = self._owner_store.get(reg)
        if store is None:
            store = self._owner_store[reg] = self._resolve_owner(reg)
        active = self._active_group
        if active is not None and self._store_group.get(id(store), active) != active:
            if reg in self._initial_values:
                return self._initial_values[reg]
        return store[reg]

    def fifo_contents(self, fifo: Fifo) -> Tuple[Any, ...]:
        """Contents of a FIFO in the partition that owns it."""
        return tuple(self.read(fifo.data))

    def write(self, reg: Register, value: Any) -> None:
        """Write a request input into every engine's copy of ``reg``.

        Each engine holds a full copy of the design's store, so a request
        input must land in all of them (through the live stores' regular
        ``__setitem__``, waking any rule that reads the register) *and* in
        :attr:`_initial_values` -- the reset values served for out-of-group
        reads -- so grouped execution sees the same input a fresh
        elaboration with that initial value would.  This is the single
        input-application path of the serving layer: the resident
        :class:`~repro.sim.serve.FabricServer` and its fresh-elaboration
        oracle both apply requests through it.
        """
        if reg not in self._initial_values:
            raise KeyError(
                f"design {self.design.name} has no register {reg.full_name}"
            )
        seen = set()
        for dom in self.domains:
            store = self.engines[dom].store
            if id(store) in seen:
                continue
            seen.add(id(store))
            store[reg] = value
        self._initial_values[reg] = value

    # -- snapshot / restore --------------------------------------------------

    def snapshot(self) -> tuple:
        """Capture the fabric's complete mutable state as plain data.

        Covers, in deterministic orders: every engine (stores, wakeup
        state, in-flight rules, parked deliveries, statistics) in engine
        order; every link direction (arbitration, pool rings, traffic
        counters) in topology registration order; every virtual channel
        (credits, in-flight counts, stats) in cut order; the per-group
        clocks; the fabric clock; and the reset-value/observation state of
        grouped execution.  ``restore`` rewinds to the snapshot in O(state)
        without re-elaborating -- the basis of persistent serving, where a
        snapshot taken at reset makes every post-restore run's
        ``CosimResult`` a per-request delta.
        """
        return (
            [self.engines[dom].snapshot() for dom in self.domains],
            [direction.snapshot() for direction in self.topology.directions],
            [vc.snapshot() for vc in self.vcs],
            [group.now for group in self._groups],
            self.now,
            dict(self._initial_values),
            set(self._last_observed),
        )

    def restore(self, snap: tuple) -> None:
        """Rewind the fabric to a snapshot, preserving every object identity.

        Engines, stores, pool rings, stats objects and virtual channels are
        mutated in place -- the compiled transport closures pre-bind them --
        so a restored fabric re-runs requests through the exact closures the
        elaboration built.
        """
        engines, directions, vcs, group_clocks, now, initials, observed = snap
        for dom, engine_snap in zip(self.domains, engines):
            self.engines[dom].restore(engine_snap)
        for direction, direction_snap in zip(self.topology.directions, directions):
            direction.restore(direction_snap)
        for vc, vc_snap in zip(self.vcs, vcs):
            vc.restore(vc_snap)
        for group, clock in zip(self._groups, group_clocks):
            group.now = clock
        self.now = now
        self._initial_values = dict(initials)
        self._last_observed = set(observed)
        self._active_group = None
        self._observing = None
        self._read_overrides = None

    # -- group views ---------------------------------------------------------

    @property
    def group_count(self) -> int:
        """How many independently clocked group sub-fabrics this fabric runs."""
        return len(self._groups)

    def group_domains(self, index: int) -> List[Domain]:
        """The domains simulated by one group sub-fabric, in engine order."""
        return list(self._groups[index].domains)

    def group_of_register(self, reg: Register) -> Optional[int]:
        """The group whose sub-fabric owns a register's authoritative store."""
        store = self._owner_store.get(reg)
        if store is None:
            store = self._owner_store[reg] = self._resolve_owner(reg)
        return self._store_group.get(id(store))

    def probe_done(
        self,
        done: Callable[["CosimFabric"], bool],
        finals: Optional[Dict[str, Any]] = None,
    ):
        """Evaluate ``done`` once, recording the registers it reads.

        Returns ``(result, observed_registers)``.  The observed set is
        what attributes the predicate to group sub-fabrics: a group owning
        none of the observed registers runs to quiescence instead of
        re-evaluating a predicate it cannot influence.  The recorded set is
        kept (:attr:`_last_observed`) so shard workers can report the
        observed finals their group owns.  ``finals`` applies the same
        full-name overrides as :meth:`evaluate_done` -- a recording final
        evaluation, which is how :func:`repro.sim.shard.run_grouped`
        detects predicates whose read set changed between probe and
        completion (the data-dependent predicates its merge cannot serve).
        """
        if finals is not None:
            self._read_overrides = dict(finals)
        self._observing = set()
        try:
            result = bool(done(self))
        finally:
            observed = self._observing
            self._observing = None
            if finals is not None:
                self._read_overrides = None
        self._last_observed = observed
        return result, observed

    def evaluate_done(
        self,
        done: Callable[["CosimFabric"], bool],
        finals: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Evaluate ``done`` against merged final state.

        With ``finals`` (a ``register full name -> value`` mapping, as
        reported by :meth:`group_observations` from worker processes), reads
        of those registers are answered from the mapping and every other
        read falls through to this fabric's stores -- which, on a fabric
        that dispatched its groups to workers, still hold reset values.
        The contract for process-parallel group runs is therefore that the
        predicate's read set is static (our workloads' counters are); a
        serial in-process run needs no overrides at all.
        """
        if finals is None:
            return bool(done(self))
        self._read_overrides = dict(finals)
        try:
            return bool(done(self))
        finally:
            self._read_overrides = None

    def group_observations(self, index: int) -> Dict[str, Any]:
        """Final values of the last-probed predicate's registers owned by one group.

        Keyed by register full name (plain data, picklable for typical
        counter registers) so a parent process can merge observations from
        per-group workers and re-evaluate the full done predicate.
        """
        return {
            reg.full_name: self.read(reg)
            for reg in sorted(self._last_observed, key=lambda r: r.full_name)
            if self.group_of_register(reg) == index
        }

    def observations_for_domains(self, domain_names) -> Dict[str, Any]:
        """Final values of the last-probed predicate's registers owned by a
        subset of domains.

        The per-*member* refinement of :meth:`group_observations`: a
        distributed lockstep member hosts only some of its group's domains,
        so it reports (and publishes into the group's shared control block)
        exactly the observed registers whose authoritative store belongs to
        one of its domains.  Keys are register full names, sorted, like
        :meth:`group_observations`.
        """
        wanted = set(domain_names)
        stores = {
            id(self.engines[d].store) for d in self.domains if d.name in wanted
        }
        out: Dict[str, Any] = {}
        for reg in sorted(self._last_observed, key=lambda r: r.full_name):
            store = self._owner_store.get(reg)
            if store is None:
                store = self._owner_store[reg] = self._resolve_owner(reg)
            if id(store) in stores:
                out[reg.full_name] = self.read(reg)
        return out

    def group_layout(self, index: int) -> Dict[str, Any]:
        """One group sub-fabric's shape as plain data (the distributed export).

        Everything a parent process needs to plan a distributed placement of
        the group and to reassemble its ``CosimResult`` bitwise from member
        reports, without shipping any elaborated object:

        * ``domains`` -- ``(name, engine_kind)`` in the group's engine order
          (hardware engines first; result assembly iterates this order);
        * ``routes`` -- the group's producer-side transport routes in cut
          order, each with its cut index, endpoint domains, FIFO depth,
          framed words per element and vc-statistics key;
        * ``links`` -- ``(src, dst)`` of the topology links attributed to
          the group, in registration order (channel statistics sum in this
          order).

        Elaboration is deterministic, so a worker that rebuilds the design
        from the same builder spec computes an identical layout -- the
        contract that lets parent and members agree on shared-ring and
        control-slot assignments without negotiation.
        """
        group = self._groups[index]
        names = {d.name for d in group.domains}
        routes: List[Dict[str, Any]] = []
        for j, route in enumerate(self._routes):
            sync, vc = route[0], route[1]
            if sync.domain_enq.name not in names:
                continue
            routes.append(
                {
                    "cut_index": j,
                    "src": sync.domain_enq.name,
                    "dst": sync.domain_deq.name,
                    "depth": sync.depth,
                    "words_per_element": vc.words_per_element,
                    "key": self._vc_keys[vc],
                }
            )
        gidx = self._group_index
        links = [
            (link.src, link.dst)
            for link in self.topology.links
            if gidx.get(link.dst, gidx.get(link.src, 0)) == index
        ]
        return {
            "index": index,
            "design": self.design.name,
            "domains": [(d.name, self.engine_kinds[d.name]) for d in group.domains],
            "routes": routes,
            "links": links,
        }

    def bind_builder(
        self,
        builder: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        done_attr: str = "cosim_done",
    ) -> "CosimFabric":
        """Attach the picklable builder spec this fabric was elaborated from.

        ``builder(*args, **kwargs)`` must be a module-level callable
        returning the same workload this fabric was built on, exposing its
        done predicate as attribute ``done_attr`` -- the compile-once /
        run-anywhere contract of :mod:`repro.sim.shard`.
        ``run(scheduler="distributed")`` requires it: distributed worker
        processes re-elaborate the design from the spec and resolve the done
        predicate from their own workload object, so the predicate passed to
        ``run`` must be (semantically) ``getattr(workload, done_attr)``.
        Returns ``self`` for chaining.
        """
        self._builder_spec = (builder, tuple(args), dict(kwargs or {}), done_attr)
        return self

    # -- transport ----------------------------------------------------------

    def _pump_transport(self, now: float) -> bool:
        """Launch transfers from producer-side endpoints whenever credits allow."""
        pumps = self._pump_fns
        if pumps is not None:
            progress = False
            for pump in pumps:
                progress |= pump(now)
            return progress
        return _pump_routes_interp(self._routes, now)

    def _deliver_due(self, now: float) -> bool:
        delivers = self._deliver_fns
        if delivers is not None:
            progress = False
            for deliver_due in delivers:
                progress |= deliver_due(now)
            return progress
        return _deliver_routes_interp(self._delivery_routes, self.vcs.by_id, now)

    # -- main loop ------------------------------------------------------------

    def run(
        self,
        done: Callable[["CosimFabric"], bool],
        max_cycles: float = 100_000_000.0,
        max_iterations: int = 5_000_000,
        scheduler: str = "grouped",
        *,
        placement: str = "group",
        carrier: str = "shm",
        processes: Optional[int] = None,
    ) -> CosimResult:
        """Run until ``done(self)`` or until no further progress is possible.

        ``scheduler`` selects how the fabric's independent group sub-fabrics
        are advanced:

        * ``"grouped"`` (default) -- each group runs to completion under its
          own clock, serially in group order, with per-group idle-skip (a
          stalled group never drags the others through empty cycles).  On a
          single-group design this *is* the historical event loop, bitwise
          identical to the pre-decomposition fabric.  On a multi-group
          design the per-group results are combined by
          :meth:`CosimResult.merge` and ``completed`` is the done predicate
          evaluated against the merged final state.
        * ``"lockstep"`` -- the legacy single-clock loop advancing every
          group together.  Kept as the measurable baseline for grouped
          execution; on multi-group designs its idle-cycle guard scans
          legitimately charge extra ``sw_guard_failures`` to groups that
          finished early (which is exactly the waste grouped execution
          removes), while cycle counts, firings, stores and channel traffic
          agree.
        * ``"distributed"`` -- the grouped semantics executed across
          long-lived worker processes (:mod:`repro.sim.distrib`), with every
          cut link that crosses a process boundary carried as real framed
          wire words.  Requires :meth:`bind_builder` (workers re-elaborate
          from the spec); ``placement`` puts each group (``"group"``,
          default) or each domain (``"domain"``) in its own worker,
          ``carrier`` picks the cross-process word transport (``"shm"``
          shared-memory rings or ``"socket"`` byte streams) and
          ``processes`` caps the group-placement worker count.  The result
          is bitwise identical to ``"grouped"`` on a freshly elaborated
          fabric.

        Grouped-execution contract: while one group runs, ``done``'s reads
        of *other* groups' registers resolve to reset values, so a group
        whose part of a cross-group predicate can only become true through
        another group's progress must reach quiescence on its own (every
        pipeline-shaped workload does).  A group that free-runs forever
        and terminates only via such a predicate needs
        ``scheduler="lockstep"`` -- its termination is genuinely global.
        """
        if scheduler == "lockstep":
            return self._run_lockstep(done, max_cycles, max_iterations)
        if scheduler == "distributed":
            # Imported lazily: distrib builds on this module.
            from repro.sim.distrib import run_distributed

            if self._builder_spec is None:
                raise SimulationError(
                    "scheduler='distributed' needs a picklable builder spec: "
                    "call bind_builder(builder, args, kwargs) first (worker "
                    "processes re-elaborate the design from it; an elaborated "
                    "fabric cannot cross a process boundary)"
                )
            builder, bargs, bkwargs, done_attr = self._builder_spec
            report = run_distributed(
                builder,
                bargs,
                bkwargs,
                backend=self.backend,
                transport=self.transport,
                engine_kinds=dict(self.engine_kinds),
                fabric_kind="duplex" if isinstance(self, Cosimulator) else "fabric",
                done_attr=done_attr,
                placement=placement,
                carrier=carrier,
                processes=processes,
                max_cycles=max_cycles,
                max_iterations=max_iterations,
                parent=self,
                done=done,
            )
            self.now = report.result.fpga_cycles
            return report.result
        if scheduler != "grouped":
            raise ValueError(
                f"unknown scheduler {scheduler!r} "
                "(expected 'grouped'/'lockstep'/'distributed')"
            )
        groups = self._groups
        if len(groups) == 1:
            result = groups[0].run(done, max_cycles, max_iterations)
            self.now = groups[0].now
            return result

        already, observed = self.probe_done(done)
        owners = {self.group_of_register(reg) for reg in observed}
        results = []
        for group in groups:
            if already:
                results.append(group.result(True))
                continue
            done_g = done if group.index in owners else None
            results.append(
                self._run_one_group(group, done_g, max_cycles, max_iterations)
            )
        merged = CosimResult.merge(results)
        merged.completed = True if already else self.evaluate_done(done)
        self.now = max(group.now for group in groups)
        return merged

    def _run_one_group(
        self,
        group: _GroupFabric,
        done: Optional[Callable[["CosimFabric"], bool]],
        max_cycles: float,
        max_iterations: int,
    ) -> CosimResult:
        """Run one group sub-fabric with the fabric's reads scoped to it."""
        self._active_group = group.index
        try:
            return group.run(done, max_cycles, max_iterations)
        finally:
            self._active_group = None

    def run_group(
        self,
        index: int,
        done: Optional[Callable[["CosimFabric"], bool]] = None,
        max_cycles: float = 100_000_000.0,
        max_iterations: int = 5_000_000,
    ) -> CosimResult:
        """Run a single group sub-fabric to completion (the shard-worker entry).

        ``done`` is the *full-design* predicate (or ``None`` to run the
        group to quiescence): it is probed once, and applied to the group's
        loop only if the group owns at least one register the predicate
        observes -- with reads of other groups' state scoped to reset
        values, so the outcome is identical whether the other groups run
        before, after, or in different processes.
        """
        group = self._groups[index]
        if done is None:
            return self._run_one_group(group, None, max_cycles, max_iterations)
        already, observed = self.probe_done(done)
        if already:
            return group.result(True)
        owners = {self.group_of_register(reg) for reg in observed}
        done_g = done if index in owners else None
        return self._run_one_group(group, done_g, max_cycles, max_iterations)

    def _run_lockstep(
        self,
        done: Callable[["CosimFabric"], bool],
        max_cycles: float = 100_000_000.0,
        max_iterations: int = 5_000_000,
    ) -> CosimResult:
        """The legacy global-clock event loop (every group in lockstep)."""
        completed = False
        iterations = 0
        hw_engines = self._hw_engines
        sw_engines = self._sw_engines
        while self.now <= max_cycles and iterations < max_iterations:
            iterations += 1
            if done(self):
                completed = True
                break

            progress = False
            progress |= self._deliver_due(self.now)
            for engine in hw_engines:
                progress |= engine.step_cycle(self.now)
            for engine in sw_engines:
                progress |= engine.step(self.now)
            progress |= self._pump_transport(self.now)

            if progress:
                self.now += 1.0
                continue

            next_times = [
                t
                for t in (
                    self.topology.next_delivery_time(),
                    *(engine.next_completion_time() for engine in hw_engines),
                    *(engine.next_event_time(self.now) for engine in sw_engines),
                )
                if t is not None
            ]
            if not next_times:
                # Quiescent: either finished (checked at loop top) or deadlocked.
                completed = done(self)
                break
            self.now = max(self.now + 1.0, min(next_times))
        else:
            raise SimulationError(
                f"co-simulation of {self.design.name} exceeded its cycle/iteration budget "
                f"(now={self.now}, iterations={iterations})"
            )

        if not completed:
            completed = done(self)
        return self._result(completed)

    # -- result assembly -----------------------------------------------------

    def _result(self, completed: bool) -> CosimResult:
        fire_counts: Dict[str, int] = {}
        for engine in self._hw_engines:
            fire_counts.update(engine.fire_counts)
        for engine in self._sw_engines:
            fire_counts.update(engine.fire_counts)
        vc_stats = {
            self._vc_keys[vc]: {
                "messages": vc.stats.messages_sent,
                "words": vc.stats.words_sent,
                "credit_stalls": vc.stats.stalled_on_credit,
            }
            for vc in self.vcs
        }
        domain_stats: Dict[str, Dict[str, Any]] = {}
        for dom in self.domains:
            engine = self.engines[dom]
            if isinstance(engine, HwEngine):
                domain_stats[dom.name] = {
                    "kind": "hw",
                    "firings": engine.total_firings,
                    "active_cycles": engine.cycles_active,
                }
            else:
                domain_stats[dom.name] = {
                    "kind": "sw",
                    "firings": engine.total_firings,
                    "busy_fpga_cycles": engine.busy_fpga_cycles,
                    "cpu_cycles": engine.cpu_cycles_total,
                    "guard_failures": engine.guard_failures,
                }
        sw = self._sw_engines
        hw = self._hw_engines
        return CosimResult(
            design_name=self.design.name,
            fpga_cycles=self.now,
            completed=completed,
            sw_busy_fpga_cycles=sum(e.busy_fpga_cycles for e in sw),
            sw_cpu_cycles=sum(e.cpu_cycles_total for e in sw),
            sw_cpu_cycles_wasted=sum(e.cpu_cycles_wasted for e in sw),
            sw_cpu_cycles_driver=sum(e.cpu_cycles_driver for e in sw),
            sw_firings=sum(e.total_firings for e in sw),
            sw_guard_failures=sum(e.guard_failures for e in sw),
            hw_firings=sum(e.total_firings for e in hw),
            hw_active_cycles=sum(e.cycles_active for e in hw),
            channel_messages=self.topology.total_messages,
            channel_words=self.topology.total_words,
            channel_busy_cycles=self.topology.total_busy_cycles,
            fire_counts=fire_counts,
            vc_stats=vc_stats,
            domain_stats=domain_stats,
        )


class Cosimulator(CosimFabric):
    """The classic two-partition HW/SW co-simulation view.

    A thin compatibility wrapper over :class:`CosimFabric`: exactly one
    hardware and one software engine, joined by a full-duplex channel whose
    two directions are the fabric links ``sw -> hw`` (``to_hw``) and
    ``hw -> sw`` (``to_sw``).  Results are bitwise identical to the
    pre-fabric two-partition implementation (pinned by
    ``tests/golden/fig13_cosim.json``).
    """

    def __init__(
        self,
        design: Design,
        platform: Optional[Platform] = None,
        config: Optional[OptimizationConfig] = None,
        hw_domain: Domain = HW,
        sw_domain: Domain = SW,
        default_domain: Optional[Domain] = None,
        burst: bool = True,
        max_loop_iterations: int = 1_000_000,
        backend: Optional[str] = None,
        transport: Optional[str] = None,
        verify: bool = False,
    ):
        platform = platform or Platform.ml507()
        # Both directions always exist (the physical channel is full duplex
        # whether or not traffic uses both senses), registered to_hw first --
        # delivery sweeps visit them in that order.
        topology = Topology()
        to_hw = topology.add_link(
            sw_domain.name, hw_domain.name, platform.channel, burst, name="to_hw"
        )
        to_sw = topology.add_link(
            hw_domain.name, sw_domain.name, platform.channel, burst, name="to_sw"
        )
        super().__init__(
            design,
            platform=platform,
            config=config,
            engine_kinds={hw_domain.name: "hw", sw_domain.name: "sw"},
            default_domain=default_domain if default_domain is not None else sw_domain,
            burst=burst,
            max_loop_iterations=max_loop_iterations,
            backend=backend,
            transport=transport,
            topology=topology,
            required_domains=[hw_domain, sw_domain],
            verify=verify,
        )
        self.hw_domain = hw_domain
        self.sw_domain = sw_domain
        self.hw: HwEngine = self.engine(hw_domain)
        self.sw: SwEngine = self.engine(sw_domain)
        self.store_hw: Store = self.hw.store
        self.store_sw: Store = self.sw.store
        self.channel = DuplexChannel.from_directions(to_hw, to_sw)

    def read_sw(self, reg: Register) -> Any:
        """Read a register as seen by the software partition."""
        return self.store_sw[reg]

    def read_hw(self, reg: Register) -> Any:
        """Read a register as seen by the hardware partition."""
        return self.store_hw[reg]
