"""Co-simulation of a partitioned design over a routed channel topology.

This is the executable counterpart of the full compiler flow in Figure 6,
generalised from the paper's fixed HW/SW split to an arbitrary set of
*domain partitions*: the design is split by domain
(:mod:`repro.core.partition`), each partition runs on its own engine (the
cycle-level :class:`~repro.sim.hwsim.HwEngine` or the cost-modelled
sequential :class:`~repro.sim.swsim.SwEngine`), and every cross-domain
synchronizer is mapped onto a virtual channel of the point-to-point link
its (producer domain, consumer domain) route uses in the
:class:`~repro.platform.channel.Topology`.  Synchronizer placement -- not a
fixed two-way split -- defines the partitioning, which is the paper's whole
point; :class:`CosimFabric` is the N-domain event loop and
:class:`Cosimulator` the two-partition view the original API exposed,
kept bitwise-compatible (same `CosimResult`, same cycle accounting).

Time is measured in FPGA cycles.  The main loop advances one cycle at a
time while anything is happening and skips directly to the next scheduled
event (a link delivery, the end of a software rule, a multi-cycle hardware
kernel completing) whenever the system is otherwise idle, so designs that
spend most of their time waiting on the bus (e.g. the ray tracer's
partition B) simulate in time proportional to their event count, not their
cycle count.

Transport is two-backend, like rule execution: ``transport="interp"`` is
the per-synchronizer reference bookkeeping; ``transport="compiled"`` lowers
each route to a closure at elaboration
(:func:`~repro.core.compile.compile_transport_pump` /
:func:`~repro.core.compile.compile_transport_delivery`: pre-resolved
endpoint stores, pre-computed credit arithmetic, prebuilt delivery
callbacks, batch FIFO draining).  By default the transport backend follows
the rule-execution backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.compile import compile_transport_delivery, compile_transport_pump
from repro.core.domains import HW, SW, Domain, effective_module_domain
from repro.core.errors import SimulationError
from repro.core.module import Design, Register
from repro.core.optimize import OptimizationConfig
from repro.core.partition import Partitioning, default_engine_kind, partition_design
from repro.core.primitives import Fifo
from repro.core.semantics import Store
from repro.core.synchronizers import SyncFifo
from repro.platform.channel import DuplexChannel, Topology
from repro.platform.libdn import VirtualChannelTable
from repro.platform.marshal import demarshal_message, marshal_message
from repro.platform.platform import Platform
from repro.sim.hwsim import HwEngine
from repro.sim.swsim import SwEngine

#: Engine kinds a domain can be mapped onto.
ENGINE_KINDS = ("hw", "sw")


def default_engine_kinds(domains) -> Dict[str, str]:
    """The default domain-name -> engine-kind mapping.

    Delegates per domain to
    :func:`repro.core.partition.default_engine_kind` -- the single source of
    the "names starting with ``HW`` are hardware" convention shared with the
    interface generator and the sweep examples.  The multi-domain workloads
    (e.g. ``HW_IMDCT``/``HW_WIN``) follow it; anything else should pass
    ``engine_kinds`` explicitly.
    """
    return {d.name: default_engine_kind(d) for d in domains}


@dataclass
class CosimResult:
    """Outcome of one co-simulation run (all times in FPGA cycles).

    The ``sw_*``/``hw_*`` fields aggregate over every software/hardware
    engine in the fabric (in the two-partition case there is exactly one of
    each, so they read as before); ``domain_stats`` holds the per-domain
    breakdown.
    """

    design_name: str
    fpga_cycles: float
    completed: bool
    sw_busy_fpga_cycles: float
    sw_cpu_cycles: float
    sw_cpu_cycles_wasted: float
    sw_cpu_cycles_driver: float
    sw_firings: int
    sw_guard_failures: int
    hw_firings: int
    hw_active_cycles: int
    channel_messages: int
    channel_words: int
    channel_busy_cycles: float
    fire_counts: Dict[str, int] = field(default_factory=dict)
    vc_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    domain_stats: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def __repr__(self) -> str:
        status = "ok" if self.completed else "INCOMPLETE"
        return (
            f"CosimResult({self.design_name}: {self.fpga_cycles:.0f} FPGA cycles [{status}], "
            f"sw_busy={self.sw_busy_fpga_cycles:.0f}, hw_active={self.hw_active_cycles}, "
            f"channel_msgs={self.channel_messages})"
        )


class CosimFabric:
    """N-domain co-simulation: a topology of engines joined by routed links.

    Builds one engine per domain partition of ``design``, a point-to-point
    link per (producer, consumer) domain route on the synchronizer cut, and
    runs the whole fabric under one event loop.  ``engine_kinds`` maps
    domain (or domain name) to ``"hw"``/``"sw"``; unmapped domains follow
    :func:`default_engine_kinds`.  A prebuilt ``topology`` may be supplied
    (e.g. with asymmetric per-link parameters); otherwise one link per used
    route is created from the platform's channel parameters
    (``link_params`` overrides individual routes).
    """

    def __init__(
        self,
        design: Design,
        platform: Optional[Platform] = None,
        config: Optional[OptimizationConfig] = None,
        engine_kinds: Optional[Dict[Union[Domain, str], str]] = None,
        default_domain: Optional[Domain] = None,
        burst: bool = True,
        max_loop_iterations: int = 1_000_000,
        backend: str = "interp",
        transport: Optional[str] = None,
        topology: Optional[Topology] = None,
        link_params=None,
        required_domains: Optional[List[Domain]] = None,
    ):
        if transport is None:
            transport = backend
        if transport not in ("interp", "compiled"):
            raise ValueError(f"unknown transport backend {transport!r}")
        self.design = design
        self.platform = platform or Platform.ml507()
        self.config = config or OptimizationConfig.all()
        self.burst = burst
        self.backend = backend
        self.transport = transport

        self.partitioning: Partitioning = partition_design(
            design, default_domain if default_domain is not None else SW
        )

        # -- engines: one per domain, hardware engines stepped first --------
        domains: Dict[str, Domain] = {d.name: d for d in self.partitioning.programs}
        for dom in required_domains or ():
            domains.setdefault(dom.name, dom)
        kinds = default_engine_kinds(domains.values())
        for key, kind in (engine_kinds or {}).items():
            if kind not in ENGINE_KINDS:
                raise ValueError(f"unknown engine kind {kind!r} (expected 'hw'/'sw')")
            name = key.name if isinstance(key, Domain) else key
            if name not in domains:
                raise ValueError(
                    f"engine_kinds names domain {name!r} but the design partitions "
                    f"into {sorted(domains)}"
                )
            kinds[name] = kind
        self.engine_kinds: Dict[str, str] = {name: kinds[name] for name in domains}
        ordered = sorted(
            domains.values(), key=lambda d: (self.engine_kinds[d.name] != "hw", d.name)
        )
        self.domains: List[Domain] = ordered
        self.engines: Dict[Domain, Any] = {}
        self._hw_engines: List[HwEngine] = []
        self._sw_engines: List[SwEngine] = []
        programs = self.partitioning.programs
        for dom in ordered:
            rules = programs[dom].rules if dom in programs else []
            if self.engine_kinds[dom.name] == "hw":
                engine = HwEngine(
                    rules, design.initial_store(), name=dom.name, backend=backend
                )
                self._hw_engines.append(engine)
            else:
                engine = SwEngine(
                    rules,
                    design.initial_store(),
                    self.platform,
                    self.config,
                    design.all_registers(),
                    name=dom.name,
                    max_loop_iterations=max_loop_iterations,
                    backend=backend,
                )
                self._sw_engines.append(engine)
            # The engines wrap their stores for dirty-set write tracking;
            # always address the wrapped store (``engine.store``) so
            # transport-layer writes wake the rules they affect.
            self.engines[dom] = engine

        # -- topology: one serialised link per used route -------------------
        if topology is None:
            topology = self.platform.topology_for(
                self.partitioning.route_pairs(), burst=burst, link_params=link_params
            )
        self.topology = topology

        cut = self.partitioning.cut
        word_bits_by_sync = {
            sync: topology.link(sync.domain_enq.name, sync.domain_deq.name).params.word_bits
            for sync in cut
        }
        self.vcs = VirtualChannelTable(
            cut,
            word_bits=self.platform.channel.word_bits,
            word_bits_by_sync=word_bits_by_sync,
        )

        # -- transport dataplane --------------------------------------------
        # Producer-side routes (the engines, stores and link for a sync
        # never change during a run) and consumer-side delivery sweeps, in
        # deterministic order: routes in cut order, deliveries in topology
        # registration order.
        self._routes: List[tuple] = []
        for sync in cut:
            vc = self.vcs.channel_for(sync)
            producer_engine = self.engines[domains[sync.domain_enq.name]]
            consumer_engine = self.engines[domains[sync.domain_deq.name]]
            direction = topology.direction(sync.domain_enq.name, sync.domain_deq.name)
            self._routes.append(
                (
                    sync,
                    vc,
                    producer_engine,
                    producer_engine.store,
                    consumer_engine.store,
                    direction,
                    isinstance(producer_engine, SwEngine),
                )
            )
        self._delivery_routes: List[tuple] = []
        for link in topology.links:
            dst = domains.get(link.dst)
            if dst is None:
                continue
            target = self.engines[dst]
            self._delivery_routes.append(
                (
                    topology.direction(link.src, link.dst),
                    target,
                    isinstance(target, SwEngine),
                )
            )

        if transport == "compiled":
            self._pump_fns = [
                compile_transport_pump(
                    sync.data,
                    sync.depth,
                    producer_store,
                    consumer_store,
                    vc,
                    direction,
                    producer_engine.locked_registers,
                    producer_engine.charge_driver if sw_producer else None,
                )
                for sync, vc, producer_engine, producer_store, consumer_store, direction, sw_producer in self._routes
            ]
            vc_by_id = self.vcs.id_table
            self._deliver_fns = [
                compile_transport_delivery(
                    direction,
                    vc_by_id,
                    target.deliver,
                    deliver_batch=None if sw_target else target.deliver_batch,
                    charge_driver=target.charge_driver if sw_target else None,
                )
                for direction, target, sw_target in self._delivery_routes
            ]
        else:
            self._pump_fns = None
            self._deliver_fns = None

        # -- register ownership ---------------------------------------------
        # register -> authoritative store, resolved from the partitioning
        # (not a binary "hw else sw" guess): a partition's state lives in its
        # own engine's store; a synchronizer's consumer side is
        # authoritative for reads performed by tests (its contents are what
        # the consumer still has to process).
        owner: Dict[Register, Store] = {}
        for dom, prog in programs.items():
            store = self.engines[dom].store
            for reg in prog.registers:
                owner[reg] = store
        for sync in cut:
            store = self.engines[domains[sync.domain_deq.name]].store
            for reg in sync.registers:
                owner[reg] = store
        self._owner_store = owner
        if self._sw_engines:
            self._default_store: Store = self._sw_engines[0].store
        elif ordered:
            self._default_store = self.engines[ordered[0]].store
        else:
            self._default_store = {}

        self.now: float = 0.0

    # -- store access helpers ----------------------------------------------

    def engine(self, domain: Union[Domain, str]) -> Any:
        """The engine simulating ``domain``'s partition."""
        name = domain.name if isinstance(domain, Domain) else domain
        for dom, engine in self.engines.items():
            if dom.name == name:
                return engine
        raise KeyError(f"fabric has no engine for domain {name!r}")

    def _resolve_owner(self, reg: Register) -> Store:
        parent = reg.parent
        if isinstance(parent, SyncFifo):
            dom = parent.domain_deq
        else:
            dom = effective_module_domain(parent)
        if dom is not None and not dom.is_variable:
            for d, engine in self.engines.items():
                if d == dom:
                    return engine.store
        return self._default_store

    def read(self, reg: Register) -> Any:
        """Read a register from whichever partition owns it."""
        store = self._owner_store.get(reg)
        if store is None:
            store = self._owner_store[reg] = self._resolve_owner(reg)
        return store[reg]

    def fifo_contents(self, fifo: Fifo) -> Tuple[Any, ...]:
        """Contents of a FIFO in the partition that owns it."""
        return tuple(self.read(fifo.data))

    # -- transport ----------------------------------------------------------

    def _pump_transport(self, now: float) -> bool:
        """Launch transfers from producer-side endpoints whenever credits allow."""
        pumps = self._pump_fns
        if pumps is not None:
            progress = False
            for pump in pumps:
                progress |= pump(now)
            return progress
        # Reference (interpreted) transport: per-synchronizer bookkeeping,
        # marshaling and draining one element at a time through the plain
        # marshal functions (the semantic oracle the compiled closures'
        # layout-compiled encoders are tested against).
        progress = False
        for sync, vc, producer_engine, producer_store, consumer_store, direction, sw_producer in self._routes:
            if not producer_store[sync.data]:
                continue
            if sync.data in producer_engine.locked_registers():
                # An in-flight rule will commit a deferred update to this
                # endpoint; draining it now would be clobbered by that commit.
                continue
            while producer_store[sync.data]:
                consumer_occupancy = len(consumer_store[sync.data])
                if consumer_occupancy + vc.in_flight >= sync.depth:
                    vc.note_credit_stall()
                    break
                vc.credits = sync.depth - consumer_occupancy - vc.in_flight
                item = producer_store[sync.data][0]
                producer_store[sync.data] = tuple(producer_store[sync.data][1:])
                words = marshal_message(vc.vc_id, sync.ty, item, vc.word_bits)
                direction.send_words(vc.vc_id, words, now)
                vc.on_send()
                if sw_producer:
                    # The processor spends time marshaling and driving the DMA.
                    producer_engine.charge_driver(vc.words_per_element, now)
                progress = True
        return progress

    def _deliver_due(self, now: float) -> bool:
        delivers = self._deliver_fns
        if delivers is not None:
            progress = False
            for deliver_due in delivers:
                progress |= deliver_due(now)
            return progress
        progress = False
        by_id = self.vcs.by_id
        for direction, target, sw_target in self._delivery_routes:
            pool = direction.pool
            if not pool.pending:
                continue
            while True:
                slot = pool.pop_due(now)
                if slot is None:
                    break
                slot_vc_id, words, _due = slot
                vc = by_id(slot_vc_id)
                # Unframe and decode the wire words through the plain
                # marshal functions, validating the header as a real
                # demarshaler would.
                header_vc_id, value = demarshal_message(vc.sync.ty, words, vc.word_bits)
                if header_vc_id != slot_vc_id:
                    raise SimulationError(
                        f"link {direction.name}: message header names vc "
                        f"{header_vc_id} but the transport launched it on vc {slot_vc_id}"
                    )
                target.deliver(vc.sync.data, value, now)
                vc.on_deliver()
                if sw_target:
                    # Demarshaling / copy out of the DMA buffer costs CPU time.
                    target.charge_driver(vc.words_per_element, now)
                progress = True
        return progress

    # -- main loop ------------------------------------------------------------

    def run(
        self,
        done: Callable[["CosimFabric"], bool],
        max_cycles: float = 100_000_000.0,
        max_iterations: int = 5_000_000,
    ) -> CosimResult:
        """Run until ``done(self)`` or until no further progress is possible."""
        completed = False
        iterations = 0
        hw_engines = self._hw_engines
        sw_engines = self._sw_engines
        while self.now <= max_cycles and iterations < max_iterations:
            iterations += 1
            if done(self):
                completed = True
                break

            progress = False
            progress |= self._deliver_due(self.now)
            for engine in hw_engines:
                progress |= engine.step_cycle(self.now)
            for engine in sw_engines:
                progress |= engine.step(self.now)
            progress |= self._pump_transport(self.now)

            if progress:
                self.now += 1.0
                continue

            next_times = [
                t
                for t in (
                    self.topology.next_delivery_time(),
                    *(engine.next_completion_time() for engine in hw_engines),
                    *(engine.next_event_time(self.now) for engine in sw_engines),
                )
                if t is not None
            ]
            if not next_times:
                # Quiescent: either finished (checked at loop top) or deadlocked.
                completed = done(self)
                break
            self.now = max(self.now + 1.0, min(next_times))
        else:
            raise SimulationError(
                f"co-simulation of {self.design.name} exceeded its cycle/iteration budget "
                f"(now={self.now}, iterations={iterations})"
            )

        if not completed:
            completed = done(self)
        return self._result(completed)

    # -- result assembly -----------------------------------------------------

    def _result(self, completed: bool) -> CosimResult:
        fire_counts: Dict[str, int] = {}
        for engine in self._hw_engines:
            fire_counts.update(engine.fire_counts)
        for engine in self._sw_engines:
            fire_counts.update(engine.fire_counts)
        vc_stats = {
            vc.sync.name: {
                "messages": vc.stats.messages_sent,
                "words": vc.stats.words_sent,
                "credit_stalls": vc.stats.stalled_on_credit,
            }
            for vc in self.vcs
        }
        domain_stats: Dict[str, Dict[str, Any]] = {}
        for dom in self.domains:
            engine = self.engines[dom]
            if isinstance(engine, HwEngine):
                domain_stats[dom.name] = {
                    "kind": "hw",
                    "firings": engine.total_firings,
                    "active_cycles": engine.cycles_active,
                }
            else:
                domain_stats[dom.name] = {
                    "kind": "sw",
                    "firings": engine.total_firings,
                    "busy_fpga_cycles": engine.busy_fpga_cycles,
                    "cpu_cycles": engine.cpu_cycles_total,
                    "guard_failures": engine.guard_failures,
                }
        sw = self._sw_engines
        hw = self._hw_engines
        return CosimResult(
            design_name=self.design.name,
            fpga_cycles=self.now,
            completed=completed,
            sw_busy_fpga_cycles=sum(e.busy_fpga_cycles for e in sw),
            sw_cpu_cycles=sum(e.cpu_cycles_total for e in sw),
            sw_cpu_cycles_wasted=sum(e.cpu_cycles_wasted for e in sw),
            sw_cpu_cycles_driver=sum(e.cpu_cycles_driver for e in sw),
            sw_firings=sum(e.total_firings for e in sw),
            sw_guard_failures=sum(e.guard_failures for e in sw),
            hw_firings=sum(e.total_firings for e in hw),
            hw_active_cycles=sum(e.cycles_active for e in hw),
            channel_messages=self.topology.total_messages,
            channel_words=self.topology.total_words,
            channel_busy_cycles=self.topology.total_busy_cycles,
            fire_counts=fire_counts,
            vc_stats=vc_stats,
            domain_stats=domain_stats,
        )


class Cosimulator(CosimFabric):
    """The classic two-partition HW/SW co-simulation view.

    A thin compatibility wrapper over :class:`CosimFabric`: exactly one
    hardware and one software engine, joined by a full-duplex channel whose
    two directions are the fabric links ``sw -> hw`` (``to_hw``) and
    ``hw -> sw`` (``to_sw``).  Results are bitwise identical to the
    pre-fabric two-partition implementation (pinned by
    ``tests/golden/fig13_cosim.json``).
    """

    def __init__(
        self,
        design: Design,
        platform: Optional[Platform] = None,
        config: Optional[OptimizationConfig] = None,
        hw_domain: Domain = HW,
        sw_domain: Domain = SW,
        default_domain: Optional[Domain] = None,
        burst: bool = True,
        max_loop_iterations: int = 1_000_000,
        backend: str = "interp",
        transport: Optional[str] = None,
    ):
        platform = platform or Platform.ml507()
        # Both directions always exist (the physical channel is full duplex
        # whether or not traffic uses both senses), registered to_hw first --
        # delivery sweeps visit them in that order.
        topology = Topology()
        to_hw = topology.add_link(
            sw_domain.name, hw_domain.name, platform.channel, burst, name="to_hw"
        )
        to_sw = topology.add_link(
            hw_domain.name, sw_domain.name, platform.channel, burst, name="to_sw"
        )
        super().__init__(
            design,
            platform=platform,
            config=config,
            engine_kinds={hw_domain.name: "hw", sw_domain.name: "sw"},
            default_domain=default_domain if default_domain is not None else sw_domain,
            burst=burst,
            max_loop_iterations=max_loop_iterations,
            backend=backend,
            transport=transport,
            topology=topology,
            required_domains=[hw_domain, sw_domain],
        )
        self.hw_domain = hw_domain
        self.sw_domain = sw_domain
        self.hw: HwEngine = self.engine(hw_domain)
        self.sw: SwEngine = self.engine(sw_domain)
        self.store_hw: Store = self.hw.store
        self.store_sw: Store = self.sw.store
        self.channel = DuplexChannel.from_directions(to_hw, to_sw)

    def read_sw(self, reg: Register) -> Any:
        """Read a register as seen by the software partition."""
        return self.store_sw[reg]

    def read_hw(self, reg: Register) -> Any:
        """Read a register as seen by the hardware partition."""
        return self.store_hw[reg]
