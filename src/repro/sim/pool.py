"""A unified work-stealing worker pool over resident fabrics.

Every kind of parallel work the simulator fans out -- sweep points
(:class:`~repro.sim.shard.SweepTask`), independent groups of one design
(:class:`~repro.sim.shard.GroupTask`) and live serving requests
(:class:`~repro.sim.serve.Request`) -- reduces to the same worker-side
shape: *elaborate a workload (once), run something on its fabric, report
plain data*.  This module is that single submission path:

* a :class:`PoolTask` names a picklable module-level builder plus its
  arguments (the compile-once / run-anywhere contract of
  :mod:`repro.sim.shard`: workers never receive an elaborated design --
  foreign-kernel closures do not pickle) and one of three task kinds;
* :func:`run_pool` fans tasks out over ``fork``-context worker processes
  pulling from one shared queue -- **work stealing**: a worker that
  finishes early takes the next pending task instead of idling behind a
  static chunking -- and degrades to in-process serial execution (the same
  code path) when pools are unavailable;
* each worker keeps a small cache of **resident**
  :class:`~repro.sim.serve.FabricServer`\\ s keyed by builder spec, so
  repeated tasks against one design elaborate once and run from the
  resident fabric via snapshot/restore (bitwise identical to fresh
  elaboration -- the serving layer's pinned invariant).

Result ordering is deterministic: outcomes are returned in task-submission
order regardless of which worker ran what, so sweep reassembly and group
merging inherit the pool's ordering rule unchanged.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import SimulationError
from repro.sim.cosim import CosimResult
from repro.sim.serve import FabricServer, Request

#: Task kinds the pool executes.
POOL_TASK_KINDS = ("run", "group", "request")

#: How many resident servers one worker keeps before evicting the least
#: recently used (overridable via ``REPRO_POOL_RESIDENTS``).
DEFAULT_RESIDENT_LIMIT = 4

#: Give up on a wedged pool after this many seconds without any result.
_POOL_STALL_SECONDS = 600.0


@dataclass
class PoolTask:
    """One unit of pool work: a builder spec plus what to run on its fabric.

    ``kind`` selects the worker-side action:

    * ``"run"`` -- run the whole fabric to the workload's own ``cosim_done``
      (a sweep point);
    * ``"group"`` -- run group ``group_index`` of the fabric and report the
      group's observed finals (one shard of a grouped run);
    * ``"request"`` -- serve ``request`` on the resident fabric (one unit of
      streamed traffic).

    ``fabric_kind`` follows :class:`~repro.sim.serve.FabricServer`:
    ``"auto"`` maps to the two-partition ``Cosimulator`` unless explicit
    ``engine_kinds`` are given; group tasks always use ``"fabric"``.
    """

    name: str
    builder: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    backend: str = "compiled"
    transport: Optional[str] = None
    engine_kinds: Optional[Dict[str, str]] = None
    max_cycles: float = 500_000_000.0
    kind: str = "run"
    group_index: int = 0
    request: Optional[Request] = None
    fabric_kind: str = "auto"
    scheduler: str = "grouped"

    def __post_init__(self):
        if self.kind not in POOL_TASK_KINDS:
            raise ValueError(
                f"unknown pool task kind {self.kind!r} (expected one of {POOL_TASK_KINDS})"
            )
        if self.kind == "request" and self.request is None:
            raise ValueError(f"pool task {self.name!r} has kind='request' but no request")


@dataclass
class PoolOutcome:
    """Plain-data outcome of one pool task."""

    name: str
    kind: str
    result: CosimResult
    #: Group tasks only: final values of the done predicate's observed
    #: registers the group owns, keyed by register full name.
    observations: Optional[Dict[str, Any]]
    #: Request tasks only: the request's named output registers.
    outputs: Optional[Dict[str, Any]]
    wall_seconds: float
    pid: int
    #: Whether this task paid elaboration (False: served by a resident
    #: fabric the worker already held for the same builder spec).
    elaborated: bool


# --------------------------------------------------------------------------
# per-worker resident servers
# --------------------------------------------------------------------------

#: builder-spec key -> resident server, least recently used first.  One per
#: process: forked workers start with the parent's (usually empty) cache and
#: diverge from there.
_RESIDENT: "OrderedDict[tuple, FabricServer]" = OrderedDict()


def resident_limit() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_POOL_RESIDENTS", DEFAULT_RESIDENT_LIMIT)))
    except ValueError:
        return DEFAULT_RESIDENT_LIMIT


def _spec_key(task: PoolTask) -> tuple:
    """The elaboration identity of a task: everything the fabric's shape
    depends on (and nothing that can vary per run, like max_cycles)."""
    builder = task.builder
    return (
        getattr(builder, "__module__", None),
        getattr(builder, "__qualname__", repr(builder)),
        repr(task.args),
        repr(sorted(task.kwargs.items())),
        task.backend,
        task.transport,
        repr(sorted((task.engine_kinds or {}).items())),
        task.fabric_kind,
    )


def clear_residents() -> None:
    """Drop this process's resident servers (test isolation hook)."""
    _RESIDENT.clear()


def _resident_server(task: PoolTask) -> Tuple[FabricServer, bool]:
    """Get (or elaborate) the resident server for a task's builder spec."""
    key = _spec_key(task)
    server = _RESIDENT.get(key)
    if server is not None:
        _RESIDENT.move_to_end(key)
        return server, False
    server = FabricServer(
        task.builder,
        task.args,
        dict(task.kwargs),
        backend=task.backend,
        transport=task.transport,
        engine_kinds=dict(task.engine_kinds) if task.engine_kinds else None,
        fabric_kind=task.fabric_kind,
        scheduler=task.scheduler,
        max_cycles=task.max_cycles,
    )
    _RESIDENT[key] = server
    limit = resident_limit()
    while len(_RESIDENT) > limit:
        _RESIDENT.popitem(last=False)
    return server, True


def run_pool_task(task: PoolTask) -> PoolOutcome:
    """Execute one pool task in the current process against a resident fabric.

    This is the single worker-side execution path of sweeps, grouped runs
    and request serving; the serial fallback of :func:`run_pool` calls it
    directly, so parallel and serial execution share every code path after
    dispatch.
    """
    t0 = time.perf_counter()
    server, elaborated = _resident_server(task)
    # Run-scoped knobs are not part of the elaboration identity; pin them
    # per task so a resident serves mixed budgets/schedulers correctly.
    server.max_cycles = task.max_cycles
    server.scheduler = task.scheduler
    observations: Optional[Dict[str, Any]] = None
    outputs: Optional[Dict[str, Any]] = None
    if task.kind == "run":
        result = server.serve(Request(name=task.name)).result
    elif task.kind == "group":
        fabric = server.fabric
        try:
            result = fabric.run_group(
                task.group_index, server.workload.cosim_done, max_cycles=task.max_cycles
            )
            observations = fabric.group_observations(task.group_index)
        finally:
            server.reset()
    else:  # "request"
        served = server.serve(task.request)
        result = served.result
        outputs = served.outputs
    return PoolOutcome(
        name=task.name,
        kind=task.kind,
        result=result,
        observations=observations,
        outputs=outputs,
        wall_seconds=time.perf_counter() - t0,
        pid=os.getpid(),
        elaborated=elaborated,
    )


# --------------------------------------------------------------------------
# the pool
# --------------------------------------------------------------------------


def _worker_loop(task_queue, result_queue) -> None:
    """Worker main: steal tasks until the stop sentinel arrives."""
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, task = item
        try:
            payload = (index, True, run_pool_task(task))
        except BaseException as exc:  # noqa: BLE001 -- report, parent re-raises
            payload = (index, False, _picklable_error(exc))
        result_queue.put(payload)


def _picklable_error(exc: BaseException) -> BaseException:
    """An exception safe to ship over a result queue."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return SimulationError(f"{type(exc).__name__}: {exc}")


def _collect_pool_results(
    result_queue,
    workers,
    n_tasks: int,
    stall_seconds: float = _POOL_STALL_SECONDS,
) -> Tuple[Dict[int, Tuple[bool, Any]], Optional[BaseException]]:
    """Collect ``(index, ok, payload)`` triples until every task reported.

    Returns ``(received, failure)`` where ``received`` maps task index to
    its ``(ok, payload)`` pair.  Factored out of :func:`run_pool` (and
    duck-typed: anything with ``get(timeout=)`` / ``is_alive()`` /
    ``exitcode`` will do) so the worker-shutdown edge cases are
    unit-testable without real processes.

    The subtle edge is telling *clean* worker exit apart from a dead pool:
    a worker exits the moment it consumes its stop sentinel, and a
    multiprocessing queue flushes through a feeder thread, so the parent
    can observe "no worker alive" while completed results are still in
    flight.  Seeing dead workers therefore first drains the queue with a
    grace timeout; only results that are *still* missing afterwards mean
    the pool died, and the error says whether any worker actually crashed
    (nonzero exit code) or the results were simply lost.
    """
    received: Dict[int, Tuple[bool, Any]] = {}
    failure: Optional[BaseException] = None

    def record(index, ok, payload):
        nonlocal failure
        received[index] = (ok, payload)
        if not ok and failure is None:
            failure = payload

    stalled = 0.0
    while len(received) < n_tasks:
        try:
            index, ok, payload = result_queue.get(timeout=1.0)
        except queue.Empty:
            if any(worker.is_alive() for worker in workers):
                stalled += 1.0
                if stalled >= stall_seconds:
                    failure = failure or SimulationError(
                        f"worker pool stalled with {len(received)}/{n_tasks} tasks done"
                    )
                    break
                continue
            # Every worker has exited.  A clean shutdown (all sentinels
            # consumed, exit code 0) may still have results buffered in the
            # queue's feeder pipe: drain with a grace timeout before
            # concluding anything died.
            while len(received) < n_tasks:
                try:
                    index, ok, payload = result_queue.get(timeout=1.0)
                except queue.Empty:
                    break
                record(index, ok, payload)
            if len(received) < n_tasks and failure is None:
                crashed = sorted(
                    {worker.exitcode for worker in workers} - {0, None}
                )
                detail = (
                    f"worker exit codes {crashed}"
                    if crashed
                    else "all workers exited cleanly but results are missing"
                )
                failure = SimulationError(
                    f"worker pool died after {len(received)}/{n_tasks} tasks "
                    f"({detail})"
                )
            break
        stalled = 0.0
        record(index, ok, payload)
    return received, failure


def run_pool(
    tasks: List[PoolTask],
    processes: Optional[int] = None,
    mp_context: Optional[str] = None,
) -> Tuple[List[PoolOutcome], int]:
    """Run tasks on a work-stealing worker pool; returns ``(outcomes, processes)``.

    Outcomes are in task-submission order.  ``processes=None`` uses one
    worker per CPU (capped at the task count); ``processes<=1`` (or a
    single task) runs serially in this process through the identical
    :func:`run_pool_task` path, which is also the automatic fallback when
    the platform cannot start worker processes.  ``mp_context`` picks the
    multiprocessing start method (``"fork"`` preferred: workloads built
    from closures elaborate identically in forked children).
    """
    tasks = list(tasks)
    if processes is None:
        processes = min(len(tasks), os.cpu_count() or 1)
    processes = max(1, min(processes, len(tasks))) if tasks else 1
    if processes <= 1 or len(tasks) <= 1:
        return [run_pool_task(task) for task in tasks], 1

    if mp_context is None:
        mp_context = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    ctx = multiprocessing.get_context(mp_context)
    try:
        task_queue = ctx.Queue()
        result_queue = ctx.Queue()
        workers = [
            ctx.Process(target=_worker_loop, args=(task_queue, result_queue), daemon=True)
            for _ in range(processes)
        ]
        for worker in workers:
            worker.start()
    except (OSError, multiprocessing.ProcessError):
        # Pool creation can fail in constrained sandboxes; degrade to serial.
        return [run_pool_task(task) for task in tasks], 1

    for item in enumerate(tasks):
        task_queue.put(item)
    for _ in workers:
        task_queue.put(None)

    received, failure = _collect_pool_results(result_queue, workers, len(tasks))
    outcomes: List[Optional[PoolOutcome]] = [None] * len(tasks)
    for index, (ok, payload) in received.items():
        if ok:
            outcomes[index] = payload
    for worker in workers:
        worker.join(timeout=5.0)
        if worker.is_alive():
            worker.terminate()
    if failure is not None:
        raise failure
    return outcomes, processes
