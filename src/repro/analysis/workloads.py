"""The shipped-workload catalog the lint CLI and the clean-pass tests share.

Each entry is the same picklable builder-spec contract the pool and the
sharding layer use: a module-level builder plus plain-data args, producing
a workload object with a ``.design`` (the catalog never imports the app
modules until a workload is actually built, keeping ``python -m
repro.analysis --list`` instant).

The catalog is the definition of "every shipped workload" in the
acceptance criteria: the Figure 13 Vorbis partitions A-F, the Figure 14
ray-tracer partitions A-D, the multi-domain placements G/H and the
multi-group (independently clocked pipelines) workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Dict, List, Tuple


@dataclass(frozen=True)
class WorkloadSpec:
    """One shipped workload: where to build it and how (plain data)."""

    name: str
    module: str
    builder: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self):
        """Elaborate the workload (imports the app module lazily)."""
        fn = getattr(import_module(self.module), self.builder)
        return fn(*self.args, **dict(self.kwargs))


def shipped_workloads() -> List[WorkloadSpec]:
    """Every shipped workload, in report order."""
    specs: List[WorkloadSpec] = []
    for letter in "ABCDEF":
        specs.append(
            WorkloadSpec(
                name=f"vorbis_{letter}",
                module="repro.apps.vorbis.partitions",
                builder="build_partition",
                args=(letter,),
            )
        )
    for letter in "GH":
        specs.append(
            WorkloadSpec(
                name=f"vorbis_{letter}",
                module="repro.apps.vorbis.partitions",
                builder="build_multi_partition",
                args=(letter,),
            )
        )
    specs.append(
        WorkloadSpec(
            name="vorbis_mg_BC",
            module="repro.apps.vorbis.partitions",
            builder="build_group_partition",
            args=("BC",),
        )
    )
    specs.append(
        WorkloadSpec(
            name="vorbis_mg_BCF",
            module="repro.apps.vorbis.partitions",
            builder="build_group_partition",
            args=("BCF",),
        )
    )
    for letter in "ABCD":
        specs.append(
            WorkloadSpec(
                name=f"raytracer_{letter}",
                module="repro.apps.raytracer.partitions",
                builder="build_partition",
                args=(letter,),
            )
        )
    return specs


def workload_by_name(name: str) -> WorkloadSpec:
    for spec in shipped_workloads():
        if spec.name == name:
            return spec
    known = ", ".join(s.name for s in shipped_workloads())
    raise KeyError(f"unknown workload {name!r}; shipped workloads: {known}")
