"""The static design verifier: checks 1-3 plus orchestration.

Takes an elaborated :class:`~repro.core.module.Design` (optionally an
already computed :class:`~repro.core.partition.Partitioning`) and emits
structured :class:`~repro.analysis.diagnostics.Diagnostic`\\ s **without
executing a single rule**:

* **domain isolation / races** (``REPRO-E001``/``E002``) -- the full
  diagnostic generalisation of ``core/partition.py:_check_isolation``:
  every register in a rule's read/write set must be owned by the rule's
  domain or reached through a synchronizer on the cut, and no register may
  be written from two domains;
* **channel deadlock** (``REPRO-E003``) -- the credit-dependency graph
  over the cut: channel ``A`` depends on channel ``B`` when some rule
  dequeues ``A`` and enqueues ``B`` in one atomic action (draining ``A``
  then requires credit on ``B``); a cycle means every channel's drain
  waits on another channel's credit window, and since every window is
  finite (``SyncFifo.depth``), each edge can credit-stall;
* **dead rules** (``REPRO-W004``/``W005``) -- guards that fold to constant
  false after the Section 6.3 optimisation pipeline, and rules whose guard
  support (their register read set) is never written by any rule: the
  static complement of the dirty-set wakeup index in
  :mod:`repro.core.scheduler` (such a rule, once asleep, can never be
  woken).

Unlike ``partition_design`` -- which *raises* on the first isolation
violation -- the verifier computes rule domains and the cut itself, so it
can diagnose designs the partitioner would reject, and report every
finding at once.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, filter_suppressed, sort_diagnostics
from repro.analysis.purity import check_kernel_purity
from repro.core.analysis import (
    primitive_method_calls,
    rule_read_set,
    rule_write_set,
)
from repro.core.domains import (
    SW,
    Domain,
    DomainError,
    infer_rule_domain,
    register_domain,
)
from repro.core.errors import BCLError
from repro.core.expr import BINARY_OPS, Const, Expr, Mux, UNARY_OPS, UnOp, BinOp
from repro.core.module import Design, Register, Rule
from repro.core.optimize import OptimizationConfig, compile_rule
from repro.core.partition import Partitioning
from repro.core.synchronizers import SyncFifo, cross_domain_synchronizers


class VerificationError(BCLError):
    """Strict mode (``verify=True``) found error-severity diagnostics."""

    def __init__(self, diagnostics: List[Diagnostic], context: str = ""):
        self.diagnostics = list(diagnostics)
        lines = [d.render() for d in self.diagnostics]
        prefix = f"{context}: " if context else ""
        super().__init__(
            f"{prefix}static verification found {len(lines)} diagnostic(s):\n"
            + "\n".join(lines)
        )


# -- constant folding over guard expressions ---------------------------------


def const_value(expr: Expr) -> Optional[Any]:
    """The constant value of an expression, or ``None`` if not constant.

    A tiny fold over the operator tables of :mod:`repro.core.expr`; it only
    needs to be strong enough to expose guards that the Section 6.3 lifting
    already reduced to constants (``Const`` leaves combined by pure
    operators).  ``None`` means "not statically constant", never "false".
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, UnOp):
        operand = const_value(expr.operand)
        if operand is None:
            return None
        try:
            return UNARY_OPS[expr.op](operand)
        except Exception:
            return None
    if isinstance(expr, BinOp):
        left = const_value(expr.left)
        if left is None:
            return None
        # Respect short-circuit semantics before evaluating the right side.
        if expr.op == "&&" and not left:
            return False
        if expr.op == "||" and left:
            return True
        right = const_value(expr.right)
        if right is None:
            return None
        try:
            return BINARY_OPS[expr.op](left, right)
        except Exception:
            return None
    if isinstance(expr, Mux):
        cond = const_value(expr.cond)
        if cond is None:
            return None
        return const_value(expr.then if cond else expr.orelse)
    return None


# -- check 1: domain isolation / races ---------------------------------------


def _infer_domains(
    design: Design, default_domain: Optional[Domain]
) -> Tuple[Dict[Rule, Domain], List[Diagnostic]]:
    """Per-rule domain inference that reports instead of raising.

    A rule the type system rejects (it spans two domains, i.e. reaches
    state it does not own without a synchronizer) becomes a ``REPRO-E001``
    diagnostic and is excluded from the downstream checks.
    """
    domains: Dict[Rule, Domain] = {}
    diags: List[Diagnostic] = []
    for rule in design.all_rules():
        try:
            domains[rule] = infer_rule_domain(rule, default_domain)
        except DomainError as err:
            diags.append(
                Diagnostic(
                    code="REPRO-E001",
                    location=f"rule {rule.full_name}",
                    message=str(err),
                    hint="route the cross-domain access through a SyncFifo "
                    "synchronizer, or move the rule into the owning domain",
                )
            )
    return domains, diags


def check_isolation(
    design: Design,
    rule_domains: Dict[Rule, Domain],
    cut: List[SyncFifo],
) -> List[Diagnostic]:
    """Checks 1a/1b: foreign-domain access and multi-domain write races."""
    cut_set = set(cut)
    diags: List[Diagnostic] = []
    readers: Dict[Register, Dict[str, List[str]]] = {}
    writers: Dict[Register, Dict[str, List[str]]] = {}
    for rule, domain in sorted(rule_domains.items(), key=lambda kv: kv[0].full_name):
        reads, writes = rule_read_set(rule), rule_write_set(rule)
        for reg in reads | writes:
            if reg.parent in cut_set:
                continue  # synchronizer state: the legal boundary
            table = writers if reg in writes else readers
            table.setdefault(reg, {}).setdefault(domain.name, []).append(rule.full_name)

    for reg in sorted(set(readers) | set(writers), key=lambda r: r.full_name):
        writing = writers.get(reg, {})
        touching = {**{d: r for d, r in readers.get(reg, {}).items()}, **writing}
        owner = register_domain(reg)
        if len(writing) > 1:
            detail = "; ".join(
                f"{dom} writes via {', '.join(sorted(rules))}"
                for dom, rules in sorted(writing.items())
            )
            diags.append(
                Diagnostic(
                    code="REPRO-E002",
                    location=f"register {reg.full_name}",
                    message=f"written from {len(writing)} domains without a "
                    f"synchronizer: {detail}",
                    hint="give each domain its own copy of the state and join "
                    "them with a SyncFifo, or move all writers into one domain",
                )
            )
        elif len(touching) > 1:
            detail = "; ".join(
                f"{dom} via {', '.join(sorted(rules))}"
                for dom, rules in sorted(touching.items())
            )
            diags.append(
                Diagnostic(
                    code="REPRO-E001",
                    location=f"register {reg.full_name}",
                    message=f"shared by {len(touching)} domains without a "
                    f"synchronizer (owner: "
                    f"{owner.name if owner else 'unannotated'}): {detail}",
                    hint="cross-domain data must flow through a SyncFifo on "
                    "the cut; direct foreign reads bypass the interface",
                )
            )
    return diags


# -- check 2: channel deadlock ----------------------------------------------


def _rule_channel_sets(
    rule: Rule, cut_set: Set[SyncFifo]
) -> Tuple[Set[SyncFifo], Set[SyncFifo]]:
    """The cut channels a rule drains (deq) and fills (enq), atomically."""
    drains: Set[SyncFifo] = set()
    fills: Set[SyncFifo] = set()
    for module, methods in primitive_method_calls(rule).items():
        if not isinstance(module, SyncFifo) or module not in cut_set:
            continue
        if "deq" in methods:
            drains.add(module)
        if "enq" in methods:
            fills.add(module)
    return drains, fills


def check_channel_deadlock(
    design: Design,
    rule_domains: Dict[Rule, Domain],
    cut: List[SyncFifo],
    link_params: Optional[Dict[Tuple[str, str], Any]] = None,
) -> List[Diagnostic]:
    """Check 2: cycles in the credit-dependency graph of the cut.

    Nodes are cut channels; channel ``a`` has an edge to channel ``b`` when
    an atomic rule dequeues ``a`` and enqueues ``b`` -- draining ``a`` then
    requires a free credit on ``b``, so ``b``'s credit window
    (``depth``, the window the virtual-channel flow control grants) gates
    ``a``'s progress.  In a cycle every channel's drain transitively waits
    on its own credit window; once the windows fill (any injector rule that
    enqueues into the cycle without dequeuing from it can fill them), no
    rule in the cycle can ever fire again.
    """
    cut_set = set(cut)
    edges: Dict[SyncFifo, Set[SyncFifo]] = {sync: set() for sync in cut}
    edge_rules: Dict[Tuple[SyncFifo, SyncFifo], List[str]] = {}
    injectors: Dict[SyncFifo, List[str]] = {}
    for rule in sorted(rule_domains, key=lambda r: r.full_name):
        drains, fills = _rule_channel_sets(rule, cut_set)
        for a in drains:
            for b in fills:
                edges[a].add(b)
                edge_rules.setdefault((a, b), []).append(rule.full_name)
        if fills and not drains:
            for b in fills:
                injectors.setdefault(b, []).append(rule.full_name)

    # Tarjan SCCs, iterative, over the deterministic cut order.
    index_of: Dict[SyncFifo, int] = {}
    lowlink: Dict[SyncFifo, int] = {}
    on_stack: Set[SyncFifo] = set()
    stack: List[SyncFifo] = []
    sccs: List[List[SyncFifo]] = []
    counter = [0]

    def strongconnect(root: SyncFifo) -> None:
        work = [(root, iter(sorted(edges[root], key=lambda s: s.full_name)))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append(
                        (succ, iter(sorted(edges[succ], key=lambda s: s.full_name)))
                    )
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[SyncFifo] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is node:
                        break
                sccs.append(component)

    for sync in cut:
        if sync not in index_of:
            strongconnect(sync)

    diags: List[Diagnostic] = []
    overrides = link_params or {}
    for component in sccs:
        members = sorted(component, key=lambda s: s.full_name)
        cyclic = len(members) > 1 or members[0] in edges[members[0]]
        if not cyclic:
            continue
        member_set = set(members)
        windows = ", ".join(
            f"{s.full_name}={s.depth}" for s in members
        )
        couplings = sorted(
            f"{a.name}->{b.name} via {', '.join(rules)}"
            for (a, b), rules in edge_rules.items()
            if a in member_set and b in member_set
        )
        pumps = sorted(
            {r for s in members for r in injectors.get(s, [])}
        )
        routes = sorted(
            {(s.domain_enq.name, s.domain_deq.name) for s in members}
        )
        route_note = ", ".join(f"{src}->{dst}" for src, dst in routes)
        if any((src, dst) in overrides for src, dst in routes):
            route_note += " (link_params-overridden)"
        message = (
            f"credit-dependency cycle over routes [{route_note}]: "
            f"{'; '.join(couplings)}; every edge can credit-stall "
            f"(finite windows: {windows})"
        )
        if pumps:
            message += f"; injector rules {', '.join(pumps)} can fill the cycle"
        diags.append(
            Diagnostic(
                code="REPRO-E003",
                location="channels " + ", ".join(s.full_name for s in members),
                message=message,
                hint="break the cycle by splitting the deq+enq coupling into "
                "separate rules through an internal FIFO, or size a window "
                "to bound the in-flight tokens",
            )
        )
    return diags


# -- check 3: dead rules -----------------------------------------------------


def check_dead_rules(
    design: Design,
    rule_domains: Dict[Rule, Domain],
    config: Optional[OptimizationConfig] = None,
) -> List[Diagnostic]:
    """Check 3: constant-false guards and frozen (never-woken) guards."""
    config = config or OptimizationConfig.all()
    rules = sorted(rule_domains, key=lambda r: r.full_name)
    written: Set[Register] = set()
    for rule in rules:
        written |= rule_write_set(rule)

    diags: List[Diagnostic] = []
    for rule in rules:
        compiled = compile_rule(rule, config)
        guard_const = const_value(compiled.guard)
        if guard_const is not None and not guard_const:
            diags.append(
                Diagnostic(
                    code="REPRO-W004",
                    location=f"rule {rule.full_name}",
                    message="guard folds to constant false after optimisation; "
                    "the rule can never fire",
                    hint="delete the rule or fix the guard expression",
                )
            )
            continue
        may_reject = compiled.can_fail or guard_const is None
        if not may_reject:
            continue  # guard is constantly true: the rule always fires
        support = rule_read_set(rule)
        if support & written:
            continue  # some input can change: the wakeup index can wake it
        diags.append(
            Diagnostic(
                code="REPRO-W005",
                location=f"rule {rule.full_name}",
                message="guard can reject but no rule ever writes its support "
                f"({', '.join(sorted(r.full_name for r in support)) or 'empty read set'}); "
                "the dirty-set wakeup index would never wake it once asleep",
                hint="feed the guard from rule-written state, or drop the "
                "guard if the rule should always fire",
            )
        )
    return diags


# -- orchestration -----------------------------------------------------------


def verify_design(
    design: Design,
    default_domain: Optional[Domain] = SW,
    link_params: Optional[Dict[Tuple[str, str], Any]] = None,
    config: Optional[OptimizationConfig] = None,
    suppress: Tuple[str, ...] = (),
) -> List[Diagnostic]:
    """Run every design-level static check; returns sorted diagnostics.

    Works on designs the partitioner would reject (it computes rule
    domains and the cut itself), so seeded-defect corpora and autotuner
    candidates can be diagnosed without crashing.
    """
    rule_domains, diags = _infer_domains(design, default_domain)
    cut = cross_domain_synchronizers(design)
    diags += check_isolation(design, rule_domains, cut)
    diags += check_channel_deadlock(design, rule_domains, cut, link_params)
    diags += check_dead_rules(design, rule_domains, config)
    diags += check_kernel_purity(design)
    return sort_diagnostics(filter_suppressed(diags, suppress))


def verify_partitioning(
    partitioning: Partitioning,
    link_params: Optional[Dict[Tuple[str, str], Any]] = None,
    config: Optional[OptimizationConfig] = None,
    suppress: Tuple[str, ...] = (),
) -> List[Diagnostic]:
    """Verify an already partitioned design (domains are stamped on rules)."""
    return verify_design(
        partitioning.design,
        default_domain=SW,
        link_params=link_params,
        config=config,
        suppress=suppress,
    )


def require_clean(
    diagnostics: List[Diagnostic], context: str = "", errors_only: bool = True
) -> None:
    """Raise :class:`VerificationError` when strict mode must fail.

    ``errors_only`` (the default) lets warnings through -- the strict mode
    wired into elaboration and codegen rejects designs that are *wrong*,
    not designs with dead code; the CLI is the place that fails on any
    non-suppressed diagnostic.
    """
    failing = [d for d in diagnostics if not errors_only or d.severity == "error"]
    if failing:
        raise VerificationError(failing, context)
