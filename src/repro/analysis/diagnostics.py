"""Structured diagnostics for the static design verifier.

Every check in :mod:`repro.analysis` reports its findings as
:class:`Diagnostic` values with a *stable* code (``REPRO-E001`` ...), a
severity derived from that code, a location (a rule, register, channel or
``Class.attr`` path), a human-readable message and a fix hint.  Codes are
part of the repo's contract: tests pin them, CI suppressions name them, and
ROADMAP.md documents the invariant each one defends -- so a code is never
renumbered or reused once released.

The registry below is the single source of truth for which codes exist;
constructing a :class:`Diagnostic` with an unknown code raises immediately,
so a typo in a check cannot silently invent a new code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

#: code -> (check name, one-line summary).  The check name groups codes by
#: analysis pass; it is what ``--suppress`` and reports key on besides the
#: code itself.
CODES: Dict[str, Tuple[str, str]] = {
    "REPRO-E001": (
        "domain-isolation",
        "state element reached from a foreign domain without a synchronizer",
    ),
    "REPRO-E002": (
        "domain-isolation",
        "state element written by rules of more than one domain (race)",
    ),
    "REPRO-E003": (
        "channel-deadlock",
        "credit-dependency cycle: every edge of the cycle can credit-stall",
    ),
    "REPRO-W004": (
        "dead-rule",
        "rule guard folds to constant false: the rule can never fire",
    ),
    "REPRO-W005": (
        "dead-rule",
        "rule guard support is never written by any rule (frozen guard)",
    ),
    "REPRO-E006": (
        "kernel-purity",
        "foreign kernel mutates global or closure state",
    ),
    "REPRO-E007": (
        "kernel-purity",
        "foreign kernel references a nondeterminism source",
    ),
    "REPRO-E008": (
        "snapshot-completeness",
        "mutable attribute not covered by the fabric snapshot",
    ),
    "REPRO-E009": (
        "snapshot-completeness",
        "snapshot tuple arity drifted from the audited coverage manifest",
    ),
}

SEVERITIES = ("error", "warning")


def severity_of(code: str) -> str:
    """Severity encoded in the code letter: ``E`` -> error, ``W`` -> warning."""
    kind = code.split("-", 1)[1][0] if "-" in code else "E"
    return "error" if kind == "E" else "warning"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding of the static verifier (plain, hashable, sortable data).

    The dataclass ordering (code, then location, then message) is the
    deterministic report order: two runs over the same elaborated design
    produce identical diagnostic lists, which the stability tests pin.
    """

    code: str
    location: str
    message: str
    hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(
                f"unknown diagnostic code {self.code!r}; register it in "
                f"repro.analysis.diagnostics.CODES (known: {sorted(CODES)})"
            )

    @property
    def check(self) -> str:
        """The analysis pass this diagnostic belongs to (e.g. ``dead-rule``)."""
        return CODES[self.code][0]

    @property
    def severity(self) -> str:
        return severity_of(self.code)

    def render(self) -> str:
        """The one-line report form: ``CODE severity location: message``."""
        line = f"{self.code} {self.severity} [{self.check}] {self.location}: {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line


def sort_diagnostics(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Deterministic report order (diagnostics are totally ordered)."""
    return sorted(diags)


def filter_suppressed(
    diags: Iterable[Diagnostic], suppress: Iterable[str] = ()
) -> List[Diagnostic]:
    """Drop diagnostics whose code *or* check name is suppressed."""
    dropped = set(suppress)
    return [d for d in diags if d.code not in dropped and d.check not in dropped]


def render_report(diags: Iterable[Diagnostic]) -> str:
    """Render a sorted multi-line report; empty string when clean."""
    return "\n".join(d.render() for d in sort_diagnostics(diags))
