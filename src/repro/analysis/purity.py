"""Foreign-kernel purity analysis (check 4 of the static verifier).

Foreign kernels -- the Python functions wrapped in
:class:`~repro.core.expr.KernelCall` nodes -- are *assumed* pure by three
separate layers of the simulator: the hardware engine re-evaluates a rule's
kernels freely within a cycle, the dirty-set wakeup index assumes a rule's
observable inputs are exactly its register read set, and the memoised
kernel result cache (:mod:`repro.core.kernelcompile`) shares cached results
between calls with equal raw inputs.  None of those layers can *check* the
assumption; this pass can, statically, by parsing each registered kernel's
source with :mod:`ast` and rejecting

* mutation of global or closure state (``global``/``nonlocal``
  declarations, assignments through names the kernel does not bind
  locally, and mutating method calls on such names), and
* nondeterminism sources (the ``random`` and ``time`` modules and the
  ``id`` builtin -- address-dependent values differ across processes, which
  would break the bitwise process-parallel equivalences).

Reads of closure/global state are allowed: kernels routinely close over
elaboration-time constants (formats, lookup tables, params), which is pure.
Kernels whose source is unavailable (C builtins, interactively defined
functions) are skipped -- the pass is best-effort by construction and must
never fail a clean design for tooling reasons.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.core.action import MethodCallA
from repro.core.expr import KernelCall, MethodCallE
from repro.core.module import Design, Rule

#: Modules/builtins whose mere use makes a kernel nondeterministic.
NONDETERMINISM_MODULES = ("random", "time")
NONDETERMINISM_BUILTINS = ("id",)

#: Method names that mutate their receiver in place.  Calling one of these
#: on a name the kernel does not bind locally is closure/global mutation.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
        "write",
    }
)


def iter_kernel_calls(rule: Rule) -> Iterator[KernelCall]:
    """Every kernel call a rule can perform, method bodies included.

    Walks the rule's action and, like
    :func:`repro.core.analysis.primitive_method_calls`, expands user-module
    method calls so kernels buried inside method bodies are found too.
    """
    seen_methods: Set[tuple] = set()

    def visit(node) -> Iterator[KernelCall]:
        for sub in node.walk():
            if isinstance(sub, KernelCall):
                yield sub
            elif isinstance(sub, (MethodCallA, MethodCallE)):
                key = (id(sub.instance), sub.method)
                if key in seen_methods:
                    continue
                seen_methods.add(key)
                method = sub.instance.get_method(sub.method)
                if getattr(method, "body", None) is not None:
                    yield from visit(method.body)
                if getattr(method, "guard", None) is not None:
                    yield from visit(method.guard)

    yield from visit(rule.action)


def design_kernels(design: Design) -> Dict[Tuple[str, Callable], List[str]]:
    """``(kernel name, function) -> sorted rule full-names`` using it."""
    table: Dict[Tuple[str, Callable], List[str]] = {}
    for rule in design.all_rules():
        for call in iter_kernel_calls(rule):
            key = (call.name, call.fn)
            locations = table.setdefault(key, [])
            if rule.full_name not in locations:
                locations.append(rule.full_name)
    return {key: sorted(locs) for key, locs in table.items()}


# -- source recovery ---------------------------------------------------------

_FILE_AST_CACHE: Dict[str, Optional[ast.Module]] = {}


def _parsed_file(path: str) -> Optional[ast.Module]:
    if path not in _FILE_AST_CACHE:
        try:
            with open(path, "r") as handle:
                _FILE_AST_CACHE[path] = ast.parse(handle.read())
        except (OSError, SyntaxError, ValueError):
            _FILE_AST_CACHE[path] = None
    return _FILE_AST_CACHE[path]


def kernel_ast(fn: Callable):
    """The ``FunctionDef``/``Lambda`` node of a kernel, or ``None``.

    Plain functions parse from their dedented source.  Lambdas embedded in
    larger expressions do not parse standalone, so they are located in the
    parsed source *file* by line number instead.
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        source = None
    if source is not None:
        try:
            module = ast.parse(source)
            for node in ast.walk(module):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    return node
        except SyntaxError:
            pass
    # Lambda (or decorated oddity): find it in the defining file by lineno.
    module = _parsed_file(code.co_filename)
    if module is None:
        return None
    candidates = [
        node
        for node in ast.walk(module)
        if isinstance(node, ast.Lambda) and node.lineno == code.co_firstlineno
    ]
    if len(candidates) == 1:
        return candidates[0]
    return None


# -- the AST pass ------------------------------------------------------------


def _local_names(fnode) -> Set[str]:
    """Every name the kernel binds itself (params, assignments, imports...)."""
    names: Set[str] = set()
    args = fnode.args
    for arg in (
        list(getattr(args, "posonlyargs", []))
        + list(args.args)
        + list(args.kwonlyargs)
        + [args.vararg, args.kwarg]
    ):
        if arg is not None:
            names.add(arg.arg)
    for node in ast.walk(fnode):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not fnode:
                names.add(node.name)
        elif isinstance(node, ast.Lambda) and node is not fnode:
            for arg in node.args.args:
                names.add(arg.arg)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names


def _root_name(node) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def analyze_kernel_ast(fnode) -> List[Tuple[str, str]]:
    """Purity problems of one kernel AST: ``(kind, detail)`` pairs.

    ``kind`` is ``"mutation"`` or ``"nondeterminism"``; ``detail`` is the
    human-readable description embedded in the diagnostic message.
    """
    problems: List[Tuple[str, str]] = []
    local = _local_names(fnode)

    for node in ast.walk(fnode):
        if isinstance(node, ast.Global):
            problems.append(
                ("mutation", f"declares global {', '.join(node.names)}")
            )
        elif isinstance(node, ast.Nonlocal):
            problems.append(
                ("mutation", f"declares nonlocal {', '.join(node.names)}")
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if root is not None and root not in local:
                        problems.append(
                            ("mutation", f"writes through non-local name {root!r}")
                        )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
            ):
                root = _root_name(func.value)
                if root is not None and root not in local:
                    problems.append(
                        (
                            "mutation",
                            f"calls mutating method {root}.{func.attr}()",
                        )
                    )
            if (
                isinstance(func, ast.Name)
                and func.id in NONDETERMINISM_BUILTINS
                and func.id not in local
            ):
                problems.append(("nondeterminism", f"calls builtin {func.id}()"))
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in NONDETERMINISM_MODULES and node.id not in local:
                problems.append(
                    ("nondeterminism", f"references module {node.id!r}")
                )
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                base = (
                    node.module if isinstance(node, ast.ImportFrom) else alias.name
                )
                if base is not None and base.split(".")[0] in NONDETERMINISM_MODULES:
                    problems.append(
                        ("nondeterminism", f"imports module {base!r}")
                    )
    # Deterministic report order, duplicates folded.
    return sorted(set(problems))


def check_kernel_purity(design: Design) -> List[Diagnostic]:
    """Run the purity pass over every kernel registered in a design."""
    diags: List[Diagnostic] = []
    for (name, fn), rules in sorted(design_kernels(design).items(), key=lambda kv: kv[0][0]):
        fnode = kernel_ast(fn)
        if fnode is None:
            continue  # no recoverable source: best-effort skip
        where = f"kernel {name} (used by {', '.join(rules)})"
        for kind, detail in analyze_kernel_ast(fnode):
            if kind == "mutation":
                diags.append(
                    Diagnostic(
                        code="REPRO-E006",
                        location=where,
                        message=f"kernel {detail}; the HW engine, wakeup index and "
                        "kernel result cache all assume kernels are pure",
                        hint="return new values instead of mutating captured state, "
                        "or pass the state in as a kernel argument",
                    )
                )
            else:
                diags.append(
                    Diagnostic(
                        code="REPRO-E007",
                        location=where,
                        message=f"kernel {detail}; kernel results must be a pure "
                        "function of their arguments for bitwise reproducibility",
                        hint="derive randomness/timestamps at elaboration time and "
                        "close over the resulting constants",
                    )
                )
    return diags
