"""Static design verification: lint an elaborated design before running it.

The paper's guarantee is that a partitioning is correct by construction;
this package makes the repo's own correctness properties -- domain
isolation, credit-safe transport, live rules, pure foreign kernels,
complete fabric snapshots -- *statically checkable*, so a candidate
partitioning can be diagnosed (and an autotuner can prune it) without
executing a single rule.

Entry points:

* :func:`verify_design` / :func:`verify_partitioning` -- the design-level
  checks (isolation/races, channel deadlock, dead rules, kernel purity);
* :func:`audit_fabric` -- the snapshot-completeness audit over a live
  :class:`~repro.sim.cosim.CosimFabric`;
* ``python -m repro.analysis`` -- the lint CLI over the shipped-workload
  catalog (:mod:`repro.analysis.workloads`);
* ``verify=True`` on :class:`~repro.sim.cosim.CosimFabric` and
  :func:`~repro.codegen.interface.build_interface_spec` -- strict mode,
  raising :class:`VerificationError` on error-severity diagnostics.
"""

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    filter_suppressed,
    render_report,
    sort_diagnostics,
)
from repro.analysis.purity import check_kernel_purity, design_kernels
from repro.analysis.snapshot_audit import audit_fabric
from repro.analysis.verifier import (
    VerificationError,
    check_channel_deadlock,
    check_dead_rules,
    check_isolation,
    require_clean,
    verify_design,
    verify_partitioning,
)
from repro.analysis.workloads import WorkloadSpec, shipped_workloads, workload_by_name

__all__ = [
    "CODES",
    "Diagnostic",
    "VerificationError",
    "WorkloadSpec",
    "audit_fabric",
    "check_channel_deadlock",
    "check_dead_rules",
    "check_isolation",
    "check_kernel_purity",
    "design_kernels",
    "filter_suppressed",
    "render_report",
    "require_clean",
    "shipped_workloads",
    "sort_diagnostics",
    "verify_design",
    "verify_partitioning",
    "workload_by_name",
]
