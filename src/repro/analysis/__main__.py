"""``python -m repro.analysis``: lint the shipped workloads statically.

For each selected workload the CLI elaborates the design, partitions it,
prints the promoted :meth:`~repro.core.partition.Partitioning.summary`
(the same topology description the examples print), runs every design
check plus the snapshot-completeness audit over a freshly built
:class:`~repro.sim.cosim.CosimFabric`, and reports diagnostics with their
stable codes.  The exit status is non-zero when any **non-suppressed**
diagnostic (error or warning) fired -- this is the CI ``lint-designs``
gate, and lint wall-time per workload is printed so EXPERIMENTS.md can
pin that the pass stays trivially cheap relative to elaboration.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.analysis.diagnostics import filter_suppressed, render_report
from repro.analysis.snapshot_audit import audit_fabric
from repro.analysis.verifier import verify_design
from repro.analysis.workloads import shipped_workloads, workload_by_name
from repro.sim.cosim import CosimFabric


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically verify shipped workloads (lint-designs gate).",
    )
    parser.add_argument(
        "workloads",
        nargs="*",
        help="workload names to lint (default: every shipped workload)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list shipped workload names and exit"
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="CODE",
        help="suppress a diagnostic code (e.g. REPRO-W005) or check name "
        "(e.g. dead-rule); repeatable",
    )
    parser.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the snapshot-completeness audit (design checks only)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print only failing workloads"
    )
    args = parser.parse_args(argv)

    if args.list:
        for spec in shipped_workloads():
            print(spec.name)
        return 0

    specs = (
        [workload_by_name(name) for name in args.workloads]
        if args.workloads
        else shipped_workloads()
    )

    total = 0
    for spec in specs:
        t0 = time.perf_counter()
        workload = spec.build()
        elaborate_s = time.perf_counter() - t0

        t1 = time.perf_counter()
        diags = verify_design(workload.design)
        if not args.no_audit:
            fabric = CosimFabric(workload.design, backend="compiled")
            diags += audit_fabric(fabric)
        diags = filter_suppressed(diags, args.suppress)
        lint_s = time.perf_counter() - t1
        total += len(diags)

        if args.quiet and not diags:
            continue
        print(f"== {spec.name} ==")
        if not args.quiet:
            from repro.core.partition import partition_design

            print(partition_design(workload.design).summary())
        print(
            f"  lint: {len(diags)} diagnostic(s) in {lint_s * 1e3:.1f} ms "
            f"(elaboration {elaborate_s * 1e3:.1f} ms)"
        )
        if diags:
            print(render_report(diags))

    if total:
        print(f"FAIL: {total} non-suppressed diagnostic(s) across {len(specs)} workload(s)")
        return 1
    print(f"OK: {len(specs)} workload(s) lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
