"""Snapshot-completeness audit (check 5 of the static verifier).

PR 7's persistent-serving invariant is *"anything the snapshot misses
breaks serving"*: :meth:`~repro.sim.cosim.CosimFabric.snapshot` /
``restore`` must round-trip **every** mutable field of the fabric object
graph, or a resident fabric diverges bitwise from a fresh elaboration
after the first request.  That completeness used to be enforced only by
the resident==fresh differential oracle; this module turns it into a
checkable structural property.

The audit walks the live fabric object graph by reflection and checks
every instance attribute it finds against a per-class **coverage
manifest** that classifies each attribute as one of:

* ``covered`` -- captured by ``snapshot()`` and rewound by ``restore()``;
* ``reset`` -- transient run state that ``restore()`` reinitialises to a
  constant (so a snapshot need not carry it);
* ``config`` -- elaboration-time state that never mutates during a run
  (rules, schedules, compiled closures, layouts, platform parameters);
* ``cache`` -- memoisation that is semantically transparent (rebuilding it
  yields the same values, e.g. the fabric's owner-store resolution);
* ``children`` -- owned sub-objects the audit recurses into.

An attribute present on a live object but absent from its class manifest
is exactly the failure mode the differential oracle catches too late: a
new mutable field somebody forgot to add to ``snapshot()``.  The audit
reports it as ``REPRO-E008`` *by name*, before any simulation runs.  As a
second guard, classes whose manifest pins a snapshot arity are checked
against the live ``snapshot()`` tuple (``REPRO-E009``) -- the positional
restore protocol silently mis-zips if the two drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Type

from repro.analysis.diagnostics import Diagnostic
from repro.core.scheduler import RuleWakeup, WakingStore
from repro.platform.channel import (
    ChannelDirection,
    ChannelStats,
    DuplexChannel,
    Link,
    MessagePool,
    Topology,
)
from repro.platform.libdn import VirtualChannel, VirtualChannelStats, VirtualChannelTable
from repro.sim.cosim import CosimFabric, Cosimulator, _GroupFabric
from repro.sim.hwsim import HwEngine
from repro.sim.swsim import SwEngine


@dataclass(frozen=True)
class CoverageSpec:
    """The audited classification of one class's instance attributes."""

    covered: FrozenSet[str] = frozenset()
    reset: FrozenSet[str] = frozenset()
    config: FrozenSet[str] = frozenset()
    cache: FrozenSet[str] = frozenset()
    children: FrozenSet[str] = frozenset()
    #: Expected ``len(obj.snapshot())``, or ``None`` when the class has no
    #: snapshot method of its own (its state rides a parent's snapshot).
    snapshot_arity: Optional[int] = None

    def known(self) -> FrozenSet[str]:
        return self.covered | self.reset | self.config | self.cache | self.children


def _spec(**kwargs) -> CoverageSpec:
    for key in ("covered", "reset", "config", "cache", "children"):
        if key in kwargs:
            kwargs[key] = frozenset(kwargs[key])
    return CoverageSpec(**kwargs)


#: class -> coverage spec.  Subclasses merge every spec on their MRO, so a
#: wrapper like :class:`Cosimulator` only declares its own extra fields.
MANIFEST: Dict[Type, CoverageSpec] = {
    CosimFabric: _spec(
        covered={"now", "_initial_values", "_last_observed"},
        reset={"_active_group", "_observing", "_read_overrides"},
        config={
            "design",
            "platform",
            "config",
            "burst",
            "backend",
            "transport",
            "partitioning",
            "engine_kinds",
            "domains",
            "_hw_engines",
            "_sw_engines",
            "_routes",
            "_delivery_routes",
            "_delivery_dsts",
            "_pump_fns",
            "_deliver_fns",
            "_default_store",
            "_group_index",
            "_store_group",
            "_vc_keys",
            "_builder_spec",
        },
        cache={"_owner_store"},
        children={"engines", "topology", "vcs", "_groups"},
        snapshot_arity=7,
    ),
    Cosimulator: _spec(
        config={"hw_domain", "sw_domain", "hw", "sw", "store_hw", "store_sw"},
        children={"channel"},
    ),
    _GroupFabric: _spec(
        covered={"now"},  # the per-group clock rides the fabric snapshot
        config={
            "fabric",
            "index",
            "domains",
            "hw_engines",
            "sw_engines",
            "routes",
            "pump_fns",
            "delivery_routes",
            "deliver_fns",
            "directions",
            "_pools",
            "vcs",
        },
    ),
    SwEngine: _spec(
        covered={
            "busy_until",
            "_pending_updates",
            "_pending_deliveries",
            "_last_fired",
            "_last_fail_cost",
            "fire_counts",
            "total_firings",
            "cpu_cycles_useful",
            "cpu_cycles_wasted",
            "cpu_cycles_driver",
            "guard_failures",
            "busy_fpga_cycles",
        },
        config={
            "rules",
            "schedule",
            "platform",
            "config",
            "evaluator",
            "backend",
            "name",
            "_use_dirty",
            "_count_fns",
            "compiled",
            # Source backend: generated attempt functions, their module, and
            # the fused superstep installed as an instance attribute.  All
            # pre-bind only identity-stable containers, so restore() keeps
            # them truthful without re-generation.
            "_attempt_fns",
            "_gen",
            "_step_gen",
            "step",
        },
        children={"store", "_wakeup"},
        snapshot_arity=15,
    ),
    HwEngine: _spec(
        covered={
            "busy",
            "_locked_count",
            "_next_finish",
            "_pending_deliveries",
            "fire_counts",
            "cycles_active",
            "total_firings",
            "last_cycle_stepped",
        },
        config={
            "rules",
            "schedule",
            "evaluator",
            "backend",
            "name",
            "_use_dirty",
            "_exec",
            "_read_sets",
            "_write_sets",
            # Source backend: generated rule module and the fused step_cycle
            # installed as an instance attribute (pre-binds identity-stable
            # state only; see sim/hwsim.py).
            "_gen",
            "_step_gen",
            "step_cycle",
        },
        children={"store", "_wakeup"},
        snapshot_arity=11,
    ),
    WakingStore: _spec(
        # Contents ride the owning engine's snapshot (``dict(self.store)``).
        config={"wake"},
    ),
    RuleWakeup: _spec(
        # sleeping/n_sleeping ride the owning engine's snapshot.
        covered={"sleeping", "n_sleeping"},
        config={"rules", "wakers", "index_of"},
    ),
    Topology: _spec(
        config={"_links"},
        cache={"_pools"},
        children={"_directions"},
    ),
    Link: _spec(
        config={"src", "dst", "params", "burst"},
    ),
    DuplexChannel: _spec(
        config={"params"},
        children={"to_hw", "to_sw"},
    ),
    ChannelDirection: _spec(
        covered={"busy_until"},
        config={"params", "name", "burst"},
        children={"pool", "stats"},
        snapshot_arity=3,
    ),
    MessagePool: _spec(
        covered={"words", "vc_ids", "bounds", "due", "head", "word_head"},
        snapshot_arity=6,
    ),
    ChannelStats: _spec(
        covered={"messages", "words", "busy_cycles", "per_vc_messages"},
        snapshot_arity=4,
    ),
    VirtualChannelTable: _spec(
        config={"_by_id"},
        children={"channels"},
    ),
    VirtualChannel: _spec(
        covered={"credits", "in_flight"},
        config={
            "sync",
            "vc_id",
            "word_bits",
            "layout",
            "words_per_element",
            "encode",
            "encode_batch",
            "decode",
            "decode_run",
        },
        children={"stats"},
        snapshot_arity=6,
    ),
    VirtualChannelStats: _spec(
        covered={
            "messages_sent",
            "messages_delivered",
            "words_sent",
            "stalled_on_credit",
        },
    ),
}


def _merged_spec(cls: Type) -> Optional[CoverageSpec]:
    """Merge the manifest specs along a class's MRO (most-derived wins none;
    the union is what matters)."""
    specs = [MANIFEST[base] for base in cls.__mro__ if base in MANIFEST]
    if not specs:
        return None
    return CoverageSpec(
        covered=frozenset().union(*(s.covered for s in specs)),
        reset=frozenset().union(*(s.reset for s in specs)),
        config=frozenset().union(*(s.config for s in specs)),
        cache=frozenset().union(*(s.cache for s in specs)),
        children=frozenset().union(*(s.children for s in specs)),
        snapshot_arity=next(
            (s.snapshot_arity for s in specs if s.snapshot_arity is not None), None
        ),
    )


def _expand(value: Any) -> Iterable[Any]:
    """One level of container expansion for ``children`` attributes.

    Manifested classes are always visited as objects, even when they
    subclass a container (``WakingStore`` is a dict of register values --
    its *contents* ride the engine snapshot, its *attributes* are what
    the audit must classify)."""
    if value is None:
        return ()
    if _merged_spec(type(value)) is not None:
        return (value,)
    if isinstance(value, dict):
        return list(value.values())
    if isinstance(value, (list, tuple, set, frozenset)):
        return list(value)
    return (value,)


def audit_fabric(fabric: CosimFabric) -> List[Diagnostic]:
    """Walk a live fabric's object graph and diff it against the manifest.

    Returns ``REPRO-E008`` for every attribute (or reachable class) the
    manifest does not classify -- i.e. state ``snapshot()`` may silently
    miss -- and ``REPRO-E009`` when a pinned snapshot arity drifted.
    """
    diags: List[Diagnostic] = []
    seen: Set[int] = set()
    queue: List[Tuple[Any, str]] = [(fabric, type(fabric).__name__)]
    reported: Set[str] = set()

    while queue:
        obj, path = queue.pop(0)
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        cls = type(obj)
        spec = _merged_spec(cls)
        if spec is None:
            key = f"class {cls.__name__}"
            if key not in reported:
                reported.add(key)
                diags.append(
                    Diagnostic(
                        code="REPRO-E008",
                        location=f"{cls.__name__} (at {path})",
                        message="reachable class has no snapshot-coverage "
                        "manifest; its mutable state is invisible to the audit",
                        hint="classify the class's attributes in "
                        "repro.analysis.snapshot_audit.MANIFEST and make "
                        "snapshot()/restore() carry its mutable fields",
                    )
                )
            continue

        attrs: Dict[str, Any] = dict(vars(obj)) if hasattr(obj, "__dict__") else {}
        for base in cls.__mro__:
            for slot in getattr(base, "__slots__", ()):
                if hasattr(obj, slot):
                    attrs[slot] = getattr(obj, slot)
        known = spec.known()
        for attr in sorted(attrs):
            if attr in known:
                continue
            key = f"{cls.__name__}.{attr}"
            if key in reported:
                continue
            reported.add(key)
            diags.append(
                Diagnostic(
                    code="REPRO-E008",
                    location=f"{key} (at {path})",
                    message="attribute is not classified by the snapshot "
                    "coverage manifest, so snapshot()/restore() may miss it "
                    "and a resident fabric would diverge from a fresh one",
                    hint="capture it in snapshot() and restore(), then add it "
                    "to the 'covered' set (or classify it as "
                    "reset/config/cache if it is not run state)",
                )
            )

        if spec.snapshot_arity is not None:
            snap = obj.snapshot()
            if len(snap) != spec.snapshot_arity:
                key = f"{cls.__name__}.snapshot-arity"
                if key not in reported:
                    reported.add(key)
                    diags.append(
                        Diagnostic(
                            code="REPRO-E009",
                            location=f"{cls.__name__}.snapshot() (at {path})",
                            message=f"snapshot tuple has {len(snap)} fields but "
                            f"the audited manifest pins {spec.snapshot_arity}; "
                            "the positional restore protocol would mis-zip",
                            hint="update snapshot()/restore() and the manifest "
                            "arity together",
                        )
                    )

        for attr in sorted(spec.children):
            if attr not in attrs and not hasattr(obj, attr):
                continue
            for child in _expand(getattr(obj, attr)):
                # Only recurse into objects this codebase defines: expanding
                # a container child (an engine map, a plain-dict store) can
                # surface data payloads -- ints, tuples, arrays -- which ride
                # their owner's snapshot and are not auditable classes.
                if getattr(type(child), "__module__", "").startswith("repro."):
                    queue.append((child, f"{path}.{attr}"))

    return sorted(diags)
