"""The Vorbis back-end as an elaborated BCL design.

The module structure follows Section 4.1's ``mkVorbisBackEnd`` /
``mkPartitionedVorbisBackEnd``: a synthetic front end feeds spectral frames
into the back-end, which runs them through the IMDCT pre-multiply, a
three-stage pipelined IFFT (``mkIFFTPipe``), the IMDCT post step, the
sliding-window overlap-add and finally the audio-device sink.  Every stage
boundary is a synchronizer, so a *placement* mapping stage groups to
computational domains is all that is needed to express any of the paper's
partitions -- the same code builds all of Figure 12's configurations, which
is exactly the paper's point.

The audio sink accumulates a checksum of the emitted PCM words; because every
kernel is bit-exact fixed point, all partitions of the same workload must
produce the same checksum (the latency-insensitivity / modular-refinement
correctness claim), and the tests assert this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.apps.vorbis import kernels
from repro.apps.vorbis.params import VorbisParams
from repro.core.action import par
from repro.core.domains import HW, SW, Domain
from repro.core.expr import BinOp, Const, FieldSelect, KernelCall, RegRead, Var
from repro.core.module import Design, Module, Register
from repro.core.primitives import Fifo
from repro.core.synchronizers import SyncFifo
from repro.core.types import ComplexT, FixPtT, UIntT, VectorT

#: The stage groups whose domain can be chosen per partition.  ``frontend``
#: and ``audio`` always execute in software (the stream parser is hand-written
#: C++ in the paper; the audio device is reached through the processor's
#: memory-mapped IO).
PLACEABLE_STAGES = ("ctrl", "imdct", "ifft", "window")


@dataclass
class VorbisBackend:
    """Handle onto one built Vorbis back-end design and its observation points."""

    design: Design
    params: VorbisParams
    placement: Dict[str, Domain]
    frames_out: Register
    checksum: Register
    frame_idx: Register
    modules: Dict[str, Module] = field(default_factory=dict)
    syncs: Dict[str, SyncFifo] = field(default_factory=dict)

    def done(self, reader: Callable[[Register], object]) -> bool:
        """Whether all frames have been emitted, given a register reader."""
        return reader(self.frames_out) >= self.params.n_frames

    def cosim_done(self, cosim) -> bool:
        """Termination predicate for any :class:`~repro.sim.cosim.CosimFabric`.

        Uses the fabric's owner-resolved ``read`` so the same predicate
        drives the two-partition wrapper and N-domain fabrics alike
        (``frames_out`` lives in the always-software audio sink).
        """
        return cosim.read(self.frames_out) >= self.params.n_frames

    def placement_name(self) -> str:
        return ", ".join(f"{k}={v.name}" for k, v in sorted(self.placement.items()))

    def frame_request(self, start_frame: int = 0, name: str = ""):
        """A serving request decoding frames ``start_frame..n_frames-1``.

        The request writes the generator cursor ``frame_idx`` (so the
        pipeline emits ``n_frames - start_frame`` frames -- different
        starts produce different checksums, which is what lets the serving
        tests detect any state leaking across snapshot resets), declares
        completion as ``frames_out`` reaching that count, and returns the
        audio checksum.  Plain picklable data, servable by a resident
        :class:`~repro.sim.serve.FabricServer` or a pool worker.
        """
        from repro.sim.serve import Request

        n_frames = self.params.n_frames
        if not 0 <= start_frame < n_frames:
            raise ValueError(
                f"start_frame must be in [0, {n_frames}), got {start_frame}"
            )
        return Request(
            name=name or f"{self.design.name}:frames[{start_frame}:{n_frames}]",
            writes={self.frame_idx.full_name: start_frame},
            done_min={self.frames_out.full_name: n_frames - start_frame},
            outputs=(self.checksum.full_name, self.frames_out.full_name),
        )


def build_backend(
    params: Optional[VorbisParams] = None,
    placement: Optional[Dict[str, Domain]] = None,
    name: str = "vorbis_backend",
    sync_depth: int = 2,
    sw_domain: Domain = SW,
) -> VorbisBackend:
    """Build the Vorbis back-end with the given HW/SW placement.

    ``placement`` maps each of :data:`PLACEABLE_STAGES` to a domain; stages
    not mentioned default to software.  The full-software design is therefore
    ``build_backend()`` with no placement at all.

    ``sw_domain`` renames the always-software side (front end and audio
    sink, plus the placement default).  Instantiating several back-ends with
    disjoint domain sets under one root module yields a design whose
    pipelines are *independent partition groups* -- no synchronizer joins
    them -- which is the multi-group workload the group-decomposed fabric
    and shard runner exercise.
    """
    params = params or VorbisParams()
    placement = dict(placement or {})
    for stage in PLACEABLE_STAGES:
        placement.setdefault(stage, sw_domain)
    unknown = set(placement) - set(PLACEABLE_STAGES)
    if unknown:
        raise ValueError(f"unknown Vorbis stages in placement: {sorted(unknown)}")

    n = params.n
    points = params.ifft_points
    ib, fb = params.int_bits, params.frac_bits
    costs = kernels.kernel_costs(n)

    frame_t = VectorT(n, FixPtT(ib, fb))
    spectrum_t = VectorT(points, ComplexT(FixPtT(ib, fb)))
    samples_t = VectorT(points, FixPtT(ib, fb))
    pcm_t = VectorT(n, FixPtT(ib, fb))

    top = Module(name)

    # -- modules ---------------------------------------------------------------
    frontend = top.add_submodule(Module("frontend", domain=sw_domain))
    ctrl = top.add_submodule(Module("backend_ctrl", domain=placement["ctrl"]))
    imdct = top.add_submodule(Module("imdct", domain=placement["imdct"]))
    ifft = top.add_submodule(Module("ifft", domain=placement["ifft"]))
    window = top.add_submodule(Module("window", domain=placement["window"]))
    audio = top.add_submodule(Module("audio", domain=sw_domain))

    # -- synchronizers between stage groups -------------------------------------
    def sync(sync_name: str, ty, producer: Domain, consumer: Domain) -> SyncFifo:
        return top.add_submodule(
            SyncFifo(sync_name, ty, domain_enq=producer, domain_deq=consumer, depth=sync_depth)
        )

    q_in = sync("q_in", frame_t, sw_domain, placement["ctrl"])
    q_ctrl = sync("q_ctrl", frame_t, placement["ctrl"], placement["imdct"])
    q_pre = sync("q_pre", spectrum_t, placement["imdct"], placement["ifft"])
    q_ifft = sync("q_ifft", spectrum_t, placement["ifft"], placement["imdct"])
    q_post = sync("q_post", samples_t, placement["imdct"], placement["window"])
    q_pcm = sync("q_pcm", pcm_t, placement["window"], sw_domain)

    # The pipelined IFFT's internal stage buffers (never cross a domain).
    buffers = [
        ifft.add_submodule(Fifo(f"buff{i}", spectrum_t, depth=1))
        for i in range(1, params.ifft_stages)
    ]

    # -- registers ----------------------------------------------------------------
    frame_idx = frontend.add_register("frame_idx", UIntT(32), 0)
    prev_half = window.add_register("prev_half", pcm_t)
    frames_out = audio.add_register("frames_out", UIntT(32), 0)
    checksum = audio.add_register("checksum", UIntT(32), 0)

    # -- kernels -------------------------------------------------------------------
    def kc(kernel_name: str, fn, args) -> KernelCall:
        sw_c, hw_c = costs[kernel_name]
        return KernelCall(kernel_name, fn, args, sw_cycles=sw_c, hw_cycles=hw_c)

    gen_fn = lambda i: kernels.gen_frame(i, n, params.seed, ib, fb)  # noqa: E731
    input_fn = lambda frame: kernels.backend_input(frame, ib, fb)  # noqa: E731
    pre_fn = lambda frame: kernels.imdct_pre(frame, ib, fb)  # noqa: E731
    post_fn = lambda spectrum: kernels.imdct_post(spectrum, ib, fb)  # noqa: E731
    window_fn = lambda prev, cur: kernels.window_overlap(prev, cur, ib, fb)  # noqa: E731

    stages_per_rule = (points.bit_length() - 1 + params.ifft_stages - 1) // params.ifft_stages

    # -- rules -----------------------------------------------------------------------
    frontend.add_rule(
        "parse_frame",
        par(
            q_in.call("enq", kc("gen_frame", gen_fn, [RegRead(frame_idx)])),
            frame_idx.write(BinOp("+", RegRead(frame_idx), Const(1))),
        ).when(BinOp("<", RegRead(frame_idx), Const(params.n_frames))),
    )

    ctrl.add_rule(
        "backend_input",
        par(
            q_ctrl.call("enq", kc("backend_input", input_fn, [q_in.value("first")])),
            q_in.call("deq"),
        ),
    )

    imdct.add_rule(
        "imdct_pre",
        par(
            q_pre.call("enq", kc("imdct_pre", pre_fn, [q_ctrl.value("first")])),
            q_ctrl.call("deq"),
        ),
    )

    # Pipelined IFFT: one rule per stage, exactly mkIFFTPipe's generated rules.
    stage_inputs = [q_pre] + buffers
    stage_outputs = buffers + [q_ifft]
    for stage in range(params.ifft_stages):
        stage_fn = (
            lambda data, _s=stage: kernels.ifft_rule_stage(_s, data, stages_per_rule, ib, fb)
        )
        src, dst = stage_inputs[stage], stage_outputs[stage]
        ifft.add_rule(
            f"ifft_stage{stage}",
            par(
                dst.call("enq", kc("ifft_rule_stage", stage_fn, [src.value("first")])),
                src.call("deq"),
            ),
        )

    imdct.add_rule(
        "imdct_post",
        par(
            q_post.call("enq", kc("imdct_post", post_fn, [q_ifft.value("first")])),
            q_ifft.call("deq"),
        ),
    )

    window.add_rule(
        "window_overlap",
        # let wres = window(prev, cur) in { pcm out | keep second half | deq }
        _let_window_rule(window_fn, costs, prev_half, q_post, q_pcm),
    )

    audio.add_rule(
        "audio_out",
        par(
            checksum.write(
                kc(
                    "audio_out",
                    kernels.audio_checksum,
                    [q_pcm.value("first"), RegRead(checksum)],
                )
            ),
            frames_out.write(BinOp("+", RegRead(frames_out), Const(1))),
            q_pcm.call("deq"),
        ),
    )

    design = Design(top, name)
    backend = VorbisBackend(
        design=design,
        params=params,
        placement=placement,
        frames_out=frames_out,
        checksum=checksum,
        frame_idx=frame_idx,
        modules={
            "frontend": frontend,
            "ctrl": ctrl,
            "imdct": imdct,
            "ifft": ifft,
            "window": window,
            "audio": audio,
        },
        syncs={
            "q_in": q_in,
            "q_ctrl": q_ctrl,
            "q_pre": q_pre,
            "q_ifft": q_ifft,
            "q_post": q_post,
            "q_pcm": q_pcm,
        },
    )
    return backend


def _let_window_rule(window_fn, costs, prev_half, q_post, q_pcm):
    """Build the windowing rule: overlap-add, emit PCM, retain the new half frame."""
    from repro.core.action import LetA

    sw_c, hw_c = costs["window_overlap"]
    call = KernelCall(
        "window_overlap",
        window_fn,
        [RegRead(prev_half), q_post.value("first")],
        sw_cycles=sw_c,
        hw_cycles=hw_c,
    )
    body = par(
        q_pcm.call("enq", FieldSelect(Var("wres"), 0)),
        prev_half.write(FieldSelect(Var("wres"), 1)),
        q_post.call("deq"),
    )
    return LetA("wres", call, body)
