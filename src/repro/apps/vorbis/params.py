"""Workload parameters for the Vorbis back-end reproduction."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VorbisParams:
    """Parameters of the Vorbis back-end workload.

    The paper fixes the frame size at sixty-four (Section 4.5) and performs
    all computation in 32-bit fixed point with 24 fractional bits
    (Section 7.1).  ``n_frames`` is the length of the test bench; the paper
    uses 10 000 frames, which is far more than needed to reach steady state
    -- the benchmarks default to a smaller count and report per-frame
    numbers.
    """

    #: Number of spectral lines per input frame (the IFFT operates on 2*n).
    n: int = 32
    #: Number of audio frames pushed through the pipeline.
    n_frames: int = 32
    #: Fixed-point format (integer bits, fractional bits).
    int_bits: int = 8
    frac_bits: int = 24
    #: Seed for the synthetic front-end's spectral content.
    seed: int = 2012

    @property
    def ifft_points(self) -> int:
        """Number of points of the IFFT (2*n, 64 in the paper)."""
        return 2 * self.n

    @property
    def ifft_stages(self) -> int:
        """Number of pipeline stages of the IFFT (3 in the paper's mkIFFTPipe)."""
        return 3

    def __post_init__(self) -> None:
        points = 2 * self.n
        if points & (points - 1):
            raise ValueError(f"IFFT size {points} must be a power of two")
        if points.bit_length() - 1 < self.ifft_stages:
            raise ValueError(f"IFFT size {points} is too small for 3 pipeline stages")
