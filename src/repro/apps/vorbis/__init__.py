"""The Ogg Vorbis back-end (Section 2 and 7.1): IMDCT, IFFT, windowing.

The back-end is written in BCL (as an elaborated module hierarchy built with
:mod:`repro.core`) and is fully domain-polymorphic: :func:`build_backend`
takes a placement mapping stage names to computational domains, which is how
the six partitions A--F of Figure 12 are expressed.
"""

from repro.apps.vorbis.params import VorbisParams
from repro.apps.vorbis.backend import VorbisBackend, build_backend
from repro.apps.vorbis.partitions import PARTITIONS, partition_placement

__all__ = [
    "VorbisParams",
    "VorbisBackend",
    "build_backend",
    "PARTITIONS",
    "partition_placement",
]
