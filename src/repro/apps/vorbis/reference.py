"""Hand-written software reference for the Vorbis back-end.

This plays the role of the paper's "manual C++" implementation (partition F2
in Figure 13): a direct, per-frame loop over the same fixed-point kernels,
with no rules, no guards, no scheduler and no shadow state.  It serves two
purposes:

* it is the bit-exact oracle against which every partitioned BCL design is
  checked (same kernels, same order, therefore identical PCM checksums), and
* its cost estimate (the sum of the kernel software costs plus a small loop
  overhead) gives the hand-coded baseline of the Figure 13 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps.vorbis import kernels
from repro.apps.vorbis.params import VorbisParams
from repro.core.fixedpoint import FixedPoint


@dataclass
class ReferenceResult:
    """Output of the hand-coded reference decode."""

    checksum: int
    pcm_frames: List[Tuple[FixedPoint, ...]]
    cpu_cycles: float

    def fpga_cycles(self, cpu_per_fpga: float = 4.0) -> float:
        return self.cpu_cycles / cpu_per_fpga


def decode(params: Optional[VorbisParams] = None, keep_pcm: bool = True) -> ReferenceResult:
    """Run the whole back-end in plain software, frame by frame."""
    params = params or VorbisParams()
    n, ib, fb = params.n, params.int_bits, params.frac_bits
    costs = kernels.kernel_costs(n)
    stages_per_rule = (params.ifft_points.bit_length() - 1 + params.ifft_stages - 1) // params.ifft_stages

    #: fixed per-frame loop overhead of the hand-written implementation
    loop_overhead = 24

    prev_half = tuple(FixedPoint.zero(ib, fb) for _ in range(n))
    checksum = 0
    cpu = 0.0
    pcm_frames: List[Tuple[FixedPoint, ...]] = []

    for index in range(params.n_frames):
        frame = kernels.gen_frame(index, n, params.seed, ib, fb)
        scaled = kernels.backend_input(frame, ib, fb)
        spectrum = kernels.imdct_pre(scaled, ib, fb)
        for stage in range(params.ifft_stages):
            spectrum = kernels.ifft_rule_stage(stage, spectrum, stages_per_rule, ib, fb)
        samples = kernels.imdct_post(spectrum, ib, fb)
        pcm, prev_half = kernels.window_overlap(prev_half, samples, ib, fb)
        checksum = kernels.audio_checksum(pcm, checksum)
        if keep_pcm:
            pcm_frames.append(pcm)

        cpu += loop_overhead
        cpu += costs["gen_frame"][0]
        cpu += costs["backend_input"][0]
        cpu += costs["imdct_pre"][0]
        cpu += params.ifft_stages * costs["ifft_rule_stage"][0]
        cpu += costs["imdct_post"][0]
        cpu += costs["window_overlap"][0]
        cpu += costs["audio_out"][0]

    return ReferenceResult(checksum=checksum, pcm_frames=pcm_frames, cpu_cycles=cpu)


def expected_checksum(params: Optional[VorbisParams] = None) -> int:
    """The PCM checksum every correct implementation of the back-end must produce."""
    return decode(params, keep_pcm=False).checksum
