"""The six HW/SW partitions of the Vorbis back-end (Figure 12).

Each partition is a placement of the back-end's stage groups onto the HW and
SW domains.  ``F`` is the full-software design and ``E`` the full-hardware
back-end (the front end and the audio output always stay in software, as in
the paper).  The intermediate points reproduce the trade-offs the evaluation
discusses:

* ``A`` -- only the IFFT core is in hardware.  The IMDCT invokes it with a
  full complex frame in each direction, so the communication cost roughly
  cancels the computation savings ("the effect of moving only the IFFT to HW
  is marginal"; the measured partition is slightly *slower* than F).
* ``B`` -- IFFT plus the IMDCT FSMs move to hardware; traffic drops to the
  small real-valued frames at the group boundary and the partition beats F.
* ``C`` -- IFFT and the windowing function are in hardware but the IMDCT FSMs
  stay in software, so every frame crosses the boundary four times; this is
  the slowest partition ("moving the windowing function to HW is not worth
  the communication overhead").
* ``D`` -- everything except the back-end input control is in hardware.
* ``E`` -- the complete back-end, including its control, is in hardware.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.vorbis.backend import VorbisBackend, build_backend
from repro.apps.vorbis.params import VorbisParams
from repro.core.domains import HW, SW, Domain

#: Placement of each stage group, per partition letter.
PARTITIONS: Dict[str, Dict[str, Domain]] = {
    "A": {"ctrl": SW, "imdct": SW, "ifft": HW, "window": SW},
    "B": {"ctrl": SW, "imdct": HW, "ifft": HW, "window": SW},
    "C": {"ctrl": SW, "imdct": SW, "ifft": HW, "window": HW},
    "D": {"ctrl": SW, "imdct": HW, "ifft": HW, "window": HW},
    "E": {"ctrl": HW, "imdct": HW, "ifft": HW, "window": HW},
    "F": {"ctrl": SW, "imdct": SW, "ifft": SW, "window": SW},
}

#: Display order used by the Figure 13 benchmark (matches the paper's x axis).
PARTITION_ORDER: List[str] = ["A", "B", "C", "D", "E", "F"]


def partition_placement(letter: str) -> Dict[str, Domain]:
    """The stage placement of one of the paper's partitions (A--F)."""
    if letter not in PARTITIONS:
        raise KeyError(f"unknown Vorbis partition {letter!r}; expected one of {PARTITION_ORDER}")
    return dict(PARTITIONS[letter])


def build_partition(letter: str, params: Optional[VorbisParams] = None) -> VorbisBackend:
    """Build the back-end design for partition ``letter``."""
    return build_backend(
        params=params,
        placement=partition_placement(letter),
        name=f"vorbis_{letter}",
    )


def hw_stage_names(letter: str) -> List[str]:
    """Which stage groups are in hardware for a partition (used in reports)."""
    return sorted(stage for stage, dom in PARTITIONS[letter].items() if dom == HW)
