"""The six HW/SW partitions of the Vorbis back-end (Figure 12).

Each partition is a placement of the back-end's stage groups onto the HW and
SW domains.  ``F`` is the full-software design and ``E`` the full-hardware
back-end (the front end and the audio output always stay in software, as in
the paper).  The intermediate points reproduce the trade-offs the evaluation
discusses:

* ``A`` -- only the IFFT core is in hardware.  The IMDCT invokes it with a
  full complex frame in each direction, so the communication cost roughly
  cancels the computation savings ("the effect of moving only the IFFT to HW
  is marginal"; the measured partition is slightly *slower* than F).
* ``B`` -- IFFT plus the IMDCT FSMs move to hardware; traffic drops to the
  small real-valued frames at the group boundary and the partition beats F.
* ``C`` -- IFFT and the windowing function are in hardware but the IMDCT FSMs
  stay in software, so every frame crosses the boundary four times; this is
  the slowest partition ("moving the windowing function to HW is not worth
  the communication overhead").
* ``D`` -- everything except the back-end input control is in hardware.
* ``E`` -- the complete back-end, including its control, is in hardware.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.vorbis.backend import VorbisBackend, build_backend
from repro.apps.vorbis.params import VorbisParams
from repro.core.domains import HW, SW, Domain
from repro.core.module import Design, Module

#: Placement of each stage group, per partition letter.
PARTITIONS: Dict[str, Dict[str, Domain]] = {
    "A": {"ctrl": SW, "imdct": SW, "ifft": HW, "window": SW},
    "B": {"ctrl": SW, "imdct": HW, "ifft": HW, "window": SW},
    "C": {"ctrl": SW, "imdct": SW, "ifft": HW, "window": HW},
    "D": {"ctrl": SW, "imdct": HW, "ifft": HW, "window": HW},
    "E": {"ctrl": HW, "imdct": HW, "ifft": HW, "window": HW},
    "F": {"ctrl": SW, "imdct": SW, "ifft": SW, "window": SW},
}

#: Display order used by the Figure 13 benchmark (matches the paper's x axis).
PARTITION_ORDER: List[str] = ["A", "B", "C", "D", "E", "F"]


def partition_placement(letter: str) -> Dict[str, Domain]:
    """The stage placement of one of the paper's partitions (A--F)."""
    if letter not in PARTITIONS:
        raise KeyError(f"unknown Vorbis partition {letter!r}; expected one of {PARTITION_ORDER}")
    return dict(PARTITIONS[letter])


def build_partition(letter: str, params: Optional[VorbisParams] = None) -> VorbisBackend:
    """Build the back-end design for partition ``letter``."""
    return build_backend(
        params=params,
        placement=partition_placement(letter),
        name=f"vorbis_{letter}",
    )


def hw_stage_names(letter: str) -> List[str]:
    """Which stage groups are in hardware for a partition (used in reports)."""
    return sorted(stage for stage, dom in PARTITIONS[letter].items() if dom == HW)


# --------------------------------------------------------------------------
# multi-domain partitions (N-domain fabric workloads)
# --------------------------------------------------------------------------
#
# Beyond the paper's two-way split: the same back-end, cut into more than
# two domain partitions by giving stage groups their *own* hardware
# domains.  Each extra domain becomes its own cycle-level engine with its
# own point-to-point links in the co-simulation fabric -- e.g. partition G
# is the front-end/control in software, the IMDCT+IFFT on one hardware
# partition and the windowing function on a second, with the q_post
# synchronizer riding a dedicated HW_IMDCT->HW_WIN link instead of
# competing with the SW-side traffic.  Domain names start with ``HW`` so
# :func:`repro.sim.cosim.default_engine_kinds` picks the hardware engine.

HW_IMDCT = Domain("HW_IMDCT")
HW_IFFT = Domain("HW_IFFT")
HW_WIN = Domain("HW_WIN")

#: Multi-domain placements: G = 3 domains (SW -> HW-imdct/ifft -> HW-window),
#: H = 4 domains (the IFFT pipe gets its own partition as well).
MULTI_PARTITIONS: Dict[str, Dict[str, Domain]] = {
    "G": {"ctrl": SW, "imdct": HW_IMDCT, "ifft": HW_IMDCT, "window": HW_WIN},
    "H": {"ctrl": SW, "imdct": HW_IMDCT, "ifft": HW_IFFT, "window": HW_WIN},
}

MULTI_PARTITION_ORDER: List[str] = ["G", "H"]


def multi_partition_placement(letter: str) -> Dict[str, Domain]:
    """The stage placement of one multi-domain partition (G, H)."""
    if letter not in MULTI_PARTITIONS:
        raise KeyError(
            f"unknown multi-domain Vorbis partition {letter!r}; "
            f"expected one of {MULTI_PARTITION_ORDER}"
        )
    return dict(MULTI_PARTITIONS[letter])


def build_multi_partition(letter: str, params: Optional[VorbisParams] = None):
    """Build the back-end design for multi-domain partition ``letter``."""
    return build_backend(
        params=params,
        placement=multi_partition_placement(letter),
        name=f"vorbis_{letter}",
    )


def multi_partition_domains(letter: str) -> List[Domain]:
    """The distinct domains of a multi-domain partition, SW included."""
    seen: Dict[str, Domain] = {SW.name: SW}
    for dom in MULTI_PARTITIONS[letter].values():
        seen.setdefault(dom.name, dom)
    return list(seen.values())


# --------------------------------------------------------------------------
# multi-group partitions (independently clocked pipelines in one design)
# --------------------------------------------------------------------------
#
# Where G/H cut one pipeline into more *domains*, the workloads below cut
# one design into more *groups*: several complete back-end pipelines under
# one root, each on its own disjoint domain set (``SW_P<i>``/``HW_P<i>``),
# with no synchronizer joining them.  ``Partitioning.independent_groups()``
# therefore reports one group per pipeline, and the co-simulation fabric
# runs each under its own clock -- serially with per-group idle-skip, or
# fanned across processes by ``repro.sim.shard.run_grouped``.  This models
# a platform hosting several latency-insensitive accelerated streams at
# once (the paper's modular-refinement guarantee applies per pipeline).

class MultiGroupVorbis:
    """Several independent Vorbis back-end pipelines in one design.

    ``pipes[i]`` is the :class:`~repro.apps.vorbis.backend.VorbisBackend`
    handle of pipeline ``i`` (placed per ``letters[i]`` on domains
    ``SW_P<i>``/``HW_P<i>``).  The termination predicate spans every
    pipeline -- each group's sub-fabric quiesces on its own, and the merged
    run is complete when every sink has emitted all frames.
    """

    def __init__(self, design, params: VorbisParams, letters: str, pipes):
        self.design = design
        self.params = params
        self.letters = letters
        self.pipes = list(pipes)

    def cosim_done(self, cosim) -> bool:
        # Read every sink unconditionally (no cross-pipeline short-circuit):
        # the fabric probes this predicate to learn which registers it
        # observes, and a process-parallel grouped run merges exactly those
        # observed finals -- a data-dependent read set would under-report.
        emitted = [cosim.read(pipe.frames_out) for pipe in self.pipes]
        return all(count >= self.params.n_frames for count in emitted)

    def checksums(self, reader) -> List[int]:
        """Per-pipeline PCM checksums via a register reader function."""
        return [reader(pipe.checksum) for pipe in self.pipes]


def multi_group_placement(letter: str, index: int) -> Dict[str, Domain]:
    """Partition ``letter``'s placement, renamed onto pipeline ``index``'s domains."""
    sw = Domain(f"SW_P{index}")
    hw = Domain(f"HW_P{index}")
    return {
        stage: (hw if dom == HW else sw)
        for stage, dom in partition_placement(letter).items()
    }


def build_group_partition(
    letters: str = "BC", params: Optional[VorbisParams] = None
) -> MultiGroupVorbis:
    """Build ``len(letters)`` independent pipelines, one per partition letter.

    Each pipeline is a full back-end placed per its letter (A--F), living
    on its own ``SW_P<i>``/``HW_P<i>`` domain pair; the returned design has
    exactly one independent group per pipeline.
    """
    params = params or VorbisParams()
    top = Module(f"vorbis_mg_{letters}")
    pipes = []
    for index, letter in enumerate(letters):
        sw = Domain(f"SW_P{index}")
        pipe = build_backend(
            params=params,
            placement=multi_group_placement(letter, index),
            name=f"vorbis_{letter}_p{index}",
            sw_domain=sw,
        )
        top.add_submodule(pipe.design.root)
        pipes.append(pipe)
    design = Design(top, f"vorbis_mg_{letters}")
    return MultiGroupVorbis(design, params, letters, pipes)


def multi_group_domains(letters: str = "BC") -> List[Domain]:
    """The distinct domains of a multi-group workload, in pipeline order."""
    domains: List[Domain] = []
    for index, letter in enumerate(letters):
        seen: Dict[str, Domain] = {}
        for dom in multi_group_placement(letter, index).values():
            seen.setdefault(dom.name, dom)
        sw_name = f"SW_P{index}"
        if sw_name not in seen:
            seen[sw_name] = Domain(sw_name)
        domains.extend(seen.values())
    return domains
