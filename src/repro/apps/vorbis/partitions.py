"""The six HW/SW partitions of the Vorbis back-end (Figure 12).

Each partition is a placement of the back-end's stage groups onto the HW and
SW domains.  ``F`` is the full-software design and ``E`` the full-hardware
back-end (the front end and the audio output always stay in software, as in
the paper).  The intermediate points reproduce the trade-offs the evaluation
discusses:

* ``A`` -- only the IFFT core is in hardware.  The IMDCT invokes it with a
  full complex frame in each direction, so the communication cost roughly
  cancels the computation savings ("the effect of moving only the IFFT to HW
  is marginal"; the measured partition is slightly *slower* than F).
* ``B`` -- IFFT plus the IMDCT FSMs move to hardware; traffic drops to the
  small real-valued frames at the group boundary and the partition beats F.
* ``C`` -- IFFT and the windowing function are in hardware but the IMDCT FSMs
  stay in software, so every frame crosses the boundary four times; this is
  the slowest partition ("moving the windowing function to HW is not worth
  the communication overhead").
* ``D`` -- everything except the back-end input control is in hardware.
* ``E`` -- the complete back-end, including its control, is in hardware.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.vorbis.backend import VorbisBackend, build_backend
from repro.apps.vorbis.params import VorbisParams
from repro.core.domains import HW, SW, Domain

#: Placement of each stage group, per partition letter.
PARTITIONS: Dict[str, Dict[str, Domain]] = {
    "A": {"ctrl": SW, "imdct": SW, "ifft": HW, "window": SW},
    "B": {"ctrl": SW, "imdct": HW, "ifft": HW, "window": SW},
    "C": {"ctrl": SW, "imdct": SW, "ifft": HW, "window": HW},
    "D": {"ctrl": SW, "imdct": HW, "ifft": HW, "window": HW},
    "E": {"ctrl": HW, "imdct": HW, "ifft": HW, "window": HW},
    "F": {"ctrl": SW, "imdct": SW, "ifft": SW, "window": SW},
}

#: Display order used by the Figure 13 benchmark (matches the paper's x axis).
PARTITION_ORDER: List[str] = ["A", "B", "C", "D", "E", "F"]


def partition_placement(letter: str) -> Dict[str, Domain]:
    """The stage placement of one of the paper's partitions (A--F)."""
    if letter not in PARTITIONS:
        raise KeyError(f"unknown Vorbis partition {letter!r}; expected one of {PARTITION_ORDER}")
    return dict(PARTITIONS[letter])


def build_partition(letter: str, params: Optional[VorbisParams] = None) -> VorbisBackend:
    """Build the back-end design for partition ``letter``."""
    return build_backend(
        params=params,
        placement=partition_placement(letter),
        name=f"vorbis_{letter}",
    )


def hw_stage_names(letter: str) -> List[str]:
    """Which stage groups are in hardware for a partition (used in reports)."""
    return sorted(stage for stage, dom in PARTITIONS[letter].items() if dom == HW)


# --------------------------------------------------------------------------
# multi-domain partitions (N-domain fabric workloads)
# --------------------------------------------------------------------------
#
# Beyond the paper's two-way split: the same back-end, cut into more than
# two domain partitions by giving stage groups their *own* hardware
# domains.  Each extra domain becomes its own cycle-level engine with its
# own point-to-point links in the co-simulation fabric -- e.g. partition G
# is the front-end/control in software, the IMDCT+IFFT on one hardware
# partition and the windowing function on a second, with the q_post
# synchronizer riding a dedicated HW_IMDCT->HW_WIN link instead of
# competing with the SW-side traffic.  Domain names start with ``HW`` so
# :func:`repro.sim.cosim.default_engine_kinds` picks the hardware engine.

HW_IMDCT = Domain("HW_IMDCT")
HW_IFFT = Domain("HW_IFFT")
HW_WIN = Domain("HW_WIN")

#: Multi-domain placements: G = 3 domains (SW -> HW-imdct/ifft -> HW-window),
#: H = 4 domains (the IFFT pipe gets its own partition as well).
MULTI_PARTITIONS: Dict[str, Dict[str, Domain]] = {
    "G": {"ctrl": SW, "imdct": HW_IMDCT, "ifft": HW_IMDCT, "window": HW_WIN},
    "H": {"ctrl": SW, "imdct": HW_IMDCT, "ifft": HW_IFFT, "window": HW_WIN},
}

MULTI_PARTITION_ORDER: List[str] = ["G", "H"]


def multi_partition_placement(letter: str) -> Dict[str, Domain]:
    """The stage placement of one multi-domain partition (G, H)."""
    if letter not in MULTI_PARTITIONS:
        raise KeyError(
            f"unknown multi-domain Vorbis partition {letter!r}; "
            f"expected one of {MULTI_PARTITION_ORDER}"
        )
    return dict(MULTI_PARTITIONS[letter])


def build_multi_partition(letter: str, params: Optional[VorbisParams] = None):
    """Build the back-end design for multi-domain partition ``letter``."""
    return build_backend(
        params=params,
        placement=multi_partition_placement(letter),
        name=f"vorbis_{letter}",
    )


def multi_partition_domains(letter: str) -> List[Domain]:
    """The distinct domains of a multi-domain partition, SW included."""
    seen: Dict[str, Domain] = {SW.name: SW}
    for dom in MULTI_PARTITIONS[letter].values():
        seen.setdefault(dom.name, dom)
    return list(seen.values())
