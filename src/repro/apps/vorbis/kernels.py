"""Fixed-point compute kernels of the Vorbis back-end.

These are the bodies of the functions the paper's rules call
(``imdctPreLo``/``imdctPreHi``, ``applyRadix``, ``imdctPost``, the windowing
function), implemented bit-exactly over :class:`~repro.core.fixedpoint.FixedPoint`
so that every partition of the design produces the same PCM samples.

Each kernel exists in the backends of the kernel dataplane
(:mod:`repro.core.kernelcompile`):

* the ``*_oracle`` functions are the original object-based implementations,
  kept verbatim as the semantic reference;
* the ``_*_raw`` functions are the batch raw-integer lowering -- inputs are
  unboxed to flat raw tuples once per invocation, the butterflies/rotations
  run in plain-int arithmetic that wraps after every operation exactly like
  ``FixedPoint``, and results are boxed once at the end;
* the ``_*_np`` functions vectorise the same raw computation over int64
  arrays (formats up to 32 total bits; wider formats fall back to raw).

The public kernel names dispatch on :func:`~repro.core.kernelcompile.effective_backend`
and, on the fast backends, memoise results through the pure-kernel cache
(all Vorbis kernels return immutable tuples, so sharing cached results is
safe).  Every backend is bit-identical; the differential tests in
``tests/test_kernels.py`` enforce it.

The twiddle/pre/post/window tables are materialised once per
``(size, format)`` as flat raw-int tuples; the object and NumPy tables used
by the oracle and vectorised backends are derived views of those same raw
tuples, so no backend can disagree about a table entry.

Each kernel also has a *cost* entry in :func:`kernel_costs`: the CPU-cycle
cost of its software implementation and the FPGA-cycle latency of its
hardware implementation.  Those annotations are what the co-simulator's cost
model consumes; they are calibrated against the relative magnitudes one
obtains from the operation counts below (a complex multiply-accumulate per
element in software, element-per-cycle datapaths in hardware) and are
deliberately *independent* of which kernel backend executes -- the backends
model the same machine.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from repro.core import kernelcompile as kc
from repro.core.fixedpoint import (
    FixComplex,
    FixedPoint,
    box_complex_vector,
    box_fixed_vector,
    raw_from_float,
)

FixVec = Tuple[FixedPoint, ...]
CplxVec = Tuple[FixComplex, ...]

RawVec = Tuple[int, ...]


# Per-format backend bindings: the choice (oracle/python/numpy after width
# demotion) is resolved once and revalidated only when the selection
# generation moves (``set_kernel_backend`` / ``kernel_backend_override``),
# keeping the string resolution out of the per-invocation hot path.
_backend_bindings: Dict[int, Callable[[], str]] = {}


def _backend_for(total_bits: int) -> str:
    try:
        bound = _backend_bindings[total_bits]
    except KeyError:
        bound = _backend_bindings[total_bits] = kc.bind_effective_backend(total_bits)
    return bound()


# --------------------------------------------------------------------------
# table construction (cached per format, shared by every backend)
# --------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _twiddles_raw(points: int, int_bits: int, frac_bits: int) -> Tuple[RawVec, RawVec]:
    """Raw twiddle factors W_k = exp(+2*pi*i*k/points) as flat (re, im) tuples."""
    total = int_bits + frac_bits
    re = []
    im = []
    for k in range(points // 2):
        re.append(raw_from_float(math.cos(2.0 * math.pi * k / points), frac_bits, total))
        im.append(raw_from_float(math.sin(2.0 * math.pi * k / points), frac_bits, total))
    return tuple(re), tuple(im)


@lru_cache(maxsize=None)
def _pre_tables_raw(
    n: int, int_bits: int, frac_bits: int
) -> Tuple[RawVec, RawVec, RawVec, RawVec]:
    """Raw IMDCT pre-multiply tables as flat (lo_re, lo_im, hi_re, hi_im) tuples."""
    total = int_bits + frac_bits
    lo_re = tuple(
        raw_from_float(math.cos(math.pi * (i + 0.25) / n), frac_bits, total) for i in range(n)
    )
    lo_im = tuple(
        raw_from_float(-math.sin(math.pi * (i + 0.25) / n), frac_bits, total) for i in range(n)
    )
    hi_re = tuple(
        raw_from_float(math.sin(math.pi * (i + 0.75) / n), frac_bits, total) for i in range(n)
    )
    hi_im = tuple(
        raw_from_float(math.cos(math.pi * (i + 0.75) / n), frac_bits, total) for i in range(n)
    )
    return lo_re, lo_im, hi_re, hi_im


@lru_cache(maxsize=None)
def _post_table_raw(points: int, int_bits: int, frac_bits: int) -> Tuple[RawVec, RawVec]:
    """Raw IMDCT post-rotation table as flat (re, im) tuples."""
    total = int_bits + frac_bits
    re = tuple(
        raw_from_float(math.cos(math.pi * (i + 0.5) / (2 * points)), frac_bits, total)
        for i in range(points)
    )
    im = tuple(
        raw_from_float(-math.sin(math.pi * (i + 0.5) / (2 * points)), frac_bits, total)
        for i in range(points)
    )
    return re, im


@lru_cache(maxsize=None)
def _window_table_raw(points: int, int_bits: int, frac_bits: int) -> RawVec:
    """Raw Vorbis-style sine window over ``points`` samples."""
    total = int_bits + frac_bits
    return tuple(
        raw_from_float(math.sin(math.pi * (i + 0.5) / points), frac_bits, total)
        for i in range(points)
    )


@lru_cache(maxsize=None)
def _twiddles(points: int, int_bits: int, frac_bits: int) -> CplxVec:
    """Inverse-transform twiddle factors (boxed view of the raw table)."""
    re, im = _twiddles_raw(points, int_bits, frac_bits)
    return box_complex_vector(re, im, int_bits, frac_bits)


@lru_cache(maxsize=None)
def _pre_tables(n: int, int_bits: int, frac_bits: int) -> Tuple[CplxVec, CplxVec]:
    """The two IMDCT pre-multiply tables (preTable1 / preTable2 of Section 4.1)."""
    lo_re, lo_im, hi_re, hi_im = _pre_tables_raw(n, int_bits, frac_bits)
    return (
        box_complex_vector(lo_re, lo_im, int_bits, frac_bits),
        box_complex_vector(hi_re, hi_im, int_bits, frac_bits),
    )


@lru_cache(maxsize=None)
def _post_table(points: int, int_bits: int, frac_bits: int) -> CplxVec:
    """The IMDCT post-rotation table applied after the IFFT."""
    re, im = _post_table_raw(points, int_bits, frac_bits)
    return box_complex_vector(re, im, int_bits, frac_bits)


@lru_cache(maxsize=None)
def _window_table(points: int, int_bits: int, frac_bits: int) -> FixVec:
    """The Vorbis-style sine window over ``points`` samples (boxed view)."""
    return box_fixed_vector(_window_table_raw(points, int_bits, frac_bits), int_bits, frac_bits)


@lru_cache(maxsize=None)
def _twiddles_np(points: int, int_bits: int, frac_bits: int):
    re, im = _twiddles_raw(points, int_bits, frac_bits)
    return kc.np_table(re), kc.np_table(im)


@lru_cache(maxsize=None)
def _pre_tables_np(n: int, int_bits: int, frac_bits: int):
    lo_re, lo_im, hi_re, hi_im = _pre_tables_raw(n, int_bits, frac_bits)
    return kc.np_table(lo_re), kc.np_table(lo_im), kc.np_table(hi_re), kc.np_table(hi_im)


@lru_cache(maxsize=None)
def _post_table_np(points: int, int_bits: int, frac_bits: int):
    re, im = _post_table_raw(points, int_bits, frac_bits)
    return kc.np_table(re), kc.np_table(im)


@lru_cache(maxsize=None)
def _window_table_np(points: int, int_bits: int, frac_bits: int):
    return kc.np_table(_window_table_raw(points, int_bits, frac_bits))


def bit_reverse(i: int, bits: int) -> int:
    """Bit-reversal of an index, as used by the post step (``bitReverse`` in the paper)."""
    out = 0
    for _ in range(bits):
        out = (out << 1) | (i & 1)
        i >>= 1
    return out


@lru_cache(maxsize=None)
def _bit_reverse_table(points: int) -> RawVec:
    """Precomputed bit-reversed index of every position (fast-backend helper)."""
    bits = points.bit_length() - 1
    return tuple(bit_reverse(i, bits) for i in range(points))


@lru_cache(maxsize=None)
def _bit_reverse_table_np(points: int):
    return kc.np_table(_bit_reverse_table(points))


# --------------------------------------------------------------------------
# synthetic front end
# --------------------------------------------------------------------------


def gen_frame_oracle(
    index: int, n: int, seed: int = 2012, int_bits: int = 8, frac_bits: int = 24
) -> FixVec:
    """Generate one synthetic spectral frame (substitute for real Vorbis bitstreams).

    A small multiplicative congruential generator produces deterministic
    spectral lines in ``(-0.9, 0.9)``; content does not affect control flow,
    only the PCM values the correctness checks compare.
    """
    state = (seed * 2654435761 + index * 40503 + 12345) & 0xFFFFFFFF
    values = []
    for _ in range(n):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        values.append(((state / float(0x7FFFFFFF)) * 1.8) - 0.9)
    return tuple(FixedPoint.from_float(v, int_bits, frac_bits) for v in values)


def gen_frame(index: int, n: int, seed: int = 2012, int_bits: int = 8, frac_bits: int = 24) -> FixVec:
    """Generate one synthetic spectral frame (dispatching front end).

    The LCG is inherently sequential, so the fast path is the raw-integer
    quantisation loop plus the result cache (the scalar arguments are the
    whole input, making this the cheapest key in the cache).
    """
    if kc.kernel_backend() == "oracle":
        return gen_frame_oracle(index, n, seed, int_bits, frac_bits)
    key = ("gen_frame", index, n, seed, int_bits, frac_bits)
    hit = kc.cache_get(key)
    if hit is not None:
        return hit
    total = int_bits + frac_bits
    state = (seed * 2654435761 + index * 40503 + 12345) & 0xFFFFFFFF
    raws = []
    append = raws.append
    for _ in range(n):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        append(raw_from_float(((state / float(0x7FFFFFFF)) * 1.8) - 0.9, frac_bits, total))
    return kc.cache_put(key, box_fixed_vector(raws, int_bits, frac_bits))


def backend_input_oracle(frame: FixVec, int_bits: int = 8, frac_bits: int = 24) -> FixVec:
    """The back-end's ``input`` glue: apply the global gain before the IMDCT."""
    gain = FixedPoint.from_float(0.5, int_bits, frac_bits)
    return tuple(v * gain for v in frame)


def _backend_input_raw(raws: RawVec, int_bits: int, frac_bits: int) -> List[int]:
    total = int_bits + frac_bits
    mask = (1 << total) - 1
    sign = 1 << (total - 1)
    gain = raw_from_float(0.5, frac_bits, total)
    fb = frac_bits
    return [((((v * gain) >> fb) & mask) ^ sign) - sign for v in raws]


def _backend_input_np(raws: RawVec, int_bits: int, frac_bits: int) -> List[int]:
    total = int_bits + frac_bits
    gain = raw_from_float(0.5, frac_bits, total)
    v = kc.np.array(raws, dtype=kc.np.int64)
    return kc.np_mul(v, gain, frac_bits, total).tolist()


def backend_input(frame: FixVec, int_bits: int = 8, frac_bits: int = 24) -> FixVec:
    """The back-end's ``input`` glue (dispatching)."""
    backend = _backend_for(int_bits + frac_bits)
    if backend == "oracle":
        return backend_input_oracle(frame, int_bits, frac_bits)
    raws = tuple(v.raw for v in frame)
    key = ("backend_input", int_bits, frac_bits, raws)
    hit = kc.cache_get(key)
    if hit is not None:
        return hit
    if backend == "numpy":
        out = _backend_input_np(raws, int_bits, frac_bits)
    else:
        out = _backend_input_raw(raws, int_bits, frac_bits)
    return kc.cache_put(key, box_fixed_vector(out, int_bits, frac_bits))


# --------------------------------------------------------------------------
# IMDCT / IFFT / window kernels
# --------------------------------------------------------------------------


def imdct_pre_oracle(frame: FixVec, int_bits: int = 8, frac_bits: int = 24) -> CplxVec:
    """IMDCT pre-multiply: n real spectral lines -> 2n complex IFFT inputs."""
    n = len(frame)
    lo, hi = _pre_tables(n, int_bits, frac_bits)
    out = [FixComplex.zero(int_bits, frac_bits)] * (2 * n)
    for i, value in enumerate(frame):
        out[i] = lo[i] * value
        out[n + i] = hi[i] * value
    return tuple(out)


def _imdct_pre_raw(
    raws: RawVec, int_bits: int, frac_bits: int
) -> Tuple[List[int], List[int]]:
    n = len(raws)
    lo_re, lo_im, hi_re, hi_im = _pre_tables_raw(n, int_bits, frac_bits)
    total = int_bits + frac_bits
    mask = (1 << total) - 1
    sign = 1 << (total - 1)
    fb = frac_bits
    out_re = [0] * (2 * n)
    out_im = [0] * (2 * n)
    for i in range(n):
        v = raws[i]
        out_re[i] = ((((lo_re[i] * v) >> fb) & mask) ^ sign) - sign
        out_im[i] = ((((lo_im[i] * v) >> fb) & mask) ^ sign) - sign
        out_re[n + i] = ((((hi_re[i] * v) >> fb) & mask) ^ sign) - sign
        out_im[n + i] = ((((hi_im[i] * v) >> fb) & mask) ^ sign) - sign
    return out_re, out_im


def _imdct_pre_np(raws: RawVec, int_bits: int, frac_bits: int) -> Tuple[List[int], List[int]]:
    np = kc.np
    lo_re, lo_im, hi_re, hi_im = _pre_tables_np(len(raws), int_bits, frac_bits)
    total = int_bits + frac_bits
    v = np.array(raws, dtype=np.int64)
    out_re = np.concatenate(
        [kc.np_mul(lo_re, v, frac_bits, total), kc.np_mul(hi_re, v, frac_bits, total)]
    )
    out_im = np.concatenate(
        [kc.np_mul(lo_im, v, frac_bits, total), kc.np_mul(hi_im, v, frac_bits, total)]
    )
    return out_re.tolist(), out_im.tolist()


def imdct_pre(frame: FixVec, int_bits: int = 8, frac_bits: int = 24) -> CplxVec:
    """IMDCT pre-multiply (dispatching)."""
    backend = _backend_for(int_bits + frac_bits)
    if backend == "oracle":
        return imdct_pre_oracle(frame, int_bits, frac_bits)
    raws = tuple(v.raw for v in frame)
    key = ("imdct_pre", int_bits, frac_bits, raws)
    hit = kc.cache_get(key)
    if hit is not None:
        return hit
    if backend == "numpy":
        out_re, out_im = _imdct_pre_np(raws, int_bits, frac_bits)
    else:
        out_re, out_im = _imdct_pre_raw(raws, int_bits, frac_bits)
    return kc.cache_put(key, box_complex_vector(out_re, out_im, int_bits, frac_bits))


def ifft_radix_stage_oracle(
    stage: int, data: CplxVec, int_bits: int = 8, frac_bits: int = 24
) -> CplxVec:
    """Apply one radix-2 decimation-in-frequency stage of the IFFT.

    Stage 0 operates on the full span, the last stage on adjacent pairs.  Each
    stage scales by 1/2 so the complete transform carries the 1/N
    normalisation; the output of the final stage is in bit-reversed order,
    which the IMDCT post step undoes (exactly as the paper's ``bitReverse``).
    """
    points = len(data)
    twiddles = _twiddles(points, int_bits, frac_bits)
    half_fp = FixedPoint.from_float(0.5, int_bits, frac_bits)
    x = list(data)
    half = points >> (stage + 1)
    block = points >> stage
    for start in range(0, points, block):
        for j in range(half):
            a = x[start + j]
            b = x[start + j + half]
            twiddle = twiddles[j << stage]
            x[start + j] = (a + b) * half_fp
            x[start + j + half] = ((a - b) * half_fp) * twiddle
    return tuple(x)


def _ifft_stages_raw(
    first: int,
    last: int,
    re_in: RawVec,
    im_in: RawVec,
    int_bits: int,
    frac_bits: int,
) -> Tuple[List[int], List[int]]:
    """Radix stages ``first..last-1`` over raw re/im arrays (butterfly loop)."""
    points = len(re_in)
    tw_re, tw_im = _twiddles_raw(points, int_bits, frac_bits)
    total = int_bits + frac_bits
    mask = (1 << total) - 1
    sign = 1 << (total - 1)
    fb = frac_bits
    half_raw = raw_from_float(0.5, frac_bits, total)
    re = list(re_in)
    im = list(im_in)
    for stage in range(first, last):
        half = points >> (stage + 1)
        block = points >> stage
        step = 1 << stage
        for start in range(0, points, block):
            for j in range(half):
                ia = start + j
                ib = ia + half
                are = re[ia]
                aim = im[ia]
                bre = re[ib]
                bim = im[ib]
                twr = tw_re[j * step]
                twi = tw_im[j * step]
                # x[ia] = (a + b) * 0.5
                sre = (((are + bre) & mask) ^ sign) - sign
                sim = (((aim + bim) & mask) ^ sign) - sign
                re[ia] = ((((sre * half_raw) >> fb) & mask) ^ sign) - sign
                im[ia] = ((((sim * half_raw) >> fb) & mask) ^ sign) - sign
                # x[ib] = ((a - b) * 0.5) * W
                dre = (((are - bre) & mask) ^ sign) - sign
                dim = (((aim - bim) & mask) ^ sign) - sign
                dre = ((((dre * half_raw) >> fb) & mask) ^ sign) - sign
                dim = ((((dim * half_raw) >> fb) & mask) ^ sign) - sign
                rr = ((((dre * twr) >> fb) & mask) ^ sign) - sign
                ii = ((((dim * twi) >> fb) & mask) ^ sign) - sign
                ri = ((((dre * twi) >> fb) & mask) ^ sign) - sign
                ir = ((((dim * twr) >> fb) & mask) ^ sign) - sign
                re[ib] = (((rr - ii) & mask) ^ sign) - sign
                im[ib] = (((ri + ir) & mask) ^ sign) - sign
    return re, im


def _ifft_stages_np(
    first: int,
    last: int,
    re_in: RawVec,
    im_in: RawVec,
    int_bits: int,
    frac_bits: int,
) -> Tuple[List[int], List[int]]:
    np = kc.np
    points = len(re_in)
    tw_re_full, tw_im_full = _twiddles_np(points, int_bits, frac_bits)
    total = int_bits + frac_bits
    fb = frac_bits
    half_raw = raw_from_float(0.5, frac_bits, total)
    re = np.array(re_in, dtype=np.int64)
    im = np.array(im_in, dtype=np.int64)
    for stage in range(first, last):
        half = points >> (stage + 1)
        block = points >> stage
        step = 1 << stage
        r = re.reshape(-1, block)
        i2 = im.reshape(-1, block)
        a_re = r[:, :half]
        a_im = i2[:, :half]
        b_re = r[:, half:]
        b_im = i2[:, half:]
        twr = tw_re_full[: half * step : step]
        twi = tw_im_full[: half * step : step]
        s_re = kc.np_mul(kc.np_add(a_re, b_re, total), half_raw, fb, total)
        s_im = kc.np_mul(kc.np_add(a_im, b_im, total), half_raw, fb, total)
        d_re = kc.np_mul(kc.np_sub(a_re, b_re, total), half_raw, fb, total)
        d_im = kc.np_mul(kc.np_sub(a_im, b_im, total), half_raw, fb, total)
        o_re = kc.np_sub(
            kc.np_mul(d_re, twr, fb, total), kc.np_mul(d_im, twi, fb, total), total
        )
        o_im = kc.np_add(
            kc.np_mul(d_re, twi, fb, total), kc.np_mul(d_im, twr, fb, total), total
        )
        r[:, :half] = s_re
        i2[:, :half] = s_im
        r[:, half:] = o_re
        i2[:, half:] = o_im
    return re.tolist(), im.tolist()


def _ifft_stages(
    first: int, last: int, data: CplxVec, int_bits: int, frac_bits: int, backend: str
) -> CplxVec:
    """Shared fast-backend driver: unbox once, run stages, box once, cache."""
    re = tuple(v.real.raw for v in data)
    im = tuple(v.imag.raw for v in data)
    key = ("ifft", first, last, int_bits, frac_bits, re, im)
    hit = kc.cache_get(key)
    if hit is not None:
        return hit
    if backend == "numpy":
        out_re, out_im = _ifft_stages_np(first, last, re, im, int_bits, frac_bits)
    else:
        out_re, out_im = _ifft_stages_raw(first, last, re, im, int_bits, frac_bits)
    return kc.cache_put(key, box_complex_vector(out_re, out_im, int_bits, frac_bits))


def ifft_radix_stage(stage: int, data: CplxVec, int_bits: int = 8, frac_bits: int = 24) -> CplxVec:
    """Apply one radix-2 decimation-in-frequency stage of the IFFT (dispatching)."""
    backend = _backend_for(int_bits + frac_bits)
    if backend == "oracle":
        return ifft_radix_stage_oracle(stage, data, int_bits, frac_bits)
    return _ifft_stages(stage, stage + 1, data, int_bits, frac_bits, backend)


def ifft_rule_stage(
    rule_stage: int,
    data: CplxVec,
    stages_per_rule: int,
    int_bits: int = 8,
    frac_bits: int = 24,
) -> CplxVec:
    """Apply the radix stages belonging to pipeline stage ``rule_stage``.

    The paper's ``mkIFFTPipe`` has three pipeline stages; a 64-point radix-2
    transform has six radix stages, so each pipeline stage applies two
    (``applyRadix(stage, pos, x)`` grouped per rule).
    """
    points = len(data)
    total = points.bit_length() - 1
    first = rule_stage * stages_per_rule
    last = min(first + stages_per_rule, total)
    if last <= first:
        return data
    backend = _backend_for(int_bits + frac_bits)
    if backend == "oracle":
        out = data
        for stage in range(first, last):
            out = ifft_radix_stage_oracle(stage, out, int_bits, frac_bits)
        return out
    return _ifft_stages(first, last, data, int_bits, frac_bits, backend)


def ifft_full(data: CplxVec, int_bits: int = 8, frac_bits: int = 24) -> CplxVec:
    """The complete (unpipelined) IFFT: every radix stage in sequence.

    This is the body of ``mkIFFTComb``'s single ``doIFFT`` rule; output is in
    bit-reversed order like the staged version.
    """
    points = len(data)
    total = points.bit_length() - 1
    backend = _backend_for(int_bits + frac_bits)
    if backend == "oracle":
        out = data
        for stage in range(total):
            out = ifft_radix_stage_oracle(stage, out, int_bits, frac_bits)
        return out
    if total <= 0:
        return data
    return _ifft_stages(0, total, data, int_bits, frac_bits, backend)


def natural_order(data: CplxVec) -> CplxVec:
    """Undo the bit-reversed ordering produced by the DIF IFFT (test helper)."""
    points = len(data)
    bits = points.bit_length() - 1
    out = [data[0]] * points
    for i in range(points):
        out[bit_reverse(i, bits)] = data[i]
    return tuple(out)


def imdct_post_oracle(spectrum: CplxVec, int_bits: int = 8, frac_bits: int = 24) -> FixVec:
    """IMDCT post step: bit-reverse, post-rotate and take the real part."""
    points = len(spectrum)
    bits = points.bit_length() - 1
    post = _post_table(points, int_bits, frac_bits)
    out = [FixedPoint.zero(int_bits, frac_bits)] * points
    for i in range(points):
        rotated = spectrum[i] * post[i]
        out[bit_reverse(i, bits)] = rotated.real
    return tuple(out)


def _imdct_post_raw(re: RawVec, im: RawVec, int_bits: int, frac_bits: int) -> List[int]:
    points = len(re)
    p_re, p_im = _post_table_raw(points, int_bits, frac_bits)
    rev = _bit_reverse_table(points)
    total = int_bits + frac_bits
    mask = (1 << total) - 1
    sign = 1 << (total - 1)
    fb = frac_bits
    out = [0] * points
    for i in range(points):
        a = ((((re[i] * p_re[i]) >> fb) & mask) ^ sign) - sign
        b = ((((im[i] * p_im[i]) >> fb) & mask) ^ sign) - sign
        out[rev[i]] = (((a - b) & mask) ^ sign) - sign
    return out


def _imdct_post_np(re_in: RawVec, im_in: RawVec, int_bits: int, frac_bits: int) -> List[int]:
    np = kc.np
    points = len(re_in)
    p_re, p_im = _post_table_np(points, int_bits, frac_bits)
    rev = _bit_reverse_table_np(points)
    total = int_bits + frac_bits
    fb = frac_bits
    re = np.array(re_in, dtype=np.int64)
    im = np.array(im_in, dtype=np.int64)
    rot = kc.np_sub(kc.np_mul(re, p_re, fb, total), kc.np_mul(im, p_im, fb, total), total)
    out = np.empty(points, dtype=np.int64)
    out[rev] = rot
    return out.tolist()


def imdct_post(spectrum: CplxVec, int_bits: int = 8, frac_bits: int = 24) -> FixVec:
    """IMDCT post step (dispatching)."""
    backend = _backend_for(int_bits + frac_bits)
    if backend == "oracle":
        return imdct_post_oracle(spectrum, int_bits, frac_bits)
    re = tuple(v.real.raw for v in spectrum)
    im = tuple(v.imag.raw for v in spectrum)
    key = ("imdct_post", int_bits, frac_bits, re, im)
    hit = kc.cache_get(key)
    if hit is not None:
        return hit
    if backend == "numpy":
        out = _imdct_post_np(re, im, int_bits, frac_bits)
    else:
        out = _imdct_post_raw(re, im, int_bits, frac_bits)
    return kc.cache_put(key, box_fixed_vector(out, int_bits, frac_bits))


def window_overlap_oracle(
    previous: FixVec, current: FixVec, int_bits: int = 8, frac_bits: int = 24
) -> Tuple[FixVec, FixVec]:
    """Sliding-window overlap-add.

    ``previous`` is the retained second half of the previous frame (n
    samples); ``current`` is the 2n-sample IMDCT output of this frame.
    Returns ``(pcm, new_previous)`` where ``pcm`` has n samples.
    """
    n = len(previous)
    if len(current) != 2 * n:
        raise ValueError(f"window: expected {2 * n} current samples, got {len(current)}")
    window = _window_table(2 * n, int_bits, frac_bits)
    pcm = tuple(
        previous[i] * window[n + i] + current[i] * window[i] for i in range(n)
    )
    new_previous = tuple(current[n + i] for i in range(n))
    return pcm, new_previous


def _window_overlap_raw(
    prev: RawVec, cur: RawVec, int_bits: int, frac_bits: int
) -> List[int]:
    n = len(prev)
    window = _window_table_raw(2 * n, int_bits, frac_bits)
    total = int_bits + frac_bits
    mask = (1 << total) - 1
    sign = 1 << (total - 1)
    fb = frac_bits
    out = [0] * n
    for i in range(n):
        a = ((((prev[i] * window[n + i]) >> fb) & mask) ^ sign) - sign
        b = ((((cur[i] * window[i]) >> fb) & mask) ^ sign) - sign
        out[i] = (((a + b) & mask) ^ sign) - sign
    return out


def _window_overlap_np(prev: RawVec, cur: RawVec, int_bits: int, frac_bits: int) -> List[int]:
    np = kc.np
    n = len(prev)
    window = _window_table_np(2 * n, int_bits, frac_bits)
    total = int_bits + frac_bits
    fb = frac_bits
    p = np.array(prev, dtype=np.int64)
    c = np.array(cur[:n], dtype=np.int64)
    a = kc.np_mul(p, window[n:], fb, total)
    b = kc.np_mul(c, window[:n], fb, total)
    return kc.np_add(a, b, total).tolist()


def window_overlap(
    previous: FixVec, current: FixVec, int_bits: int = 8, frac_bits: int = 24
) -> Tuple[FixVec, FixVec]:
    """Sliding-window overlap-add (dispatching)."""
    backend = _backend_for(int_bits + frac_bits)
    if backend == "oracle":
        return window_overlap_oracle(previous, current, int_bits, frac_bits)
    n = len(previous)
    if len(current) != 2 * n:
        raise ValueError(f"window: expected {2 * n} current samples, got {len(current)}")
    prev = tuple(v.raw for v in previous)
    cur = tuple(v.raw for v in current)
    key = ("window_overlap", int_bits, frac_bits, prev, cur)
    hit = kc.cache_get(key)
    if hit is not None:
        return hit
    if backend == "numpy":
        pcm_raws = _window_overlap_np(prev, cur, int_bits, frac_bits)
    else:
        pcm_raws = _window_overlap_raw(prev, cur, int_bits, frac_bits)
    pcm = box_fixed_vector(pcm_raws, int_bits, frac_bits)
    new_previous = tuple(current[n + i] for i in range(n))
    return kc.cache_put(key, (pcm, new_previous))


def audio_checksum(pcm: FixVec, running: int) -> int:
    """Fold a PCM block into a running 32-bit checksum (the audio-device sink).

    The checksum stands in for the memory-mapped audio output; comparing it
    across partitions is the bit-exactness check of the latency-insensitive
    refinement claim.  Already raw-integer arithmetic, so it is its own fast
    path and has no per-backend variants.
    """
    total = running
    for sample in pcm:
        total = (total * 31 + sample.to_bits()) & 0xFFFFFFFF
    return total


# --------------------------------------------------------------------------
# cost annotations
# --------------------------------------------------------------------------


def kernel_costs(n: int) -> Dict[str, Tuple[int, int]]:
    """``(sw_cpu_cycles, hw_fpga_cycles)`` per kernel for a frame size of ``n``.

    Software costs assume a scalar in-order embedded core (a handful of
    cycles per multiply-accumulate including loads/stores); hardware costs
    assume an element-per-cycle datapath, with the pipelined IFFT processing
    four butterflies per cycle per stage as in the paper's mkIFFTPipe
    discussion.
    """
    points = 2 * n
    return {
        "gen_frame": (12 * n + 16, 12 * n + 16),
        "backend_input": (8 * n + 16, n // 2),
        "imdct_pre": (12 * points + 32, points),
        "ifft_rule_stage": (8 * points + 38, points // 4),
        "imdct_post": (10 * points + 32, points),
        "window_overlap": (16 * n + 32, points),
        "audio_out": (8 * n + 16, 8 * n + 16),
    }
