"""Fixed-point compute kernels of the Vorbis back-end.

These are the bodies of the functions the paper's rules call
(``imdctPreLo``/``imdctPreHi``, ``applyRadix``, ``imdctPost``, the windowing
function), implemented bit-exactly over :class:`~repro.core.fixedpoint.FixedPoint`
so that every partition of the design produces the same PCM samples.

Each kernel also has a *cost* entry in :func:`kernel_costs`: the CPU-cycle
cost of its software implementation and the FPGA-cycle latency of its
hardware implementation.  Those annotations are what the co-simulator's cost
model consumes; they are calibrated against the relative magnitudes one
obtains from the operation counts below (a complex multiply-accumulate per
element in software, element-per-cycle datapaths in hardware).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, Tuple

from repro.core.fixedpoint import FixComplex, FixedPoint

FixVec = Tuple[FixedPoint, ...]
CplxVec = Tuple[FixComplex, ...]


# --------------------------------------------------------------------------
# table construction (cached per format)
# --------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _twiddles(points: int, int_bits: int, frac_bits: int) -> CplxVec:
    """Inverse-transform twiddle factors W_k = exp(+2*pi*i*k/points)."""
    return tuple(
        FixComplex.from_floats(
            math.cos(2.0 * math.pi * k / points),
            math.sin(2.0 * math.pi * k / points),
            int_bits,
            frac_bits,
        )
        for k in range(points // 2)
    )


@lru_cache(maxsize=None)
def _pre_tables(n: int, int_bits: int, frac_bits: int) -> Tuple[CplxVec, CplxVec]:
    """The two IMDCT pre-multiply tables (preTable1 / preTable2 of Section 4.1)."""
    lo = tuple(
        FixComplex.from_floats(
            math.cos(math.pi * (i + 0.25) / n),
            -math.sin(math.pi * (i + 0.25) / n),
            int_bits,
            frac_bits,
        )
        for i in range(n)
    )
    hi = tuple(
        FixComplex.from_floats(
            math.sin(math.pi * (i + 0.75) / n),
            math.cos(math.pi * (i + 0.75) / n),
            int_bits,
            frac_bits,
        )
        for i in range(n)
    )
    return lo, hi


@lru_cache(maxsize=None)
def _post_table(points: int, int_bits: int, frac_bits: int) -> CplxVec:
    """The IMDCT post-rotation table applied after the IFFT."""
    return tuple(
        FixComplex.from_floats(
            math.cos(math.pi * (i + 0.5) / (2 * points)),
            -math.sin(math.pi * (i + 0.5) / (2 * points)),
            int_bits,
            frac_bits,
        )
        for i in range(points)
    )


@lru_cache(maxsize=None)
def _window_table(points: int, int_bits: int, frac_bits: int) -> FixVec:
    """The Vorbis-style sine window over ``points`` samples."""
    return tuple(
        FixedPoint.from_float(math.sin(math.pi * (i + 0.5) / points), int_bits, frac_bits)
        for i in range(points)
    )


def bit_reverse(i: int, bits: int) -> int:
    """Bit-reversal of an index, as used by the post step (``bitReverse`` in the paper)."""
    out = 0
    for _ in range(bits):
        out = (out << 1) | (i & 1)
        i >>= 1
    return out


# --------------------------------------------------------------------------
# synthetic front end
# --------------------------------------------------------------------------


def gen_frame(index: int, n: int, seed: int = 2012, int_bits: int = 8, frac_bits: int = 24) -> FixVec:
    """Generate one synthetic spectral frame (substitute for real Vorbis bitstreams).

    A small multiplicative congruential generator produces deterministic
    spectral lines in ``(-0.9, 0.9)``; content does not affect control flow,
    only the PCM values the correctness checks compare.
    """
    state = (seed * 2654435761 + index * 40503 + 12345) & 0xFFFFFFFF
    values = []
    for _ in range(n):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        values.append(((state / float(0x7FFFFFFF)) * 1.8) - 0.9)
    return tuple(FixedPoint.from_float(v, int_bits, frac_bits) for v in values)


def backend_input(frame: FixVec, int_bits: int = 8, frac_bits: int = 24) -> FixVec:
    """The back-end's ``input`` glue: apply the global gain before the IMDCT."""
    gain = FixedPoint.from_float(0.5, int_bits, frac_bits)
    return tuple(v * gain for v in frame)


# --------------------------------------------------------------------------
# IMDCT / IFFT / window kernels
# --------------------------------------------------------------------------


def imdct_pre(frame: FixVec, int_bits: int = 8, frac_bits: int = 24) -> CplxVec:
    """IMDCT pre-multiply: n real spectral lines -> 2n complex IFFT inputs."""
    n = len(frame)
    lo, hi = _pre_tables(n, int_bits, frac_bits)
    out = [FixComplex.zero(int_bits, frac_bits)] * (2 * n)
    for i, value in enumerate(frame):
        out[i] = lo[i] * value
        out[n + i] = hi[i] * value
    return tuple(out)


def ifft_radix_stage(stage: int, data: CplxVec, int_bits: int = 8, frac_bits: int = 24) -> CplxVec:
    """Apply one radix-2 decimation-in-frequency stage of the IFFT.

    Stage 0 operates on the full span, the last stage on adjacent pairs.  Each
    stage scales by 1/2 so the complete transform carries the 1/N
    normalisation; the output of the final stage is in bit-reversed order,
    which the IMDCT post step undoes (exactly as the paper's ``bitReverse``).
    """
    points = len(data)
    twiddles = _twiddles(points, int_bits, frac_bits)
    half_fp = FixedPoint.from_float(0.5, int_bits, frac_bits)
    x = list(data)
    half = points >> (stage + 1)
    block = points >> stage
    for start in range(0, points, block):
        for j in range(half):
            a = x[start + j]
            b = x[start + j + half]
            twiddle = twiddles[j << stage]
            x[start + j] = (a + b) * half_fp
            x[start + j + half] = ((a - b) * half_fp) * twiddle
    return tuple(x)


def ifft_rule_stage(
    rule_stage: int,
    data: CplxVec,
    stages_per_rule: int,
    int_bits: int = 8,
    frac_bits: int = 24,
) -> CplxVec:
    """Apply the radix stages belonging to pipeline stage ``rule_stage``.

    The paper's ``mkIFFTPipe`` has three pipeline stages; a 64-point radix-2
    transform has six radix stages, so each pipeline stage applies two
    (``applyRadix(stage, pos, x)`` grouped per rule).
    """
    points = len(data)
    total = points.bit_length() - 1
    first = rule_stage * stages_per_rule
    out = data
    for stage in range(first, min(first + stages_per_rule, total)):
        out = ifft_radix_stage(stage, out, int_bits, frac_bits)
    return out


def ifft_full(data: CplxVec, int_bits: int = 8, frac_bits: int = 24) -> CplxVec:
    """The complete (unpipelined) IFFT: every radix stage in sequence.

    This is the body of ``mkIFFTComb``'s single ``doIFFT`` rule; output is in
    bit-reversed order like the staged version.
    """
    points = len(data)
    total = points.bit_length() - 1
    out = data
    for stage in range(total):
        out = ifft_radix_stage(stage, out, int_bits, frac_bits)
    return out


def natural_order(data: CplxVec) -> CplxVec:
    """Undo the bit-reversed ordering produced by the DIF IFFT (test helper)."""
    points = len(data)
    bits = points.bit_length() - 1
    out = [data[0]] * points
    for i in range(points):
        out[bit_reverse(i, bits)] = data[i]
    return tuple(out)


def imdct_post(spectrum: CplxVec, int_bits: int = 8, frac_bits: int = 24) -> FixVec:
    """IMDCT post step: bit-reverse, post-rotate and take the real part."""
    points = len(spectrum)
    bits = points.bit_length() - 1
    post = _post_table(points, int_bits, frac_bits)
    out = [FixedPoint.zero(int_bits, frac_bits)] * points
    for i in range(points):
        rotated = spectrum[i] * post[i]
        out[bit_reverse(i, bits)] = rotated.real
    return tuple(out)


def window_overlap(
    previous: FixVec, current: FixVec, int_bits: int = 8, frac_bits: int = 24
) -> Tuple[FixVec, FixVec]:
    """Sliding-window overlap-add.

    ``previous`` is the retained second half of the previous frame (n
    samples); ``current`` is the 2n-sample IMDCT output of this frame.
    Returns ``(pcm, new_previous)`` where ``pcm`` has n samples.
    """
    n = len(previous)
    if len(current) != 2 * n:
        raise ValueError(f"window: expected {2 * n} current samples, got {len(current)}")
    window = _window_table(2 * n, int_bits, frac_bits)
    pcm = tuple(
        previous[i] * window[n + i] + current[i] * window[i] for i in range(n)
    )
    new_previous = tuple(current[n + i] for i in range(n))
    return pcm, new_previous


def audio_checksum(pcm: FixVec, running: int) -> int:
    """Fold a PCM block into a running 32-bit checksum (the audio-device sink).

    The checksum stands in for the memory-mapped audio output; comparing it
    across partitions is the bit-exactness check of the latency-insensitive
    refinement claim.
    """
    total = running
    for sample in pcm:
        total = (total * 31 + sample.to_bits()) & 0xFFFFFFFF
    return total


# --------------------------------------------------------------------------
# cost annotations
# --------------------------------------------------------------------------


def kernel_costs(n: int) -> Dict[str, Tuple[int, int]]:
    """``(sw_cpu_cycles, hw_fpga_cycles)`` per kernel for a frame size of ``n``.

    Software costs assume a scalar in-order embedded core (a handful of
    cycles per multiply-accumulate including loads/stores); hardware costs
    assume an element-per-cycle datapath, with the pipelined IFFT processing
    four butterflies per cycle per stage as in the paper's mkIFFTPipe
    discussion.
    """
    points = 2 * n
    return {
        "gen_frame": (12 * n + 16, 12 * n + 16),
        "backend_input": (8 * n + 16, n // 2),
        "imdct_pre": (12 * points + 32, points),
        "ifft_rule_stage": (8 * points + 38, points // 4),
        "imdct_post": (10 * points + 32, points),
        "window_overlap": (16 * n + 32, points),
        "audio_out": (8 * n + 16, 8 * n + 16),
    }
