"""The ray-tracing application (Section 7.2): BVH construction, traversal, shading.

Like the Vorbis back-end, the ray tracer is a BCL design whose modules can be
placed in either computational domain; :mod:`repro.apps.raytracer.partitions`
defines the four decompositions A--D of Figure 14.
"""

from repro.apps.raytracer.params import RayTracerParams
from repro.apps.raytracer.pipeline import RayTracer, build_raytracer
from repro.apps.raytracer.partitions import PARTITIONS, partition_placement

__all__ = [
    "RayTracerParams",
    "RayTracer",
    "build_raytracer",
    "PARTITIONS",
    "partition_placement",
]
