"""Workload parameters for the ray-tracer reproduction."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RayTracerParams:
    """Parameters of the ray-tracing workload.

    The paper's benchmark uses a scene of 1024 geometry primitives; the
    resolution of the rendered image is not stated, so it is a free parameter
    here (cost per ray, not ray count, is what distinguishes the partitions).
    Fixed point uses a 16.16 format: scene coordinates live in a small box,
    but intermediate products (cross products, plane equations) need the
    extra integer range.
    """

    #: Number of triangles in the procedurally generated scene.
    n_triangles: int = 64
    #: Rendered image resolution (width x height primary rays).
    image_width: int = 8
    image_height: int = 8
    #: Maximum triangles per BVH leaf.
    leaf_size: int = 4
    #: Fixed-point format used throughout the tracer.
    int_bits: int = 16
    frac_bits: int = 16
    #: Seed of the procedural scene generator.
    seed: int = 7

    @property
    def n_rays(self) -> int:
        return self.image_width * self.image_height

    def __post_init__(self) -> None:
        if self.n_triangles < 1:
            raise ValueError("scene must contain at least one triangle")
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be at least 1")
        if self.image_width < 1 or self.image_height < 1:
            raise ValueError("image resolution must be positive")
