"""Pure-software reference renderer (oracle for the partitioned designs).

Renders the same procedural scene with the same fixed-point kernels, the same
BVH and the same traversal policy as the BCL design, so every partition must
produce an identical image and checksum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.raytracer import geometry
from repro.apps.raytracer.bvh import Bvh, build_bvh
from repro.apps.raytracer.params import RayTracerParams
from repro.core.fixedpoint import FixedPoint


@dataclass
class RenderResult:
    """Output of the reference render."""

    image: List[FixedPoint]
    checksum: int
    hits: int


def render(params: Optional[RayTracerParams] = None, bvh: Optional[Bvh] = None) -> RenderResult:
    """Render the scene in plain software, pixel by pixel."""
    params = params or RayTracerParams()
    ib, fb = params.int_bits, params.frac_bits
    if bvh is None:
        triangles = geometry.generate_scene(params.n_triangles, params.seed, ib, fb)
        bvh = build_bvh(triangles, params.leaf_size)
    light = geometry.light_direction(ib, fb)

    image: List[FixedPoint] = [FixedPoint.zero(ib, fb)] * params.n_rays
    checksum = 0
    hits = 0
    for pixel in range(params.n_rays):
        ray = geometry.camera_ray(pixel, params.image_width, params.image_height, ib, fb)
        found, _t, tri_index = _traverse_like_design(bvh, ray, ib, fb)
        if found:
            shade = geometry.lambert_shade(bvh.triangles[tri_index], light, ib, fb)
            hits += 1
        else:
            shade = FixedPoint.zero(ib, fb)
        image[pixel] = shade
        checksum = (checksum * 31 + shade.to_bits() + pixel) & 0xFFFFFFFF
    return RenderResult(image=image, checksum=checksum, hits=hits)


def _traverse_like_design(bvh: Bvh, ray, ib: int, fb: int):
    """Traverse exactly as the BCL traversal module does (same stack order, same ties)."""
    best = geometry.miss_hit(ib, fb)
    stack = (0,)
    while stack:
        node_index = stack[-1]
        stack = stack[:-1]
        node = bvh.nodes[node_index]
        if not geometry.intersect_box(ray, node["bbox_min"], node["bbox_max"]):
            continue
        if not node["is_leaf"]:
            stack = stack + (node["left"], node["right"])
            continue
        candidate = geometry.miss_hit(ib, fb)
        candidate["pixel"] = ray["pixel"]
        for offset in range(node["tri_count"]):
            tri_index = node["tri_start"] + offset
            t = geometry.intersect_triangle(ray, bvh.triangles[tri_index])
            if t is not None and t < candidate["t"]:
                candidate = {
                    "hit": True,
                    "t": t,
                    "tri": tri_index,
                    "pixel": ray["pixel"],
                    "shade": FixedPoint.zero(ib, fb),
                }
        if candidate["hit"] and (not best["hit"] or candidate["t"] < best["t"]):
            best = candidate
    return best["hit"], best["t"], best["tri"]


def expected_checksum(params: Optional[RayTracerParams] = None) -> int:
    """The image checksum every correct implementation must produce."""
    return render(params).checksum
