"""The four HW/SW partitions of the ray tracer (Figure 14).

* ``A`` -- the full-software baseline.
* ``B`` -- the traversal and intersection engines (and shading) move to
  hardware, but the BVH and scene memories stay on the processor side, so
  every node and leaf fetch crosses the bus.  The compute savings are
  outweighed by communication and B is slower than A.
* ``C`` -- the intersection engine *and* the scene/BVH data move to hardware
  (on-chip block RAM); only rays go in and pixel values come out.  This is
  the fastest configuration, as in the paper.
* ``D`` -- only the ray/geometry intersection engine is in hardware; each
  leaf test ships the candidate triangles across the boundary and D, like B,
  loses to the pure software version.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.raytracer.params import RayTracerParams
from repro.apps.raytracer.pipeline import RayTracer, build_raytracer
from repro.core.domains import HW, SW, Domain

PARTITIONS: Dict[str, Dict[str, Domain]] = {
    "A": {"trav": SW, "geom": SW, "bvh_mem": SW, "scene_mem": SW, "shader": SW},
    "B": {"trav": HW, "geom": HW, "bvh_mem": SW, "scene_mem": SW, "shader": HW},
    "C": {"trav": HW, "geom": HW, "bvh_mem": HW, "scene_mem": HW, "shader": HW},
    "D": {"trav": SW, "geom": HW, "bvh_mem": SW, "scene_mem": SW, "shader": SW},
}

PARTITION_ORDER: List[str] = ["A", "B", "C", "D"]


def partition_placement(letter: str) -> Dict[str, Domain]:
    """The module placement of one of the paper's ray-tracer partitions (A--D)."""
    if letter not in PARTITIONS:
        raise KeyError(
            f"unknown ray-tracer partition {letter!r}; expected one of {PARTITION_ORDER}"
        )
    return dict(PARTITIONS[letter])


def build_partition(letter: str, params: Optional[RayTracerParams] = None) -> RayTracer:
    """Build the ray-tracer design for partition ``letter``."""
    return build_raytracer(
        params=params,
        placement=partition_placement(letter),
        name=f"raytracer_{letter}",
    )


def hw_module_names(letter: str) -> List[str]:
    """Which modules are in hardware for a partition (used in reports)."""
    return sorted(mod for mod, dom in PARTITIONS[letter].items() if dom == HW)
