"""Fixed-point vector math, primitives and intersection kernels for the ray tracer.

All values that can cross the HW/SW boundary are plain dictionaries matching
the :class:`~repro.core.types.StructT` layouts declared in
:func:`struct_types`, so they marshal onto the channel without any
translation layer -- the single-representation discipline of Section 2.3.

The intersection kernels (axis-aligned box slab test, Möller–Trumbore
triangle test) are written over :class:`~repro.core.fixedpoint.FixedPoint`
so every partition computes bit-identical hit records.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.fixedpoint import FixedPoint, raw_from_float
from repro.core.types import BoolT, FixPtT, StructT, UIntT

Vec = Dict[str, FixedPoint]
Triangle = Dict[str, Vec]
Ray = Dict[str, object]
Hit = Dict[str, object]


# --------------------------------------------------------------------------
# BCL struct types (canonical representations for marshaling)
# --------------------------------------------------------------------------


def struct_types(int_bits: int = 16, frac_bits: int = 16, leaf_size: int = 4):
    """The struct types used by the ray tracer's synchronizers."""
    fix = FixPtT(int_bits, frac_bits)
    vec3 = StructT("Vec3", [("x", fix), ("y", fix), ("z", fix)])
    triangle = StructT("Triangle", [("v0", vec3), ("v1", vec3), ("v2", vec3)])
    ray = StructT("Ray", [("origin", vec3), ("dir", vec3), ("pixel", UIntT(32))])
    hit = StructT(
        "Hit",
        [
            ("hit", BoolT()),
            ("t", fix),
            ("tri", UIntT(32)),
            ("pixel", UIntT(32)),
            ("shade", fix),
        ],
    )
    node = StructT(
        "BvhNode",
        [
            ("bbox_min", vec3),
            ("bbox_max", vec3),
            ("is_leaf", BoolT()),
            ("left", UIntT(16)),
            ("right", UIntT(16)),
            ("tri_start", UIntT(16)),
            ("tri_count", UIntT(16)),
        ],
    )
    leaf_req = StructT("LeafReq", [("start", UIntT(16)), ("count", UIntT(16))])
    mem_req = StructT("MemReq", [("index", UIntT(16))])
    color = StructT("Color", [("pixel", UIntT(32)), ("value", fix)])
    return {
        "vec3": vec3,
        "triangle": triangle,
        "ray": ray,
        "hit": hit,
        "node": node,
        "leaf_req": leaf_req,
        "mem_req": mem_req,
        "color": color,
    }


# --------------------------------------------------------------------------
# vector helpers
# --------------------------------------------------------------------------


def fx(value: float, int_bits: int = 16, frac_bits: int = 16) -> FixedPoint:
    return FixedPoint.from_float(value, int_bits, frac_bits)


def vec(x: float, y: float, z: float, int_bits: int = 16, frac_bits: int = 16) -> Vec:
    return {"x": fx(x, int_bits, frac_bits), "y": fx(y, int_bits, frac_bits), "z": fx(z, int_bits, frac_bits)}


def v_add(a: Vec, b: Vec) -> Vec:
    return {"x": a["x"] + b["x"], "y": a["y"] + b["y"], "z": a["z"] + b["z"]}


def v_sub(a: Vec, b: Vec) -> Vec:
    return {"x": a["x"] - b["x"], "y": a["y"] - b["y"], "z": a["z"] - b["z"]}


def v_scale(a: Vec, s: FixedPoint) -> Vec:
    return {"x": a["x"] * s, "y": a["y"] * s, "z": a["z"] * s}


def v_dot(a: Vec, b: Vec) -> FixedPoint:
    return a["x"] * b["x"] + a["y"] * b["y"] + a["z"] * b["z"]


def v_cross(a: Vec, b: Vec) -> Vec:
    return {
        "x": a["y"] * b["z"] - a["z"] * b["y"],
        "y": a["z"] * b["x"] - a["x"] * b["z"],
        "z": a["x"] * b["y"] - a["y"] * b["x"],
    }


def v_min(a: Vec, b: Vec) -> Vec:
    return {k: (a[k] if a[k] <= b[k] else b[k]) for k in ("x", "y", "z")}


def v_max(a: Vec, b: Vec) -> Vec:
    return {k: (a[k] if a[k] >= b[k] else b[k]) for k in ("x", "y", "z")}


# --------------------------------------------------------------------------
# intersection kernels
# --------------------------------------------------------------------------


def intersect_box(ray: Ray, bbox_min: Vec, bbox_max: Vec) -> bool:
    """Slab test of a ray against an axis-aligned box (conservative on edges)."""
    origin, direction = ray["origin"], ray["dir"]
    t_near = None
    t_far = None
    for axis in ("x", "y", "z"):
        o, d = origin[axis], direction[axis]
        lo, hi = bbox_min[axis], bbox_max[axis]
        if abs(d.to_float()) < 1e-5:
            if o < lo or o > hi:
                return False
            continue
        t0 = (lo - o) / d
        t1 = (hi - o) / d
        if t0 > t1:
            t0, t1 = t1, t0
        t_near = t0 if t_near is None or t0 > t_near else t_near
        t_far = t1 if t_far is None or t1 < t_far else t_far
    if t_near is None or t_far is None:
        return True
    zero = FixedPoint.zero(t_near.int_bits, t_near.frac_bits)
    return t_near <= t_far and t_far >= zero


def intersect_triangle(ray: Ray, triangle: Triangle) -> Optional[FixedPoint]:
    """Möller–Trumbore ray/triangle intersection; returns ``t`` or ``None``."""
    origin, direction = ray["origin"], ray["dir"]
    v0, v1, v2 = triangle["v0"], triangle["v1"], triangle["v2"]
    edge1 = v_sub(v1, v0)
    edge2 = v_sub(v2, v0)
    pvec = v_cross(direction, edge2)
    det = v_dot(edge1, pvec)
    if abs(det.to_float()) < 1e-4:
        return None
    inv_det = FixedPoint.from_float(1.0, det.int_bits, det.frac_bits) / det
    tvec = v_sub(origin, v0)
    u = v_dot(tvec, pvec) * inv_det
    zero = FixedPoint.zero(det.int_bits, det.frac_bits)
    one = FixedPoint.from_float(1.0, det.int_bits, det.frac_bits)
    if u < zero or u > one:
        return None
    qvec = v_cross(tvec, edge1)
    v = v_dot(direction, qvec) * inv_det
    if v < zero or (u + v) > one:
        return None
    t = v_dot(edge2, qvec) * inv_det
    if t <= FixedPoint.from_float(1e-3, det.int_bits, det.frac_bits):
        return None
    return t


# --------------------------------------------------------------------------
# raw-integer intersection kernels (the kernel-dataplane fast path)
# --------------------------------------------------------------------------
#
# Raw lowerings of the kernels above, used by the traversal/geometry rules
# when the kernel backend is not ``oracle`` (see repro.core.kernelcompile).
# Vectors are flat (x, y, z) tuples of raw two's-complement ints; every
# operation wraps in exactly the order the FixedPoint originals do, so hit
# records are bit-identical across backends.  Leaf bundles hold at most a
# handful of triangles, so the win here is dropping per-op object boxing,
# not NumPy vectorisation -- these run identically under the ``python`` and
# ``numpy`` backends.

RawVec3 = Tuple[int, int, int]


def vec_raws(v: Vec) -> RawVec3:
    """Unbox a Vec3 dict into a flat (x, y, z) raw tuple."""
    return (v["x"].raw, v["y"].raw, v["z"].raw)


def intersect_box_raw(
    origin: RawVec3, direction: RawVec3, bbox_min: RawVec3, bbox_max: RawVec3,
    frac_bits: int, total_bits: int,
) -> bool:
    """Raw lowering of :func:`intersect_box` (same slab test, same wrap order)."""
    mask = (1 << total_bits) - 1
    sign = 1 << (total_bits - 1)
    fb = frac_bits
    scale = float(1 << fb)
    t_near = None
    t_far = None
    for axis in (0, 1, 2):
        o = origin[axis]
        d = direction[axis]
        lo = bbox_min[axis]
        hi = bbox_max[axis]
        if abs(d / scale) < 1e-5:
            if o < lo or o > hi:
                return False
            continue
        t0 = (((((((lo - o) & mask) ^ sign) - sign) << fb) // d) & mask ^ sign) - sign
        t1 = (((((((hi - o) & mask) ^ sign) - sign) << fb) // d) & mask ^ sign) - sign
        if t0 > t1:
            t0, t1 = t1, t0
        t_near = t0 if t_near is None or t0 > t_near else t_near
        t_far = t1 if t_far is None or t1 < t_far else t_far
    if t_near is None or t_far is None:
        return True
    return t_near <= t_far and t_far >= 0


def intersect_triangle_raw(
    origin: RawVec3, direction: RawVec3,
    v0: RawVec3, v1: RawVec3, v2: RawVec3,
    frac_bits: int, total_bits: int,
) -> Optional[int]:
    """Raw lowering of :func:`intersect_triangle`; returns the raw ``t`` or ``None``."""
    mask = (1 << total_bits) - 1
    sign = 1 << (total_bits - 1)
    fb = frac_bits

    def w(x: int) -> int:
        return ((x & mask) ^ sign) - sign

    def m(a: int, b: int) -> int:
        return ((((a * b) >> fb) & mask) ^ sign) - sign

    e1x, e1y, e1z = w(v1[0] - v0[0]), w(v1[1] - v0[1]), w(v1[2] - v0[2])
    e2x, e2y, e2z = w(v2[0] - v0[0]), w(v2[1] - v0[1]), w(v2[2] - v0[2])
    dx, dy, dz = direction
    px = w(m(dy, e2z) - m(dz, e2y))
    py = w(m(dz, e2x) - m(dx, e2z))
    pz = w(m(dx, e2y) - m(dy, e2x))
    det = w(w(m(e1x, px) + m(e1y, py)) + m(e1z, pz))
    if abs(det / float(1 << fb)) < 1e-4:
        return None
    one = _raw_one(fb, total_bits)
    inv_det = w((one << fb) // det)
    tx, ty, tz = w(origin[0] - v0[0]), w(origin[1] - v0[1]), w(origin[2] - v0[2])
    u = m(w(w(m(tx, px) + m(ty, py)) + m(tz, pz)), inv_det)
    if u < 0 or u > one:
        return None
    qx = w(m(ty, e1z) - m(tz, e1y))
    qy = w(m(tz, e1x) - m(tx, e1z))
    qz = w(m(tx, e1y) - m(ty, e1x))
    v = m(w(w(m(dx, qx) + m(dy, qy)) + m(dz, qz)), inv_det)
    if v < 0 or w(u + v) > one:
        return None
    t = m(w(w(m(e2x, qx) + m(e2y, qy)) + m(e2z, qz)), inv_det)
    if t <= _raw_threshold(fb, total_bits):
        return None
    return t


@lru_cache(maxsize=None)
def _raw_one(frac_bits: int, total_bits: int) -> int:
    return raw_from_float(1.0, frac_bits, total_bits)


@lru_cache(maxsize=None)
def _raw_threshold(frac_bits: int, total_bits: int) -> int:
    return raw_from_float(1e-3, frac_bits, total_bits)


def lambert_shade_raw(
    v0: RawVec3, v1: RawVec3, v2: RawVec3, light: RawVec3,
    int_bits: int, frac_bits: int,
) -> int:
    """Raw lowering of :func:`lambert_shade`; returns the raw clamped shade."""
    total_bits = int_bits + frac_bits
    mask = (1 << total_bits) - 1
    sign = 1 << (total_bits - 1)
    fb = frac_bits

    def w(x: int) -> int:
        return ((x & mask) ^ sign) - sign

    def m(a: int, b: int) -> int:
        return ((((a * b) >> fb) & mask) ^ sign) - sign

    e1x, e1y, e1z = w(v1[0] - v0[0]), w(v1[1] - v0[1]), w(v1[2] - v0[2])
    e2x, e2y, e2z = w(v2[0] - v0[0]), w(v2[1] - v0[1]), w(v2[2] - v0[2])
    nx = w(m(e1y, e2z) - m(e1z, e2y))
    ny = w(m(e1z, e2x) - m(e1x, e2z))
    nz = w(m(e1x, e2y) - m(e1y, e2x))
    lx, ly, lz = light
    scale = float(1 << fb)
    nn = w(w(m(nx, nx) + m(ny, ny)) + m(nz, nz))
    ll = w(w(m(lx, lx) + m(ly, ly)) + m(lz, lz))
    nl = w(w(m(nx, lx) + m(ny, ly)) + m(nz, lz))
    n_len = math.sqrt(max(1e-12, nn / scale))
    l_len = math.sqrt(max(1e-12, ll / scale))
    cos_angle = (nl / scale) / (n_len * l_len)
    return raw_from_float(min(1.0, abs(cos_angle)), frac_bits, total_bits)


def triangle_normal(triangle: Triangle) -> Vec:
    return v_cross(v_sub(triangle["v1"], triangle["v0"]), v_sub(triangle["v2"], triangle["v0"]))


def lambert_shade(triangle: Triangle, light_dir: Vec, int_bits: int = 16, frac_bits: int = 16) -> FixedPoint:
    """Unnormalised Lambertian shade factor, clamped to [0, 1]."""
    normal = triangle_normal(triangle)
    n_len = math.sqrt(max(1e-12, v_dot(normal, normal).to_float()))
    l_len = math.sqrt(max(1e-12, v_dot(light_dir, light_dir).to_float()))
    cos_angle = v_dot(normal, light_dir).to_float() / (n_len * l_len)
    return fx(min(1.0, abs(cos_angle)), int_bits, frac_bits)


# --------------------------------------------------------------------------
# procedural scene
# --------------------------------------------------------------------------


def generate_scene(
    n_triangles: int, seed: int = 7, int_bits: int = 16, frac_bits: int = 16
) -> List[Triangle]:
    """Generate a deterministic cloud of small triangles inside [0, 4)^3."""
    triangles: List[Triangle] = []
    state = (seed * 2654435761 + 97) & 0xFFFFFFFF

    def rnd() -> float:
        nonlocal state
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        return state / float(0x7FFFFFFF)

    for _ in range(n_triangles):
        cx, cy, cz = 0.5 + 3.0 * rnd(), 0.5 + 3.0 * rnd(), 1.0 + 3.0 * rnd()
        v0 = vec(cx, cy, cz, int_bits, frac_bits)
        v1 = vec(cx + 0.2 + 0.3 * rnd(), cy + 0.1 * rnd(), cz + 0.2 * rnd(), int_bits, frac_bits)
        v2 = vec(cx + 0.1 * rnd(), cy + 0.2 + 0.3 * rnd(), cz + 0.1 * rnd(), int_bits, frac_bits)
        triangles.append({"v0": v0, "v1": v1, "v2": v2})
    return triangles


def degenerate_triangle(int_bits: int = 16, frac_bits: int = 16) -> Triangle:
    """A zero-area triangle used to pad fixed-size leaf bundles."""
    origin = vec(-100.0, -100.0, -100.0, int_bits, frac_bits)
    return {"v0": origin, "v1": origin, "v2": origin}


def camera_ray(
    pixel: int,
    width: int,
    height: int,
    int_bits: int = 16,
    frac_bits: int = 16,
) -> Ray:
    """Primary ray through pixel ``pixel`` from a fixed camera in front of the scene."""
    px = pixel % width
    py = pixel // width
    x = (px + 0.5) / width * 4.0
    y = (py + 0.5) / height * 4.0
    origin = vec(2.0, 2.0, -2.0, int_bits, frac_bits)
    target = vec(x, y, 3.0, int_bits, frac_bits)
    direction = v_sub(target, origin)
    return {"origin": origin, "dir": direction, "pixel": pixel}


def light_direction(int_bits: int = 16, frac_bits: int = 16) -> Vec:
    return vec(0.4, 0.7, -0.6, int_bits, frac_bits)


def miss_hit(int_bits: int = 16, frac_bits: int = 16) -> Hit:
    """The 'no intersection yet' hit record."""
    return {
        "hit": False,
        "t": FixedPoint.from_float(1000.0, int_bits, frac_bits),
        "tri": 0,
        "pixel": 0,
        "shade": FixedPoint.zero(int_bits, frac_bits),
    }
