"""The ray tracer as an elaborated BCL design (Figure 14's module structure).

Modules:

* ``raygen`` (always SW) -- generates one primary ray per pixel.
* ``bvh_mem`` / ``scene_mem`` -- the BVH node store and the triangle store,
  served through request/response FIFOs.  Their placement is what
  distinguishes partition C (on-chip block RAM next to the traversal engine)
  from partition B (data left in processor-side memory).
* ``trav`` (BVH Trav + Box Inter) -- a per-ray traversal state machine that
  pops BVH nodes, tests bounding boxes, and requests leaf triangle bundles.
* ``geom`` (Geom Inter) -- ray/triangle intersection over one leaf bundle.
* ``shader`` (Light/Color) -- converts the best hit into a pixel value.
* ``bitmap`` (always SW) -- stores pixels and counts completed rays.

Every inter-module queue is a synchronizer, so any placement of the
placeable modules onto {HW, SW} is a legal partition; the partitioner
rejects nothing and the generated interface carries exactly the queues that
ended up on the cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.raytracer import geometry
from repro.apps.raytracer.bvh import Bvh, build_bvh
from repro.apps.raytracer.params import RayTracerParams
from repro.core import kernelcompile
from repro.core.action import IfA, LetA, par
from repro.core.domains import SW, Domain
from repro.core.expr import BinOp, Const, FieldSelect, KernelCall, RegRead, UnOp, Var
from repro.core.fixedpoint import FixedPoint, from_wrapped_raw, raw_from_float
from repro.core.module import Design, Module, Register
from repro.core.primitives import RegFile
from repro.core.synchronizers import SyncFifo
from repro.core.types import BoolT, FixPtT, OpaqueT, StructT, UIntT, VectorT

#: Module groups whose domain can be chosen per partition.
PLACEABLE_MODULES = ("trav", "geom", "bvh_mem", "scene_mem", "shader")


@dataclass
class RayTracer:
    """Handle onto one built ray-tracer design and its observation points."""

    design: Design
    params: RayTracerParams
    placement: Dict[str, Domain]
    bvh: Bvh
    done_count: Register
    checksum: Register
    image: RegFile
    modules: Dict[str, Module] = field(default_factory=dict)
    syncs: Dict[str, SyncFifo] = field(default_factory=dict)
    pixel_idx: Optional[Register] = None

    def cosim_done(self, cosim) -> bool:
        # Owner-resolved read: works on the two-partition wrapper and on
        # N-domain fabrics (done_count lives in the software-side collector).
        return cosim.read(self.done_count) >= self.params.n_rays

    def tile_request(self, start_pixel: int = 0, name: str = ""):
        """A serving request rendering pixels ``start_pixel..n_rays-1``.

        Writes the ray-generator cursor ``pixel_idx`` (different starts
        render different tiles and fold different checksums), declares
        completion as ``done_count`` reaching the tile's ray count, and
        returns the image checksum.  Plain picklable data for the serving
        layer.
        """
        from repro.sim.serve import Request

        n_rays = self.params.n_rays
        if not 0 <= start_pixel < n_rays:
            raise ValueError(f"start_pixel must be in [0, {n_rays}), got {start_pixel}")
        return Request(
            name=name or f"{self.design.name}:tile[{start_pixel}:{n_rays}]",
            writes={self.pixel_idx.full_name: start_pixel},
            done_min={self.done_count.full_name: n_rays - start_pixel},
            outputs=(self.checksum.full_name, self.done_count.full_name),
        )

    def image_values(self, reader) -> List[FixedPoint]:
        """The rendered pixel values, via a register reader function."""
        return list(reader(self.image.mem))


def build_raytracer(
    params: Optional[RayTracerParams] = None,
    placement: Optional[Dict[str, Domain]] = None,
    name: str = "raytracer",
    sync_depth: int = 2,
) -> RayTracer:
    """Build the ray tracer with the given HW/SW placement (default: all software)."""
    params = params or RayTracerParams()
    placement = dict(placement or {})
    for module_name in PLACEABLE_MODULES:
        placement.setdefault(module_name, SW)
    unknown = set(placement) - set(PLACEABLE_MODULES)
    if unknown:
        raise ValueError(f"unknown ray-tracer modules in placement: {sorted(unknown)}")

    ib, fb = params.int_bits, params.frac_bits
    types = geometry.struct_types(ib, fb, params.leaf_size)
    ray_t, hit_t, node_t = types["ray"], types["hit"], types["node"]
    tri_t, leaf_req_t, mem_req_t, color_t = (
        types["triangle"],
        types["leaf_req"],
        types["mem_req"],
        types["color"],
    )
    bundle_t = VectorT(params.leaf_size, tri_t)
    leaf_data_t = StructT(
        "LeafData", [("bundle", bundle_t), ("count", UIntT(16)), ("base", UIntT(16))]
    )
    geom_req_t = StructT(
        "GeomReq",
        [("ray", ray_t), ("bundle", bundle_t), ("count", UIntT(16)), ("base", UIntT(16))],
    )

    # Scene and BVH are constructed up front (the BVH Ctor pass, always software).
    triangles = geometry.generate_scene(params.n_triangles, params.seed, ib, fb)
    bvh = build_bvh(triangles, params.leaf_size)
    padded_tris = list(bvh.triangles) + [
        geometry.degenerate_triangle(ib, fb) for _ in range(params.leaf_size)
    ]
    light = geometry.light_direction(ib, fb)

    top = Module(name)

    raygen = top.add_submodule(Module("raygen", domain=SW))
    trav = top.add_submodule(Module("trav", domain=placement["trav"]))
    geom = top.add_submodule(Module("geom", domain=placement["geom"]))
    bvh_mem = top.add_submodule(Module("bvh_mem", domain=placement["bvh_mem"]))
    scene_mem = top.add_submodule(Module("scene_mem", domain=placement["scene_mem"]))
    shader = top.add_submodule(Module("shader", domain=placement["shader"]))
    bitmap = top.add_submodule(Module("bitmap", domain=SW))

    nodes_rf = bvh_mem.add_submodule(
        RegFile("nodes", node_t, size=bvh.n_nodes, init=bvh.nodes, read_latency=1)
    )
    tris_rf = scene_mem.add_submodule(
        RegFile("tris", tri_t, size=len(padded_tris), init=padded_tris, read_latency=1)
    )
    image_rf = bitmap.add_submodule(
        RegFile("image", FixPtT(ib, fb), size=params.n_rays, read_latency=1)
    )

    # -- synchronizers -------------------------------------------------------------
    def sync(sync_name: str, ty, producer: Domain, consumer: Domain) -> SyncFifo:
        return top.add_submodule(
            SyncFifo(sync_name, ty, domain_enq=producer, domain_deq=consumer, depth=sync_depth)
        )

    ray_q = sync("ray_q", ray_t, SW, placement["trav"])
    bvh_req_q = sync("bvh_req_q", mem_req_t, placement["trav"], placement["bvh_mem"])
    bvh_resp_q = sync("bvh_resp_q", node_t, placement["bvh_mem"], placement["trav"])
    scene_req_q = sync("scene_req_q", leaf_req_t, placement["trav"], placement["scene_mem"])
    scene_resp_q = sync("scene_resp_q", leaf_data_t, placement["scene_mem"], placement["trav"])
    geom_req_q = sync("geom_req_q", geom_req_t, placement["trav"], placement["geom"])
    geom_resp_q = sync("geom_resp_q", hit_t, placement["geom"], placement["trav"])
    hit_q = sync("hit_q", hit_t, placement["trav"], placement["shader"])
    color_q = sync("color_q", color_t, placement["shader"], SW)

    # -- registers -------------------------------------------------------------------
    pixel_idx = raygen.add_register("pixel_idx", UIntT(32), 0)
    busy = trav.add_register("busy", BoolT(), False)
    awaiting_node = trav.add_register("awaiting_node", BoolT(), False)
    awaiting_leaf = trav.add_register("awaiting_leaf", BoolT(), False)
    awaiting_geom = trav.add_register("awaiting_geom", BoolT(), False)
    cur_ray = trav.add_register("cur_ray", OpaqueT(geometry.camera_ray(0, params.image_width, params.image_height, ib, fb)))
    stack = trav.add_register("stack", OpaqueT(()))
    best = trav.add_register("best", OpaqueT(geometry.miss_hit(ib, fb)))
    done_count = bitmap.add_register("done_count", UIntT(32), 0)
    checksum = bitmap.add_register("checksum", UIntT(32), 0)

    # -- kernels ------------------------------------------------------------------------
    def kc(kernel_name: str, fn, args, sw_cycles, hw_cycles) -> KernelCall:
        return KernelCall(kernel_name, fn, args, sw_cycles=sw_cycles, hw_cycles=hw_cycles)

    def ray_gen_fn(pixel: int):
        return geometry.camera_ray(pixel, params.image_width, params.image_height, ib, fb)

    # Raw-path constants of the kernel dataplane (format is fixed per design).
    total_bits = ib + fb
    light_raws = geometry.vec_raws(light)
    miss_t_raw = raw_from_float(1000.0, fb, total_bits)

    def process_node_fn(ray, node, stack_value):
        # The only fixed-point work here is the slab test; on the fast
        # backends it runs over raw ints (bit-identical, see geometry).
        if kernelcompile.kernel_backend() == "oracle":
            boxed = geometry.intersect_box(ray, node["bbox_min"], node["bbox_max"])
        else:
            boxed = geometry.intersect_box_raw(
                geometry.vec_raws(ray["origin"]),
                geometry.vec_raws(ray["dir"]),
                geometry.vec_raws(node["bbox_min"]),
                geometry.vec_raws(node["bbox_max"]),
                fb,
                total_bits,
            )
        if not boxed:
            return {"stack": stack_value, "fetch_leaf": False, "leaf_req": {"start": 0, "count": 0}}
        if node["is_leaf"]:
            return {
                "stack": stack_value,
                "fetch_leaf": True,
                "leaf_req": {"start": node["tri_start"], "count": node["tri_count"]},
            }
        return {
            "stack": stack_value + (node["left"], node["right"]),
            "fetch_leaf": False,
            "leaf_req": {"start": 0, "count": 0},
        }

    def make_bundle_fn(start, count, *tris):
        return {"bundle": tuple(tris), "count": count, "base": start}

    def make_geom_req_fn(ray, leaf_data):
        return {
            "ray": ray,
            "bundle": leaf_data["bundle"],
            "count": leaf_data["count"],
            "base": leaf_data["base"],
        }

    def intersect_leaf_fn(req):
        if kernelcompile.kernel_backend() == "oracle":
            return intersect_leaf_oracle(req)
        # Raw fast path: unbox the ray and bundle once, run Möller-Trumbore
        # over plain ints, box only the winning hit record.  The oracle
        # recomputes the shade on every improvement but returns only the
        # last one, so shading just the final winner is bit-identical.
        ray = req["ray"]
        origin = geometry.vec_raws(ray["origin"])
        direction = geometry.vec_raws(ray["dir"])
        best_t = miss_t_raw
        best_offset = -1
        best_tri = None
        for offset in range(req["count"]):
            triangle = req["bundle"][offset]
            tri_raws = (
                geometry.vec_raws(triangle["v0"]),
                geometry.vec_raws(triangle["v1"]),
                geometry.vec_raws(triangle["v2"]),
            )
            t = geometry.intersect_triangle_raw(
                origin, direction, tri_raws[0], tri_raws[1], tri_raws[2], fb, total_bits
            )
            if t is not None and t < best_t:
                best_t, best_offset, best_tri = t, offset, tri_raws
        if best_offset < 0:
            best_hit = geometry.miss_hit(ib, fb)
            best_hit["pixel"] = ray["pixel"]
            return best_hit
        shade = geometry.lambert_shade_raw(best_tri[0], best_tri[1], best_tri[2], light_raws, ib, fb)
        return {
            "hit": True,
            "t": from_wrapped_raw(best_t, ib, fb),
            "tri": req["base"] + best_offset,
            "pixel": ray["pixel"],
            "shade": from_wrapped_raw(shade, ib, fb),
        }

    def intersect_leaf_oracle(req):
        ray = req["ray"]
        best_hit = geometry.miss_hit(ib, fb)
        best_hit["pixel"] = ray["pixel"]
        for offset in range(req["count"]):
            triangle = req["bundle"][offset]
            t = geometry.intersect_triangle(ray, triangle)
            if t is not None and t < best_hit["t"]:
                best_hit = {
                    "hit": True,
                    "t": t,
                    "tri": req["base"] + offset,
                    "pixel": ray["pixel"],
                    "shade": geometry.lambert_shade(triangle, light, ib, fb),
                }
        return best_hit

    def better_hit_fn(current, candidate):
        if candidate["hit"] and (not current["hit"] or candidate["t"] < current["t"]):
            return candidate
        return current

    def make_result_fn(ray, best_hit):
        result = dict(best_hit)
        result["pixel"] = ray["pixel"]
        return result

    def shade_color_fn(hit):
        value = hit["shade"] if hit["hit"] else FixedPoint.zero(ib, fb)
        return {"pixel": hit["pixel"], "value": value}

    def fold_checksum_fn(running, color):
        return (running * 31 + color["value"].to_bits() + color["pixel"]) & 0xFFFFFFFF

    # -- rules ------------------------------------------------------------------------------

    raygen.add_rule(
        "gen_ray",
        par(
            ray_q.call("enq", kc("ray_gen", ray_gen_fn, [RegRead(pixel_idx)], 220, 220)),
            pixel_idx.write(BinOp("+", RegRead(pixel_idx), Const(1))),
        ).when(BinOp("<", RegRead(pixel_idx), Const(params.n_rays))),
    )

    # BVH node memory server.
    bvh_mem.add_rule(
        "serve_bvh",
        par(
            bvh_resp_q.call(
                "enq",
                nodes_rf.value("sub", FieldSelect(bvh_req_q.value("first"), "index")),
            ),
            bvh_req_q.call("deq"),
        ),
    )

    # Scene (triangle) memory server: always reads a full fixed-size bundle.
    scene_mem.add_rule(
        "serve_scene",
        LetA(
            "req",
            scene_req_q.value("first"),
            par(
                scene_resp_q.call(
                    "enq",
                    kc(
                        "make_bundle",
                        make_bundle_fn,
                        [FieldSelect(Var("req"), "start"), FieldSelect(Var("req"), "count")]
                        + [
                            tris_rf.value(
                                "sub", BinOp("+", FieldSelect(Var("req"), "start"), Const(k))
                            )
                            for k in range(params.leaf_size)
                        ],
                        40,
                        2,
                    ),
                ),
                scene_req_q.call("deq"),
            ),
        ),
    )

    # Traversal state machine.
    not_waiting = BinOp(
        "&&",
        BinOp("&&", UnOp("!", RegRead(awaiting_node)), UnOp("!", RegRead(awaiting_leaf))),
        UnOp("!", RegRead(awaiting_geom)),
    )
    stack_depth = kc("stack_depth", lambda s: len(s), [RegRead(stack)], 6, 1)

    trav.add_rule(
        "start_ray",
        par(
            cur_ray.write(ray_q.value("first")),
            ray_q.call("deq"),
            stack.write(Const((0,))),
            best.write(Const(geometry.miss_hit(ib, fb))),
            busy.write(Const(True)),
        ).when(UnOp("!", RegRead(busy))),
    )

    trav.add_rule(
        "issue_node",
        par(
            bvh_req_q.call(
                "enq",
                kc("make_mem_req", lambda i: {"index": i}, [kc("stack_top", lambda s: s[-1], [RegRead(stack)], 8, 1)], 8, 1),
            ),
            stack.write(kc("stack_pop", lambda s: s[:-1], [RegRead(stack)], 8, 1)),
            awaiting_node.write(Const(True)),
        ).when(
            BinOp(
                "&&",
                BinOp("&&", RegRead(busy), not_waiting),
                BinOp(">", stack_depth, Const(0)),
            )
        ),
    )

    trav.add_rule(
        "process_node",
        LetA(
            "res",
            kc(
                "process_node",
                process_node_fn,
                [RegRead(cur_ray), bvh_resp_q.value("first"), RegRead(stack)],
                140,
                4,
            ),
            par(
                stack.write(FieldSelect(Var("res"), "stack")),
                IfA(
                    FieldSelect(Var("res"), "fetch_leaf"),
                    par(
                        scene_req_q.call("enq", FieldSelect(Var("res"), "leaf_req")),
                        awaiting_leaf.write(Const(True)),
                    ),
                ),
                bvh_resp_q.call("deq"),
                awaiting_node.write(Const(False)),
            ),
        ).when(RegRead(awaiting_node)),
    )

    trav.add_rule(
        "forward_leaf",
        par(
            geom_req_q.call(
                "enq",
                kc(
                    "make_geom_req",
                    make_geom_req_fn,
                    [RegRead(cur_ray), scene_resp_q.value("first")],
                    30,
                    1,
                ),
            ),
            scene_resp_q.call("deq"),
            awaiting_leaf.write(Const(False)),
            awaiting_geom.write(Const(True)),
        ).when(RegRead(awaiting_leaf)),
    )

    trav.add_rule(
        "merge_hit",
        par(
            best.write(
                kc(
                    "better_hit",
                    better_hit_fn,
                    [RegRead(best), geom_resp_q.value("first")],
                    30,
                    1,
                )
            ),
            geom_resp_q.call("deq"),
            awaiting_geom.write(Const(False)),
        ).when(RegRead(awaiting_geom)),
    )

    trav.add_rule(
        "finish_ray",
        par(
            hit_q.call(
                "enq",
                kc("make_result", make_result_fn, [RegRead(cur_ray), RegRead(best)], 20, 1),
            ),
            busy.write(Const(False)),
        ).when(
            BinOp(
                "&&",
                BinOp("&&", RegRead(busy), not_waiting),
                BinOp("==", stack_depth, Const(0)),
            )
        ),
    )

    # Geometry intersection engine (the compute-heavy leaf test).
    geom.add_rule(
        "intersect_leaf",
        par(
            geom_resp_q.call(
                "enq",
                kc("intersect_leaf", intersect_leaf_fn, [geom_req_q.value("first")], 620, 8),
            ),
            geom_req_q.call("deq"),
        ),
    )

    # Shading.
    shader.add_rule(
        "shade",
        par(
            color_q.call(
                "enq", kc("shade_color", shade_color_fn, [hit_q.value("first")], 320, 6)
            ),
            hit_q.call("deq"),
        ),
    )

    # Bitmap sink (always software).
    bitmap.add_rule(
        "store_pixel",
        LetA(
            "c",
            color_q.value("first"),
            par(
                image_rf.call(
                    "upd", FieldSelect(Var("c"), "pixel"), FieldSelect(Var("c"), "value")
                ),
                checksum.write(
                    kc(
                        "fold_checksum",
                        fold_checksum_fn,
                        [RegRead(checksum), color_q.value("first")],
                        60,
                        60,
                    )
                ),
                done_count.write(BinOp("+", RegRead(done_count), Const(1))),
                color_q.call("deq"),
            ),
        ),
    )

    design = Design(top, name)
    return RayTracer(
        design=design,
        params=params,
        placement=placement,
        bvh=bvh,
        done_count=done_count,
        checksum=checksum,
        image=image_rf,
        pixel_idx=pixel_idx,
        modules={
            "raygen": raygen,
            "trav": trav,
            "geom": geom,
            "bvh_mem": bvh_mem,
            "scene_mem": scene_mem,
            "shader": shader,
            "bitmap": bitmap,
        },
        syncs={
            "ray_q": ray_q,
            "bvh_req_q": bvh_req_q,
            "bvh_resp_q": bvh_resp_q,
            "scene_req_q": scene_req_q,
            "scene_resp_q": scene_resp_q,
            "geom_req_q": geom_req_q,
            "geom_resp_q": geom_resp_q,
            "hit_q": hit_q,
            "color_q": color_q,
        },
    )
