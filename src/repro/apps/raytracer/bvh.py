"""Bounding-volume-hierarchy construction (the paper's "BVH Ctor" module).

The BVH is built once, before tracing starts, by recursive median split on
the longest axis of the triangle centroids.  With the scene in this form the
tracer performs O(log n) box tests per ray instead of n triangle tests
(Section 7.2).  Construction happens at design-build time in every partition
(the paper keeps the constructor in software in all four configurations), so
it contributes an identical constant to each and is excluded from the
per-partition comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.apps.raytracer import geometry
from repro.apps.raytracer.geometry import Triangle, Vec, v_max, v_min
from repro.core import kernelcompile
from repro.core.fixedpoint import FixedPoint, from_wrapped_raw, raw_from_float


@dataclass
class Bvh:
    """A flattened BVH: node records plus the leaf-ordered triangle list."""

    nodes: List[Dict[str, object]]
    triangles: List[Triangle]
    leaf_size: int

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def max_depth(self) -> int:
        def depth(index: int) -> int:
            node = self.nodes[index]
            if node["is_leaf"]:
                return 1
            return 1 + max(depth(node["left"]), depth(node["right"]))

        return depth(0) if self.nodes else 0


def _triangle_bounds(triangle: Triangle) -> Tuple[Vec, Vec]:
    lo = v_min(v_min(triangle["v0"], triangle["v1"]), triangle["v2"])
    hi = v_max(v_max(triangle["v0"], triangle["v1"]), triangle["v2"])
    return lo, hi


def _centroid(triangle: Triangle) -> Dict[str, float]:
    return {
        axis: (
            triangle["v0"][axis].to_float()
            + triangle["v1"][axis].to_float()
            + triangle["v2"][axis].to_float()
        )
        / 3.0
        for axis in ("x", "y", "z")
    }


def build_bvh(triangles: Sequence[Triangle], leaf_size: int = 4) -> Bvh:
    """Build a BVH by recursive median split on the longest centroid axis."""
    if not triangles:
        raise ValueError("cannot build a BVH over an empty scene")
    ordered: List[Triangle] = []
    nodes: List[Dict[str, object]] = []
    items = list(triangles)

    def bounds_of(subset: Sequence[Triangle]) -> Tuple[Vec, Vec]:
        lo, hi = _triangle_bounds(subset[0])
        for tri in subset[1:]:
            tlo, thi = _triangle_bounds(tri)
            lo, hi = v_min(lo, tlo), v_max(hi, thi)
        return lo, hi

    def build(subset: List[Triangle]) -> int:
        index = len(nodes)
        nodes.append({})  # placeholder, filled below
        lo, hi = bounds_of(subset)
        if len(subset) <= leaf_size:
            start = len(ordered)
            ordered.extend(subset)
            nodes[index] = {
                "bbox_min": lo,
                "bbox_max": hi,
                "is_leaf": True,
                "left": 0,
                "right": 0,
                "tri_start": start,
                "tri_count": len(subset),
            }
            return index
        # Split on the longest axis of the centroid extent.
        centroids = [_centroid(tri) for tri in subset]
        extents = {
            axis: max(c[axis] for c in centroids) - min(c[axis] for c in centroids)
            for axis in ("x", "y", "z")
        }
        axis = max(extents, key=extents.get)
        order = sorted(range(len(subset)), key=lambda i: centroids[i][axis])
        mid = len(subset) // 2
        left_set = [subset[i] for i in order[:mid]]
        right_set = [subset[i] for i in order[mid:]]
        left = build(left_set)
        right = build(right_set)
        nodes[index] = {
            "bbox_min": lo,
            "bbox_max": hi,
            "is_leaf": False,
            "left": left,
            "right": right,
            "tri_start": 0,
            "tri_count": 0,
        }
        return index

    build(items)
    return Bvh(nodes=nodes, triangles=ordered, leaf_size=leaf_size)


def traverse_oracle(bvh: Bvh, ray: geometry.Ray) -> Tuple[bool, FixedPoint, int]:
    """Reference (pure software) BVH traversal; returns ``(hit, t, triangle index)``.

    This is the oracle the partitioned designs are compared against, and the
    algorithm the traversal module's rules implement step by step.
    """
    int_bits = ray["origin"]["x"].int_bits
    frac_bits = ray["origin"]["x"].frac_bits
    best_t = FixedPoint.from_float(1000.0, int_bits, frac_bits)
    best_tri = 0
    found = False
    stack = [0]
    while stack:
        node = bvh.nodes[stack.pop()]
        if not geometry.intersect_box(ray, node["bbox_min"], node["bbox_max"]):
            continue
        if node["is_leaf"]:
            for offset in range(node["tri_count"]):
                tri_index = node["tri_start"] + offset
                t = geometry.intersect_triangle(ray, bvh.triangles[tri_index])
                if t is not None and t < best_t:
                    best_t, best_tri, found = t, tri_index, True
        else:
            stack.append(node["left"])
            stack.append(node["right"])
    return found, best_t, best_tri


def raw_tables(bvh: Bvh) -> Tuple[tuple, tuple]:
    """Flat raw-integer node and triangle tables of a BVH (cached per instance).

    Nodes flatten to ``(bbox_min, bbox_max, is_leaf, left, right, tri_start,
    tri_count)`` with raw (x, y, z) tuples for the boxes; triangles flatten to
    raw ``(v0, v1, v2)`` tuples.  Built lazily on first fast-path traversal --
    the BVH is immutable after construction, so the tables never go stale.
    """
    cached = bvh.__dict__.get("_raw_cache")
    if cached is None:
        nodes = tuple(
            (
                geometry.vec_raws(node["bbox_min"]),
                geometry.vec_raws(node["bbox_max"]),
                node["is_leaf"],
                node["left"],
                node["right"],
                node["tri_start"],
                node["tri_count"],
            )
            for node in bvh.nodes
        )
        tris = tuple(
            (
                geometry.vec_raws(tri["v0"]),
                geometry.vec_raws(tri["v1"]),
                geometry.vec_raws(tri["v2"]),
            )
            for tri in bvh.triangles
        )
        cached = bvh.__dict__["_raw_cache"] = (nodes, tris)
    return cached


def traverse(bvh: Bvh, ray: geometry.Ray) -> Tuple[bool, FixedPoint, int]:
    """BVH traversal, dispatching on the kernel backend.

    The fast path runs the identical stack algorithm over the flat raw
    tables with the raw-integer intersection kernels; results are
    bit-identical to :func:`traverse_oracle` (the differential tests compare
    them ray for ray).
    """
    if kernelcompile.kernel_backend() == "oracle":
        return traverse_oracle(bvh, ray)
    int_bits = ray["origin"]["x"].int_bits
    frac_bits = ray["origin"]["x"].frac_bits
    total_bits = int_bits + frac_bits
    origin = geometry.vec_raws(ray["origin"])
    direction = geometry.vec_raws(ray["dir"])
    nodes, tris = raw_tables(bvh)
    best_t = raw_from_float(1000.0, frac_bits, total_bits)
    best_tri = 0
    found = False
    stack = [0]
    while stack:
        lo, hi, is_leaf, left, right, tri_start, tri_count = nodes[stack.pop()]
        if not geometry.intersect_box_raw(origin, direction, lo, hi, frac_bits, total_bits):
            continue
        if is_leaf:
            for offset in range(tri_count):
                tri_index = tri_start + offset
                v0, v1, v2 = tris[tri_index]
                t = geometry.intersect_triangle_raw(
                    origin, direction, v0, v1, v2, frac_bits, total_bits
                )
                if t is not None and t < best_t:
                    best_t, best_tri, found = t, tri_index, True
        else:
            stack.append(left)
            stack.append(right)
    return found, from_wrapped_raw(best_t, int_bits, frac_bits), best_tri


def brute_force(triangles: Sequence[Triangle], ray: geometry.Ray) -> Tuple[bool, FixedPoint, int]:
    """Brute-force intersection over all triangles (property-test oracle)."""
    int_bits = ray["origin"]["x"].int_bits
    frac_bits = ray["origin"]["x"].frac_bits
    best_t = FixedPoint.from_float(1000.0, int_bits, frac_bits)
    best_tri = 0
    found = False
    for index, triangle in enumerate(triangles):
        t = geometry.intersect_triangle(ray, triangle)
        if t is not None and t < best_t:
            best_t, best_tri, found = t, index, True
    return found, best_t, best_tri
