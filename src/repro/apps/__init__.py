"""The applications evaluated in the paper: the Ogg Vorbis back-end and a ray tracer."""
