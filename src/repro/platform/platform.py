"""Platform descriptions (the experimental setup of Figure 11).

A :class:`Platform` bundles everything the co-simulator needs to turn a
partitioned design into FPGA-cycle execution times:

* the processor and FPGA clock frequencies (the paper clocks the PPC440 at
  400 MHz and the FPGA fabric at 100 MHz, a 4:1 ratio),
* the physical channel parameters (the LocalLink/HDMA path achieves a
  round-trip latency of roughly 100 FPGA cycles and streams up to
  400 MB/s), and
* the software cost parameters used by the transactional runtime model.

Two factories are provided: :func:`Platform.ml507` reproduces the embedded
configuration used for all numbers in Section 7, and :func:`Platform.pcie`
models the desktop PCI-Express configuration the paper mentions but does not
use for its reported results (higher bandwidth, higher latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Optional, Tuple

from repro.platform.channel import ChannelParams, Topology
from repro.sim.costmodel import SwCostParams


@dataclass(frozen=True)
class Platform:
    """A HW/SW execution platform for the co-simulator."""

    name: str
    cpu_clock_hz: float
    fpga_clock_hz: float
    channel: ChannelParams
    sw_costs: SwCostParams = field(default_factory=SwCostParams)

    @property
    def cpu_cycles_per_fpga_cycle(self) -> float:
        """How many CPU cycles elapse per FPGA cycle (4.0 on the ML507)."""
        return self.cpu_clock_hz / self.fpga_clock_hz

    def cpu_to_fpga_cycles(self, cpu_cycles: float) -> float:
        """Convert a CPU-cycle cost into FPGA cycles (the paper's reporting unit)."""
        return cpu_cycles / self.cpu_cycles_per_fpga_cycle

    # -- factories -----------------------------------------------------------

    @classmethod
    def ml507(cls) -> "Platform":
        """The Xilinx ML507 embedded configuration (PPC440 + XC5VFX70).

        400 MHz processor, 100 MHz fabric, LocalLink with embedded HDMA
        engines: ~100 FPGA cycles round trip and up to 400 MB/s of streaming
        bandwidth (4 bytes per FPGA cycle).
        """
        return cls(
            name="ml507",
            cpu_clock_hz=400e6,
            fpga_clock_hz=100e6,
            channel=ChannelParams(
                word_bits=32,
                one_way_latency_cycles=50,
                cycles_per_word=1.0,
                per_message_overhead_cycles=20,
                per_word_overhead_cycles=12,
            ),
        )

    @classmethod
    def pcie(cls) -> "Platform":
        """The desktop PCI-Express configuration (higher bandwidth, higher latency)."""
        return cls(
            name="pcie",
            cpu_clock_hz=2400e6,
            fpga_clock_hz=100e6,
            channel=ChannelParams(
                word_bits=32,
                one_way_latency_cycles=200,
                cycles_per_word=0.5,
                per_message_overhead_cycles=80,
                per_word_overhead_cycles=40,
            ),
        )

    def with_channel(self, **overrides) -> "Platform":
        """A copy of this platform with some channel parameters replaced."""
        return replace(self, channel=replace(self.channel, **overrides))

    def with_sw_costs(self, **overrides) -> "Platform":
        """A copy of this platform with some software cost parameters replaced."""
        return replace(self, sw_costs=replace(self.sw_costs, **overrides))

    def topology_for(
        self,
        routes: Iterable[Tuple[str, str]],
        burst: bool = True,
        link_params: Optional[Dict[Tuple[str, str], ChannelParams]] = None,
    ) -> Topology:
        """A link topology for the given (producer, consumer) domain routes.

        Every route gets its own serialised link using this platform's
        channel parameters unless ``link_params`` overrides a specific
        (src, dst) pair -- which is how a fabric models, say, a fast
        on-board path next to a slower chip-to-chip lane.
        """
        return Topology.for_routes(routes, self.channel, burst, link_params)
