"""Marshaling and demarshaling of typed values into channel words.

Section 4.4: the design specifies atomic transfers at (say) audio-frame
granularity, but the physical substrate moves fixed-width words, so the
compiler generates marshaling/demarshaling code on both sides of every
synchronizer.  Because both sides use the same canonical bit-level packing
(:mod:`repro.core.types`), the data-format mismatch problem of Section 2.3
cannot arise.

A marshaled message is a list of unsigned integers: one header word carrying
the virtual-channel id and the payload length, followed by the payload words
(least significant word first).

The module is a small **layout compiler**: :func:`layout_for` derives, once
per ``(element type, word width)`` pair, a :class:`MessageLayout` -- the
header field shifts/masks, the per-field bit slices of the payload, the
total word count, and compiled encode/decode closures.  That one layout is
the single source of truth for three layers at once: the simulator's
transport dataplane packs and unpacks link words through it
(:mod:`repro.platform.libdn` / :mod:`repro.sim.cosim`), the interface
generator renders its C and BSV marshaling loops from it
(:mod:`repro.codegen.interface`), and the cross-layer differential tests
re-execute it to prove the two agree byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import SimulationError, WireFormatError
from repro.core.fixedpoint import FixComplex, FixedPoint, from_wrapped_raw
from repro.core.types import (
    BCLType,
    BitT,
    BoolT,
    ComplexT,
    FixPtT,
    IntT,
    StructT,
    UIntT,
    VectorT,
    words_for,
)

#: Number of header bits reserved for the virtual-channel id.
VC_ID_BITS = 8
#: Number of header bits reserved for the payload word count.
LENGTH_BITS = 16


def wire_header(vc_id: int, payload_words: int) -> int:
    """The canonical header word for one message of a virtual channel.

    This formula is the *only* definition of the header layout: the
    simulator's dataplane, the generated C pack/unpack helpers and the
    generated BSV marshal rules all embed its result, so they cannot
    disagree about where the vc id and length live.
    """
    return (vc_id << LENGTH_BITS) | payload_words


def unframe_header(header: int) -> Tuple[int, int]:
    """Split a header word into ``(vc_id, payload_length)``."""
    return (header >> LENGTH_BITS) & ((1 << VC_ID_BITS) - 1), header & (
        (1 << LENGTH_BITS) - 1
    )


def validate_wire_format(
    n_channels: int, payload_words: int, word_bits: int, context: str = ""
) -> None:
    """Check that a channel configuration is representable on the wire.

    Raises :class:`~repro.core.errors.WireFormatError` when the global
    vc-id space does not fit ``VC_ID_BITS``, the payload length does not
    fit ``LENGTH_BITS``, or the header does not fit one ``word_bits`` link
    word.  Called at topology/spec *build* time so a misconfigured
    ``link_params`` fails loudly instead of silently corrupting headers.
    """
    where = f" ({context})" if context else ""
    if n_channels > (1 << VC_ID_BITS):
        raise WireFormatError(
            f"{n_channels} virtual channels exceed the {VC_ID_BITS}-bit wire "
            f"vc-id space ({1 << VC_ID_BITS} ids){where}"
        )
    if payload_words >= (1 << LENGTH_BITS):
        raise WireFormatError(
            f"payload of {payload_words} words does not fit the {LENGTH_BITS}-bit "
            f"header length field{where}"
        )
    if VC_ID_BITS + LENGTH_BITS > word_bits:
        raise WireFormatError(
            f"message header needs {VC_ID_BITS + LENGTH_BITS} bits but the link "
            f"word width is {word_bits}{where}"
        )


def marshal_value(ty: BCLType, value: Any, word_bits: int = 32) -> List[int]:
    """Pack one typed value into a list of ``word_bits``-wide payload words."""
    bits = ty.pack(value)
    n_words = words_for(ty, word_bits)
    mask = (1 << word_bits) - 1
    return [(bits >> (i * word_bits)) & mask for i in range(n_words)]


def demarshal_value(
    ty: BCLType,
    words: Sequence[int],
    word_bits: int = 32,
    start: int = 0,
    end: Optional[int] = None,
) -> Any:
    """Reassemble a typed value from its payload words.

    ``start``/``end`` select a slice of ``words`` *by index* so callers on
    the per-message hot path (the transport dataplane draining a shared
    word ring) never copy the payload out first.
    """
    if end is None:
        end = len(words)
    expected = words_for(ty, word_bits)
    if end - start != expected:
        raise SimulationError(
            f"demarshal: expected {expected} words for {ty!r}, got {end - start}"
        )
    bits = 0
    limit = 1 << word_bits
    for i in range(start, end):
        word = words[i]
        if word < 0 or word >= limit:
            raise SimulationError(
                f"demarshal: word {i - start} out of range for {word_bits}-bit channel"
            )
        bits |= word << ((i - start) * word_bits)
    return ty.unpack(bits)


def frame_message(vc_id: int, payload: Sequence[int], word_bits: int = 32) -> List[int]:
    """Prepend the header word (vc id + length) to a marshaled payload."""
    if not 0 <= vc_id < (1 << VC_ID_BITS):
        raise SimulationError(f"virtual channel id {vc_id} does not fit in {VC_ID_BITS} bits")
    if len(payload) >= (1 << LENGTH_BITS):
        raise SimulationError(f"payload of {len(payload)} words does not fit in the length field")
    if VC_ID_BITS + LENGTH_BITS > word_bits:
        raise SimulationError("header does not fit in one channel word")
    return [wire_header(vc_id, len(payload))] + list(payload)


def unframe_message(words: Sequence[int], word_bits: int = 32) -> Tuple[int, List[int]]:
    """Split a framed message back into ``(vc_id, payload_words)``.

    The returned payload is a fresh list (the historical API); hot-path
    callers should use :func:`demarshal_message`'s index-based decoding
    instead, which never copies the payload.
    """
    if not words:
        raise SimulationError("cannot unframe an empty message")
    vc_id, length = unframe_header(words[0])
    if len(words) - 1 != length:
        raise SimulationError(
            f"unframe: header declares {length} payload words but {len(words) - 1} were received"
        )
    return vc_id, list(words[1:])


def marshal_message(vc_id: int, ty: BCLType, value: Any, word_bits: int = 32) -> List[int]:
    """Marshal a typed value and frame it for the given virtual channel."""
    return frame_message(vc_id, marshal_value(ty, value, word_bits), word_bits)


def demarshal_message(
    ty: BCLType,
    words: Sequence[int],
    word_bits: int = 32,
    start: int = 0,
    end: Optional[int] = None,
) -> Tuple[int, Any]:
    """Unframe and decode a message; returns ``(vc_id, value)``.

    Index-based: ``words[start:end]`` is the framed message, but no slice is
    materialised -- the header is read in place and the payload is decoded
    through :func:`demarshal_value`'s ``start``/``end`` window.
    """
    if end is None:
        end = len(words)
    if end <= start:
        raise SimulationError("cannot unframe an empty message")
    vc_id, length = unframe_header(words[start])
    if end - start - 1 != length:
        raise SimulationError(
            f"unframe: header declares {length} payload words but "
            f"{end - start - 1} were received"
        )
    return vc_id, demarshal_value(ty, words, word_bits, start + 1, end)


def message_words(ty: BCLType, word_bits: int = 32) -> int:
    """Total channel words for one value of ``ty`` including the header word."""
    return 1 + words_for(ty, word_bits)


# --------------------------------------------------------------------------
# The layout compiler
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldSlice:
    """One leaf field's position within the payload bit vector (LSB-first).

    Uniform repetitions (vector elements) are collapsed: ``count`` instances
    of the field live at ``bit_offset + k * stride`` for ``k`` in
    ``range(count)`` -- which is exactly the shape a generated C or BSV
    marshaling *loop* iterates over.  A scalar field has ``count == 1``.
    """

    path: str
    bit_offset: int
    bit_width: int
    count: int = 1
    stride: int = 0


@dataclass(frozen=True)
class WordSpan:
    """Where (part of) one field instance lands in the payload word array."""

    path: str
    word: int  #: payload word index (header not counted)
    shift: int  #: bit position within that word
    width: int  #: bits of the field stored in this span
    field_lsb: int  #: offset of those bits within the field's own value


def _collect_leaves(ty: BCLType, path: str, offset: int, out: List[FieldSlice]) -> None:
    if isinstance(ty, StructT):
        # The first declared field occupies the most significant bits, so
        # LSB-first offsets walk the declaration order in reverse.
        off = offset
        for fname, fty in reversed(ty.fields):
            _collect_leaves(fty, f"{path}.{fname}" if path else fname, off, out)
            off += fty.bit_width()
    elif isinstance(ty, ComplexT):
        w = ty.elem.bit_width()
        _collect_leaves(ty.elem, f"{path}.im" if path else "im", offset, out)
        _collect_leaves(ty.elem, f"{path}.re" if path else "re", offset + w, out)
    elif isinstance(ty, VectorT):
        sub: List[FieldSlice] = []
        _collect_leaves(ty.elem, "", 0, sub)
        stride = ty.elem.bit_width()
        if any(leaf.count != 1 for leaf in sub):
            # The element itself repeats (nested vectors): expand the outer
            # indices so every slice keeps a single stride.
            for i in range(ty.n):
                for leaf in sub:
                    out.append(
                        FieldSlice(
                            f"{path}[{i}]{leaf.path}",
                            offset + i * stride + leaf.bit_offset,
                            leaf.bit_width,
                            leaf.count,
                            leaf.stride,
                        )
                    )
        else:
            for leaf in sub:
                out.append(
                    FieldSlice(
                        f"{path}[*]{leaf.path}",
                        offset + leaf.bit_offset,
                        leaf.bit_width,
                        ty.n,
                        stride,
                    )
                )
    else:
        out.append(FieldSlice(path, offset, ty.bit_width()))


class _FastPackMismatch(Exception):
    """A fused packer's fast predicate failed; re-pack through ``ty.pack``.

    Raised (and always caught) inside :func:`_compile_pack`'s closures only.
    The slow re-pack either succeeds (a legal value the conservative fast
    predicate rejected, e.g. a ``FixedPoint`` subclass) or raises the
    reference implementation's exact exception -- so the fused path never
    changes error behaviour, only speed.
    """


def _fused_packer(ty: BCLType) -> Optional[Callable[[Any], int]]:
    """A fused packer for ``ty``, or ``None`` when no specialisation exists.

    The returned closure computes ``ty.pack(value)`` without per-element
    dispatch -- leaf packing is inlined into the container loops -- and
    raises :class:`_FastPackMismatch` the moment any value fails its fast
    predicate.  Composite packers are built recursively, with dedicated
    single-loop forms for the frame shapes the transport actually moves:
    ``Vector#(FixPt)``, ``Vector#(Complex#(FixPt))`` and ``Vector#(UInt)``.
    """
    if isinstance(ty, (UIntT, BitT)):
        hi = (1 << ty.n) - 1

        def pack_uint(value: Any) -> int:
            if value.__class__ is int and 0 <= value <= hi:
                return value
            raise _FastPackMismatch

        return pack_uint
    if isinstance(ty, BoolT):

        def pack_bool(value: Any) -> int:
            if value.__class__ is bool:
                return 1 if value else 0
            raise _FastPackMismatch

        return pack_bool
    if isinstance(ty, IntT):
        lo = -(1 << (ty.n - 1))
        hi = (1 << (ty.n - 1)) - 1
        mask = (1 << ty.n) - 1

        def pack_int(value: Any) -> int:
            if value.__class__ is int and lo <= value <= hi:
                return value & mask
            raise _FastPackMismatch

        return pack_int
    if isinstance(ty, FixPtT):
        ib, fb = ty.int_bits, ty.frac_bits
        mask = (1 << (ib + fb)) - 1

        def pack_fixpt(value: Any) -> int:
            if value.__class__ is FixedPoint and value.int_bits == ib and value.frac_bits == fb:
                return value.raw & mask
            raise _FastPackMismatch

        return pack_fixpt
    if isinstance(ty, ComplexT):
        ib, fb = ty.elem.int_bits, ty.elem.frac_bits
        w = ty.elem.bit_width()
        mask = (1 << w) - 1

        def pack_complex(value: Any) -> int:
            if value.__class__ is not FixComplex:
                raise _FastPackMismatch
            re, im = value.real, value.imag
            if (
                re.__class__ is not FixedPoint
                or im.__class__ is not FixedPoint
                or re.int_bits != ib
                or re.frac_bits != fb
                or im.int_bits != ib
                or im.frac_bits != fb
            ):
                raise _FastPackMismatch
            return ((re.raw & mask) << w) | (im.raw & mask)

        return pack_complex
    if isinstance(ty, VectorT):
        n = ty.n
        w = ty.elem.bit_width()
        elem = ty.elem
        if isinstance(elem, FixPtT):
            ib, fb = elem.int_bits, elem.frac_bits
            mask = (1 << w) - 1

            def pack_fix_vec(value: Any) -> int:
                if (value.__class__ is not tuple and value.__class__ is not list) or len(
                    value
                ) != n:
                    raise _FastPackMismatch
                bits = 0
                shift = 0
                for v in value:
                    if v.__class__ is not FixedPoint or v.int_bits != ib or v.frac_bits != fb:
                        raise _FastPackMismatch
                    bits |= (v.raw & mask) << shift
                    shift += w
                return bits

            return pack_fix_vec
        if isinstance(elem, ComplexT):
            ib, fb = elem.elem.int_bits, elem.elem.frac_bits
            half = elem.elem.bit_width()
            mask = (1 << half) - 1

            def pack_cplx_vec(value: Any) -> int:
                if (value.__class__ is not tuple and value.__class__ is not list) or len(
                    value
                ) != n:
                    raise _FastPackMismatch
                bits = 0
                shift = 0
                for v in value:
                    if v.__class__ is not FixComplex:
                        raise _FastPackMismatch
                    re, im = v.real, v.imag
                    if (
                        re.__class__ is not FixedPoint
                        or im.__class__ is not FixedPoint
                        or re.int_bits != ib
                        or re.frac_bits != fb
                        or im.int_bits != ib
                        or im.frac_bits != fb
                    ):
                        raise _FastPackMismatch
                    bits |= ((((re.raw & mask) << half) | (im.raw & mask))) << shift
                    shift += w
                return bits

            return pack_cplx_vec
        if isinstance(elem, (UIntT, BitT)):
            hi = (1 << elem.n) - 1

            def pack_uint_vec(value: Any) -> int:
                if (value.__class__ is not tuple and value.__class__ is not list) or len(
                    value
                ) != n:
                    raise _FastPackMismatch
                bits = 0
                shift = 0
                for v in value:
                    if v.__class__ is not int or v < 0 or v > hi:
                        raise _FastPackMismatch
                    bits |= v << shift
                    shift += w
                return bits

            return pack_uint_vec
        sub = _fused_packer(elem)
        if sub is None:
            return None

        def pack_vec(value: Any) -> int:
            if (value.__class__ is not tuple and value.__class__ is not list) or len(
                value
            ) != n:
                raise _FastPackMismatch
            bits = 0
            shift = 0
            for v in value:
                bits |= sub(v) << shift
                shift += w
            return bits

        return pack_vec
    if isinstance(ty, StructT):
        subs = []
        for fname, fty in ty.fields:
            sub = _fused_packer(fty)
            if sub is None:
                return None
            subs.append((fname, sub, fty.bit_width()))
        field_packers = tuple(subs)

        def pack_struct(value: Any) -> int:
            if value.__class__ is not dict:
                raise _FastPackMismatch
            bits = 0
            try:
                for fname, sub, fw in field_packers:
                    bits = (bits << fw) | sub(value[fname])
            except KeyError:
                raise _FastPackMismatch from None
            return bits

        return pack_struct
    return None


def _compile_pack(ty: BCLType) -> Callable[[Any], int]:
    """Specialise ``ty.pack`` for the per-message transport hot path.

    Composes the fused per-layout packer (leaf packing inlined into the
    container loops) with a fallback: any value failing a fast predicate is
    re-packed through ``ty.pack`` so the error behaviour (exception type,
    message text) is exactly the reference's.  Types with no fused form
    (e.g. opaque state) keep ``ty.pack`` unchanged.
    """
    fast = _fused_packer(ty)
    if fast is None:
        return ty.pack
    slow = ty.pack

    def pack(value: Any) -> int:
        try:
            return fast(value)
        except _FastPackMismatch:
            return slow(value)

    return pack


def _compile_unpack(ty: BCLType) -> Callable[[int], Any]:
    """Specialise ``ty.unpack`` for the per-message transport hot path.

    Unlike packing, decoding needs no fallback: the input is always the
    unsigned payload integer the wire delivered, and the compiled closures
    replicate the reference bit semantics exactly (masking, two's-complement
    sign extension, vector element order, struct field order).  Fixed-point
    leaves box through :func:`~repro.core.fixedpoint.from_wrapped_raw`,
    skipping the re-wrap of already-wrapped values.
    """
    if isinstance(ty, (UIntT, BitT)):
        mask = (1 << ty.n) - 1
        return lambda bits: bits & mask
    if isinstance(ty, BoolT):
        return lambda bits: bool(bits & 1)
    if isinstance(ty, IntT):
        mask = (1 << ty.n) - 1
        sign = 1 << (ty.n - 1)
        return lambda bits: ((bits & mask) ^ sign) - sign
    if isinstance(ty, FixPtT):
        ib, fb = ty.int_bits, ty.frac_bits
        mask = (1 << (ib + fb)) - 1
        sign = 1 << (ib + fb - 1)
        return lambda bits: from_wrapped_raw(((bits & mask) ^ sign) - sign, ib, fb)
    if isinstance(ty, ComplexT):
        ib, fb = ty.elem.int_bits, ty.elem.frac_bits
        w = ty.elem.bit_width()
        mask = (1 << w) - 1
        sign = 1 << (w - 1)

        def unpack_complex(bits: int) -> FixComplex:
            return FixComplex(
                from_wrapped_raw((((bits >> w) & mask) ^ sign) - sign, ib, fb),
                from_wrapped_raw(((bits & mask) ^ sign) - sign, ib, fb),
            )

        return unpack_complex
    if isinstance(ty, VectorT):
        n = ty.n
        w = ty.elem.bit_width()
        elem = ty.elem
        if isinstance(elem, FixPtT):
            ib, fb = elem.int_bits, elem.frac_bits
            mask = (1 << w) - 1
            sign = 1 << (w - 1)

            def unpack_fix_vec(bits: int) -> Tuple[Any, ...]:
                return tuple(
                    from_wrapped_raw((((bits >> (i * w)) & mask) ^ sign) - sign, ib, fb)
                    for i in range(n)
                )

            return unpack_fix_vec
        if isinstance(elem, ComplexT):
            ib, fb = elem.elem.int_bits, elem.elem.frac_bits
            half = elem.elem.bit_width()
            mask = (1 << half) - 1
            sign = 1 << (half - 1)

            def unpack_cplx_vec(bits: int) -> Tuple[Any, ...]:
                out = []
                append = out.append
                for i in range(n):
                    word = bits >> (i * w)
                    append(
                        FixComplex(
                            from_wrapped_raw(
                                (((word >> half) & mask) ^ sign) - sign, ib, fb
                            ),
                            from_wrapped_raw(((word & mask) ^ sign) - sign, ib, fb),
                        )
                    )
                return tuple(out)

            return unpack_cplx_vec
        sub = _compile_unpack(elem)
        mask = (1 << w) - 1
        return lambda bits: tuple(sub((bits >> (i * w)) & mask) for i in range(n))
    if isinstance(ty, StructT):
        # LSB-first offsets walk the declaration order in reverse; the
        # decoded dict is built in declared order, like the reference.
        offsets: Dict[str, int] = {}
        off = 0
        for fname, fty in reversed(ty.fields):
            offsets[fname] = off
            off += fty.bit_width()
        entries = tuple(
            (fname, offsets[fname], (1 << fty.bit_width()) - 1, _compile_unpack(fty))
            for fname, fty in ty.fields
        )

        def unpack_struct(bits: int) -> Dict[str, Any]:
            return {
                fname: sub((bits >> shift) & mask)
                for fname, shift, mask, sub in entries
            }

        return unpack_struct
    return ty.unpack


class MessageLayout:
    """The compiled wire format of one channel element type.

    Everything every layer needs is derived here, once: header field
    shifts/masks, payload/message word counts, the per-field bit slices of
    the canonical packing, and closure-compiled encoders/decoders for the
    simulation dataplane.  One ``MessageLayout`` per ``(type, word width)``
    pair -- the invariant that makes the generated interfaces trustworthy.
    """

    __slots__ = (
        "ty",
        "word_bits",
        "payload_bits",
        "payload_words",
        "message_words",
        "fields",
        "_decoder",
    )

    #: Header field geometry (class-level: the header layout is global).
    VC_SHIFT = LENGTH_BITS
    VC_MASK = (1 << VC_ID_BITS) - 1
    LENGTH_MASK = (1 << LENGTH_BITS) - 1

    def __init__(self, ty: BCLType, word_bits: int = 32):
        self.ty = ty
        self.word_bits = word_bits
        self.payload_bits = ty.bit_width()
        self.payload_words = words_for(ty, word_bits)
        self.message_words = self.payload_words + 1
        validate_wire_format(1, self.payload_words, word_bits, context=repr(ty))
        leaves: List[FieldSlice] = []
        _collect_leaves(ty, "", 0, leaves)
        self.fields: Tuple[FieldSlice, ...] = tuple(
            sorted(leaves, key=lambda f: f.bit_offset)
        )
        self._decoder: Optional[Callable[[Sequence[int], int], Any]] = None

    def __repr__(self) -> str:
        return (
            f"MessageLayout({self.ty!r}, word_bits={self.word_bits}, "
            f"payload_words={self.payload_words})"
        )

    # -- header ------------------------------------------------------------

    def header_word(self, vc_id: int) -> int:
        """The constant header word every message of virtual channel ``vc_id``
        carries (the payload length of a channel is fixed by its type)."""
        if not 0 <= vc_id < (1 << VC_ID_BITS):
            raise WireFormatError(
                f"virtual channel id {vc_id} does not fit in {VC_ID_BITS} bits"
            )
        return wire_header(vc_id, self.payload_words)

    # -- word-level field table (codegen) -----------------------------------

    def word_spans(self, max_instances: int = 4) -> List[WordSpan]:
        """The payload word array positions of every field (instances capped).

        Expands each :class:`FieldSlice` into per-word spans: which payload
        word, at which shift, holds which bits of the field.  Repeated
        fields expand at most ``max_instances`` instances -- consumers
        (:func:`repro.codegen.cxx.generate_field_macros` emits
        ``_WORD``/``_SHIFT`` constants from the single-word spans) address
        the remaining instances with the slice's ``_COUNT``/``_STRIDE``.
        """
        spans: List[WordSpan] = []
        wb = self.word_bits
        for leaf in self.fields:
            for k in range(min(leaf.count, max_instances)):
                path = leaf.path.replace("[*]", f"[{k}]") if leaf.count > 1 else leaf.path
                offset = leaf.bit_offset + k * leaf.stride
                taken = 0
                while taken < leaf.bit_width:
                    word, shift = divmod(offset + taken, wb)
                    width = min(leaf.bit_width - taken, wb - shift)
                    spans.append(WordSpan(path, word, shift, width, taken))
                    taken += width
        return spans

    # -- compiled encode/decode (simulation dataplane) -----------------------

    def encoder(self, vc_id: int) -> Callable[[Any], Tuple[int, ...]]:
        """Compile the framed-message encoder of one virtual channel.

        The returned closure maps an element value to its wire words
        (header first, payload least-significant-word first).  Constants --
        the header word, the payload word count, the word mask -- are
        resolved now, so the per-message work is one ``pack`` plus the word
        split.
        """
        header = self.header_word(vc_id)
        pack = _compile_pack(self.ty)
        if self.payload_words == 1:
            # Single-word payload (the common scalar case): no split loop.
            return lambda value: (header, pack(value))
        n = self.payload_words
        wb = self.word_bits
        mask = (1 << wb) - 1

        def encode(value: Any) -> Tuple[int, ...]:
            bits = pack(value)
            words = [header]
            append = words.append
            for _ in range(n):
                append(bits & mask)
                bits >>= wb
            return tuple(words)

        return encode

    def batch_encoder(self, vc_id: int) -> Callable[[Sequence[Any]], List[int]]:
        """Compile the batched framed-message encoder of one virtual channel.

        Maps a sequence of element values to one flat word list -- the
        concatenated framed messages, ready for a single ``extend`` onto a
        :class:`~repro.platform.channel.MessagePool` word ring.  Because a
        channel's message length is fixed by its type, the caller can
        derive every per-message bound arithmetically.
        """
        header = self.header_word(vc_id)
        pack = _compile_pack(self.ty)
        if self.payload_words == 1:

            def encode_batch(values: Sequence[Any]) -> List[int]:
                out: List[int] = []
                append = out.append
                for value in values:
                    append(header)
                    append(pack(value))
                return out

            return encode_batch

        n = self.payload_words
        wb = self.word_bits
        mask = (1 << wb) - 1

        def encode_batch(values: Sequence[Any]) -> List[int]:
            out: List[int] = []
            append = out.append
            for value in values:
                bits = pack(value)
                append(header)
                for _ in range(n):
                    append(bits & mask)
                    bits >>= wb
            return out

        return encode_batch

    def decoder(self) -> Callable[[Sequence[int], int], Any]:
        """Compile the payload decoder (shared by every vc of this layout).

        The returned closure reads ``payload_words`` words from ``words``
        starting at ``start`` -- index-based, so the transport dataplane
        decodes straight out of its flat word ring without slicing.
        """
        if self._decoder is not None:
            return self._decoder
        unpack = _compile_unpack(self.ty)
        if self.payload_words == 1:
            decode: Callable[[Sequence[int], int], Any] = (
                lambda words, start: unpack(words[start])
            )
        else:
            n = self.payload_words
            wb = self.word_bits

            def decode(words: Sequence[int], start: int) -> Any:
                bits = 0
                for i in range(n):
                    bits |= words[start + i] << (i * wb)
                return unpack(bits)

        self._decoder = decode
        return decode

    def run_decoder(self) -> Callable[[Sequence[int], int, int], List[Any]]:
        """Compile the run decoder: ``count`` consecutive messages of this
        layout starting at ``start`` (each ``message_words`` long, header
        first) decode to a list of values in one call -- the batched
        hardware-side delivery path."""
        unpack = _compile_unpack(self.ty)
        stride = self.message_words
        if self.payload_words == 1:

            def decode_run(words: Sequence[int], start: int, count: int) -> List[Any]:
                return [
                    unpack(word)
                    for word in words[start + 1 : start + count * stride : stride]
                ]

            return decode_run

        n = self.payload_words
        wb = self.word_bits

        def decode_run(words: Sequence[int], start: int, count: int) -> List[Any]:
            out: List[Any] = []
            append = out.append
            base = start + 1
            for _ in range(count):
                bits = 0
                for i in range(n):
                    bits |= words[base + i] << (i * wb)
                append(unpack(bits))
                base += stride
            return out

        return decode_run

    # -- reference pack/unpack ----------------------------------------------

    def pack_message(self, vc_id: int, value: Any) -> List[int]:
        """Reference framed encoding (header + payload words)."""
        return frame_message(vc_id, marshal_value(self.ty, value, self.word_bits), self.word_bits)

    def unpack_message(
        self, words: Sequence[int], start: int = 0, end: Optional[int] = None
    ) -> Tuple[int, Any]:
        """Reference framed decoding; returns ``(vc_id, value)``."""
        return demarshal_message(self.ty, words, self.word_bits, start, end)


#: One layout per (element type, word width): every layer that touches a
#: channel's bits must go through the same object.
_LAYOUT_CACHE: Dict[Tuple[BCLType, int], MessageLayout] = {}


def layout_for(ty: BCLType, word_bits: int = 32) -> MessageLayout:
    """The canonical :class:`MessageLayout` of ``(ty, word_bits)`` (cached)."""
    key = (ty, word_bits)
    layout = _LAYOUT_CACHE.get(key)
    if layout is None:
        layout = _LAYOUT_CACHE[key] = MessageLayout(ty, word_bits)
    return layout
