"""Marshaling and demarshaling of typed values into channel words.

Section 4.4: the design specifies atomic transfers at (say) audio-frame
granularity, but the physical substrate moves fixed-width words, so the
compiler generates marshaling/demarshaling code on both sides of every
synchronizer.  Because both sides use the same canonical bit-level packing
(:mod:`repro.core.types`), the data-format mismatch problem of Section 2.3
cannot arise.

A marshaled message is a list of unsigned integers: one header word carrying
the virtual-channel id and the payload length, followed by the payload words
(least significant word first).
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.core.errors import SimulationError
from repro.core.types import BCLType, words_for

#: Number of header bits reserved for the virtual-channel id.
VC_ID_BITS = 8
#: Number of header bits reserved for the payload word count.
LENGTH_BITS = 16


def marshal_value(ty: BCLType, value: Any, word_bits: int = 32) -> List[int]:
    """Pack one typed value into a list of ``word_bits``-wide payload words."""
    bits = ty.pack(value)
    n_words = words_for(ty, word_bits)
    mask = (1 << word_bits) - 1
    return [(bits >> (i * word_bits)) & mask for i in range(n_words)]


def demarshal_value(ty: BCLType, words: Sequence[int], word_bits: int = 32) -> Any:
    """Reassemble a typed value from its payload words."""
    expected = words_for(ty, word_bits)
    if len(words) != expected:
        raise SimulationError(
            f"demarshal: expected {expected} words for {ty!r}, got {len(words)}"
        )
    bits = 0
    for i, word in enumerate(words):
        if word < 0 or word >= (1 << word_bits):
            raise SimulationError(f"demarshal: word {i} out of range for {word_bits}-bit channel")
        bits |= word << (i * word_bits)
    return ty.unpack(bits)


def frame_message(vc_id: int, payload: Sequence[int], word_bits: int = 32) -> List[int]:
    """Prepend the header word (vc id + length) to a marshaled payload."""
    if not 0 <= vc_id < (1 << VC_ID_BITS):
        raise SimulationError(f"virtual channel id {vc_id} does not fit in {VC_ID_BITS} bits")
    if len(payload) >= (1 << LENGTH_BITS):
        raise SimulationError(f"payload of {len(payload)} words does not fit in the length field")
    if VC_ID_BITS + LENGTH_BITS > word_bits:
        raise SimulationError("header does not fit in one channel word")
    header = (vc_id << LENGTH_BITS) | len(payload)
    return [header] + list(payload)


def unframe_message(words: Sequence[int], word_bits: int = 32) -> Tuple[int, List[int]]:
    """Split a framed message back into ``(vc_id, payload_words)``."""
    if not words:
        raise SimulationError("cannot unframe an empty message")
    header = words[0]
    length = header & ((1 << LENGTH_BITS) - 1)
    vc_id = (header >> LENGTH_BITS) & ((1 << VC_ID_BITS) - 1)
    payload = list(words[1:])
    if len(payload) != length:
        raise SimulationError(
            f"unframe: header declares {length} payload words but {len(payload)} were received"
        )
    return vc_id, payload


def marshal_message(vc_id: int, ty: BCLType, value: Any, word_bits: int = 32) -> List[int]:
    """Marshal a typed value and frame it for the given virtual channel."""
    return frame_message(vc_id, marshal_value(ty, value, word_bits), word_bits)


def demarshal_message(ty: BCLType, words: Sequence[int], word_bits: int = 32) -> Tuple[int, Any]:
    """Unframe and decode a message; returns ``(vc_id, value)``."""
    vc_id, payload = unframe_message(words, word_bits)
    return vc_id, demarshal_value(ty, payload, word_bits)


def message_words(ty: BCLType, word_bits: int = 32) -> int:
    """Total channel words for one value of ``ty`` including the header word."""
    return 1 + words_for(ty, word_bits)
