"""The physical communication channel (shared bus / LocalLink) model.

Section 4.4: the low-level details of bus transactions are abstracted as
simple get/put interfaces per supported platform, on top of which the
compiler maps the design's LIBDN FIFOs.  The model here captures the three
quantities the evaluation's partitioning trade-offs hinge on:

* **latency** -- a fixed one-way delay (the ML507 round trip is ~100 FPGA
  cycles),
* **bandwidth** -- a per-word serialisation cost (4 bytes per FPGA cycle
  gives the 400 MB/s the paper reports), and
* **per-transfer overhead** -- the cost of initiating a transaction (driver
  call, descriptor setup, bus arbitration).  Burst/DMA transfers pay it once
  per message; word-at-a-time transfers pay it for every word, which is why
  the Communication-Granularity discussion of Section 2.1 matters.

The channel is full duplex (one direction per :class:`ChannelDirection`),
and each direction is a shared serial resource arbitrated among all virtual
channels, so concurrent synchronizers queue behind one another exactly as
they would on a real bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass(frozen=True)
class ChannelParams:
    """Static parameters of a physical channel."""

    #: Width of one channel word in bits.
    word_bits: int = 32
    #: Fixed one-way propagation/processing latency, in FPGA cycles.
    one_way_latency_cycles: int = 50
    #: Serialisation cost per word, in FPGA cycles (1.0 == 4 bytes/cycle == 400 MB/s).
    cycles_per_word: float = 1.0
    #: Cost of initiating one burst transfer (descriptor setup, arbitration).
    per_message_overhead_cycles: int = 20
    #: Additional cost per word when bursting is disabled (each word becomes
    #: its own bus transaction, as in Figure 3's word-at-a-time loop).
    per_word_overhead_cycles: int = 12

    def occupancy_cycles(self, n_words: int, burst: bool = True) -> float:
        """How long one message of ``n_words`` occupies the channel direction."""
        if n_words <= 0:
            return float(self.per_message_overhead_cycles)
        serial = n_words * self.cycles_per_word
        if burst:
            return self.per_message_overhead_cycles + serial
        return n_words * (self.per_word_overhead_cycles + self.cycles_per_word)

    def transfer_latency_cycles(self, n_words: int, burst: bool = True) -> float:
        """End-to-end latency of one message (occupancy plus propagation)."""
        return self.occupancy_cycles(n_words, burst) + self.one_way_latency_cycles

    @property
    def round_trip_latency_cycles(self) -> float:
        """Latency of a minimal request/response pair (the paper's ~100 cycles)."""
        return 2 * (self.one_way_latency_cycles + self.occupancy_cycles(1, burst=True))

    def bandwidth_bytes_per_fpga_cycle(self) -> float:
        return (self.word_bits / 8) / self.cycles_per_word


@dataclass
class Message:
    """One in-flight message on a channel direction."""

    vc_id: int
    payload: Any
    n_words: int
    enqueued_at: float
    starts_at: float
    delivered_at: float


@dataclass
class ChannelStats:
    """Aggregate channel traffic accounting, reported in benchmark output."""

    messages: int = 0
    words: int = 0
    busy_cycles: float = 0.0
    per_vc_messages: dict = field(default_factory=dict)

    def record(self, vc_id: int, n_words: int, occupancy: float) -> None:
        self.messages += 1
        self.words += n_words
        self.busy_cycles += occupancy
        self.per_vc_messages[vc_id] = self.per_vc_messages.get(vc_id, 0) + 1


class ChannelDirection:
    """One direction of the physical channel: a shared, serialised resource."""

    def __init__(self, params: ChannelParams, name: str, burst: bool = True):
        self.params = params
        self.name = name
        self.burst = burst
        self.busy_until: float = 0.0
        self.in_flight: List[Message] = []
        self.stats = ChannelStats()

    def send(self, vc_id: int, payload: Any, n_words: int, now: float) -> Message:
        """Enqueue a message at time ``now``; returns the scheduled delivery."""
        start = max(now, self.busy_until)
        occupancy = self.params.occupancy_cycles(n_words, self.burst)
        delivered = start + occupancy + self.params.one_way_latency_cycles
        self.busy_until = start + occupancy
        message = Message(vc_id, payload, n_words, now, start, delivered)
        self.in_flight.append(message)
        self.stats.record(vc_id, n_words, occupancy)
        return message

    def deliveries_due(self, now: float) -> List[Message]:
        """Remove and return every message whose delivery time has arrived.

        The direction serialises transfers (each send starts no earlier than
        ``busy_until``), so ``in_flight`` is already ordered by delivery
        time and the due messages are a prefix -- no filtering or sorting.
        """
        in_flight = self.in_flight
        if not in_flight or in_flight[0].delivered_at > now:
            return []
        cut = 1
        n = len(in_flight)
        while cut < n and in_flight[cut].delivered_at <= now:
            cut += 1
        self.in_flight = in_flight[cut:]
        return in_flight[:cut]

    def next_delivery_time(self) -> Optional[float]:
        if not self.in_flight:
            return None
        return self.in_flight[0].delivered_at

    @property
    def pending(self) -> int:
        return len(self.in_flight)


class DuplexChannel:
    """A full-duplex channel: one direction per transfer sense (SW→HW, HW→SW)."""

    def __init__(self, params: ChannelParams, burst: bool = True):
        self.params = params
        self.to_hw = ChannelDirection(params, "to_hw", burst)
        self.to_sw = ChannelDirection(params, "to_sw", burst)

    def direction(self, towards_hw: bool) -> ChannelDirection:
        return self.to_hw if towards_hw else self.to_sw

    def next_delivery_time(self) -> Optional[float]:
        times = [
            t
            for t in (self.to_hw.next_delivery_time(), self.to_sw.next_delivery_time())
            if t is not None
        ]
        return min(times) if times else None

    @property
    def total_messages(self) -> int:
        return self.to_hw.stats.messages + self.to_sw.stats.messages

    @property
    def total_words(self) -> int:
        return self.to_hw.stats.words + self.to_sw.stats.words
