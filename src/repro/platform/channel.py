"""The physical communication channel (shared bus / LocalLink) model.

Section 4.4: the low-level details of bus transactions are abstracted as
simple get/put interfaces per supported platform, on top of which the
compiler maps the design's LIBDN FIFOs.  The model here captures the three
quantities the evaluation's partitioning trade-offs hinge on:

* **latency** -- a fixed one-way delay (the ML507 round trip is ~100 FPGA
  cycles),
* **bandwidth** -- a per-word serialisation cost (4 bytes per FPGA cycle
  gives the 400 MB/s the paper reports), and
* **per-transfer overhead** -- the cost of initiating a transaction (driver
  call, descriptor setup, bus arbitration).  Burst/DMA transfers pay it once
  per message; word-at-a-time transfers pay it for every word, which is why
  the Communication-Granularity discussion of Section 2.1 matters.

The channel is full duplex (one direction per :class:`ChannelDirection`),
and each direction is a shared serial resource arbitrated among all virtual
channels, so concurrent synchronizers queue behind one another exactly as
they would on a real bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class ChannelParams:
    """Static parameters of a physical channel."""

    #: Width of one channel word in bits.
    word_bits: int = 32
    #: Fixed one-way propagation/processing latency, in FPGA cycles.
    one_way_latency_cycles: int = 50
    #: Serialisation cost per word, in FPGA cycles (1.0 == 4 bytes/cycle == 400 MB/s).
    cycles_per_word: float = 1.0
    #: Cost of initiating one burst transfer (descriptor setup, arbitration).
    per_message_overhead_cycles: int = 20
    #: Additional cost per word when bursting is disabled (each word becomes
    #: its own bus transaction, as in Figure 3's word-at-a-time loop).
    per_word_overhead_cycles: int = 12

    def occupancy_cycles(self, n_words: int, burst: bool = True) -> float:
        """How long one message of ``n_words`` occupies the channel direction."""
        if n_words <= 0:
            return float(self.per_message_overhead_cycles)
        serial = n_words * self.cycles_per_word
        if burst:
            return self.per_message_overhead_cycles + serial
        return n_words * (self.per_word_overhead_cycles + self.cycles_per_word)

    def transfer_latency_cycles(self, n_words: int, burst: bool = True) -> float:
        """End-to-end latency of one message (occupancy plus propagation)."""
        return self.occupancy_cycles(n_words, burst) + self.one_way_latency_cycles

    @property
    def round_trip_latency_cycles(self) -> float:
        """Latency of a minimal request/response pair (the paper's ~100 cycles)."""
        return 2 * (self.one_way_latency_cycles + self.occupancy_cycles(1, burst=True))

    def bandwidth_bytes_per_fpga_cycle(self) -> float:
        return (self.word_bits / 8) / self.cycles_per_word


@dataclass
class Message:
    """One in-flight message on a channel direction."""

    vc_id: int
    payload: Any
    n_words: int
    enqueued_at: float
    starts_at: float
    delivered_at: float


@dataclass
class ChannelStats:
    """Aggregate channel traffic accounting, reported in benchmark output."""

    messages: int = 0
    words: int = 0
    busy_cycles: float = 0.0
    per_vc_messages: dict = field(default_factory=dict)

    def record(self, vc_id: int, n_words: int, occupancy: float) -> None:
        self.messages += 1
        self.words += n_words
        self.busy_cycles += occupancy
        self.per_vc_messages[vc_id] = self.per_vc_messages.get(vc_id, 0) + 1


class ChannelDirection:
    """One direction of the physical channel: a shared, serialised resource."""

    def __init__(self, params: ChannelParams, name: str, burst: bool = True):
        self.params = params
        self.name = name
        self.burst = burst
        self.busy_until: float = 0.0
        self.in_flight: List[Message] = []
        self.stats = ChannelStats()

    def send(self, vc_id: int, payload: Any, n_words: int, now: float) -> Message:
        """Enqueue a message at time ``now``; returns the scheduled delivery."""
        start = max(now, self.busy_until)
        occupancy = self.params.occupancy_cycles(n_words, self.burst)
        delivered = start + occupancy + self.params.one_way_latency_cycles
        self.busy_until = start + occupancy
        message = Message(vc_id, payload, n_words, now, start, delivered)
        self.in_flight.append(message)
        self.stats.record(vc_id, n_words, occupancy)
        return message

    def deliveries_due(self, now: float) -> List[Message]:
        """Remove and return every message whose delivery time has arrived.

        The direction serialises transfers (each send starts no earlier than
        ``busy_until``), so ``in_flight`` is already ordered by delivery
        time and the due messages are a prefix -- no filtering or sorting.
        """
        in_flight = self.in_flight
        if not in_flight or in_flight[0].delivered_at > now:
            return []
        cut = 1
        n = len(in_flight)
        while cut < n and in_flight[cut].delivered_at <= now:
            cut += 1
        due = in_flight[:cut]
        # Trim in place: the list object's identity is stable, so compiled
        # transport closures may pre-bind ``in_flight.append``.
        del in_flight[:cut]
        return due

    def next_delivery_time(self) -> Optional[float]:
        if not self.in_flight:
            return None
        return self.in_flight[0].delivered_at

    @property
    def pending(self) -> int:
        return len(self.in_flight)


class DuplexChannel:
    """A full-duplex channel: one direction per transfer sense (SW→HW, HW→SW).

    This is the historical two-partition view.  It can own its two
    :class:`ChannelDirection` resources (legacy constructor) or be a view
    over two directions that live in a :class:`Topology`
    (:meth:`from_directions`), which is how the two-partition compatibility
    wrapper in :mod:`repro.sim.cosim` exposes its fabric links.
    """

    def __init__(self, params: ChannelParams, burst: bool = True):
        self.params = params
        self.to_hw = ChannelDirection(params, "to_hw", burst)
        self.to_sw = ChannelDirection(params, "to_sw", burst)

    @classmethod
    def from_directions(
        cls, to_hw: ChannelDirection, to_sw: ChannelDirection
    ) -> "DuplexChannel":
        """A duplex view over two existing directions (no new resources)."""
        view = cls.__new__(cls)
        view.params = to_hw.params
        view.to_hw = to_hw
        view.to_sw = to_sw
        return view

    def direction(self, towards_hw: bool) -> ChannelDirection:
        return self.to_hw if towards_hw else self.to_sw

    def next_delivery_time(self) -> Optional[float]:
        times = [
            t
            for t in (self.to_hw.next_delivery_time(), self.to_sw.next_delivery_time())
            if t is not None
        ]
        return min(times) if times else None

    @property
    def total_messages(self) -> int:
        return self.to_hw.stats.messages + self.to_sw.stats.messages

    @property
    def total_words(self) -> int:
        return self.to_hw.stats.words + self.to_sw.stats.words


# --------------------------------------------------------------------------
# N-domain link topologies
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Link:
    """Static description of one point-to-point link between two domains.

    A link is unidirectional (one serialised bus resource); a full-duplex
    connection between two domains is two links.  Per-link parameters let a
    topology mix fabrics of different width/latency (e.g. an on-board
    LocalLink next to a chip-to-chip serial lane)."""

    src: str
    dst: str
    params: ChannelParams
    burst: bool = True

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"


class Topology:
    """A routed set of point-to-point links between named domains.

    The two-partition co-simulation is the degenerate topology
    ``{SW->HW, HW->SW}``; an N-domain fabric registers one link per
    (producer domain, consumer domain) pair that its synchronizer cut
    actually uses.  Each link is an independent serialised resource (its own
    :class:`ChannelDirection`), so traffic between one pair of domains never
    occupies another pair's bus -- the property that makes sharding
    independent partition groups sound.

    Links iterate in registration order, which the simulator relies on for
    deterministic delivery sweeps.
    """

    def __init__(self):
        self._links: Dict[Tuple[str, str], Link] = {}
        self._directions: Dict[Tuple[str, str], ChannelDirection] = {}

    def add_link(
        self,
        src: str,
        dst: str,
        params: ChannelParams,
        burst: bool = True,
        name: Optional[str] = None,
    ) -> ChannelDirection:
        """Register a unidirectional ``src -> dst`` link; returns its direction."""
        key = (src, dst)
        if key in self._links:
            raise ValueError(f"topology already has a link {src}->{dst}")
        link = Link(src, dst, params, burst)
        self._links[key] = link
        direction = ChannelDirection(params, name or link.name, burst)
        self._directions[key] = direction
        return direction

    def add_duplex(
        self, a: str, b: str, params: ChannelParams, burst: bool = True
    ) -> Tuple[ChannelDirection, ChannelDirection]:
        """Register both directions between ``a`` and ``b``."""
        return (
            self.add_link(a, b, params, burst),
            self.add_link(b, a, params, burst),
        )

    def has_link(self, src: str, dst: str) -> bool:
        return (src, dst) in self._links

    def link(self, src: str, dst: str) -> Link:
        return self._links[(src, dst)]

    def direction(self, src: str, dst: str) -> ChannelDirection:
        """The serialised resource carrying ``src -> dst`` traffic."""
        try:
            return self._directions[(src, dst)]
        except KeyError:
            raise KeyError(
                f"topology has no link {src}->{dst}; registered: "
                f"{sorted(self._links)}"
            ) from None

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    @property
    def directions(self) -> List[ChannelDirection]:
        return list(self._directions.values())

    def __iter__(self) -> Iterator[ChannelDirection]:
        return iter(self._directions.values())

    def __len__(self) -> int:
        return len(self._links)

    def next_delivery_time(self) -> Optional[float]:
        best: Optional[float] = None
        for direction in self._directions.values():
            in_flight = direction.in_flight
            if in_flight and (best is None or in_flight[0].delivered_at < best):
                best = in_flight[0].delivered_at
        return best

    @property
    def total_messages(self) -> int:
        return sum(d.stats.messages for d in self._directions.values())

    @property
    def total_words(self) -> int:
        return sum(d.stats.words for d in self._directions.values())

    @property
    def total_busy_cycles(self) -> float:
        return sum(d.stats.busy_cycles for d in self._directions.values())

    @classmethod
    def for_routes(
        cls,
        routes: Iterable[Tuple[str, str]],
        default_params: ChannelParams,
        burst: bool = True,
        link_params: Optional[Dict[Tuple[str, str], ChannelParams]] = None,
    ) -> "Topology":
        """Build a topology with one link per (src, dst) route.

        ``link_params`` overrides the channel parameters of individual links
        (latency/width asymmetry between domain pairs); every other route
        uses ``default_params``.  Duplicate routes are collapsed.
        """
        topo = cls()
        overrides = link_params or {}
        for src, dst in routes:
            if not topo.has_link(src, dst):
                topo.add_link(src, dst, overrides.get((src, dst), default_params), burst)
        return topo
