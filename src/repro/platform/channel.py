"""The physical communication channel (shared bus / LocalLink) model.

Section 4.4: the low-level details of bus transactions are abstracted as
simple get/put interfaces per supported platform, on top of which the
compiler maps the design's LIBDN FIFOs.  The model here captures the three
quantities the evaluation's partitioning trade-offs hinge on:

* **latency** -- a fixed one-way delay (the ML507 round trip is ~100 FPGA
  cycles),
* **bandwidth** -- a per-word serialisation cost (4 bytes per FPGA cycle
  gives the 400 MB/s the paper reports), and
* **per-transfer overhead** -- the cost of initiating a transaction (driver
  call, descriptor setup, bus arbitration).  Burst/DMA transfers pay it once
  per message; word-at-a-time transfers pay it for every word, which is why
  the Communication-Granularity discussion of Section 2.1 matters.

The channel is full duplex (one direction per :class:`ChannelDirection`),
and each direction is a shared serial resource arbitrated among all virtual
channels, so concurrent synchronizers queue behind one another exactly as
they would on a real bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ChannelParams:
    """Static parameters of a physical channel."""

    #: Width of one channel word in bits.
    word_bits: int = 32
    #: Fixed one-way propagation/processing latency, in FPGA cycles.
    one_way_latency_cycles: int = 50
    #: Serialisation cost per word, in FPGA cycles (1.0 == 4 bytes/cycle == 400 MB/s).
    cycles_per_word: float = 1.0
    #: Cost of initiating one burst transfer (descriptor setup, arbitration).
    per_message_overhead_cycles: int = 20
    #: Additional cost per word when bursting is disabled (each word becomes
    #: its own bus transaction, as in Figure 3's word-at-a-time loop).
    per_word_overhead_cycles: int = 12

    def occupancy_cycles(self, n_words: int, burst: bool = True) -> float:
        """How long one message of ``n_words`` occupies the channel direction."""
        if n_words <= 0:
            return float(self.per_message_overhead_cycles)
        serial = n_words * self.cycles_per_word
        if burst:
            return self.per_message_overhead_cycles + serial
        return n_words * (self.per_word_overhead_cycles + self.cycles_per_word)

    def transfer_latency_cycles(self, n_words: int, burst: bool = True) -> float:
        """End-to-end latency of one message (occupancy plus propagation)."""
        return self.occupancy_cycles(n_words, burst) + self.one_way_latency_cycles

    @property
    def round_trip_latency_cycles(self) -> float:
        """Latency of a minimal request/response pair (the paper's ~100 cycles)."""
        return 2 * (self.one_way_latency_cycles + self.occupancy_cycles(1, burst=True))

    def bandwidth_bytes_per_fpga_cycle(self) -> float:
        return (self.word_bits / 8) / self.cycles_per_word


@dataclass(frozen=True)
class Message:
    """An inspection view of one in-flight message on a channel direction.

    The dataplane itself keeps messages in a :class:`MessagePool` (flat
    rings of primitives -- no per-message object); ``Message`` objects are
    only materialised by the compatibility accessors (:meth:`ChannelDirection.send`'s
    return value, :meth:`ChannelDirection.deliveries_due`) for tests and
    reporting.  ``words`` is the framed wire content: the header word
    followed by the packed payload words.
    """

    vc_id: int
    words: Tuple[int, ...]
    n_words: int
    delivered_at: float


@dataclass(slots=True)
class ChannelStats:
    """Aggregate channel traffic accounting, reported in benchmark output."""

    messages: int = 0
    words: int = 0
    busy_cycles: float = 0.0
    per_vc_messages: dict = field(default_factory=dict)

    def record(self, vc_id: int, n_words: int, occupancy: float) -> None:
        self.messages += 1
        self.words += n_words
        self.busy_cycles += occupancy
        self.per_vc_messages[vc_id] = self.per_vc_messages.get(vc_id, 0) + 1

    def snapshot(self) -> tuple:
        """Capture the counters as plain data (restorable in place)."""
        return (self.messages, self.words, self.busy_cycles, dict(self.per_vc_messages))

    def restore(self, snap: tuple) -> None:
        """Reset the counters to a snapshot, mutating in place.

        Compiled transport closures pre-bind both this object and its
        ``per_vc_messages`` dict, so neither identity may be replaced.
        """
        self.messages, self.words, self.busy_cycles, per_vc = snap
        self.per_vc_messages.clear()
        self.per_vc_messages.update(per_vc)


class MessagePool:
    """Slotted in-flight message storage: flat rings of primitives.

    Messages on a serialised channel direction are delivered strictly in
    send order, so the in-flight set is a queue.  Instead of a list of
    per-message objects, the pool keeps four parallel rings -- one flat
    ring of ints carrying the packed wire words of every queued message
    back to back, and three per-slot rings (vc id, end-of-message word
    index, delivery time).  Sending appends a handful of primitives;
    delivering advances two head cursors; neither allocates a message
    object, which was the per-message floor the dataplane microbenchmark
    identified.

    The list objects' identities are stable for the life of the pool
    (compaction trims them in place), so compiled transport closures may
    pre-bind their bound methods.
    """

    __slots__ = ("words", "vc_ids", "bounds", "due", "head", "word_head")

    #: Compact the ring prefix once this many delivered slots accumulate.
    COMPACT_THRESHOLD = 1024

    def __init__(self):
        #: Flat ring of packed wire words (header + payload per message).
        self.words: List[int] = []
        #: Per-slot virtual-channel id.
        self.vc_ids: List[int] = []
        #: Per-slot end index into ``words`` (a slot starts at its
        #: predecessor's end; the first live slot starts at ``word_head``).
        self.bounds: List[int] = []
        #: Per-slot delivery time (non-decreasing: the channel serialises).
        self.due: List[float] = []
        #: Index of the first undelivered slot.
        self.head: int = 0
        #: Index of the first undelivered word.
        self.word_head: int = 0

    @property
    def pending(self) -> int:
        return len(self.due) - self.head

    def next_due(self) -> Optional[float]:
        head = self.head
        if head >= len(self.due):
            return None
        return self.due[head]

    def compact(self) -> None:
        """Reclaim the delivered prefix of the rings (in place, amortised O(1)).

        Safe only between transport phases: callers holding word indices
        into a partially drained pool must not interleave with it.  List
        identities are preserved so pre-bound methods stay valid.
        """
        head = self.head
        if not head:
            return
        if head == len(self.due):
            del self.words[:]
            del self.vc_ids[:]
            del self.bounds[:]
            del self.due[:]
            self.head = 0
            self.word_head = 0
        elif head >= self.COMPACT_THRESHOLD and head * 2 >= len(self.due):
            word_head = self.word_head
            del self.words[:word_head]
            del self.vc_ids[:head]
            del self.due[:head]
            del self.bounds[:head]
            for i in range(len(self.bounds)):
                self.bounds[i] -= word_head
            self.head = 0
            self.word_head = 0

    def snapshot(self) -> tuple:
        """Capture the in-flight rings and head cursors as plain data."""
        return (
            list(self.words),
            list(self.vc_ids),
            list(self.bounds),
            list(self.due),
            self.head,
            self.word_head,
        )

    def restore(self, snap: tuple) -> None:
        """Reset the rings to a snapshot.

        Ring contents are replaced by slice assignment -- the list objects'
        identities are part of the pool's contract (compiled transport
        closures pre-bind them), so they are trimmed/refilled in place,
        never rebound.
        """
        words, vc_ids, bounds, due, head, word_head = snap
        self.words[:] = words
        self.vc_ids[:] = vc_ids
        self.bounds[:] = bounds
        self.due[:] = due
        self.head = head
        self.word_head = word_head

    def push(self, vc_id: int, words: Iterable[int], due: float) -> None:
        """Append one framed message (header + payload words) to the rings."""
        self.compact()
        self.words.extend(words)
        self.vc_ids.append(vc_id)
        self.bounds.append(len(self.words))
        self.due.append(due)

    def next_record_words(self) -> int:
        """Word count of the head message (0 when nothing is in flight).

        Carrier endpoints (:mod:`repro.sim.distrib`) use this to check ring
        space *before* committing to :meth:`pop_next`, so a full carrier
        leaves the message queued here instead of needing an un-pop.
        """
        head = self.head
        if head >= len(self.due):
            return 0
        return self.bounds[head] - self.word_head

    def pop_next(self) -> Optional[Tuple[int, List[int], float]]:
        """Remove and return the head message regardless of its due time.

        The producer-side view of a cut link that crosses a process
        boundary: the framed words leave this pool immediately (they travel
        on the carrier ring) and are re-queued, with the same delivery time,
        in the consumer process's replica pool -- so ``due`` keeps meaning
        *simulated* delivery time while the words physically cross now.
        """
        head = self.head
        due = self.due
        if head >= len(due):
            return None
        start, end = self.word_head, self.bounds[head]
        message = (self.vc_ids[head], self.words[start:end], due[head])
        self.head = head + 1
        self.word_head = end
        return message

    def pop_due(self, now: float) -> Optional[Tuple[int, List[int], float]]:
        """Remove and return the next due message as ``(vc_id, words, due)``.

        Reference-path API: the words are copied out (the compiled closures
        instead decode in place from :attr:`words`).  Returns ``None`` when
        the head message is not due (or nothing is in flight).
        """
        head = self.head
        due = self.due
        if head >= len(due) or due[head] > now:
            return None
        start, end = self.word_head, self.bounds[head]
        message = (self.vc_ids[head], self.words[start:end], due[head])
        self.head = head + 1
        self.word_head = end
        return message


class ChannelDirection:
    """One direction of the physical channel: a shared, serialised resource.

    In-flight traffic lives in the direction's :class:`MessagePool`; what
    crosses the link is the packed wire words of each message (header +
    payload), exactly the byte stream the generated interfaces move.
    """

    __slots__ = ("params", "name", "burst", "busy_until", "pool", "stats")

    def __init__(self, params: ChannelParams, name: str, burst: bool = True):
        self.params = params
        self.name = name
        self.burst = burst
        self.busy_until: float = 0.0
        self.pool = MessagePool()
        self.stats = ChannelStats()

    def snapshot(self) -> tuple:
        """Capture the direction's mutable state (arbitration, pool, stats)."""
        return (self.busy_until, self.pool.snapshot(), self.stats.snapshot())

    def restore(self, snap: tuple) -> None:
        """Reset the direction to a snapshot; pool and stats objects (and the
        pool's ring lists) keep their identities for pre-bound closures."""
        busy_until, pool_snap, stats_snap = snap
        self.busy_until = busy_until
        self.pool.restore(pool_snap)
        self.stats.restore(stats_snap)

    def send_words(
        self,
        vc_id: int,
        words: Sequence[int],
        now: float,
        n_words: Optional[int] = None,
    ) -> float:
        """Enqueue one framed message at ``now``; returns its delivery time.

        ``n_words`` defaults to ``len(words)`` (the wire charge of the
        message); passing a different count is allowed for tests modelling
        oversized transfers.
        """
        if n_words is None:
            n_words = len(words)
        start = max(now, self.busy_until)
        occupancy = self.params.occupancy_cycles(n_words, self.burst)
        delivered = start + occupancy + self.params.one_way_latency_cycles
        self.busy_until = start + occupancy
        self.pool.push(vc_id, words, delivered)
        self.stats.record(vc_id, n_words, occupancy)
        return delivered

    def send(
        self,
        vc_id: int,
        words: Sequence[int],
        n_words: Optional[int] = None,
        now: float = 0.0,
    ) -> Message:
        """Compatibility send: enqueue framed ``words`` and return a view."""
        if n_words is None:
            n_words = len(words)
        delivered = self.send_words(vc_id, words, now, n_words)
        return Message(vc_id, tuple(words), n_words, delivered)

    def deliveries_due(self, now: float) -> List[Message]:
        """Remove and return every message whose delivery time has arrived.

        The direction serialises transfers (each send starts no earlier
        than ``busy_until``), so the pool is ordered by delivery time and
        the due messages are a prefix.  Compatibility API: materialises
        :class:`Message` views; the transport dataplane reads the pool
        rings directly instead.
        """
        due: List[Message] = []
        pool = self.pool
        while True:
            slot = pool.pop_due(now)
            if slot is None:
                return due
            vc_id, words, delivered_at = slot
            due.append(Message(vc_id, tuple(words), len(words), delivered_at))

    def next_delivery_time(self) -> Optional[float]:
        return self.pool.next_due()

    @property
    def pending(self) -> int:
        return self.pool.pending


class DuplexChannel:
    """A full-duplex channel: one direction per transfer sense (SW→HW, HW→SW).

    This is the historical two-partition view.  It can own its two
    :class:`ChannelDirection` resources (legacy constructor) or be a view
    over two directions that live in a :class:`Topology`
    (:meth:`from_directions`), which is how the two-partition compatibility
    wrapper in :mod:`repro.sim.cosim` exposes its fabric links.
    """

    def __init__(self, params: ChannelParams, burst: bool = True):
        self.params = params
        self.to_hw = ChannelDirection(params, "to_hw", burst)
        self.to_sw = ChannelDirection(params, "to_sw", burst)

    @classmethod
    def from_directions(
        cls, to_hw: ChannelDirection, to_sw: ChannelDirection
    ) -> "DuplexChannel":
        """A duplex view over two existing directions (no new resources)."""
        view = cls.__new__(cls)
        view.params = to_hw.params
        view.to_hw = to_hw
        view.to_sw = to_sw
        return view

    def direction(self, towards_hw: bool) -> ChannelDirection:
        return self.to_hw if towards_hw else self.to_sw

    def next_delivery_time(self) -> Optional[float]:
        times = [
            t
            for t in (self.to_hw.next_delivery_time(), self.to_sw.next_delivery_time())
            if t is not None
        ]
        return min(times) if times else None

    @property
    def total_messages(self) -> int:
        return self.to_hw.stats.messages + self.to_sw.stats.messages

    @property
    def total_words(self) -> int:
        return self.to_hw.stats.words + self.to_sw.stats.words


# --------------------------------------------------------------------------
# N-domain link topologies
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Link:
    """Static description of one point-to-point link between two domains.

    A link is unidirectional (one serialised bus resource); a full-duplex
    connection between two domains is two links.  Per-link parameters let a
    topology mix fabrics of different width/latency (e.g. an on-board
    LocalLink next to a chip-to-chip serial lane)."""

    src: str
    dst: str
    params: ChannelParams
    burst: bool = True

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"


class Topology:
    """A routed set of point-to-point links between named domains.

    The two-partition co-simulation is the degenerate topology
    ``{SW->HW, HW->SW}``; an N-domain fabric registers one link per
    (producer domain, consumer domain) pair that its synchronizer cut
    actually uses.  Each link is an independent serialised resource (its own
    :class:`ChannelDirection`), so traffic between one pair of domains never
    occupies another pair's bus -- the property that makes sharding
    independent partition groups sound.

    Links iterate in registration order, which the simulator relies on for
    deterministic delivery sweeps.
    """

    def __init__(self):
        self._links: Dict[Tuple[str, str], Link] = {}
        self._directions: Dict[Tuple[str, str], ChannelDirection] = {}
        #: Cached pool list for the next-delivery sweep (rebuilt on add_link).
        self._pools: Optional[List[MessagePool]] = None

    def add_link(
        self,
        src: str,
        dst: str,
        params: ChannelParams,
        burst: bool = True,
        name: Optional[str] = None,
    ) -> ChannelDirection:
        """Register a unidirectional ``src -> dst`` link; returns its direction."""
        key = (src, dst)
        if key in self._links:
            raise ValueError(f"topology already has a link {src}->{dst}")
        link = Link(src, dst, params, burst)
        self._links[key] = link
        direction = ChannelDirection(params, name or link.name, burst)
        self._directions[key] = direction
        self._pools = None
        return direction

    def add_duplex(
        self, a: str, b: str, params: ChannelParams, burst: bool = True
    ) -> Tuple[ChannelDirection, ChannelDirection]:
        """Register both directions between ``a`` and ``b``."""
        return (
            self.add_link(a, b, params, burst),
            self.add_link(b, a, params, burst),
        )

    def has_link(self, src: str, dst: str) -> bool:
        return (src, dst) in self._links

    def link(self, src: str, dst: str) -> Link:
        return self._links[(src, dst)]

    def direction(self, src: str, dst: str) -> ChannelDirection:
        """The serialised resource carrying ``src -> dst`` traffic."""
        try:
            return self._directions[(src, dst)]
        except KeyError:
            raise KeyError(
                f"topology has no link {src}->{dst}; registered: "
                f"{sorted(self._links)}"
            ) from None

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    @property
    def directions(self) -> List[ChannelDirection]:
        return list(self._directions.values())

    def __iter__(self) -> Iterator[ChannelDirection]:
        return iter(self._directions.values())

    def __len__(self) -> int:
        return len(self._links)

    def next_delivery_time(self) -> Optional[float]:
        pools = self._pools
        if pools is None:
            pools = self._pools = [d.pool for d in self._directions.values()]
        best: Optional[float] = None
        for pool in pools:
            head = pool.head
            due = pool.due
            if head < len(due) and (best is None or due[head] < best):
                best = due[head]
        return best

    @property
    def total_messages(self) -> int:
        return sum(d.stats.messages for d in self._directions.values())

    @property
    def total_words(self) -> int:
        return sum(d.stats.words for d in self._directions.values())

    @property
    def total_busy_cycles(self) -> float:
        return sum(d.stats.busy_cycles for d in self._directions.values())

    @classmethod
    def for_routes(
        cls,
        routes: Iterable[Tuple[str, str]],
        default_params: ChannelParams,
        burst: bool = True,
        link_params: Optional[Dict[Tuple[str, str], ChannelParams]] = None,
    ) -> "Topology":
        """Build a topology with one link per (src, dst) route.

        ``link_params`` overrides the channel parameters of individual links
        (latency/width asymmetry between domain pairs); every other route
        uses ``default_params``.  Duplicate routes are collapsed.
        """
        topo = cls()
        overrides = link_params or {}
        for src, dst in routes:
            if not topo.has_link(src, dst):
                topo.add_link(src, dst, overrides.get((src, dst), default_params), burst)
        return topo
