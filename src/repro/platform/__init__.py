"""Physical-platform substrate: channels, marshaling and LIBDN flow control."""
