"""LIBDN virtual channels: credit-based flow control over the shared channel.

The partitioned program's synchronizers are LIBDN FIFOs (Latency-Insensitive
Bounded Dataflow Network FIFOs, Section 4.3).  Several of them share one
physical channel, so the generated infrastructure multiplexes them onto
*virtual channels* with credit-based flow control: a producer-side endpoint
may only launch a message when the consumer-side endpoint is known to have
buffer space, which guarantees that one blocked synchronizer can never cause
head-of-line blocking for the others and that no new deadlocks are introduced
(Section 4.4).

The :class:`VirtualChannel` objects here carry the bookkeeping; the actual
movement of data between partition stores is performed by the co-simulator's
transport layer (:mod:`repro.sim.cosim`), which consults ``can_send`` before
launching each transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.synchronizers import SyncFifo
from repro.core.types import BCLType
from repro.platform.marshal import MessageLayout, layout_for, validate_wire_format


@dataclass(slots=True)
class VirtualChannelStats:
    """Per-virtual-channel traffic counters."""

    messages_sent: int = 0
    messages_delivered: int = 0
    words_sent: int = 0
    stalled_on_credit: int = 0


class VirtualChannel:
    """Flow-control state for one synchronizer mapped onto the physical channel."""

    __slots__ = (
        "vc_id",
        "sync",
        "word_bits",
        "credits",
        "in_flight",
        "stats",
        "layout",
        "words_per_element",
        "encode",
        "encode_batch",
        "decode",
        "decode_run",
    )

    def __init__(self, vc_id: int, sync: SyncFifo, word_bits: int = 32):
        self.vc_id = vc_id
        self.sync = sync
        self.word_bits = word_bits
        #: Credits available == free slots believed to exist at the consumer side.
        self.credits = sync.depth
        #: Messages launched but not yet delivered (consume a credit each).
        self.in_flight = 0
        self.stats = VirtualChannelStats()
        #: The compiled wire format of this channel's element type -- the
        #: single layout the transport dataplane and the generated
        #: interfaces both derive their packing from.
        self.layout: MessageLayout = layout_for(sync.ty, word_bits)
        #: Channel words per transferred element, including the message header
        #: (fixed by the element type; computed once, it sits on the per-message
        #: hot path of the transport loop).
        self.words_per_element = self.layout.message_words
        #: Compiled framed-message encoders/decoders (hot transport path).
        self.encode = self.layout.encoder(vc_id)
        self.encode_batch = self.layout.batch_encoder(vc_id)
        self.decode = self.layout.decoder()
        self.decode_run = self.layout.run_decoder()

    @property
    def element_type(self) -> BCLType:
        return self.sync.ty

    def can_send(self) -> bool:
        """Whether launching one more element would respect the consumer's buffering."""
        return self.credits > 0

    def snapshot(self) -> tuple:
        """Capture the channel's flow-control state and traffic counters."""
        s = self.stats
        return (
            self.credits,
            self.in_flight,
            s.messages_sent,
            s.messages_delivered,
            s.words_sent,
            s.stalled_on_credit,
        )

    def restore(self, snap: tuple) -> None:
        """Reset to a snapshot; the ``stats`` object keeps its identity
        (compiled transport pumps pre-bind it)."""
        s = self.stats
        (
            self.credits,
            self.in_flight,
            s.messages_sent,
            s.messages_delivered,
            s.words_sent,
            s.stalled_on_credit,
        ) = snap

    def note_credit_stall(self) -> None:
        self.stats.stalled_on_credit += 1

    def on_send(self) -> None:
        if self.credits <= 0:
            raise RuntimeError(
                f"virtual channel {self.vc_id} ({self.sync.name}) sent without credit"
            )
        self.credits -= 1
        self.in_flight += 1
        self.stats.messages_sent += 1
        self.stats.words_sent += self.words_per_element

    def on_deliver(self) -> None:
        self.in_flight -= 1
        self.stats.messages_delivered += 1

    def on_credit_return(self, count: int = 1) -> None:
        """The consumer dequeued ``count`` elements; its buffer space is free again."""
        self.credits = min(self.sync.depth, self.credits + count)

    def __repr__(self) -> str:
        return (
            f"VirtualChannel(vc={self.vc_id}, sync={self.sync.name}, "
            f"credits={self.credits}, in_flight={self.in_flight})"
        )


class VirtualChannelTable:
    """Assignment of virtual-channel ids to the synchronizers of a partitioned design."""

    def __init__(
        self,
        syncs: List[SyncFifo],
        word_bits: int = 32,
        word_bits_by_sync: Optional[Dict[SyncFifo, int]] = None,
    ):
        """``word_bits_by_sync`` overrides the word width per synchronizer --
        in an N-domain topology each sync is marshalled for the width of the
        particular link its route is mapped onto.

        The assignment is validated against the wire format up front: the
        global vc-id space must fit ``VC_ID_BITS`` and every channel's
        payload length and header must fit its link's word width, otherwise
        a :class:`~repro.core.errors.WireFormatError` is raised here -- at
        build time -- rather than corrupting headers mid-simulation."""
        self.channels: Dict[SyncFifo, VirtualChannel] = {}
        self._by_id: Dict[int, VirtualChannel] = {}
        overrides = word_bits_by_sync or {}
        for vc_id, sync in enumerate(syncs):
            vc = VirtualChannel(vc_id, sync, overrides.get(sync, word_bits))
            validate_wire_format(
                len(syncs),
                vc.layout.payload_words,
                vc.word_bits,
                context=f"synchronizer {sync.name}",
            )
            self.channels[sync] = vc
            self._by_id[vc_id] = vc

    def channel_for(self, sync: SyncFifo) -> VirtualChannel:
        return self.channels[sync]

    def by_id(self, vc_id: int) -> VirtualChannel:
        try:
            return self._by_id[vc_id]
        except KeyError:
            raise KeyError(f"no virtual channel with id {vc_id}") from None

    @property
    def id_table(self) -> Dict[int, VirtualChannel]:
        """The vc_id -> channel mapping (used by compiled delivery closures)."""
        return self._by_id

    def __iter__(self):
        return iter(self.channels.values())

    def __len__(self) -> int:
        return len(self.channels)
