"""A simple Verilog lowering of the generated BSV (illustrative RTL output).

The real flow hands the generated BSV to Bluespec's ``bsc``; this module
provides the last step of the reproduction's source-generation pipeline by
lowering each hardware rule into an always-block skeleton whose enable is the
rule's lifted guard.  It exists so the examples can show the complete
three-output compile (C++ / Verilog / interface) end to end; it is not a
synthesis tool.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.analysis import rule_write_set
from repro.core.guards import is_true_const, lift_rule
from repro.core.module import Design
from repro.core.partition import PartitionedProgram


def generate_verilog(design: Design, program: Optional[PartitionedProgram] = None) -> str:
    """Generate an RTL skeleton for a hardware partition."""
    rules = program.rules if program is not None else design.all_rules()
    registers = (
        program.registers
        if program is not None and program.registers
        else design.all_registers()
    )

    lines: List[str] = [
        "// Generated RTL skeleton (lowered from the BSV backend output)",
        f"module {design.name}_hw (",
        "  input  wire clk,",
        "  input  wire rst_n",
        ");",
        "",
    ]
    for reg in registers:
        lines.append(f"  reg [31:0] {reg.full_name.replace('.', '_')};")
    lines.append("")
    for rule in rules:
        _body, guard = lift_rule(rule)
        enable = "1'b1" if is_true_const(guard) else f"/* {guard!r} */ can_fire_{rule.name}"
        lines.append(f"  // rule {rule.full_name}")
        lines.append(f"  wire will_fire_{rule.name} = {enable};")
        lines.append("  always @(posedge clk) begin")
        lines.append(f"    if (will_fire_{rule.name}) begin")
        for reg in sorted(rule_write_set(rule), key=lambda r: r.full_name):
            lines.append(
                f"      {reg.full_name.replace('.', '_')} <= /* next value from rule datapath */ "
                f"{reg.full_name.replace('.', '_')};"
            )
        lines.append("    end")
        lines.append("  end")
        lines.append("")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
