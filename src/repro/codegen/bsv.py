"""BSV (Bluespec SystemVerilog) generation for hardware partitions (Section 6.4).

With the exception of dynamic loops and sequential composition, kernel BCL
translates directly into BSV; the BSV compiler then produces Verilog through
the mature operation-centric flow the paper builds on.  This generator emits
the BSV module for a hardware partition: state declarations, one ``rule``
per BCL rule with its lifted guard, and the synchronizer endpoints as
interface FIFOs.  Dynamic loops are rejected, exactly as the paper notes
they must be.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, List, Optional, Sequence, Union

from repro.core.action import (
    Action,
    IfA,
    LetA,
    LocalGuard,
    Loop,
    MethodCallA,
    NoAction,
    Par,
    RegWrite,
    Seq,
    WhenA,
)
from repro.core.errors import ElaborationError
from repro.core.expr import (
    BinOp,
    Const,
    Expr,
    FieldSelect,
    KernelCall,
    LetE,
    MethodCallE,
    Mux,
    RegRead,
    UnOp,
    Var,
    WhenE,
)
from repro.core.guards import is_true_const, lift_rule
from repro.core.module import Design, Module, Register, Rule
from repro.core.partition import PartitionedProgram
from repro.core.primitives import Fifo
from repro.core.synchronizers import SyncFifo

#: Rename map threaded through the renderers: generated identifier of a
#: register or module instance.  Anything absent keeps its bare name.
NameMap = Dict[Union[Register, Module], str]


def _name_of(obj: Union[Register, Module], names: Optional[NameMap]) -> str:
    if names is None:
        return obj.name
    return names.get(obj, obj.name)


def _bsv_expr(expr: Expr, names: Optional[NameMap] = None) -> str:
    if isinstance(expr, Const):
        if isinstance(expr.value, bool):
            return "True" if expr.value else "False"
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name.replace("$", "_")
    if isinstance(expr, RegRead):
        return _name_of(expr.reg, names)
    if isinstance(expr, UnOp):
        return f"({expr.op}{_bsv_expr(expr.operand, names)})"
    if isinstance(expr, BinOp):
        return f"({_bsv_expr(expr.left, names)} {expr.op} {_bsv_expr(expr.right, names)})"
    if isinstance(expr, Mux):
        return (
            f"({_bsv_expr(expr.cond, names)} ? {_bsv_expr(expr.then, names)} : "
            f"{_bsv_expr(expr.orelse, names)})"
        )
    if isinstance(expr, WhenE):
        return f"when({_bsv_expr(expr.guard, names)}, {_bsv_expr(expr.body, names)})"
    if isinstance(expr, LetE):
        return (
            f"(let {expr.name.replace('$', '_')} = {_bsv_expr(expr.value, names)} "
            f"in {_bsv_expr(expr.body, names)})"
        )
    if isinstance(expr, FieldSelect):
        if isinstance(expr.field, int):
            return f"{_bsv_expr(expr.operand, names)}[{expr.field}]"
        return f"{_bsv_expr(expr.operand, names)}.{expr.field}"
    if isinstance(expr, KernelCall):
        args = ", ".join(_bsv_expr(a, names) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, MethodCallE):
        args = ", ".join(_bsv_expr(a, names) for a in expr.args)
        return f"{_name_of(expr.instance, names)}.{expr.method}({args})"
    raise TypeError(f"cannot render expression {expr!r} as BSV")


def _bsv_action(action: Action, indent: str, names: Optional[NameMap] = None) -> List[str]:
    lines: List[str] = []
    if isinstance(action, NoAction):
        lines.append(f"{indent}noAction;")
        return lines
    if isinstance(action, RegWrite):
        lines.append(f"{indent}{_name_of(action.reg, names)} <= {_bsv_expr(action.value, names)};")
        return lines
    if isinstance(action, IfA):
        lines.append(f"{indent}if ({_bsv_expr(action.cond, names)}) begin")
        lines.extend(_bsv_action(action.then, indent + "  ", names))
        if action.orelse is not None:
            lines.append(f"{indent}end else begin")
            lines.extend(_bsv_action(action.orelse, indent + "  ", names))
        lines.append(f"{indent}end")
        return lines
    if isinstance(action, WhenA):
        lines.append(f"{indent}// when ({_bsv_expr(action.guard, names)})")
        lines.extend(_bsv_action(action.body, indent, names))
        return lines
    if isinstance(action, Par):
        for sub in action.actions:
            lines.extend(_bsv_action(sub, indent, names))
        return lines
    if isinstance(action, Seq):
        raise ElaborationError(
            "sequential composition cannot be synthesised into a single-cycle BSV rule "
            "(Section 6.4); restructure the rule or keep it in the software partition"
        )
    if isinstance(action, LetA):
        lines.append(
            f"{indent}let {action.name.replace('$', '_')} = {_bsv_expr(action.value, names)};"
        )
        lines.extend(_bsv_action(action.body, indent, names))
        return lines
    if isinstance(action, Loop):
        raise ElaborationError(
            "loops with dynamic bounds cannot execute in a single clock cycle and are not "
            "supported by the BSV backend (Section 6.4)"
        )
    if isinstance(action, LocalGuard):
        lines.append(f"{indent}// localGuard")
        lines.extend(_bsv_action(action.body, indent, names))
        return lines
    if isinstance(action, MethodCallA):
        args = ", ".join(_bsv_expr(a, names) for a in action.args)
        lines.append(f"{indent}{_name_of(action.instance, names)}.{action.method}({args});")
        return lines
    raise TypeError(f"cannot render action {action!r} as BSV")


def generate_rule(rule: Rule, names: Optional[NameMap] = None) -> str:
    """Generate one BSV ``rule`` with its lifted guard as the rule condition."""
    body, guard = lift_rule(rule)
    condition = "" if is_true_const(guard) else f" ({_bsv_expr(guard, names)})"
    lines = [f"rule {rule.name}{condition};"]
    lines.extend(_bsv_action(body, "  ", names))
    lines.append("endrule")
    return "\n".join(lines)


def _ident(text: str) -> str:
    """Sanitize ``text`` into a BSV identifier (deterministically)."""
    out = re.sub(r"[^0-9A-Za-z_]", "_", text)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _partition_name_map(
    modules: List[Module], endpoints: Sequence[Module] = ()
) -> NameMap:
    """Collision-free identifiers for a partition's flat module scope.

    A BSV partition module declares every register and FIFO of every BCL
    module -- plus the partition's synchronizer endpoint FIFOs
    (``endpoints``) -- at one flat scope, so two declarations sharing a
    (sanitized) name would emit duplicate ``Reg#``/``FIFO#`` identifiers.
    Names that are unique keep their bare form; colliding names are
    qualified by their owning module (falling back to the full
    dotted-path-as-identifier, then a numeric suffix -- deterministically).
    """
    names: NameMap = {}
    used: Dict[str, int] = {}
    regs = [(m, r) for m in modules for r in m.registers]
    fifos = [m for m in modules if isinstance(m, Fifo)] + list(endpoints)
    bare = Counter([_ident(r.name) for _, r in regs] + [_ident(m.name) for m in fifos])

    def allocate(obj: Union[Register, Module], owner_qualified: str) -> None:
        candidates = [_ident(obj.name)] if bare[_ident(obj.name)] == 1 else []
        candidates += [_ident(owner_qualified), _ident(obj.full_name.replace(".", "_"))]
        for cand in candidates:
            if cand not in used:
                used[cand] = 1
                names[obj] = cand
                return
        stem = candidates[-1]
        used[stem] += 1
        names[obj] = f"{stem}_{used[stem]}"

    for module, reg in regs:
        allocate(reg, f"{module.name}_{reg.name}")
    for module in fifos:
        parent = module.parent.name if module.parent is not None else module.name
        allocate(module, f"{parent}_{module.name}")
    return names


def _endpoint_lines(program: PartitionedProgram, spec, names: NameMap) -> List[str]:
    """Synchronizer endpoint declarations, resolved against the link-granular spec.

    For every synchronizer endpoint the partition owns, name the
    point-to-point link its route is mapped onto and the channel's slot in
    that link's own virtual-channel numbering -- the contract the link's
    transactor pair implements
    (:meth:`~repro.codegen.interface.InterfaceSpec.endpoint_annotation`).
    Declared identifiers come from the partition's collision map, so an
    endpoint can never shadow a register or FIFO of the same name.
    """
    lines: List[str] = []
    endpoints = [(s, "send", "out") for s in program.produces_to] + [
        (s, "recv", "in") for s in program.consumes_from
    ]
    for sync, role, sense in endpoints:
        annotation = spec.endpoint_annotation(sync.name, role)
        if annotation is None:
            continue
        lines.append(f"  // {sense}-endpoint {sync.name}: {annotation}")
        lines.append(
            f"  FIFO#({sync.ty!r}) {_name_of(sync, names)} <- mkSizedFIFO({sync.depth});"
        )
    return lines


def generate_hw_partition(
    design: Design,
    program: Optional[PartitionedProgram] = None,
    spec=None,
    partitioning=None,
    domain=None,
) -> str:
    """Generate the BSV module for one hardware partition.

    ``program`` selects the domain slice (whole design when ``None``);
    alternatively pass ``partitioning`` and a ``domain`` to resolve the
    slice here.  With an :class:`~repro.codegen.interface.InterfaceSpec` in
    ``spec`` the partition's synchronizer endpoints are declared against the
    link-granular interface (which link, which per-link virtual channel,
    which transactor).  Register and FIFO declarations share one flat module
    scope, so colliding names are qualified by their owning module
    (:func:`_partition_name_map`) -- consistently in declarations and rule
    bodies.
    """
    if program is None and partitioning is not None and domain is not None:
        program = partitioning.program(domain)
    rules = program.rules if program is not None else design.all_rules()
    modules = (
        program.modules
        if program is not None and program.modules
        else [m for m in design.all_modules()]
    )
    endpoints: List[Module] = []
    if spec is not None and program is not None:
        endpoints = list(program.produces_to) + list(program.consumes_from)
    names = _partition_name_map(modules, endpoints)
    partition_label = f"{design.name}_{program.name}" if program is not None else design.name

    lines = [
        "// Generated by the BCL hardware compiler (BSV backend)",
        f"// design: {design.name}",
        "import FIFO::*;",
        "import Vector::*;",
        "",
        f"module mk{partition_label.title().replace('_', '')}HwPartition (Empty);",
    ]
    for module in modules:
        for reg in module.registers:
            lines.append(f"  Reg#({reg.ty!r}) {names[reg]} <- mkReg(?);")
        if isinstance(module, SyncFifo) and module.is_cross_domain:
            lines.append(f"  // synchronizer endpoint {module.name} (mapped by the interface generator)")
        elif isinstance(module, Fifo):
            lines.append(f"  FIFO#({module.ty!r}) {names[module]} <- mkSizedFIFO({module.depth});")
    if spec is not None and program is not None:
        lines.extend(_endpoint_lines(program, spec, names))
    lines.append("")
    for rule in rules:
        rule_text = generate_rule(rule, names)
        lines.extend("  " + line for line in rule_text.splitlines())
        lines.append("")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
