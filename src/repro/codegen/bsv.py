"""BSV (Bluespec SystemVerilog) generation for hardware partitions (Section 6.4).

With the exception of dynamic loops and sequential composition, kernel BCL
translates directly into BSV; the BSV compiler then produces Verilog through
the mature operation-centric flow the paper builds on.  This generator emits
the BSV module for a hardware partition: state declarations, one ``rule``
per BCL rule with its lifted guard, and the synchronizer endpoints as
interface FIFOs.  Dynamic loops are rejected, exactly as the paper notes
they must be.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, List, Optional, Sequence, Union

from repro.core.action import (
    Action,
    IfA,
    LetA,
    LocalGuard,
    Loop,
    MethodCallA,
    NoAction,
    Par,
    RegWrite,
    Seq,
    WhenA,
)
from repro.core.errors import ElaborationError
from repro.core.expr import (
    BinOp,
    Const,
    Expr,
    FieldSelect,
    KernelCall,
    LetE,
    MethodCallE,
    Mux,
    RegRead,
    UnOp,
    Var,
    WhenE,
)
from repro.core.guards import is_true_const, lift_rule
from repro.core.module import Design, Module, Register, Rule
from repro.core.partition import PartitionedProgram
from repro.core.primitives import Fifo
from repro.core.synchronizers import SyncFifo
from repro.platform.marshal import LENGTH_BITS, VC_ID_BITS, wire_header

#: Rename map threaded through the renderers: generated identifier of a
#: register or module instance.  Anything absent keeps its bare name.
NameMap = Dict[Union[Register, Module], str]


def _name_of(obj: Union[Register, Module], names: Optional[NameMap]) -> str:
    if names is None:
        return obj.name
    return names.get(obj, obj.name)


def _bsv_expr(expr: Expr, names: Optional[NameMap] = None) -> str:
    if isinstance(expr, Const):
        if isinstance(expr.value, bool):
            return "True" if expr.value else "False"
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name.replace("$", "_")
    if isinstance(expr, RegRead):
        return _name_of(expr.reg, names)
    if isinstance(expr, UnOp):
        return f"({expr.op}{_bsv_expr(expr.operand, names)})"
    if isinstance(expr, BinOp):
        return f"({_bsv_expr(expr.left, names)} {expr.op} {_bsv_expr(expr.right, names)})"
    if isinstance(expr, Mux):
        return (
            f"({_bsv_expr(expr.cond, names)} ? {_bsv_expr(expr.then, names)} : "
            f"{_bsv_expr(expr.orelse, names)})"
        )
    if isinstance(expr, WhenE):
        return f"when({_bsv_expr(expr.guard, names)}, {_bsv_expr(expr.body, names)})"
    if isinstance(expr, LetE):
        return (
            f"(let {expr.name.replace('$', '_')} = {_bsv_expr(expr.value, names)} "
            f"in {_bsv_expr(expr.body, names)})"
        )
    if isinstance(expr, FieldSelect):
        if isinstance(expr.field, int):
            return f"{_bsv_expr(expr.operand, names)}[{expr.field}]"
        return f"{_bsv_expr(expr.operand, names)}.{expr.field}"
    if isinstance(expr, KernelCall):
        args = ", ".join(_bsv_expr(a, names) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, MethodCallE):
        args = ", ".join(_bsv_expr(a, names) for a in expr.args)
        return f"{_name_of(expr.instance, names)}.{expr.method}({args})"
    raise TypeError(f"cannot render expression {expr!r} as BSV")


def _bsv_action(action: Action, indent: str, names: Optional[NameMap] = None) -> List[str]:
    lines: List[str] = []
    if isinstance(action, NoAction):
        lines.append(f"{indent}noAction;")
        return lines
    if isinstance(action, RegWrite):
        lines.append(f"{indent}{_name_of(action.reg, names)} <= {_bsv_expr(action.value, names)};")
        return lines
    if isinstance(action, IfA):
        lines.append(f"{indent}if ({_bsv_expr(action.cond, names)}) begin")
        lines.extend(_bsv_action(action.then, indent + "  ", names))
        if action.orelse is not None:
            lines.append(f"{indent}end else begin")
            lines.extend(_bsv_action(action.orelse, indent + "  ", names))
        lines.append(f"{indent}end")
        return lines
    if isinstance(action, WhenA):
        lines.append(f"{indent}// when ({_bsv_expr(action.guard, names)})")
        lines.extend(_bsv_action(action.body, indent, names))
        return lines
    if isinstance(action, Par):
        for sub in action.actions:
            lines.extend(_bsv_action(sub, indent, names))
        return lines
    if isinstance(action, Seq):
        raise ElaborationError(
            "sequential composition cannot be synthesised into a single-cycle BSV rule "
            "(Section 6.4); restructure the rule or keep it in the software partition"
        )
    if isinstance(action, LetA):
        lines.append(
            f"{indent}let {action.name.replace('$', '_')} = {_bsv_expr(action.value, names)};"
        )
        lines.extend(_bsv_action(action.body, indent, names))
        return lines
    if isinstance(action, Loop):
        raise ElaborationError(
            "loops with dynamic bounds cannot execute in a single clock cycle and are not "
            "supported by the BSV backend (Section 6.4)"
        )
    if isinstance(action, LocalGuard):
        lines.append(f"{indent}// localGuard")
        lines.extend(_bsv_action(action.body, indent, names))
        return lines
    if isinstance(action, MethodCallA):
        args = ", ".join(_bsv_expr(a, names) for a in action.args)
        lines.append(f"{indent}{_name_of(action.instance, names)}.{action.method}({args});")
        return lines
    raise TypeError(f"cannot render action {action!r} as BSV")


def generate_rule(rule: Rule, names: Optional[NameMap] = None) -> str:
    """Generate one BSV ``rule`` with its lifted guard as the rule condition."""
    body, guard = lift_rule(rule)
    condition = "" if is_true_const(guard) else f" ({_bsv_expr(guard, names)})"
    lines = [f"rule {rule.name}{condition};"]
    lines.extend(_bsv_action(body, "  ", names))
    lines.append("endrule")
    return "\n".join(lines)


def _ident(text: str) -> str:
    """Sanitize ``text`` into a BSV identifier (deterministically)."""
    out = re.sub(r"[^0-9A-Za-z_]", "_", text)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _partition_name_map(
    modules: List[Module], endpoints: Sequence[Module] = ()
) -> NameMap:
    """Collision-free identifiers for a partition's flat module scope.

    A BSV partition module declares every register and FIFO of every BCL
    module -- plus the partition's synchronizer endpoint FIFOs
    (``endpoints``) -- at one flat scope, so two declarations sharing a
    (sanitized) name would emit duplicate ``Reg#``/``FIFO#`` identifiers.
    Names that are unique keep their bare form; colliding names are
    qualified by their owning module (falling back to the full
    dotted-path-as-identifier, then a numeric suffix -- deterministically).
    """
    names: NameMap = {}
    used: Dict[str, int] = {}
    regs = [(m, r) for m in modules for r in m.registers]
    fifos = [m for m in modules if isinstance(m, Fifo)] + list(endpoints)
    bare = Counter([_ident(r.name) for _, r in regs] + [_ident(m.name) for m in fifos])

    def allocate(obj: Union[Register, Module], owner_qualified: str) -> None:
        candidates = [_ident(obj.name)] if bare[_ident(obj.name)] == 1 else []
        candidates += [_ident(owner_qualified), _ident(obj.full_name.replace(".", "_"))]
        for cand in candidates:
            if cand not in used:
                used[cand] = 1
                names[obj] = cand
                return
        stem = candidates[-1]
        used[stem] += 1
        names[obj] = f"{stem}_{used[stem]}"

    for module, reg in regs:
        allocate(reg, f"{module.name}_{reg.name}")
    for module in fifos:
        parent = module.parent.name if module.parent is not None else module.name
        allocate(module, f"{parent}_{module.name}")
    return names


# --------------------------------------------------------------------------
# BSV marshaling rules (rendered from the canonical MessageLayout)
# --------------------------------------------------------------------------


def generate_marshal_rules(
    channels: Sequence, link_fifo: str, idents, elem_fifo=None
) -> List[str]:
    """The BSV pack rules of one outbound link's channels.

    Two rules per channel: the header rule loads one element from the
    endpoint FIFO into a shift register and emits the (constant) header
    word -- the same :func:`~repro.platform.marshal.wire_header` value the
    simulator stamps -- and the word rule streams the payload onto the link
    least-significant word first, shifting as it goes.  This is the real
    marshaling loop of Section 4.4, not a structural stub.

    When several channels share the link, an **explicit round-robin
    arbiter** serialises them: a grant register names the channel that owns
    the link word stream, each header rule is guarded by the grant, the
    grant passes on as a message's last payload word leaves, and a granted
    channel with nothing queued yields its turn -- so the arbitration
    *policy* lives in the emitted text instead of being implicit in BSV
    rule order.  A single-channel link needs no arbiter and renders exactly
    as before.

    ``elem_fifo`` maps a channel to its endpoint FIFO identifier (default
    ``<macro>_out``, the transactor convention; the caller declares those
    FIFOs -- as ``FIFOF`` when arbitrated, for the yield rule's
    ``notEmpty``).
    """
    if elem_fifo is None:
        elem_fifo = lambda ch: f"{ch.macro}_out"  # noqa: E731
    lines: List[str] = []
    arbitrated = len(channels) > 1
    grant = None
    if arbitrated:
        grant_bits = max(1, (len(channels) - 1).bit_length())
        grant = idents.claim("tx_grant", "link tx")
        lines += [
            f"  // Round-robin arbiter: {grant} names the channel owning the link",
            "  // word stream; it passes on with a message's last payload word, and",
            "  // an idle granted channel yields its turn.",
            f"  Reg#(Bit#({grant_bits})) {grant} <- mkReg(0);",
        ]
    for slot, ch in enumerate(channels):
        wb = ch.word_bits
        payload_bits = ch.payload_words * wb
        header = wire_header(ch.vc_id, ch.payload_words)
        shift = idents.claim(f"{ch.macro}_mshift", ch.name)
        left = idents.claim(f"{ch.macro}_mleft", ch.name)
        hdr_rule = idents.claim(f"marshal_{ch.macro}_header", ch.name)
        word_rule = idents.claim(f"marshal_{ch.macro}_word", ch.name)
        fifo = elem_fifo(ch)
        hdr_guard = f"{grant} == {slot} && {left} == 0" if arbitrated else f"{left} == 0"
        lines += [
            f"  Reg#(Bit#({payload_bits})) {shift} <- mkReg(0);",
            f"  Reg#(Bit#({LENGTH_BITS})) {left} <- mkReg(0);",
            f"  rule {hdr_rule} ({hdr_guard});",
            f"    {link_fifo}.enq({wb}'h{header:X});"
            f"  // header: wire vc {ch.vc_id}, length {ch.payload_words}",
            f"    {shift} <= pack({fifo}.first);",
            f"    {fifo}.deq;",
            f"    {left} <= {ch.payload_words};",
            "  endrule",
            f"  rule {word_rule} ({left} != 0);",
            f"    {link_fifo}.enq(truncate({shift}));  // least significant word first",
            f"    {shift} <= {shift} >> {wb};",
            f"    {left} <= {left} - 1;",
        ]
        if arbitrated:
            next_slot = (slot + 1) % len(channels)
            yield_rule = idents.claim(f"yield_{ch.macro}", ch.name)
            lines += [
                f"    if ({left} == 1) {grant} <= {next_slot};"
                "  // message done: pass the grant",
                "  endrule",
                f"  rule {yield_rule} ({grant} == {slot} && {left} == 0"
                f" && !{fifo}.notEmpty);",
                f"    {grant} <= {next_slot};"
                f"  // nothing queued on link vc {ch.link_vc}: yield the turn",
                "  endrule",
            ]
        else:
            lines.append("  endrule")
    return lines


def generate_demarshal_rules(channels: Sequence, link_fifo: str, idents) -> List[str]:
    """The BSV unpack rules of one inbound link.

    A shared header decoder splits each arriving header word into its vc id
    and length fields (the shift/mask geometry of the canonical layout),
    the accumulate rule rebuilds the payload bit vector word by word, and
    one dispatch rule per channel moves a completed message into that
    channel's endpoint FIFO -- checking the expected header, so a
    misrouted or misformatted message can never be reinterpreted as
    another channel's type.  A completed message whose (vc, length) pair
    matches no channel is dropped by an explicit error rule that counts it
    (the loud-failure counterpart of the C side's ``return -1``) instead of
    wedging the link forever with ``rx_valid`` stuck high.
    """
    if not channels:
        return []
    wb = channels[0].word_bits
    max_payload_bits = max(ch.payload_words * wb for ch in channels)
    rx_vc = idents.claim("rx_vc", "link rx")
    rx_left = idents.claim("rx_left", "link rx")
    rx_valid = idents.claim("rx_valid", "link rx")
    rx_shift = idents.claim("rx_shift", "link rx")
    rx_fill = idents.claim("rx_fill", "link rx")
    header_rule = idents.claim("demarshal_header", "link rx")
    word_rule = idents.claim("demarshal_word", "link rx")
    lines = [
        f"  Reg#(Bit#({VC_ID_BITS})) {rx_vc} <- mkReg(0);",
        f"  Reg#(Bit#({LENGTH_BITS})) {rx_left} <- mkReg(0);",
        f"  Reg#(Bool) {rx_valid} <- mkReg(False);",
        f"  Reg#(Bit#({max_payload_bits})) {rx_shift} <- mkReg(0);",
        f"  Reg#(Bit#({LENGTH_BITS})) {rx_fill} <- mkReg(0);",
        f"  rule {header_rule} ({rx_left} == 0 && !{rx_valid});",
        f"    let hdr = {link_fifo}.first; {link_fifo}.deq;",
        f"    {rx_vc} <= hdr[{LENGTH_BITS + VC_ID_BITS - 1}:{LENGTH_BITS}];"
        "  // header vc field",
        f"    {rx_left} <= hdr[{LENGTH_BITS - 1}:0];  // header length field",
        f"    {rx_shift} <= 0; {rx_fill} <= 0;",
        "  endrule",
        f"  rule {word_rule} ({rx_left} != 0);",
        f"    let w = {link_fifo}.first; {link_fifo}.deq;",
        f"    {rx_shift} <= {rx_shift} | (zeroExtend(w) << ({rx_fill} * {wb}));",
        f"    {rx_fill} <= {rx_fill} + 1;",
        f"    {rx_left} <= {rx_left} - 1;",
        f"    if ({rx_left} == 1) {rx_valid} <= True;",
        "  endrule",
    ]
    known = []
    for ch in channels:
        fifo = idents.claim(f"{ch.macro}_in", ch.name)
        rule = idents.claim(f"dispatch_{ch.macro}", ch.name)
        guard = f"{rx_vc} == {ch.vc_id} && {rx_fill} == {ch.payload_words}"
        known.append(f"({guard})")
        lines.append(f"  rule {rule} ({rx_valid} && {guard});")
        lines.append(
            f"    {fifo}.enq(unpack(truncate({rx_shift})));"
            f"  // wire vc {ch.vc_id}: {ch.name}"
        )
        lines.append(f"    {rx_valid} <= False;")
        lines.append("  endrule")
    # No dispatch guard matched: unknown vc or wrong length.  Count and drop
    # the message so one corrupt header cannot park the whole link.
    errors = idents.claim("rx_header_errors", "link rx")
    drop_rule = idents.claim("drop_bad_header", "link rx")
    lines.insert(5, f"  Reg#(Bit#(32)) {errors} <- mkReg(0);")
    lines.append(f"  rule {drop_rule} ({rx_valid} && !({' || '.join(known)}));")
    lines.append(f"    {errors} <= {errors} + 1;  // unknown vc or bad length: drop")
    lines.append(f"    {rx_valid} <= False;")
    lines.append("  endrule")
    return lines


def _endpoint_lines(program: PartitionedProgram, spec, names: NameMap) -> List[str]:
    """Synchronizer endpoint declarations, resolved against the link-granular spec.

    For every synchronizer endpoint the partition owns, name the
    point-to-point link its route is mapped onto and the channel's slot in
    that link's own virtual-channel numbering -- the contract the link's
    transactor pair implements
    (:meth:`~repro.codegen.interface.InterfaceSpec.endpoint_annotation`).
    Declared identifiers come from the partition's collision map, so an
    endpoint can never shadow a register or FIFO of the same name.
    """
    lines: List[str] = []
    endpoints = [(s, "send", "out") for s in program.produces_to] + [
        (s, "recv", "in") for s in program.consumes_from
    ]
    for sync, role, sense in endpoints:
        annotation = spec.endpoint_annotation(sync.name, role)
        if annotation is None:
            continue
        lines.append(f"  // {sense}-endpoint {sync.name}: {annotation}")
        lines.append(
            f"  FIFO#({sync.ty!r}) {_name_of(sync, names)} <- mkSizedFIFO({sync.depth});"
        )
    return lines


def generate_hw_partition(
    design: Design,
    program: Optional[PartitionedProgram] = None,
    spec=None,
    partitioning=None,
    domain=None,
) -> str:
    """Generate the BSV module for one hardware partition.

    ``program`` selects the domain slice (whole design when ``None``);
    alternatively pass ``partitioning`` and a ``domain`` to resolve the
    slice here.  With an :class:`~repro.codegen.interface.InterfaceSpec` in
    ``spec`` the partition's synchronizer endpoints are declared against the
    link-granular interface (which link, which per-link virtual channel,
    which transactor).  Register and FIFO declarations share one flat module
    scope, so colliding names are qualified by their owning module
    (:func:`_partition_name_map`) -- consistently in declarations and rule
    bodies.
    """
    if program is None and partitioning is not None and domain is not None:
        program = partitioning.program(domain)
    rules = program.rules if program is not None else design.all_rules()
    modules = (
        program.modules
        if program is not None and program.modules
        else [m for m in design.all_modules()]
    )
    endpoints: List[Module] = []
    if spec is not None and program is not None:
        endpoints = list(program.produces_to) + list(program.consumes_from)
    names = _partition_name_map(modules, endpoints)
    partition_label = f"{design.name}_{program.name}" if program is not None else design.name

    lines = [
        "// Generated by the BCL hardware compiler (BSV backend)",
        f"// design: {design.name}",
        "import FIFO::*;",
        "import Vector::*;",
        "",
        f"module mk{partition_label.title().replace('_', '')}HwPartition (Empty);",
    ]
    for module in modules:
        for reg in module.registers:
            lines.append(f"  Reg#({reg.ty!r}) {names[reg]} <- mkReg(?);")
        if isinstance(module, SyncFifo) and module.is_cross_domain:
            lines.append(f"  // synchronizer endpoint {module.name} (mapped by the interface generator)")
        elif isinstance(module, Fifo):
            lines.append(f"  FIFO#({module.ty!r}) {names[module]} <- mkSizedFIFO({module.depth});")
    if spec is not None and program is not None:
        lines.extend(_endpoint_lines(program, spec, names))
    lines.append("")
    for rule in rules:
        rule_text = generate_rule(rule, names)
        lines.extend("  " + line for line in rule_text.splitlines())
        lines.append("")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
