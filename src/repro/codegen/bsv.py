"""BSV (Bluespec SystemVerilog) generation for hardware partitions (Section 6.4).

With the exception of dynamic loops and sequential composition, kernel BCL
translates directly into BSV; the BSV compiler then produces Verilog through
the mature operation-centric flow the paper builds on.  This generator emits
the BSV module for a hardware partition: state declarations, one ``rule``
per BCL rule with its lifted guard, and the synchronizer endpoints as
interface FIFOs.  Dynamic loops are rejected, exactly as the paper notes
they must be.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.action import (
    Action,
    IfA,
    LetA,
    LocalGuard,
    Loop,
    MethodCallA,
    NoAction,
    Par,
    RegWrite,
    Seq,
    WhenA,
)
from repro.core.errors import ElaborationError
from repro.core.expr import (
    BinOp,
    Const,
    Expr,
    FieldSelect,
    KernelCall,
    LetE,
    MethodCallE,
    Mux,
    RegRead,
    UnOp,
    Var,
    WhenE,
)
from repro.core.guards import is_true_const, lift_rule
from repro.core.module import Design, Module, Rule
from repro.core.partition import PartitionedProgram
from repro.core.primitives import Fifo
from repro.core.synchronizers import SyncFifo


def _bsv_expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        if isinstance(expr.value, bool):
            return "True" if expr.value else "False"
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name.replace("$", "_")
    if isinstance(expr, RegRead):
        return expr.reg.name
    if isinstance(expr, UnOp):
        return f"({expr.op}{_bsv_expr(expr.operand)})"
    if isinstance(expr, BinOp):
        return f"({_bsv_expr(expr.left)} {expr.op} {_bsv_expr(expr.right)})"
    if isinstance(expr, Mux):
        return f"({_bsv_expr(expr.cond)} ? {_bsv_expr(expr.then)} : {_bsv_expr(expr.orelse)})"
    if isinstance(expr, WhenE):
        return f"when({_bsv_expr(expr.guard)}, {_bsv_expr(expr.body)})"
    if isinstance(expr, LetE):
        return f"(let {expr.name.replace('$', '_')} = {_bsv_expr(expr.value)} in {_bsv_expr(expr.body)})"
    if isinstance(expr, FieldSelect):
        if isinstance(expr.field, int):
            return f"{_bsv_expr(expr.operand)}[{expr.field}]"
        return f"{_bsv_expr(expr.operand)}.{expr.field}"
    if isinstance(expr, KernelCall):
        args = ", ".join(_bsv_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, MethodCallE):
        args = ", ".join(_bsv_expr(a) for a in expr.args)
        return f"{expr.instance.name}.{expr.method}({args})"
    raise TypeError(f"cannot render expression {expr!r} as BSV")


def _bsv_action(action: Action, indent: str) -> List[str]:
    lines: List[str] = []
    if isinstance(action, NoAction):
        lines.append(f"{indent}noAction;")
        return lines
    if isinstance(action, RegWrite):
        lines.append(f"{indent}{action.reg.name} <= {_bsv_expr(action.value)};")
        return lines
    if isinstance(action, IfA):
        lines.append(f"{indent}if ({_bsv_expr(action.cond)}) begin")
        lines.extend(_bsv_action(action.then, indent + "  "))
        if action.orelse is not None:
            lines.append(f"{indent}end else begin")
            lines.extend(_bsv_action(action.orelse, indent + "  "))
        lines.append(f"{indent}end")
        return lines
    if isinstance(action, WhenA):
        lines.append(f"{indent}// when ({_bsv_expr(action.guard)})")
        lines.extend(_bsv_action(action.body, indent))
        return lines
    if isinstance(action, Par):
        for sub in action.actions:
            lines.extend(_bsv_action(sub, indent))
        return lines
    if isinstance(action, Seq):
        raise ElaborationError(
            "sequential composition cannot be synthesised into a single-cycle BSV rule "
            "(Section 6.4); restructure the rule or keep it in the software partition"
        )
    if isinstance(action, LetA):
        lines.append(f"{indent}let {action.name.replace('$', '_')} = {_bsv_expr(action.value)};")
        lines.extend(_bsv_action(action.body, indent))
        return lines
    if isinstance(action, Loop):
        raise ElaborationError(
            "loops with dynamic bounds cannot execute in a single clock cycle and are not "
            "supported by the BSV backend (Section 6.4)"
        )
    if isinstance(action, LocalGuard):
        lines.append(f"{indent}// localGuard")
        lines.extend(_bsv_action(action.body, indent))
        return lines
    if isinstance(action, MethodCallA):
        args = ", ".join(_bsv_expr(a) for a in action.args)
        lines.append(f"{indent}{action.instance.name}.{action.method}({args});")
        return lines
    raise TypeError(f"cannot render action {action!r} as BSV")


def generate_rule(rule: Rule) -> str:
    """Generate one BSV ``rule`` with its lifted guard as the rule condition."""
    body, guard = lift_rule(rule)
    condition = "" if is_true_const(guard) else f" ({_bsv_expr(guard)})"
    lines = [f"rule {rule.name}{condition};"]
    lines.extend(_bsv_action(body, "  "))
    lines.append("endrule")
    return "\n".join(lines)


def generate_hw_partition(
    design: Design, program: Optional[PartitionedProgram] = None
) -> str:
    """Generate the BSV module for a hardware partition (whole design if ``program`` is None)."""
    rules = program.rules if program is not None else design.all_rules()
    modules = (
        program.modules
        if program is not None and program.modules
        else [m for m in design.all_modules()]
    )
    module_set = set(modules)

    lines = [
        "// Generated by the BCL hardware compiler (BSV backend)",
        f"// design: {design.name}",
        "import FIFO::*;",
        "import Vector::*;",
        "",
        f"module mk{design.name.title().replace('_', '')}HwPartition (Empty);",
    ]
    for module in modules:
        for reg in module.registers:
            lines.append(f"  Reg#({reg.ty!r}) {reg.name} <- mkReg(?);")
        if isinstance(module, SyncFifo):
            lines.append(f"  // synchronizer endpoint {module.name} (mapped by the interface generator)")
        elif isinstance(module, Fifo):
            lines.append(f"  FIFO#({module.ty!r}) {module.name} <- mkSizedFIFO({module.depth});")
    lines.append("")
    for rule in rules:
        rule_text = generate_rule(rule)
        lines.extend("  " + line for line in rule_text.splitlines())
        lines.append("")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
