"""Source-level code generation: C++ for SW partitions, BSV for HW partitions, interface glue."""
