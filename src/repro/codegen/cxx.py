"""C++ code generation for software partitions (Section 6.2/6.3).

The generator emits one C++ class per module, one member function per rule,
and a ``run_scheduler`` driver.  The *structure* of the emitted rule bodies
depends on the optimisation configuration exactly as Figures 9 and 10
describe:

* without optimisation a rule body is a ``try { ... commit } catch { rollback }``
  block operating on shadow copies of every register it may touch;
* with guard lifting + inlining the rule first checks its hoisted guard, then
  executes in place, and only rules whose residual body can still fail keep
  an explicit ``goto rollback`` path with partial shadows.

The output is compilable-looking C++ text; the tests check its structural
properties (presence/absence of try/catch, shadow declarations, guard
checks) rather than compiling it, since the measured implementation in this
reproduction is the cost-modelled interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.action import (
    Action,
    IfA,
    LetA,
    LocalGuard,
    Loop,
    MethodCallA,
    NoAction,
    Par,
    RegWrite,
    Seq,
    WhenA,
)
from repro.core.expr import (
    BinOp,
    Const,
    Expr,
    FieldSelect,
    KernelCall,
    LetE,
    MethodCallE,
    Mux,
    RegRead,
    UnOp,
    Var,
    WhenE,
)
from repro.core.guards import is_true_const
from repro.core.module import Design, Module, Rule
from repro.core.optimize import CompiledRule, OptimizationConfig, compile_design_rules
from repro.core.partition import PartitionedProgram
from repro.platform.marshal import layout_for, wire_header


def _cxx_expr(expr: Expr) -> str:
    """Render an expression as C++."""
    if isinstance(expr, Const):
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        return repr(expr.value) if not isinstance(expr.value, (int, float)) else str(expr.value)
    if isinstance(expr, Var):
        return expr.name.replace("$", "_")
    if isinstance(expr, RegRead):
        return f"{expr.reg.name}.read()"
    if isinstance(expr, UnOp):
        op = {"!": "!", "-": "-", "~": "~"}[expr.op]
        return f"({op}{_cxx_expr(expr.operand)})"
    if isinstance(expr, BinOp):
        return f"({_cxx_expr(expr.left)} {expr.op} {_cxx_expr(expr.right)})"
    if isinstance(expr, Mux):
        return f"({_cxx_expr(expr.cond)} ? {_cxx_expr(expr.then)} : {_cxx_expr(expr.orelse)})"
    if isinstance(expr, WhenE):
        return f"bcl::when({_cxx_expr(expr.guard)}, {_cxx_expr(expr.body)})"
    if isinstance(expr, LetE):
        return f"[&]{{ auto {expr.name.replace('$', '_')} = {_cxx_expr(expr.value)}; return {_cxx_expr(expr.body)}; }}()"
    if isinstance(expr, FieldSelect):
        if isinstance(expr.field, int):
            return f"std::get<{expr.field}>({_cxx_expr(expr.operand)})"
        return f"{_cxx_expr(expr.operand)}.{expr.field}"
    if isinstance(expr, KernelCall):
        args = ", ".join(_cxx_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, MethodCallE):
        args = ", ".join(_cxx_expr(a) for a in expr.args)
        return f"{expr.instance.name}.{expr.method}({args})"
    raise TypeError(f"cannot render expression {expr!r} as C++")


def _cxx_action(action: Action, indent: str, shadow_suffix: str = "") -> List[str]:
    """Render an action as C++ statements."""
    lines: List[str] = []
    if isinstance(action, NoAction):
        return lines
    if isinstance(action, RegWrite):
        lines.append(f"{indent}{action.reg.name}{shadow_suffix}.write({_cxx_expr(action.value)});")
        return lines
    if isinstance(action, IfA):
        lines.append(f"{indent}if ({_cxx_expr(action.cond)}) {{")
        lines.extend(_cxx_action(action.then, indent + "  ", shadow_suffix))
        if action.orelse is not None:
            lines.append(f"{indent}}} else {{")
            lines.extend(_cxx_action(action.orelse, indent + "  ", shadow_suffix))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(action, WhenA):
        lines.append(f"{indent}if (!({_cxx_expr(action.guard)})) throw GuardFailure();")
        lines.extend(_cxx_action(action.body, indent, shadow_suffix))
        return lines
    if isinstance(action, (Par, Seq)):
        for sub in action.actions:
            lines.extend(_cxx_action(sub, indent, shadow_suffix))
        return lines
    if isinstance(action, LetA):
        lines.append(
            f"{indent}auto {action.name.replace('$', '_')} = {_cxx_expr(action.value)};"
        )
        lines.extend(_cxx_action(action.body, indent, shadow_suffix))
        return lines
    if isinstance(action, Loop):
        lines.append(f"{indent}while ({_cxx_expr(action.cond)}) {{")
        lines.extend(_cxx_action(action.body, indent + "  ", shadow_suffix))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(action, LocalGuard):
        lines.append(f"{indent}try {{")
        lines.extend(_cxx_action(action.body, indent + "  ", shadow_suffix))
        lines.append(f"{indent}}} catch (GuardFailure&) {{ /* localGuard: noAction */ }}")
        return lines
    if isinstance(action, MethodCallA):
        args = ", ".join(_cxx_expr(a) for a in action.args)
        lines.append(f"{indent}{action.instance.name}{shadow_suffix}.{action.method}({args});")
        return lines
    raise TypeError(f"cannot render action {action!r} as C++")


def generate_rule(compiled: CompiledRule) -> str:
    """Generate the C++ member function of one rule.

    Returns the Figure-9 style (try/catch over full shadows) or Figure-10
    style (guard check up front, goto rollback, partial shadows) depending on
    the compiled rule's optimisation configuration.
    """
    rule = compiled.rule
    config = compiled.config
    lines: List[str] = [f"bool {rule.name}() {{"]

    if config.lift_guards and not is_true_const(compiled.guard):
        lines.append(f"  if (!({_cxx_expr(compiled.guard)})) return false;  // lifted guard")

    if not compiled.can_fail:
        # In-place execution: no shadows, no exception handling at all.
        lines.extend(_cxx_action(compiled.body, "  "))
        lines.append("  return true;")
        lines.append("}")
        return "\n".join(lines)

    shadows = sorted(reg.name for reg in compiled.shadow_registers)
    for name in shadows:
        lines.append(f"  auto {name}_s = {name}.shadow();")

    if config.inline_methods:
        # Figure 10: explicit branch to rollback, no try/catch.
        lines.append("  // inlined methods: guard failures branch to rollback")
        body = _cxx_action(compiled.body, "  ", shadow_suffix="_s")
        body = [line.replace("throw GuardFailure();", "goto rollback;") for line in body]
        lines.extend(body)
        for name in shadows:
            lines.append(f"  {name}.commit({name}_s);")
        lines.append("  return true;")
        lines.append("rollback:")
        for name in shadows:
            lines.append(f"  {name}_s.rollback({name});")
        lines.append("  return false;")
    else:
        # Figure 9: try/catch with commit in the try block and rollback in the catch.
        lines.append("  try {")
        lines.extend(_cxx_action(compiled.body, "    ", shadow_suffix="_s"))
        for name in shadows:
            lines.append(f"    {name}.commit({name}_s);")
        lines.append("    return true;")
        lines.append("  } catch (GuardFailure&) {")
        for name in shadows:
            lines.append(f"    {name}_s.rollback({name});")
        lines.append("    return false;")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def generate_module_class(module: Module, compiled: Dict[Rule, CompiledRule]) -> str:
    """Generate one C++ class for a module (state members + rule member functions)."""
    lines = [f"class {module.name} {{", "public:"]
    for reg in module.registers:
        lines.append(f"  bcl::Reg<{reg.ty!r}> {reg.name};")
    for sub in module.submodules:
        lines.append(f"  {sub.name} {sub.name}_inst;")
    lines.append("")
    for rule in module.rules:
        if rule in compiled:
            body = generate_rule(compiled[rule])
            lines.extend("  " + line for line in body.splitlines())
            lines.append("")
    lines.append("};")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# C marshaling loops (rendered from the canonical MessageLayout)
# --------------------------------------------------------------------------


def _c_hex(value: int, word_bits: int) -> str:
    """A fixed-width unsigned hex literal for one link word."""
    digits = (word_bits + 3) // 4
    suffix = "u" if word_bits <= 32 else "ull"
    return f"0x{value:0{digits}X}{suffix}"


def generate_field_macros(ch, macro_prefix: str = "BCL") -> List[str]:
    """Per-field position macros of one channel's payload packing.

    Rendered from the channel type's :class:`~repro.platform.marshal.MessageLayout`:
    for every leaf field its LSB offset and width within the payload bit
    vector, plus the element stride of repeated (vector) fields -- the
    constants a hand-written C implementation needs to address packed
    fields without re-deriving the layout.  Scalar fields that land inside
    one payload word additionally get ``_WORD``/``_SHIFT`` macros (from the
    layout's :meth:`~repro.platform.marshal.MessageLayout.word_spans`), so
    ``(payload[WORD] >> SHIFT) & mask`` reads them directly.  Channels
    without a concrete type (synthetic specs) render nothing.
    """
    if getattr(ch, "ty", None) is None:
        return []
    layout = layout_for(ch.ty, ch.word_bits)
    spans = {}
    for span in layout.word_spans(max_instances=1):
        spans.setdefault(span.path, []).append(span)
    lines: List[str] = []
    stem = f"{macro_prefix}_{ch.macro.upper()}"
    for leaf in layout.fields:
        field = leaf.path.replace("[*]", "").replace(".", "_").replace("[", "_").replace("]", "")
        field = field.strip("_").upper() or "VALUE"
        lines.append(f"#define {stem}_{field}_LSB {leaf.bit_offset}")
        lines.append(f"#define {stem}_{field}_BITS {leaf.bit_width}")
        if leaf.count > 1:
            lines.append(f"#define {stem}_{field}_COUNT {leaf.count}")
            lines.append(f"#define {stem}_{field}_STRIDE {leaf.stride}")
        elif len(spans.get(leaf.path, ())) == 1:
            span = spans[leaf.path][0]
            lines.append(f"#define {stem}_{field}_WORD {span.word}")
            lines.append(f"#define {stem}_{field}_SHIFT {span.shift}")
    return lines


def generate_pack_function(ch, word_ty: str, fn_prefix: str) -> List[str]:
    """The C pack loop of one channel: frame a payload into a wire message.

    The header word is a compile-time constant (a channel's payload length
    is fixed by its type), taken from the same
    :func:`~repro.platform.marshal.wire_header` formula the simulator's
    dataplane stamps on every message -- the two layers cannot disagree.
    """
    header = _c_hex(wire_header(ch.vc_id, ch.payload_words), ch.word_bits)
    n, m = ch.payload_words, ch.message_words
    return [
        f"/* marshal one {ch.name} element: header + {n} payload word(s) */",
        f"static inline void {fn_prefix}_pack_{ch.macro}({word_ty} msg[{m}], "
        f"const {word_ty} payload[{n}]) {{",
        f"  msg[0] = {header};  /* wire vc {ch.vc_id}, length {n} */",
        f"  for (unsigned i = 0; i < {n}u; ++i) {{",
        "    msg[1u + i] = payload[i];",
        "  }",
        "}",
    ]


def generate_unpack_function(ch, word_ty: str, fn_prefix: str) -> List[str]:
    """The C unpack loop of one channel: validate the header, copy the payload.

    A header mismatch (wrong vc or length) returns ``-1`` without touching
    the output buffer -- the loud failure Section 2.3 argues for instead of
    silently reinterpreting bytes.
    """
    header = _c_hex(wire_header(ch.vc_id, ch.payload_words), ch.word_bits)
    n, m = ch.payload_words, ch.message_words
    return [
        f"/* demarshal one {ch.name} message; returns 0, or -1 on a header mismatch */",
        f"static inline int {fn_prefix}_unpack_{ch.macro}(const {word_ty} msg[{m}], "
        f"{word_ty} payload[{n}]) {{",
        f"  if (msg[0] != {header}) {{",
        "    return -1;  /* wrong vc or length: reject, do not reinterpret */",
        "  }",
        f"  for (unsigned i = 0; i < {n}u; ++i) {{",
        "    payload[i] = msg[1u + i];",
        "  }",
        "  return 0;",
        "}",
    ]


def _endpoint_lines(program: PartitionedProgram, spec) -> List[str]:
    """Synchronizer endpoint stubs, resolved against the link-granular spec.

    One send stub per out-endpoint and one receive stub per in-endpoint,
    each annotated with the point-to-point link its route is mapped onto,
    the channel's slot in that link's own virtual-channel numbering and the
    transactor implementing it (declared in the per-domain C header).
    """
    lines: List[str] = []
    endpoints = [(s, "send") for s in program.produces_to] + [
        (s, "recv") for s in program.consumes_from
    ]
    for sync, verb in endpoints:
        ch = spec.channel(sync.name)
        annotation = spec.endpoint_annotation(sync.name, verb)
        if ch is None or annotation is None:
            continue
        if not lines:
            lines.append("// Synchronizer endpoints (link-granular interface):")
        lines.append(f"//   bcl_{verb}_{ch.macro}: {annotation}")
    if lines:
        lines.append("")
    return lines


def generate_sw_partition(
    design: Design,
    program: Optional[PartitionedProgram] = None,
    config: Optional[OptimizationConfig] = None,
    spec=None,
    partitioning=None,
    domain=None,
) -> str:
    """Generate the complete C++ translation unit for one software partition.

    When ``program`` is ``None`` the whole design is treated as software
    (the paper's full-software use case); alternatively pass
    ``partitioning`` and a ``domain`` to resolve the slice here.  With an
    :class:`~repro.codegen.interface.InterfaceSpec` in ``spec`` the
    partition's synchronizer endpoints are documented against the
    link-granular interface (which link, which per-link virtual channel,
    which transactor).
    """
    if program is None and partitioning is not None and domain is not None:
        program = partitioning.program(domain)
    config = config or OptimizationConfig.all()
    compiled = compile_design_rules(design, config)
    rules = program.rules if program is not None else design.all_rules()
    rule_set = set(rules)
    modules = (
        program.modules
        if program is not None and program.modules
        else [m for m in design.all_modules() if m.rules]
    )

    header = [
        "// Generated by the BCL software compiler",
        f"// design: {design.name}",
        f"// optimisations: {config.describe()}",
        '#include "bcl_runtime.h"',
        "",
    ]
    body: List[str] = []
    if spec is not None and program is not None:
        body.extend(_endpoint_lines(program, spec))
    for module in modules:
        module_compiled = {r: c for r, c in compiled.items() if r in rule_set and r.module is module}
        if module.rules:
            body.append(generate_module_class(module, module_compiled))
            body.append("")

    scheduler = ["int run_scheduler() {", "  bool any = true;", "  while (any) {", "    any = false;"]
    for rule in rules:
        scheduler.append(f"    any |= {rule.module.name}_inst.{rule.name}();")
    scheduler.extend(["  }", "  return 0;", "}"])
    return "\n".join(header + body + scheduler) + "\n"
