"""Interface (transactor) generation: the compiler's third output (Figure 6).

For every synchronizer on a domain cut the compiler must produce the glue
that implements its two endpoints over a physical link: a virtual channel
id, marshaling/demarshaling code sized by the element type's canonical bit
layout, and an arbiter entry that multiplexes all virtual channels sharing
one physical link.  This module derives that information from a
partitioning and renders it in several forms:

* a software-side C header per software domain (virtual-channel table +
  send/receive helpers for every link that domain touches),
* a hardware-side BSV arbiter/marshaler skeleton per hardware domain (one
  arbitration group per outbound link),
* a transactor pair per point-to-point link (producer-side marshaler,
  consumer-side demarshaler, each rendered for the engine kind of the
  domain it runs on), and
* human-readable reports used by the examples and the Figure 12/14
  structure benchmarks.

The model is *route-keyed*: an :class:`InterfaceSpec` holds one
:class:`LinkSpec` per (producer domain, consumer domain) pair of
:meth:`~repro.core.partition.Partitioning.route_pairs`, mirroring the
N-domain co-simulation fabric's topology.  Virtual-channel ids are assigned
globally in cut order (they identify a message on the wire, exactly as the
simulator's :class:`~repro.platform.libdn.VirtualChannelTable` does) and
each link additionally numbers its own channels from zero -- the
numbering its arbitration group and transactor pair are generated against.
Hardware-ness of a domain is resolved through the partitioning's
engine-kind mapping (:func:`repro.core.partition.default_engine_kind` plus
explicit overrides), never by matching a literal domain name.

The classic two-partition HW/SW interface is the degenerate case (two
links, one hardware and one software domain); its ``report()``, C header
and BSV arbiter render byte-identically to the historical two-sided
generator, pinned by ``tests/golden/fig13_interface.json``.

Because the spec is derived purely from the cut, the paper's "Interface
Only" methodology falls out for free: a team can implement either side of
any link by hand against this contract.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.codegen.bsv import generate_demarshal_rules, generate_marshal_rules
from repro.codegen.cxx import (
    generate_field_macros,
    generate_pack_function,
    generate_unpack_function,
)
from repro.core.domains import Domain
from repro.core.errors import CodegenError
from repro.core.partition import Partitioning
from repro.core.types import words_for
from repro.platform.channel import ChannelParams
from repro.platform.marshal import message_words, validate_wire_format


def _identifier(text: str) -> str:
    """Sanitize ``text`` into a C/BSV identifier (deterministically)."""
    out = re.sub(r"[^0-9A-Za-z_]", "_", text)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _camel(text: str) -> str:
    """``HW_IMDCT`` -> ``HwImdct`` (for generated BSV module names)."""
    return "".join(part.title() for part in _identifier(text).split("_") if part)


def _c_word_type(word_bits: int) -> str:
    """The C container type holding one link word (payload arrays are counted
    in link words, so the buffer contract must match the link width)."""
    for bits in (8, 16, 32, 64):
        if word_bits <= bits:
            return f"uint{bits}_t"
    raise CodegenError(
        f"link word width {word_bits} exceeds 64 bits; no C integer type holds one word"
    )


class _IdentTable:
    """Collision-checked identifier allocation for one generated artifact."""

    def __init__(self, artifact: str):
        self.artifact = artifact
        self._owners: Dict[str, str] = {}

    def claim(self, ident: str, source: str) -> str:
        owner = self._owners.get(ident)
        if owner is not None and owner != source:
            raise CodegenError(
                f"{self.artifact}: generated identifier {ident!r} collides between "
                f"{owner!r} and {source!r}; rename one of them"
            )
        self._owners[ident] = source
        return ident


@dataclass(frozen=True)
class ChannelSpec:
    """One synchronizer's mapping onto its route's physical link."""

    vc_id: int
    name: str
    producer: str
    consumer: str
    element_type: str
    payload_words: int
    message_words: int
    depth: int
    #: This channel's slot within its link's own virtual-channel numbering.
    link_vc: int = 0
    #: Word width of the link this channel is marshalled for.
    word_bits: int = 32
    #: The element's :class:`~repro.core.types.BCLType` (``None`` for
    #: synthetic specs); with it, the generators render this channel's real
    #: marshaling code from its canonical :class:`~repro.platform.marshal.MessageLayout`.
    ty: Any = None

    @property
    def direction(self) -> str:
        return f"{self.producer}->{self.consumer}"

    @property
    def macro(self) -> str:
        """The sanitized identifier stem used for C macros and BSV names."""
        return _identifier(self.name)


@dataclass
class LinkSpec:
    """One point-to-point link: every channel routed over one (src, dst) pair.

    Channels carry their link-local ``link_vc`` numbering (0..n-1 in cut
    order); ``params`` are the physical parameters the fabric's
    ``link_params`` assigned to this route (``None`` means the platform
    default).  Each link owns one transactor pair: a producer-side
    marshaler/arbiter and a consumer-side demarshaler/dispatcher.
    """

    producer: str
    consumer: str
    channels: List[ChannelSpec]
    word_bits: int = 32
    params: Optional[ChannelParams] = None

    @property
    def name(self) -> str:
        return f"{self.producer}->{self.consumer}"

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    @property
    def tx_name(self) -> str:
        """Identifier of the producer-side (marshaling) transactor."""
        return f"tx_{_identifier(self.producer)}_to_{_identifier(self.consumer)}"

    @property
    def rx_name(self) -> str:
        """Identifier of the consumer-side (demarshaling) transactor."""
        return f"rx_{_identifier(self.producer)}_to_{_identifier(self.consumer)}"


@dataclass
class InterfaceSpec:
    """The complete inter-domain interface of one partitioned design.

    ``channels`` is the flat cut-ordered view (global vc ids, the wire
    numbering); ``links`` is the route-keyed view (one :class:`LinkSpec`
    per (producer, consumer) pair, in ``route_pairs()`` order).
    ``hw_domains``/``sw_domains`` record the engine-kind classification the
    spec was generated against.
    """

    design_name: str
    channels: List[ChannelSpec]
    word_bits: int = 32
    links: List[LinkSpec] = field(default_factory=list)
    hw_domains: List[str] = field(default_factory=list)
    sw_domains: List[str] = field(default_factory=list)

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    @property
    def domains(self) -> List[str]:
        return sorted(set(self.hw_domains) | set(self.sw_domains))

    def channels_towards(self, consumer_domain: str) -> List[ChannelSpec]:
        return [c for c in self.channels if c.consumer == consumer_domain]

    def channels_of(self, domain: str) -> List[ChannelSpec]:
        """Every channel the domain touches (as producer or consumer), cut order."""
        return [c for c in self.channels if domain in (c.producer, c.consumer)]

    def link(self, producer: str, consumer: str) -> LinkSpec:
        for link in self.links:
            if link.producer == producer and link.consumer == consumer:
                return link
        raise KeyError(
            f"interface of {self.design_name} has no link {producer}->{consumer}; "
            f"routes: {[l.name for l in self.links]}"
        )

    def links_from(self, domain: str) -> List[LinkSpec]:
        return [l for l in self.links if l.producer == domain]

    def links_to(self, domain: str) -> List[LinkSpec]:
        return [l for l in self.links if l.consumer == domain]

    def links_of(self, domain: str) -> List[LinkSpec]:
        return [l for l in self.links if domain in (l.producer, l.consumer)]

    def is_hw(self, domain: str) -> bool:
        return domain in self.hw_domains

    def transactor_pairs(self) -> Dict[str, Tuple[str, str]]:
        """Link name -> (producer transactor, consumer transactor), route order."""
        return {l.name: (l.tx_name, l.rx_name) for l in self.links}

    def channel(self, name: str) -> Optional[ChannelSpec]:
        for ch in self.channels:
            if ch.name == name:
                return ch
        return None

    def endpoint_annotation(self, channel_name: str, role: str) -> Optional[str]:
        """The link-granular contract of one synchronizer endpoint.

        ``role`` is ``"send"`` (producer side) or ``"recv"`` (consumer
        side).  Both partition generators annotate their endpoint
        declarations with this one string, so the C and BSV outputs can
        never disagree about which link, per-link virtual channel and
        transactor implement an endpoint.  Returns ``None`` for a channel
        not on the cut.
        """
        ch = self.channel(channel_name)
        if ch is None:
            return None
        link = self.link(ch.producer, ch.consumer)
        transactor = link.tx_name if role == "send" else link.rx_name
        return (
            f"link {link.name} vc {ch.link_vc} (wire vc {ch.vc_id}, "
            f"{ch.message_words}x{ch.word_bits}-bit words/message, "
            f"transactor {transactor})"
        )

    def report(self) -> str:
        """Human-readable summary of the generated interface (flat wire view)."""
        lines = [f"HW/SW interface for {self.design_name}: {self.n_channels} virtual channel(s)"]
        for ch in self.channels:
            lines.append(
                f"  vc{ch.vc_id:<3} {ch.name:<14} {ch.direction:<10} depth={ch.depth} "
                f"{ch.payload_words:>4} payload words ({ch.message_words} with header)  {ch.element_type}"
            )
        return "\n".join(lines)

    def link_report(self) -> str:
        """Human-readable summary of the route-keyed view (one section per link)."""
        lines = [
            f"Interface for {self.design_name}: {len(self.links)} link(s), "
            f"{self.n_channels} virtual channel(s)"
        ]
        for link in self.links:
            lines.append(
                f"  link {link.name} ({link.word_bits}-bit words): "
                f"{link.n_channels} vc(s), transactors {link.tx_name} / {link.rx_name}"
            )
            for ch in link.channels:
                lines.append(
                    f"    link vc{ch.link_vc} (wire vc{ch.vc_id}) {ch.name:<14} depth={ch.depth} "
                    f"{ch.payload_words:>4} payload words ({ch.message_words} with header)"
                )
        if not self.links:
            lines.append("  (empty cut: single-domain design)")
        return "\n".join(lines)


def build_interface_spec(
    partitioning: Partitioning,
    word_bits: int = 32,
    engine_kinds: Optional[Dict[Union[Domain, str], str]] = None,
    link_params: Optional[Dict[Tuple[str, str], ChannelParams]] = None,
    verify: bool = False,
) -> InterfaceSpec:
    """Derive the route-keyed interface specification from a partitioned design.

    One :class:`LinkSpec` is produced per (producer, consumer) domain pair of
    ``partitioning.route_pairs()``; ``link_params`` overrides the physical
    parameters (and hence the marshaling word width) of individual routes,
    exactly as the co-simulation fabric's ``link_params`` does.  Domains are
    classified hardware/software through ``partitioning.engine_kinds`` --
    the same defaults-plus-overrides mapping the fabric simulates with -- so
    the generated transactors always agree with the simulation about which
    side of a link is a processor.

    ``verify=True`` statically lints the partitioned design first (isolation,
    channel deadlock, dead rules, kernel purity) and raises
    :class:`repro.analysis.VerificationError` on error-severity diagnostics,
    so transactors are never generated for a design the verifier rejects.
    """
    if verify:
        # Lazy import: the analysis package imports the simulator stack.
        from repro.analysis import require_clean, verify_partitioning

        require_clean(
            verify_partitioning(partitioning, link_params=link_params),
            context=f"build_interface_spec({partitioning.design.name!r})",
        )
    kinds = partitioning.engine_kinds(engine_kinds)
    overrides = link_params or {}

    routes = partitioning.route_pairs()
    link_word_bits = {
        route: (overrides[route].word_bits if route in overrides else word_bits)
        for route in routes
    }
    per_link_counts: Dict[Tuple[str, str], int] = {route: 0 for route in routes}

    channels: List[ChannelSpec] = []
    by_route: Dict[Tuple[str, str], List[ChannelSpec]] = {route: [] for route in routes}
    n_channels = len(partitioning.cut)
    for vc_id, sync in enumerate(partitioning.cut):
        route = (sync.domain_enq.name, sync.domain_deq.name)
        bits = link_word_bits[route]
        payload_words = words_for(sync.ty, bits)
        # Fail at spec-build time if the wire format cannot carry this
        # channel (vc-id space, length field, header width) -- the same
        # check the simulator's VirtualChannelTable performs, so a bad
        # link_params configuration cannot generate corrupt headers.
        validate_wire_format(
            n_channels,
            payload_words,
            bits,
            context=f"channel {sync.name} on link {route[0]}->{route[1]}",
        )
        spec = ChannelSpec(
            vc_id=vc_id,
            name=sync.name,
            producer=route[0],
            consumer=route[1],
            element_type=repr(sync.ty),
            payload_words=payload_words,
            message_words=message_words(sync.ty, bits),
            depth=sync.depth,
            link_vc=per_link_counts[route],
            word_bits=bits,
            ty=sync.ty,
        )
        per_link_counts[route] += 1
        channels.append(spec)
        by_route[route].append(spec)

    links = [
        LinkSpec(
            producer=src,
            consumer=dst,
            channels=by_route[(src, dst)],
            word_bits=link_word_bits[(src, dst)],
            params=overrides.get((src, dst)),
        )
        for src, dst in routes
    ]
    return InterfaceSpec(
        design_name=partitioning.design.name,
        channels=channels,
        word_bits=word_bits,
        links=links,
        hw_domains=sorted(name for name, kind in kinds.items() if kind == "hw"),
        sw_domains=sorted(name for name, kind in kinds.items() if kind == "sw"),
    )


def _resolve_domain(
    spec: InterfaceSpec, domain: Optional[Union[Domain, str]], want_kind: str
) -> str:
    """Resolve the target domain of a per-domain generator call.

    ``None`` selects the unique domain of the wanted kind (the historical
    one-header / one-arbiter API); with several candidates the caller must
    name one.
    """
    candidates = spec.sw_domains if want_kind == "sw" else spec.hw_domains
    if domain is None:
        if len(candidates) == 1:
            return candidates[0]
        if not candidates and want_kind == "hw":
            # Full-software design: the hardware side of the interface is
            # empty but the historical generator still renders its skeleton.
            return "HW"
        raise CodegenError(
            f"design {spec.design_name} has {len(candidates)} {want_kind} domain(s) "
            f"{candidates}; pass the domain to generate for explicitly"
        )
    name = domain.name if isinstance(domain, Domain) else domain
    if name not in candidates:
        raise CodegenError(
            f"domain {name!r} is not a {want_kind} domain of {spec.design_name} "
            f"(engine kinds classify {candidates} as {want_kind!r})"
        )
    return name


def generate_sw_header(
    spec: InterfaceSpec, domain: Optional[Union[Domain, str]] = None
) -> str:
    """Generate the C header of one software domain's transactors.

    The header covers every link the domain touches: a virtual-channel table
    (wire vc ids), a send helper per channel the domain produces and a
    receive helper per channel it consumes.  ``domain=None`` selects the
    design's unique software domain (the classic two-partition call).
    """
    dom = _resolve_domain(spec, domain, "sw")
    channels = spec.channels_of(dom)
    idents = _IdentTable(f"sw header for domain {dom} of {spec.design_name}")

    lines = [
        "/* Generated HW/SW interface header -- do not edit by hand. */",
        f"/* design: {spec.design_name} */",
        "#pragma once",
        "#include <stdint.h>",
        "",
        f"#define BCL_CHANNEL_WORD_BITS {spec.word_bits}",
        # The wire vc-id space is global (cut order), so a dispatch table
        # sized by this macro is indexable by every BCL_VC_* defined below
        # even when this domain touches only a subset of the channels.
        f"#define BCL_NUM_VIRTUAL_CHANNELS {spec.n_channels}",
    ]
    if len(channels) != spec.n_channels:
        lines.append(f"#define BCL_NUM_LOCAL_CHANNELS {len(channels)}")
    lines.append("")
    for ch in channels:
        macro = idents.claim(ch.macro.upper(), ch.name)
        lines.append(f"#define BCL_VC_{macro} {ch.vc_id}")
        lines.append(f"#define BCL_VC_{macro}_PAYLOAD_WORDS {ch.payload_words}")
        lines.append(f"#define BCL_VC_{macro}_DEPTH {ch.depth}")
        if ch.word_bits != spec.word_bits:
            lines.append(f"#define BCL_VC_{macro}_WORD_BITS {ch.word_bits}")
    lines.append("")
    lines.append("typedef struct { uint8_t vc; uint16_t len; } bcl_msg_header_t;")
    lines.append("")
    for ch in channels:
        name = ch.macro
        word_ty = _c_word_type(ch.word_bits)
        if ch.producer == dom:
            idents.claim(f"bcl_send_{name}", ch.name)
            lines.append(
                f"int bcl_send_{name}(const {word_ty} payload[{ch.payload_words}]); "
                f"/* {ch.producer} -> {ch.consumer} */"
            )
        if ch.consumer == dom:
            idents.claim(f"bcl_recv_{name}", ch.name)
            lines.append(
                f"int bcl_recv_{name}({word_ty} payload[{ch.payload_words}]);      "
                f"/* {ch.producer} -> {ch.consumer} */"
            )
    return "\n".join(lines) + "\n"


def generate_hw_arbiter(
    spec: InterfaceSpec, domain: Optional[Union[Domain, str]] = None
) -> str:
    """Generate the BSV arbiter/marshaling skeleton of one hardware domain.

    One marshaler FIFO per channel the domain produces, one demarshaler per
    channel it consumes, and one round-robin arbitration group per outbound
    link (each link is its own serialised physical resource, so its virtual
    channels arbitrate only among themselves).  ``domain=None`` selects the
    design's unique hardware domain (the classic two-partition call).
    """
    dom = _resolve_domain(spec, domain, "hw")
    channels = spec.channels_of(dom)
    idents = _IdentTable(f"hw arbiter for domain {dom} of {spec.design_name}")

    # The historical single-hardware-domain interface keeps its historical
    # module name; with several hardware domains each arbiter is named
    # after its domain so the generated modules can coexist.
    if len(spec.hw_domains) <= 1:
        module_name = "mkHwSwInterface"
    else:
        module_name = f"mk{_camel(dom)}Interface"

    lines = [
        "// Generated HW/SW interface (hardware side): arbitration + (de)marshaling",
        f"// design: {spec.design_name}",
        "import FIFO::*;",
        "",
        f"module {module_name} (Empty);",
        "  // One marshaling engine per outbound virtual channel, one demarshaler per inbound.",
    ]
    for ch in channels:
        if ch.producer == dom:
            lines.append(
                f"  // vc {ch.vc_id}: marshal {ch.name} ({ch.payload_words} words) onto the link"
            )
            fifo = idents.claim(f"{ch.macro}_out", ch.name)
            lines.append(f"  FIFO#(Bit#({ch.word_bits})) {fifo} <- mkSizedFIFO({ch.depth});")
        else:
            lines.append(
                f"  // vc {ch.vc_id}: demarshal {ch.name} ({ch.payload_words} words) from the link"
            )
            fifo = idents.claim(f"{ch.macro}_in", ch.name)
            lines.append(f"  FIFO#(Bit#({ch.word_bits})) {fifo} <- mkSizedFIFO({ch.depth});")
    lines.append("")

    outbound_links = spec.links_from(dom)
    if len(outbound_links) <= 1:
        # Single outbound link: the arbitration group is the whole outbound
        # set (the historical two-partition layout).
        lines.append(
            "  // Round-robin arbitration of outbound virtual channels onto the physical link."
        )
        for ch in (outbound_links[0].channels if outbound_links else []):
            rule = idents.claim(f"arbitrate_{ch.macro}", ch.name)
            lines.append(f"  rule {rule};")
            lines.append(f"    // grant vc {ch.vc_id} when its turn comes and it has a full message")
            lines.append("  endrule")
    else:
        for i, link in enumerate(outbound_links):
            if i:
                lines.append("")
            lines.append(
                f"  // Round-robin arbitration of outbound virtual channels onto link {link.name}."
            )
            for ch in link.channels:
                rule = idents.claim(f"arbitrate_{ch.macro}", ch.name)
                lines.append(f"  rule {rule};")
                lines.append(
                    f"    // grant link vc {ch.link_vc} (wire vc {ch.vc_id}) "
                    "when its turn comes and it has a full message"
                )
                lines.append("  endrule")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def generate_link_transactor(spec: InterfaceSpec, link: LinkSpec, side: str) -> str:
    """Generate one endpoint of a link's transactor pair.

    ``side`` is ``"tx"`` (producer endpoint: marshal + arbitrate onto the
    link) or ``"rx"`` (consumer endpoint: demarshal + dispatch by virtual
    channel).  The endpoint renders as BSV when the domain it runs on is a
    hardware domain and as a C header otherwise -- the per-engine-kind shape
    the co-simulation fabric executes.
    """
    if side not in ("tx", "rx"):
        raise CodegenError(f"transactor side must be 'tx' or 'rx', got {side!r}")
    domain = link.producer if side == "tx" else link.consumer
    name = link.tx_name if side == "tx" else link.rx_name
    role = (
        f"producer endpoint of link {link.name} (marshal + arbitrate)"
        if side == "tx"
        else f"consumer endpoint of link {link.name} (demarshal + dispatch)"
    )
    idents = _IdentTable(f"transactor {name} of {spec.design_name}")
    idents.claim(name, link.name)

    if spec.is_hw(domain):
        # Arbitrated producer endpoints (several channels sharing the link)
        # need FIFOF endpoint FIFOs: the round-robin arbiter's yield rule
        # tests notEmpty to pass the grant over an idle channel.
        arbitrated = side == "tx" and link.n_channels > 1
        fifo_import = "import FIFOF::*;" if arbitrated else "import FIFO::*;"
        fifo_kind = "FIFOF" if arbitrated else "FIFO"
        fifo_ctor = "mkSizedFIFOF" if arbitrated else "mkSizedFIFO"
        lines = [
            f"// Transactor {name}: {role}",
            f"// design: {spec.design_name}   domain: {domain} (hw)",
            fifo_import,
            "",
            f"module mk{_camel(name)} (Empty);",
            f"  // Link word stream ({link.word_bits}-bit words, header first).",
        ]
        link_fifo = idents.claim("link_words", link.name)
        lines.append(
            f"  {fifo_kind}#(Bit#({link.word_bits})) {link_fifo} <- {fifo_ctor}(4);"
        )
        for ch in link.channels:
            verb = "marshal" if side == "tx" else "demarshal"
            suffix = "_out" if side == "tx" else "_in"
            fifo = idents.claim(f"{ch.macro}{suffix}", ch.name)
            payload_bits = ch.payload_words * ch.word_bits
            lines.append(
                f"  // link vc {ch.link_vc} (wire vc {ch.vc_id}): {verb} {ch.name} "
                f"({ch.payload_words} words, depth {ch.depth})"
            )
            lines.append(
                f"  {fifo_kind}#(Bit#({payload_bits})) {fifo} <- {fifo_ctor}({ch.depth});"
            )
        if side == "tx":
            # Real pack rules, with an explicit round-robin arbiter when
            # several channels share this link's word stream; each
            # header/word rule pair streams one message least-significant
            # word first.
            lines.extend(generate_marshal_rules(link.channels, link_fifo, idents))
        else:
            # Real unpack rules: shared header decode (vc/length fields of
            # the canonical header layout), payload accumulation, and one
            # header-checked dispatch rule per channel.
            lines.extend(generate_demarshal_rules(link.channels, link_fifo, idents))
        lines.append("endmodule")
        return "\n".join(lines) + "\n"

    lines = [
        f"/* Transactor {name}: {role} */",
        f"/* design: {spec.design_name}   domain: {domain} (sw) */",
        "#pragma once",
        "#include <stdint.h>",
        "",
        f"#define {name.upper()}_NUM_VCS {link.n_channels}",
        f"#define {name.upper()}_WORD_BITS {link.word_bits}",
        "",
    ]
    word_ty = _c_word_type(link.word_bits)
    lines.append("/* Physical word stream of this link (provided by the platform). */")
    if side == "tx":
        lines.append(f"int {name}_write_words(const {word_ty} *words, unsigned n);")
    else:
        lines.append(f"int {name}_read_words({word_ty} *words, unsigned n);")
    lines.append("")
    for ch in link.channels:
        if side == "tx":
            pack_fn = f"{name}_pack_{ch.macro}"
            idents.claim(pack_fn, ch.name)
            lines.extend(generate_pack_function(ch, word_ty, name))
            fn = idents.claim(f"{name}_send_{ch.macro}", ch.name)
            lines.append(
                f"static inline int {fn}(const {word_ty} payload[{ch.payload_words}]) "
                f"{{ /* link vc {ch.link_vc}, wire vc {ch.vc_id} */"
            )
            lines.append(f"  {word_ty} msg[{ch.message_words}];")
            lines.append(f"  {pack_fn}(msg, payload);")
            lines.append(f"  return {name}_write_words(msg, {ch.message_words}u);")
            lines.append("}")
        else:
            unpack_fn = f"{name}_unpack_{ch.macro}"
            idents.claim(unpack_fn, ch.name)
            lines.extend(generate_unpack_function(ch, word_ty, name))
            fn = idents.claim(f"{name}_recv_{ch.macro}", ch.name)
            lines.append(
                f"static inline int {fn}({word_ty} payload[{ch.payload_words}]) "
                f"{{ /* link vc {ch.link_vc}, wire vc {ch.vc_id} */"
            )
            lines.append(f"  {word_ty} msg[{ch.message_words}];")
            lines.append(
                f"  if ({name}_read_words(msg, {ch.message_words}u) != 0) {{ return -1; }}"
            )
            lines.append(f"  return {unpack_fn}(msg, payload);")
            lines.append("}")
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def generate_sw_marshal_source(
    spec: InterfaceSpec, domain: Optional[Union[Domain, str]] = None
) -> str:
    """Generate the C marshaling implementation of one software domain.

    Implements every ``bcl_send_*``/``bcl_recv_*`` helper the domain's
    generated header declares: pack the payload behind the channel's
    constant header word, hand the framed message to the platform's word
    stream (two extern hooks -- the only thing a porter supplies), and on
    receive validate the header before copying a single payload word out.
    All constants come from the channel's canonical
    :class:`~repro.platform.marshal.MessageLayout`, the same one the
    simulator's dataplane packs with, which is what makes the paper's
    "Interface Only" artifact self-contained: this translation unit plus
    the header compile as-is.
    """
    dom = _resolve_domain(spec, domain, "sw")
    channels = spec.channels_of(dom)
    idents = _IdentTable(f"sw marshal source for domain {dom} of {spec.design_name}")

    lines = [
        "/* Generated HW/SW marshaling implementation -- do not edit by hand. */",
        f"/* design: {spec.design_name}   domain: {dom} (sw) */",
        "#include <stdint.h>",
        "",
        "/* Platform word-stream hooks (the only port-specific code). */",
        "int bcl_platform_write_words(const void *words, unsigned n_words, unsigned word_bytes);",
        "int bcl_platform_read_words(void *words, unsigned n_words, unsigned word_bytes);",
        "",
    ]
    for ch in channels:
        word_ty = _c_word_type(ch.word_bits)
        field_macros = generate_field_macros(ch)
        if field_macros:
            lines.append(f"/* Packed-field positions of {ch.name} ({ch.element_type}): */")
            lines.extend(field_macros)
        idents.claim(f"bcl_pack_{ch.macro}", ch.name)
        idents.claim(f"bcl_unpack_{ch.macro}", ch.name)
        if ch.producer == dom:
            lines.extend(generate_pack_function(ch, word_ty, "bcl"))
            fn = idents.claim(f"bcl_send_{ch.macro}", ch.name)
            lines.append(f"int {fn}(const {word_ty} payload[{ch.payload_words}]) {{")
            lines.append(f"  {word_ty} msg[{ch.message_words}];")
            lines.append(f"  bcl_pack_{ch.macro}(msg, payload);")
            lines.append(
                f"  return bcl_platform_write_words(msg, {ch.message_words}u, "
                f"sizeof({word_ty}));"
            )
            lines.append("}")
        if ch.consumer == dom:
            lines.extend(generate_unpack_function(ch, word_ty, "bcl"))
            fn = idents.claim(f"bcl_recv_{ch.macro}", ch.name)
            lines.append(f"int {fn}({word_ty} payload[{ch.payload_words}]) {{")
            lines.append(f"  {word_ty} msg[{ch.message_words}];")
            lines.append(
                f"  if (bcl_platform_read_words(msg, {ch.message_words}u, "
                f"sizeof({word_ty})) != 0) {{"
            )
            lines.append("    return -1;")
            lines.append("  }")
            lines.append(f"  return bcl_unpack_{ch.macro}(msg, payload);")
            lines.append("}")
        lines.append("")
    if not channels:
        lines.append("/* empty cut: this domain touches no link */")
    return "\n".join(lines).rstrip("\n") + "\n"


def generate_transactors(spec: InterfaceSpec) -> Dict[str, Dict[str, str]]:
    """Generate the complete transactor set: one tx/rx pair per link.

    Returns ``{link name: {"tx": text, "rx": text}}`` in route order and
    verifies the pair names are globally collision-free (the acceptance
    property the multi-domain workloads are tested against).
    """
    idents = _IdentTable(f"transactor set of {spec.design_name}")
    out: Dict[str, Dict[str, str]] = {}
    for link in spec.links:
        idents.claim(link.tx_name, link.name)
        idents.claim(link.rx_name, link.name)
        out[link.name] = {
            "tx": generate_link_transactor(spec, link, "tx"),
            "rx": generate_link_transactor(spec, link, "rx"),
        }
    return out
